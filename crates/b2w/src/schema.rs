//! The B2W database schema (Fig 14 of the paper, simplified as published).
//!
//! Three logical databases — shopping cart, checkout, and stock — share one
//! catalog here; each table partitions on the first primary-key column
//! (cart id, checkout id, SKU, or stock-transaction id), so every Table 4
//! procedure is single-partition.

use pstore_dbms::catalog::{columns, Catalog, ColumnType, TableId, TableSchema};

/// Dense table ids, fixed by construction order in [`b2w_catalog`].
pub mod tables {
    use pstore_dbms::catalog::TableId;

    /// Shopping carts.
    pub const CART: TableId = 0;
    /// Lines (items) inside a cart; key `(cart_id, line_id)`.
    pub const CART_LINE: TableId = 1;
    /// Checkout objects.
    pub const CHECKOUT: TableId = 2;
    /// Lines inside a checkout; key `(checkout_id, line_id)`.
    pub const CHECKOUT_LINE: TableId = 3;
    /// Payments attached to a checkout; key `(checkout_id, payment_id)`.
    pub const CHECKOUT_PAYMENT: TableId = 4;
    /// Stock inventory per SKU.
    pub const STOCK: TableId = 5;
    /// Stock transactions (reservation records); key `stock_txn_id`.
    pub const STOCK_TXN: TableId = 6;
}

/// Human-readable table names matching the ids above.
pub const TABLE_NAMES: [&str; 7] = [
    "CART",
    "CART_LINE",
    "CHECKOUT",
    "CHECKOUT_LINE",
    "CHECKOUT_PAYMENT",
    "STOCK",
    "STOCK_TXN",
];

/// Builds the B2W catalog. Table ids match [`tables`].
pub fn b2w_catalog() -> Catalog {
    let mut cat = Catalog::new();

    let cart = cat.add_table(TableSchema::new(
        "CART",
        columns(&[
            ("cart_id", ColumnType::Str),
            ("customer_id", ColumnType::Str),
            ("status", ColumnType::Str), // OPEN | RESERVED | CHECKED_OUT
            ("total", ColumnType::Float),
            ("last_modified", ColumnType::Int),
        ]),
        1,
    ));
    debug_assert_eq!(cart, tables::CART);

    let cart_line = cat.add_table(TableSchema::new(
        "CART_LINE",
        columns(&[
            ("cart_id", ColumnType::Str),
            ("line_id", ColumnType::Int),
            ("sku", ColumnType::Str),
            ("quantity", ColumnType::Int),
            ("unit_price", ColumnType::Float),
            ("status", ColumnType::Str), // OPEN | RESERVED
        ]),
        2,
    ));
    debug_assert_eq!(cart_line, tables::CART_LINE);

    let checkout = cat.add_table(TableSchema::new(
        "CHECKOUT",
        columns(&[
            ("checkout_id", ColumnType::Str),
            ("cart_id", ColumnType::Str),
            ("status", ColumnType::Str), // OPEN | PAID | CANCELLED
            ("amount_due", ColumnType::Float),
            ("created_at", ColumnType::Int),
        ]),
        1,
    ));
    debug_assert_eq!(checkout, tables::CHECKOUT);

    let checkout_line = cat.add_table(TableSchema::new(
        "CHECKOUT_LINE",
        columns(&[
            ("checkout_id", ColumnType::Str),
            ("line_id", ColumnType::Int),
            ("sku", ColumnType::Str),
            ("quantity", ColumnType::Int),
            ("price", ColumnType::Float),
            ("stock_txn_id", ColumnType::Str),
        ]),
        2,
    ));
    debug_assert_eq!(checkout_line, tables::CHECKOUT_LINE);

    let checkout_payment = cat.add_table(TableSchema::new(
        "CHECKOUT_PAYMENT",
        columns(&[
            ("checkout_id", ColumnType::Str),
            ("payment_id", ColumnType::Int),
            ("method", ColumnType::Str),
            ("amount", ColumnType::Float),
            ("status", ColumnType::Str),
        ]),
        2,
    ));
    debug_assert_eq!(checkout_payment, tables::CHECKOUT_PAYMENT);

    let stock = cat.add_table(TableSchema::new(
        "STOCK",
        columns(&[
            ("sku", ColumnType::Str),
            ("available", ColumnType::Int),
            ("reserved", ColumnType::Int),
            ("purchased", ColumnType::Int),
            ("warehouse", ColumnType::Str),
        ]),
        1,
    ));
    debug_assert_eq!(stock, tables::STOCK);

    let stock_txn = cat.add_table(TableSchema::new(
        "STOCK_TXN",
        columns(&[
            ("stock_txn_id", ColumnType::Str),
            ("sku", ColumnType::Str),
            ("cart_id", ColumnType::Str),
            ("quantity", ColumnType::Int),
            ("status", ColumnType::Str), // RESERVED | PURCHASED | CANCELLED
        ]),
        1,
    ));
    debug_assert_eq!(stock_txn, tables::STOCK_TXN);

    cat
}

/// Returns the table id for a name (panics on unknown name; test helper).
pub fn table_id(cat: &Catalog, name: &str) -> TableId {
    cat.table_id(name)
        .unwrap_or_else(|| panic!("unknown table {name}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_all_seven_tables_in_order() {
        let cat = b2w_catalog();
        assert_eq!(cat.len(), 7);
        for (i, name) in TABLE_NAMES.iter().enumerate() {
            assert_eq!(cat.table_id(name), Some(i), "{name}");
            assert_eq!(cat.table(i).name, *name);
        }
    }

    #[test]
    fn composite_key_tables_have_two_key_columns() {
        let cat = b2w_catalog();
        assert_eq!(cat.table(tables::CART_LINE).key_columns, 2);
        assert_eq!(cat.table(tables::CHECKOUT_LINE).key_columns, 2);
        assert_eq!(cat.table(tables::CHECKOUT_PAYMENT).key_columns, 2);
        assert_eq!(cat.table(tables::CART).key_columns, 1);
        assert_eq!(cat.table(tables::STOCK).key_columns, 1);
    }

    #[test]
    fn partition_columns_are_entity_ids() {
        let cat = b2w_catalog();
        assert_eq!(cat.table(tables::CART).columns[0].name, "cart_id");
        assert_eq!(cat.table(tables::STOCK).columns[0].name, "sku");
        assert_eq!(cat.table(tables::STOCK_TXN).columns[0].name, "stock_txn_id");
    }
}
