//! Transaction traces: record a workload stream and replay it later.
//!
//! The paper's benchmark is *trace-driven*: B2W's production logs are
//! replayed against H-Store "starting from any point in the logs"
//! (Appendix C). This module provides the equivalent facility for the
//! synthetic workload: a [`Trace`] is a timestamped sequence of
//! [`B2wTxn`]s with a compact, dependency-free text encoding, so traces
//! can be captured once and replayed deterministically across runs and
//! processes.
//!
//! The format is line-based: `<at_ms>|<PROC>|field|field|...` with `|`
//! forbidden in identifiers (generator ids are hex strings, so this is not
//! a practical restriction; encoding rejects offending values).

//!
//! ```
//! use pstore_b2w::trace::Trace;
//! use pstore_b2w::procedures::GetCart;
//! use pstore_b2w::B2wTxn;
//!
//! let mut trace = Trace::new();
//! trace.record(0, B2wTxn::GetCart(GetCart { cart_id: "cart-1".into() }));
//! trace.record(5, B2wTxn::GetCart(GetCart { cart_id: "cart-2".into() }));
//! let text = trace.encode();
//! assert_eq!(Trace::decode(&text).unwrap(), trace);
//! ```

use crate::procedures::*;
use std::fmt;

/// A timestamped transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEntry {
    /// Milliseconds since the start of the trace.
    pub at_ms: u64,
    /// The transaction.
    pub txn: B2wTxn,
}

/// A recorded transaction stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

/// Errors decoding a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub reason: String,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.reason)
    }
}

impl std::error::Error for TraceError {}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Trace::default()
    }

    /// Appends a transaction at the given trace time.
    ///
    /// # Panics
    /// Panics if timestamps go backwards.
    pub fn record(&mut self, at_ms: u64, txn: B2wTxn) {
        if let Some(last) = self.entries.last() {
            assert!(
                at_ms >= last.at_ms,
                "trace timestamps must be non-decreasing"
            );
        }
        self.entries.push(TraceEntry { at_ms, txn });
    }

    /// The recorded entries, in time order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries within `[from_ms, to_ms)` — replay "from any point".
    pub fn window(&self, from_ms: u64, to_ms: u64) -> impl Iterator<Item = &TraceEntry> {
        self.entries
            .iter()
            .filter(move |e| e.at_ms >= from_ms && e.at_ms < to_ms)
    }

    /// Serialises the trace to its text form.
    ///
    /// # Panics
    /// Panics if any identifier contains the `|` separator (generator ids
    /// never do).
    pub fn encode(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            encode_entry(&mut out, e);
            out.push('\n');
        }
        out
    }

    /// Parses a trace from its text form.
    ///
    /// # Errors
    /// Returns a [`TraceError`] naming the offending line.
    pub fn decode(text: &str) -> Result<Self, TraceError> {
        let mut trace = Trace::new();
        for (i, line) in text.lines().enumerate() {
            if line.is_empty() {
                continue;
            }
            let entry = decode_entry(line).map_err(|reason| TraceError {
                line: i + 1,
                reason,
            })?;
            if let Some(last) = trace.entries.last() {
                if entry.at_ms < last.at_ms {
                    return Err(TraceError {
                        line: i + 1,
                        reason: "timestamps go backwards".into(),
                    });
                }
            }
            trace.entries.push(entry);
        }
        Ok(trace)
    }
}

fn field(out: &mut String, s: &str) {
    assert!(!s.contains('|'), "identifier contains the separator: {s}");
    out.push('|');
    out.push_str(s);
}

fn encode_entry(out: &mut String, e: &TraceEntry) {
    out.push_str(&e.at_ms.to_string());
    match &e.txn {
        B2wTxn::AddLineToCart(p) => {
            field(out, "ALC");
            field(out, &p.cart_id);
            field(out, &p.customer_id);
            field(out, &p.line_id.to_string());
            field(out, &p.sku);
            field(out, &p.quantity.to_string());
            field(out, &p.unit_price.to_string());
            field(out, &p.now.to_string());
        }
        B2wTxn::DeleteLineFromCart(p) => {
            field(out, "DLC");
            field(out, &p.cart_id);
            field(out, &p.line_id.to_string());
            field(out, &p.now.to_string());
        }
        B2wTxn::GetCart(p) => {
            field(out, "GC");
            field(out, &p.cart_id);
        }
        B2wTxn::DeleteCart(p) => {
            field(out, "DC");
            field(out, &p.cart_id);
        }
        B2wTxn::ReserveCart(p) => {
            field(out, "RC");
            field(out, &p.cart_id);
            field(out, &p.now.to_string());
        }
        B2wTxn::GetStock(p) => {
            field(out, "GS");
            field(out, &p.sku);
        }
        B2wTxn::GetStockQuantity(p) => {
            field(out, "GSQ");
            field(out, &p.sku);
        }
        B2wTxn::ReserveStock(p) => {
            field(out, "RS");
            field(out, &p.sku);
            field(out, &p.quantity.to_string());
        }
        B2wTxn::PurchaseStock(p) => {
            field(out, "PS");
            field(out, &p.sku);
            field(out, &p.quantity.to_string());
        }
        B2wTxn::CancelStockReservation(p) => {
            field(out, "CSR");
            field(out, &p.sku);
            field(out, &p.quantity.to_string());
        }
        B2wTxn::CreateStockTransaction(p) => {
            field(out, "CST");
            field(out, &p.stock_txn_id);
            field(out, &p.sku);
            field(out, &p.cart_id);
            field(out, &p.quantity.to_string());
        }
        B2wTxn::GetStockTransaction(p) => {
            field(out, "GST");
            field(out, &p.stock_txn_id);
        }
        B2wTxn::UpdateStockTransaction(p) => {
            field(out, "UST");
            field(out, &p.stock_txn_id);
            field(out, &p.new_status);
        }
        B2wTxn::CreateCheckout(p) => {
            field(out, "CC");
            field(out, &p.checkout_id);
            field(out, &p.cart_id);
            field(out, &p.amount_due.to_string());
            field(out, &p.now.to_string());
        }
        B2wTxn::CreateCheckoutPayment(p) => {
            field(out, "CCP");
            field(out, &p.checkout_id);
            field(out, &p.payment_id.to_string());
            field(out, &p.method);
            field(out, &p.amount.to_string());
        }
        B2wTxn::AddLineToCheckout(p) => {
            field(out, "ALK");
            field(out, &p.checkout_id);
            field(out, &p.line_id.to_string());
            field(out, &p.sku);
            field(out, &p.quantity.to_string());
            field(out, &p.price.to_string());
            field(out, &p.stock_txn_id);
        }
        B2wTxn::DeleteLineFromCheckout(p) => {
            field(out, "DLK");
            field(out, &p.checkout_id);
            field(out, &p.line_id.to_string());
        }
        B2wTxn::GetCheckout(p) => {
            field(out, "GK");
            field(out, &p.checkout_id);
        }
        B2wTxn::DeleteCheckout(p) => {
            field(out, "DK");
            field(out, &p.checkout_id);
        }
        B2wTxn::ArchiveStockTransaction(p) => {
            field(out, "AST");
            field(out, &p.stock_txn_id);
        }
    }
}

fn decode_entry(line: &str) -> Result<TraceEntry, String> {
    let mut parts = line.split('|');
    let at_ms: u64 = parts
        .next()
        .ok_or("missing timestamp")?
        .parse()
        .map_err(|e| format!("bad timestamp: {e}"))?;
    let tag = parts.next().ok_or("missing procedure tag")?;
    let fields: Vec<&str> = parts.collect();
    let need = |n: usize| -> Result<(), String> {
        if fields.len() == n {
            Ok(())
        } else {
            Err(format!("{tag}: expected {n} fields, got {}", fields.len()))
        }
    };
    let int = |s: &str| -> Result<i64, String> { s.parse().map_err(|e| format!("bad int: {e}")) };
    let float =
        |s: &str| -> Result<f64, String> { s.parse().map_err(|e| format!("bad float: {e}")) };

    let txn = match tag {
        "ALC" => {
            need(7)?;
            B2wTxn::AddLineToCart(AddLineToCart {
                cart_id: fields[0].into(),
                customer_id: fields[1].into(),
                line_id: int(fields[2])?,
                sku: fields[3].into(),
                quantity: int(fields[4])?,
                unit_price: float(fields[5])?,
                now: int(fields[6])?,
            })
        }
        "DLC" => {
            need(3)?;
            B2wTxn::DeleteLineFromCart(DeleteLineFromCart {
                cart_id: fields[0].into(),
                line_id: int(fields[1])?,
                now: int(fields[2])?,
            })
        }
        "GC" => {
            need(1)?;
            B2wTxn::GetCart(GetCart {
                cart_id: fields[0].into(),
            })
        }
        "DC" => {
            need(1)?;
            B2wTxn::DeleteCart(DeleteCart {
                cart_id: fields[0].into(),
            })
        }
        "RC" => {
            need(2)?;
            B2wTxn::ReserveCart(ReserveCart {
                cart_id: fields[0].into(),
                now: int(fields[1])?,
            })
        }
        "GS" => {
            need(1)?;
            B2wTxn::GetStock(GetStock {
                sku: fields[0].into(),
            })
        }
        "GSQ" => {
            need(1)?;
            B2wTxn::GetStockQuantity(GetStockQuantity {
                sku: fields[0].into(),
            })
        }
        "RS" => {
            need(2)?;
            B2wTxn::ReserveStock(ReserveStock {
                sku: fields[0].into(),
                quantity: int(fields[1])?,
            })
        }
        "PS" => {
            need(2)?;
            B2wTxn::PurchaseStock(PurchaseStock {
                sku: fields[0].into(),
                quantity: int(fields[1])?,
            })
        }
        "CSR" => {
            need(2)?;
            B2wTxn::CancelStockReservation(CancelStockReservation {
                sku: fields[0].into(),
                quantity: int(fields[1])?,
            })
        }
        "CST" => {
            need(4)?;
            B2wTxn::CreateStockTransaction(CreateStockTransaction {
                stock_txn_id: fields[0].into(),
                sku: fields[1].into(),
                cart_id: fields[2].into(),
                quantity: int(fields[3])?,
            })
        }
        "GST" => {
            need(1)?;
            B2wTxn::GetStockTransaction(GetStockTransaction {
                stock_txn_id: fields[0].into(),
            })
        }
        "UST" => {
            need(2)?;
            B2wTxn::UpdateStockTransaction(UpdateStockTransaction {
                stock_txn_id: fields[0].into(),
                new_status: fields[1].into(),
            })
        }
        "CC" => {
            need(4)?;
            B2wTxn::CreateCheckout(CreateCheckout {
                checkout_id: fields[0].into(),
                cart_id: fields[1].into(),
                amount_due: float(fields[2])?,
                now: int(fields[3])?,
            })
        }
        "CCP" => {
            need(4)?;
            B2wTxn::CreateCheckoutPayment(CreateCheckoutPayment {
                checkout_id: fields[0].into(),
                payment_id: int(fields[1])?,
                method: fields[2].into(),
                amount: float(fields[3])?,
            })
        }
        "ALK" => {
            need(6)?;
            B2wTxn::AddLineToCheckout(AddLineToCheckout {
                checkout_id: fields[0].into(),
                line_id: int(fields[1])?,
                sku: fields[2].into(),
                quantity: int(fields[3])?,
                price: float(fields[4])?,
                stock_txn_id: fields[5].into(),
            })
        }
        "DLK" => {
            need(2)?;
            B2wTxn::DeleteLineFromCheckout(DeleteLineFromCheckout {
                checkout_id: fields[0].into(),
                line_id: int(fields[1])?,
            })
        }
        "GK" => {
            need(1)?;
            B2wTxn::GetCheckout(GetCheckout {
                checkout_id: fields[0].into(),
            })
        }
        "DK" => {
            need(1)?;
            B2wTxn::DeleteCheckout(DeleteCheckout {
                checkout_id: fields[0].into(),
            })
        }
        "AST" => {
            need(1)?;
            B2wTxn::ArchiveStockTransaction(ArchiveStockTransaction {
                stock_txn_id: fields[0].into(),
            })
        }
        other => return Err(format!("unknown procedure tag {other}")),
    };
    Ok(TraceEntry { at_ms, txn })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{WorkloadConfig, WorkloadGenerator};

    fn sample_trace(n: usize) -> Trace {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed: 99,
            num_skus: 100,
            initial_carts: 20,
            ..WorkloadConfig::default()
        });
        let mut trace = Trace::new();
        for (i, txn) in gen.initial_load().into_iter().enumerate() {
            trace.record(i as u64, txn);
        }
        let base = trace.len() as u64;
        for i in 0..n {
            trace.record(base + i as u64 * 7, gen.next_txn());
        }
        trace
    }

    #[test]
    fn encode_decode_round_trips_generated_workload() {
        let trace = sample_trace(2_000);
        let text = trace.encode();
        let back = Trace::decode(&text).expect("decodes");
        assert_eq!(trace, back);
    }

    #[test]
    fn windowing_selects_a_time_slice() {
        let trace = sample_trace(100);
        let total = trace.len();
        let mid = trace.entries()[total / 2].at_ms;
        let window: Vec<_> = trace.window(mid, u64::MAX).collect();
        assert!(!window.is_empty());
        assert!(window.len() < total);
        assert!(window.iter().all(|e| e.at_ms >= mid));
    }

    #[test]
    fn decode_reports_line_numbers() {
        let err = Trace::decode("0|GC|cart-1\nnot-a-line\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn decode_rejects_unknown_tags_and_arity() {
        assert!(Trace::decode("0|XXX|a").is_err());
        assert!(Trace::decode("0|GC").is_err()); // missing field
        assert!(Trace::decode("0|GC|a|b").is_err()); // extra field
    }

    #[test]
    fn decode_rejects_backwards_time() {
        let text = "5|GC|cart-1\n3|GC|cart-2\n";
        let err = Trace::decode(text).unwrap_err();
        assert!(err.reason.contains("backwards"));
    }

    #[test]
    fn replay_produces_identical_database_state() {
        use crate::schema::b2w_catalog;
        use pstore_dbms::cluster::{Cluster, ClusterConfig};

        let trace = sample_trace(3_000);
        let text = trace.encode();
        let replayed = Trace::decode(&text).unwrap();

        let run = |t: &Trace| {
            let mut cluster = Cluster::new(
                b2w_catalog(),
                ClusterConfig {
                    partitions_per_node: 2,
                    num_slots: 64,
                },
                2,
            );
            let gen = WorkloadGenerator::new(WorkloadConfig {
                seed: 99,
                num_skus: 100,
                initial_carts: 20,
                ..WorkloadConfig::default()
            });
            for p in gen.seed_stock_procedures() {
                cluster.execute(&p).unwrap();
            }
            for e in t.entries() {
                let _ = cluster.execute(&e.txn);
            }
            (cluster.total_rows(), cluster.total_bytes())
        };
        assert_eq!(run(&trace), run(&replayed));
    }
}
