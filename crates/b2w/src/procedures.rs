//! The 19 stored procedures of the B2W benchmark (Table 4 of the paper).
//!
//! Each procedure routes on a single partitioning key (cart id, checkout
//! id, SKU, or stock-transaction id) and is therefore single-partition.
//! Cross-entity workflows — e.g. checking out a cart reserves each of its
//! SKUs — happen at the application layer (the workload generator), exactly
//! as in B2W's production deployment (§7).

use crate::schema::tables;
use pstore_dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
use pstore_dbms::value::{Key, KeyValue, Row, Value};
use serde::{Deserialize, Serialize};

/// Cart / line / checkout / stock-transaction status strings.
pub mod status {
    /// Entity is open for modification.
    pub const OPEN: &str = "OPEN";
    /// Cart or line reserved pending payment.
    pub const RESERVED: &str = "RESERVED";
    /// Stock transaction finalised as purchased.
    pub const PURCHASED: &str = "PURCHASED";
    /// Stock transaction or checkout cancelled.
    pub const CANCELLED: &str = "CANCELLED";
    /// Checkout fully paid.
    pub const PAID: &str = "PAID";
}

fn s(v: &str) -> Value {
    Value::Str(v.to_string())
}

// ---------------------------------------------------------------------
// Cart procedures
// ---------------------------------------------------------------------

/// `AddLineToCart`: add an item to a cart, creating the cart on first use.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddLineToCart {
    /// Cart id (partitioning key).
    pub cart_id: String,
    /// Customer owning the cart.
    pub customer_id: String,
    /// Line number within the cart.
    pub line_id: i64,
    /// Item SKU.
    pub sku: String,
    /// Quantity added.
    pub quantity: i64,
    /// Unit price.
    pub unit_price: f64,
    /// Logical timestamp.
    pub now: i64,
}

impl Procedure for AddLineToCart {
    fn name(&self) -> &'static str {
        "AddLineToCart"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.cart_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let cart_key = Key::str(self.cart_id.clone());
        let line_total = self.quantity as f64 * self.unit_price;
        let cart = match ctx.get(tables::CART, &cart_key) {
            Some(mut row) => {
                let total = match row.0[3] {
                    Value::Float(t) => t,
                    _ => 0.0,
                };
                row.0[3] = Value::Float(total + line_total);
                row.0[4] = Value::Int(self.now);
                row
            }
            None => Row(vec![
                s(&self.cart_id),
                s(&self.customer_id),
                s(status::OPEN),
                Value::Float(line_total),
                Value::Int(self.now),
            ]),
        };
        ctx.put(tables::CART, cart_key, cart);
        ctx.put(
            tables::CART_LINE,
            Key::str_int(self.cart_id.clone(), self.line_id),
            Row(vec![
                s(&self.cart_id),
                Value::Int(self.line_id),
                s(&self.sku),
                Value::Int(self.quantity),
                Value::Float(self.unit_price),
                s(status::OPEN),
            ]),
        );
        Ok(TxnOutput::None)
    }
}

/// `DeleteLineFromCart`: remove an item from a cart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteLineFromCart {
    /// Cart id (partitioning key).
    pub cart_id: String,
    /// Line to remove.
    pub line_id: i64,
    /// Logical timestamp.
    pub now: i64,
}

impl Procedure for DeleteLineFromCart {
    fn name(&self) -> &'static str {
        "DeleteLineFromCart"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.cart_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let line_key = Key::str_int(self.cart_id.clone(), self.line_id);
        let line = ctx
            .delete(tables::CART_LINE, &line_key)
            .ok_or(TxnError::NotFound {
                table: "CART_LINE",
                key: line_key,
            })?;
        // Keep the cart total consistent.
        let cart_key = Key::str(self.cart_id.clone());
        if let Some(mut cart) = ctx.get(tables::CART, &cart_key) {
            let qty = line.0[3].as_int().unwrap_or(0) as f64;
            let price = match line.0[4] {
                Value::Float(p) => p,
                _ => 0.0,
            };
            if let Value::Float(t) = cart.0[3] {
                cart.0[3] = Value::Float((t - qty * price).max(0.0));
            }
            cart.0[4] = Value::Int(self.now);
            ctx.put(tables::CART, cart_key, cart);
        }
        Ok(TxnOutput::None)
    }
}

/// `GetCart`: retrieve a cart and its lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GetCart {
    /// Cart id (partitioning key).
    pub cart_id: String,
}

impl Procedure for GetCart {
    fn name(&self) -> &'static str {
        "GetCart"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.cart_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let cart_key = Key::str(self.cart_id.clone());
        let cart = ctx.get_required(tables::CART, "CART", &cart_key)?;
        let mut rows = vec![(cart_key.clone(), cart)];
        rows.extend(ctx.scan_prefix(tables::CART_LINE, &cart_key));
        Ok(TxnOutput::Rows(rows))
    }
}

/// `DeleteCart`: drop a cart and all its lines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteCart {
    /// Cart id (partitioning key).
    pub cart_id: String,
}

impl Procedure for DeleteCart {
    fn name(&self) -> &'static str {
        "DeleteCart"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.cart_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let cart_key = Key::str(self.cart_id.clone());
        let mut n = ctx.delete_prefix(tables::CART_LINE, &cart_key);
        if ctx.delete(tables::CART, &cart_key).is_some() {
            n += 1;
        }
        Ok(TxnOutput::Count(n))
    }
}

/// `ReserveCart`: mark a cart and its lines reserved for checkout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReserveCart {
    /// Cart id (partitioning key).
    pub cart_id: String,
    /// Logical timestamp.
    pub now: i64,
}

impl Procedure for ReserveCart {
    fn name(&self) -> &'static str {
        "ReserveCart"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.cart_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let cart_key = Key::str(self.cart_id.clone());
        let mut cart = ctx.get_required(tables::CART, "CART", &cart_key)?;
        cart.0[2] = s(status::RESERVED);
        cart.0[4] = Value::Int(self.now);
        ctx.put(tables::CART, cart_key.clone(), cart);
        let mut n = 0u64;
        for (k, mut line) in ctx.scan_prefix(tables::CART_LINE, &cart_key) {
            line.0[5] = s(status::RESERVED);
            ctx.put(tables::CART_LINE, k, line);
            n += 1;
        }
        Ok(TxnOutput::Count(n))
    }
}

// ---------------------------------------------------------------------
// Stock procedures
// ---------------------------------------------------------------------

/// `GetStock`: full inventory record for a SKU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GetStock {
    /// SKU (partitioning key).
    pub sku: String,
}

impl Procedure for GetStock {
    fn name(&self) -> &'static str {
        "GetStock"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let row = ctx.get_required(tables::STOCK, "STOCK", &Key::str(self.sku.clone()))?;
        Ok(TxnOutput::Row(row))
    }
}

/// `GetStockQuantity`: available quantity of a SKU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GetStockQuantity {
    /// SKU (partitioning key).
    pub sku: String,
}

impl Procedure for GetStockQuantity {
    fn name(&self) -> &'static str {
        "GetStockQuantity"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let row = ctx.get_required(tables::STOCK, "STOCK", &Key::str(self.sku.clone()))?;
        Ok(TxnOutput::Value(row.0[1].clone()))
    }
}

/// `ReserveStock`: move quantity from available to reserved; aborts when
/// insufficient stock remains.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReserveStock {
    /// SKU (partitioning key).
    pub sku: String,
    /// Quantity to reserve.
    pub quantity: i64,
}

impl Procedure for ReserveStock {
    fn name(&self) -> &'static str {
        "ReserveStock"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.sku.clone());
        let mut row = ctx.get_required(tables::STOCK, "STOCK", &key)?;
        let available = row.0[1].as_int().unwrap_or(0);
        if available < self.quantity {
            return Err(TxnError::Aborted(format!(
                "insufficient stock for {}: {} < {}",
                self.sku, available, self.quantity
            )));
        }
        let reserved = row.0[2].as_int().unwrap_or(0);
        row.0[1] = Value::Int(available - self.quantity);
        row.0[2] = Value::Int(reserved + self.quantity);
        ctx.put(tables::STOCK, key, row);
        Ok(TxnOutput::None)
    }
}

/// `PurchaseStock`: move quantity from reserved to purchased.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PurchaseStock {
    /// SKU (partitioning key).
    pub sku: String,
    /// Quantity purchased.
    pub quantity: i64,
}

impl Procedure for PurchaseStock {
    fn name(&self) -> &'static str {
        "PurchaseStock"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.sku.clone());
        let mut row = ctx.get_required(tables::STOCK, "STOCK", &key)?;
        let reserved = row.0[2].as_int().unwrap_or(0);
        if reserved < self.quantity {
            return Err(TxnError::Aborted(format!(
                "cannot purchase unreserved stock for {}",
                self.sku
            )));
        }
        let purchased = row.0[3].as_int().unwrap_or(0);
        row.0[2] = Value::Int(reserved - self.quantity);
        row.0[3] = Value::Int(purchased + self.quantity);
        ctx.put(tables::STOCK, key, row);
        Ok(TxnOutput::None)
    }
}

/// `CancelStockReservation`: return reserved quantity to available.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CancelStockReservation {
    /// SKU (partitioning key).
    pub sku: String,
    /// Quantity to release.
    pub quantity: i64,
}

impl Procedure for CancelStockReservation {
    fn name(&self) -> &'static str {
        "CancelStockReservation"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.sku.clone());
        let mut row = ctx.get_required(tables::STOCK, "STOCK", &key)?;
        let reserved = row.0[2].as_int().unwrap_or(0);
        if reserved < self.quantity {
            return Err(TxnError::Aborted(format!(
                "cannot release more than reserved for {}",
                self.sku
            )));
        }
        let available = row.0[1].as_int().unwrap_or(0);
        row.0[1] = Value::Int(available + self.quantity);
        row.0[2] = Value::Int(reserved - self.quantity);
        ctx.put(tables::STOCK, key, row);
        Ok(TxnOutput::None)
    }
}

// ---------------------------------------------------------------------
// Stock-transaction procedures
// ---------------------------------------------------------------------

/// `CreateStockTransaction`: record that an item in a cart was reserved.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateStockTransaction {
    /// Stock-transaction id (partitioning key).
    pub stock_txn_id: String,
    /// SKU reserved.
    pub sku: String,
    /// Cart that triggered the reservation.
    pub cart_id: String,
    /// Quantity reserved.
    pub quantity: i64,
}

impl Procedure for CreateStockTransaction {
    fn name(&self) -> &'static str {
        "CreateStockTransaction"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.stock_txn_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.insert_new(
            tables::STOCK_TXN,
            "STOCK_TXN",
            Key::str(self.stock_txn_id.clone()),
            Row(vec![
                s(&self.stock_txn_id),
                s(&self.sku),
                s(&self.cart_id),
                Value::Int(self.quantity),
                s(status::RESERVED),
            ]),
        )?;
        Ok(TxnOutput::None)
    }
}

/// `GetStockTransaction`: retrieve a stock transaction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GetStockTransaction {
    /// Stock-transaction id (partitioning key).
    pub stock_txn_id: String,
}

impl Procedure for GetStockTransaction {
    fn name(&self) -> &'static str {
        "GetStockTransaction"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.stock_txn_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let row = ctx.get_required(
            tables::STOCK_TXN,
            "STOCK_TXN",
            &Key::str(self.stock_txn_id.clone()),
        )?;
        Ok(TxnOutput::Row(row))
    }
}

/// `UpdateStockTransaction`: mark a stock transaction purchased/cancelled.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStockTransaction {
    /// Stock-transaction id (partitioning key).
    pub stock_txn_id: String,
    /// New status (`PURCHASED` or `CANCELLED`).
    pub new_status: String,
}

impl Procedure for UpdateStockTransaction {
    fn name(&self) -> &'static str {
        "UpdateStockTransaction"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.stock_txn_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.stock_txn_id.clone());
        let mut row = ctx.get_required(tables::STOCK_TXN, "STOCK_TXN", &key)?;
        row.0[4] = s(&self.new_status);
        ctx.put(tables::STOCK_TXN, key, row);
        Ok(TxnOutput::None)
    }
}

// ---------------------------------------------------------------------
// Checkout procedures
// ---------------------------------------------------------------------

/// `CreateCheckout`: start the checkout process for a cart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateCheckout {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
    /// Cart being checked out.
    pub cart_id: String,
    /// Amount due.
    pub amount_due: f64,
    /// Logical timestamp.
    pub now: i64,
}

impl Procedure for CreateCheckout {
    fn name(&self) -> &'static str {
        "CreateCheckout"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.insert_new(
            tables::CHECKOUT,
            "CHECKOUT",
            Key::str(self.checkout_id.clone()),
            Row(vec![
                s(&self.checkout_id),
                s(&self.cart_id),
                s(status::OPEN),
                Value::Float(self.amount_due),
                Value::Int(self.now),
            ]),
        )?;
        Ok(TxnOutput::None)
    }
}

/// `CreateCheckoutPayment`: attach payment information to a checkout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CreateCheckoutPayment {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
    /// Payment sequence number.
    pub payment_id: i64,
    /// Payment method (e.g. `CARD`, `BOLETO`).
    pub method: String,
    /// Amount covered by this payment.
    pub amount: f64,
}

impl Procedure for CreateCheckoutPayment {
    fn name(&self) -> &'static str {
        "CreateCheckoutPayment"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let checkout_key = Key::str(self.checkout_id.clone());
        let mut checkout = ctx.get_required(tables::CHECKOUT, "CHECKOUT", &checkout_key)?;
        ctx.insert_new(
            tables::CHECKOUT_PAYMENT,
            "CHECKOUT_PAYMENT",
            Key::str_int(self.checkout_id.clone(), self.payment_id),
            Row(vec![
                s(&self.checkout_id),
                Value::Int(self.payment_id),
                s(&self.method),
                Value::Float(self.amount),
                s(status::OPEN),
            ]),
        )?;
        checkout.0[2] = s(status::PAID);
        ctx.put(tables::CHECKOUT, checkout_key, checkout);
        Ok(TxnOutput::None)
    }
}

/// `AddLineToCheckout`: copy a reserved cart line into a checkout.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddLineToCheckout {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
    /// Line number within the checkout.
    pub line_id: i64,
    /// Item SKU.
    pub sku: String,
    /// Quantity.
    pub quantity: i64,
    /// Line price.
    pub price: f64,
    /// Stock transaction backing the reservation.
    pub stock_txn_id: String,
}

impl Procedure for AddLineToCheckout {
    fn name(&self) -> &'static str {
        "AddLineToCheckout"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        // The checkout must exist.
        ctx.get_required(
            tables::CHECKOUT,
            "CHECKOUT",
            &Key::str(self.checkout_id.clone()),
        )?;
        ctx.put(
            tables::CHECKOUT_LINE,
            Key::str_int(self.checkout_id.clone(), self.line_id),
            Row(vec![
                s(&self.checkout_id),
                Value::Int(self.line_id),
                s(&self.sku),
                Value::Int(self.quantity),
                Value::Float(self.price),
                s(&self.stock_txn_id),
            ]),
        );
        Ok(TxnOutput::None)
    }
}

/// `DeleteLineFromCheckout`: remove an item from a checkout (e.g. when its
/// reservation failed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteLineFromCheckout {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
    /// Line to remove.
    pub line_id: i64,
}

impl Procedure for DeleteLineFromCheckout {
    fn name(&self) -> &'static str {
        "DeleteLineFromCheckout"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str_int(self.checkout_id.clone(), self.line_id);
        ctx.delete(tables::CHECKOUT_LINE, &key)
            .ok_or(TxnError::NotFound {
                table: "CHECKOUT_LINE",
                key,
            })?;
        Ok(TxnOutput::None)
    }
}

/// `GetCheckout`: retrieve a checkout with its lines and payments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GetCheckout {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
}

impl Procedure for GetCheckout {
    fn name(&self) -> &'static str {
        "GetCheckout"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.checkout_id.clone());
        let checkout = ctx.get_required(tables::CHECKOUT, "CHECKOUT", &key)?;
        let mut rows = vec![(key.clone(), checkout)];
        rows.extend(ctx.scan_prefix(tables::CHECKOUT_LINE, &key));
        rows.extend(ctx.scan_prefix(tables::CHECKOUT_PAYMENT, &key));
        Ok(TxnOutput::Rows(rows))
    }
}

/// `DeleteCheckout`: drop a checkout with its lines and payments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteCheckout {
    /// Checkout id (partitioning key).
    pub checkout_id: String,
}

impl Procedure for DeleteCheckout {
    fn name(&self) -> &'static str {
        "DeleteCheckout"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.checkout_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.checkout_id.clone());
        let mut n = ctx.delete_prefix(tables::CHECKOUT_LINE, &key);
        n += ctx.delete_prefix(tables::CHECKOUT_PAYMENT, &key);
        if ctx.delete(tables::CHECKOUT, &key).is_some() {
            n += 1;
        }
        Ok(TxnOutput::Count(n))
    }
}

/// `ArchiveStockTransaction`: drop a finalised stock transaction from the
/// active database.
///
/// Not part of Table 4 — it models the out-of-band archival the paper
/// describes in §4.2 ("historical data is moved to a separate data
/// warehouse"), which is what keeps the active database size stable.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchiveStockTransaction {
    /// Stock-transaction id (partitioning key).
    pub stock_txn_id: String,
}

impl Procedure for ArchiveStockTransaction {
    fn name(&self) -> &'static str {
        "ArchiveStockTransaction"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.stock_txn_id.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let key = Key::str(self.stock_txn_id.clone());
        let n = u64::from(ctx.delete(tables::STOCK_TXN, &key).is_some());
        Ok(TxnOutput::Count(n))
    }
}

// ---------------------------------------------------------------------
// The trace-able transaction enum
// ---------------------------------------------------------------------

/// Any B2W transaction — the unit of the benchmark's traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum B2wTxn {
    AddLineToCart(AddLineToCart),
    DeleteLineFromCart(DeleteLineFromCart),
    GetCart(GetCart),
    DeleteCart(DeleteCart),
    ReserveCart(ReserveCart),
    GetStock(GetStock),
    GetStockQuantity(GetStockQuantity),
    ReserveStock(ReserveStock),
    PurchaseStock(PurchaseStock),
    CancelStockReservation(CancelStockReservation),
    CreateStockTransaction(CreateStockTransaction),
    GetStockTransaction(GetStockTransaction),
    UpdateStockTransaction(UpdateStockTransaction),
    CreateCheckout(CreateCheckout),
    CreateCheckoutPayment(CreateCheckoutPayment),
    AddLineToCheckout(AddLineToCheckout),
    DeleteLineFromCheckout(DeleteLineFromCheckout),
    GetCheckout(GetCheckout),
    DeleteCheckout(DeleteCheckout),
    ArchiveStockTransaction(ArchiveStockTransaction),
}

macro_rules! dispatch {
    ($self:ident, $inner:ident => $e:expr) => {
        match $self {
            B2wTxn::AddLineToCart($inner) => $e,
            B2wTxn::DeleteLineFromCart($inner) => $e,
            B2wTxn::GetCart($inner) => $e,
            B2wTxn::DeleteCart($inner) => $e,
            B2wTxn::ReserveCart($inner) => $e,
            B2wTxn::GetStock($inner) => $e,
            B2wTxn::GetStockQuantity($inner) => $e,
            B2wTxn::ReserveStock($inner) => $e,
            B2wTxn::PurchaseStock($inner) => $e,
            B2wTxn::CancelStockReservation($inner) => $e,
            B2wTxn::CreateStockTransaction($inner) => $e,
            B2wTxn::GetStockTransaction($inner) => $e,
            B2wTxn::UpdateStockTransaction($inner) => $e,
            B2wTxn::CreateCheckout($inner) => $e,
            B2wTxn::CreateCheckoutPayment($inner) => $e,
            B2wTxn::AddLineToCheckout($inner) => $e,
            B2wTxn::DeleteLineFromCheckout($inner) => $e,
            B2wTxn::GetCheckout($inner) => $e,
            B2wTxn::DeleteCheckout($inner) => $e,
            B2wTxn::ArchiveStockTransaction($inner) => $e,
        }
    };
}

impl Procedure for B2wTxn {
    fn name(&self) -> &'static str {
        dispatch!(self, p => p.name())
    }
    fn routing_key(&self) -> KeyValue {
        dispatch!(self, p => p.routing_key())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        dispatch!(self, p => p.execute(ctx))
    }
}

impl B2wTxn {
    /// Whether this transaction only reads.
    pub fn is_read_only(&self) -> bool {
        matches!(
            self,
            B2wTxn::GetCart(_)
                | B2wTxn::GetStock(_)
                | B2wTxn::GetStockQuantity(_)
                | B2wTxn::GetStockTransaction(_)
                | B2wTxn::GetCheckout(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::b2w_catalog;
    use pstore_dbms::cluster::{Cluster, ClusterConfig};

    fn cluster() -> Cluster {
        Cluster::new(
            b2w_catalog(),
            ClusterConfig {
                partitions_per_node: 2,
                num_slots: 64,
            },
            2,
        )
    }

    fn seed_stock(c: &mut Cluster, sku: &str, qty: i64) {
        // Directly execute an insert via a tiny inline procedure.
        struct SeedStock(String, i64);
        impl Procedure for SeedStock {
            fn name(&self) -> &'static str {
                "SeedStock"
            }
            fn routing_key(&self) -> KeyValue {
                KeyValue::Str(self.0.clone())
            }
            fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
                ctx.put(
                    tables::STOCK,
                    Key::str(self.0.clone()),
                    Row(vec![
                        Value::Str(self.0.clone()),
                        Value::Int(self.1),
                        Value::Int(0),
                        Value::Int(0),
                        Value::Str("W1".into()),
                    ]),
                );
                Ok(TxnOutput::None)
            }
        }
        c.execute(&SeedStock(sku.into(), qty)).unwrap();
    }

    #[test]
    fn cart_lifecycle() {
        let mut c = cluster();
        for line in 0..3 {
            c.execute(&AddLineToCart {
                cart_id: "cart-1".into(),
                customer_id: "cust-1".into(),
                line_id: line,
                sku: format!("sku-{line}"),
                quantity: 2,
                unit_price: 10.0,
                now: 100 + line,
            })
            .unwrap();
        }
        let TxnOutput::Rows(rows) = c
            .execute(&GetCart {
                cart_id: "cart-1".into(),
            })
            .unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(rows.len(), 4); // cart + 3 lines
                                   // Total = 3 lines x 2 x 10.
        assert_eq!(rows[0].1 .0[3], Value::Float(60.0));

        c.execute(&DeleteLineFromCart {
            cart_id: "cart-1".into(),
            line_id: 1,
            now: 200,
        })
        .unwrap();
        let TxnOutput::Rows(rows) = c
            .execute(&GetCart {
                cart_id: "cart-1".into(),
            })
            .unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].1 .0[3], Value::Float(40.0));

        let TxnOutput::Count(n) = c
            .execute(&DeleteCart {
                cart_id: "cart-1".into(),
            })
            .unwrap()
        else {
            panic!("expected count");
        };
        assert_eq!(n, 3); // cart + 2 remaining lines
        assert!(c
            .execute(&GetCart {
                cart_id: "cart-1".into()
            })
            .is_err());
    }

    #[test]
    fn stock_reserve_purchase_flow() {
        let mut c = cluster();
        seed_stock(&mut c, "sku-9", 10);
        c.execute(&ReserveStock {
            sku: "sku-9".into(),
            quantity: 4,
        })
        .unwrap();
        let TxnOutput::Value(v) = c
            .execute(&GetStockQuantity {
                sku: "sku-9".into(),
            })
            .unwrap()
        else {
            panic!("expected value");
        };
        assert_eq!(v, Value::Int(6));

        c.execute(&PurchaseStock {
            sku: "sku-9".into(),
            quantity: 3,
        })
        .unwrap();
        c.execute(&CancelStockReservation {
            sku: "sku-9".into(),
            quantity: 1,
        })
        .unwrap();
        let TxnOutput::Row(row) = c
            .execute(&GetStock {
                sku: "sku-9".into(),
            })
            .unwrap()
        else {
            panic!("expected row");
        };
        assert_eq!(row.0[1], Value::Int(7)); // available 6 + 1 released
        assert_eq!(row.0[2], Value::Int(0)); // reserved all consumed
        assert_eq!(row.0[3], Value::Int(3)); // purchased
    }

    #[test]
    fn reserve_aborts_when_out_of_stock() {
        let mut c = cluster();
        seed_stock(&mut c, "rare", 1);
        let err = c
            .execute(&ReserveStock {
                sku: "rare".into(),
                quantity: 5,
            })
            .unwrap_err();
        assert!(matches!(err, TxnError::Aborted(_)));
        // Nothing changed.
        let TxnOutput::Value(v) = c.execute(&GetStockQuantity { sku: "rare".into() }).unwrap()
        else {
            panic!("expected value");
        };
        assert_eq!(v, Value::Int(1));
    }

    #[test]
    fn checkout_lifecycle() {
        let mut c = cluster();
        c.execute(&CreateCheckout {
            checkout_id: "chk-1".into(),
            cart_id: "cart-1".into(),
            amount_due: 99.9,
            now: 1,
        })
        .unwrap();
        // Duplicate checkout rejected.
        assert!(c
            .execute(&CreateCheckout {
                checkout_id: "chk-1".into(),
                cart_id: "cart-2".into(),
                amount_due: 1.0,
                now: 2,
            })
            .is_err());

        c.execute(&AddLineToCheckout {
            checkout_id: "chk-1".into(),
            line_id: 0,
            sku: "sku-1".into(),
            quantity: 1,
            price: 99.9,
            stock_txn_id: "stx-1".into(),
        })
        .unwrap();
        c.execute(&CreateCheckoutPayment {
            checkout_id: "chk-1".into(),
            payment_id: 0,
            method: "CARD".into(),
            amount: 99.9,
        })
        .unwrap();

        let TxnOutput::Rows(rows) = c
            .execute(&GetCheckout {
                checkout_id: "chk-1".into(),
            })
            .unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(rows.len(), 3); // checkout + line + payment
        assert_eq!(rows[0].1 .0[2], Value::Str(status::PAID.into()));

        c.execute(&DeleteLineFromCheckout {
            checkout_id: "chk-1".into(),
            line_id: 0,
        })
        .unwrap();
        let TxnOutput::Count(n) = c
            .execute(&DeleteCheckout {
                checkout_id: "chk-1".into(),
            })
            .unwrap()
        else {
            panic!("expected count");
        };
        assert_eq!(n, 2); // checkout + payment (line already deleted)
    }

    #[test]
    fn stock_transaction_lifecycle() {
        let mut c = cluster();
        c.execute(&CreateStockTransaction {
            stock_txn_id: "stx-7".into(),
            sku: "sku-1".into(),
            cart_id: "cart-1".into(),
            quantity: 2,
        })
        .unwrap();
        c.execute(&UpdateStockTransaction {
            stock_txn_id: "stx-7".into(),
            new_status: status::PURCHASED.into(),
        })
        .unwrap();
        let TxnOutput::Row(row) = c
            .execute(&GetStockTransaction {
                stock_txn_id: "stx-7".into(),
            })
            .unwrap()
        else {
            panic!("expected row");
        };
        assert_eq!(row.0[4], Value::Str(status::PURCHASED.into()));
    }

    #[test]
    fn reserve_cart_marks_cart_and_lines() {
        let mut c = cluster();
        c.execute(&AddLineToCart {
            cart_id: "cart-5".into(),
            customer_id: "cust".into(),
            line_id: 0,
            sku: "sku-0".into(),
            quantity: 1,
            unit_price: 5.0,
            now: 1,
        })
        .unwrap();
        let TxnOutput::Count(n) = c
            .execute(&ReserveCart {
                cart_id: "cart-5".into(),
                now: 2,
            })
            .unwrap()
        else {
            panic!("expected count");
        };
        assert_eq!(n, 1);
        let TxnOutput::Rows(rows) = c
            .execute(&GetCart {
                cart_id: "cart-5".into(),
            })
            .unwrap()
        else {
            panic!("expected rows");
        };
        assert_eq!(rows[0].1 .0[2], Value::Str(status::RESERVED.into()));
        assert_eq!(rows[1].1 .0[5], Value::Str(status::RESERVED.into()));
    }

    #[test]
    fn enum_dispatch_matches_inner_procedures() {
        let txn = B2wTxn::GetCart(GetCart {
            cart_id: "c".into(),
        });
        assert_eq!(txn.name(), "GetCart");
        assert!(txn.is_read_only());
        assert_eq!(txn.routing_key(), KeyValue::Str("c".into()));
        let w = B2wTxn::ReserveStock(ReserveStock {
            sku: "s".into(),
            quantity: 1,
        });
        assert!(!w.is_read_only());
    }
}
