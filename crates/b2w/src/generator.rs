//! Session-driven workload generation.
//!
//! B2W's traces replay customers browsing, filling carts, and checking out.
//! Without the proprietary logs, this generator synthesises statistically
//! equivalent *valid* transaction sequences: every emitted transaction
//! succeeds against the database state produced by the ones before it
//! (except deliberate business aborts such as reserving scarce stock).
//! Keys are random hex identifiers, giving the near-uniform partition
//! access and data distribution the paper measures in §8.1.

use crate::procedures::*;
use crate::schema::tables;
use pstore_dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
use pstore_dbms::value::{Key, KeyValue, Row, Value};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::VecDeque;

/// Generator tuning.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// RNG seed; equal seeds give identical transaction streams.
    pub seed: u64,
    /// Number of distinct SKUs in the stock database.
    pub num_skus: usize,
    /// Initial available quantity per SKU (large = rare business aborts).
    pub initial_stock: i64,
    /// Number of pre-existing open carts loaded at start-up.
    pub initial_carts: usize,
    /// Lines per pre-existing cart.
    pub lines_per_initial_cart: usize,
    /// Maximum lines a generated cart accumulates before checkout.
    pub max_lines_per_cart: usize,
    /// Probability a cart session ends in checkout (vs abandonment).
    pub checkout_probability: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 0xB2D1,
            num_skus: 10_000,
            initial_stock: 1_000_000,
            initial_carts: 2_000,
            lines_per_initial_cart: 3,
            max_lines_per_cart: 8,
            checkout_probability: 0.35,
        }
    }
}

/// Loader procedure: seeds a STOCK row (there is deliberately no Table 4
/// procedure for this — inventory arrives out of band in production).
#[derive(Debug, Clone)]
pub struct SeedStock {
    /// SKU (partitioning key).
    pub sku: String,
    /// Initial available quantity.
    pub quantity: i64,
}

impl Procedure for SeedStock {
    fn name(&self) -> &'static str {
        "SeedStock"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.sku.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.put(
            tables::STOCK,
            Key::str(self.sku.clone()),
            Row(vec![
                Value::Str(self.sku.clone()),
                Value::Int(self.quantity),
                Value::Int(0),
                Value::Int(0),
                Value::Str("WH-1".into()),
            ]),
        );
        Ok(TxnOutput::None)
    }
}

/// An open cart tracked by the generator.
#[derive(Debug, Clone)]
struct CartState {
    id: String,
    customer: String,
    /// `(line_id, sku, quantity, unit_price)` currently in the cart.
    lines: Vec<(i64, String, i64, f64)>,
    next_line: i64,
}

/// The synthetic workload generator.
pub struct WorkloadGenerator {
    cfg: WorkloadConfig,
    rng: StdRng,
    /// SKU names, precomputed once: `random_sku` on the per-transaction
    /// path clones a table entry instead of re-deriving the hash and
    /// formatting a fresh string every call.
    sku_names: Vec<String>,
    clock: i64,
    next_cart: u64,
    next_checkout: u64,
    next_stock_txn: u64,
    open_carts: Vec<CartState>,
    /// Checkouts that completed and may still be browsed/cleaned up.
    live_checkouts: Vec<String>,
    /// Finalised stock transactions awaiting archival to the warehouse.
    completed_stock_txns: VecDeque<String>,
    /// Multi-transaction flows in progress, drained one txn per call.
    pending: VecDeque<B2wTxn>,
}

impl WorkloadGenerator {
    /// Creates a generator.
    pub fn new(cfg: WorkloadConfig) -> Self {
        assert!(cfg.num_skus > 0, "need at least one SKU");
        assert!(
            (0.0..=1.0).contains(&cfg.checkout_probability),
            "checkout probability must be a probability"
        );
        let rng = StdRng::seed_from_u64(cfg.seed);
        WorkloadGenerator {
            rng,
            sku_names: (0..cfg.num_skus).map(sku_name).collect(),
            cfg,
            clock: 0,
            next_cart: 0,
            next_checkout: 0,
            next_stock_txn: 0,
            open_carts: Vec::new(),
            live_checkouts: Vec::new(),
            completed_stock_txns: VecDeque::new(),
            pending: VecDeque::new(),
        }
    }

    /// Transactions that load the initial database: the SKU universe plus a
    /// population of open carts. Execute them before replaying load.
    pub fn initial_load(&mut self) -> Vec<B2wTxn> {
        let mut txns: Vec<B2wTxn> = Vec::new();
        // Carts (stock seeding is separate — see `seed_stock_procedures`).
        for _ in 0..self.cfg.initial_carts {
            let cart = self.new_cart();
            for _ in 0..self.cfg.lines_per_initial_cart {
                txns.push(self.add_line_txn_for_last_cart());
            }
            let _ = cart;
        }
        txns
    }

    /// Loader procedures seeding the stock table.
    pub fn seed_stock_procedures(&self) -> Vec<SeedStock> {
        self.sku_names
            .iter()
            .map(|sku| SeedStock {
                sku: sku.clone(),
                quantity: self.cfg.initial_stock,
            })
            .collect()
    }

    fn new_cart(&mut self) -> usize {
        let id = format!("cart-{:012x}", splitmix(self.cfg.seed, self.next_cart));
        let customer = format!("cust-{:08x}", self.rng.random_range(0..u32::MAX));
        self.next_cart += 1;
        self.open_carts.push(CartState {
            id,
            customer,
            lines: Vec::new(),
            next_line: 0,
        });
        self.open_carts.len() - 1
    }

    fn random_sku(&mut self) -> String {
        self.sku_names[self.rng.random_range(0..self.sku_names.len())].clone()
    }

    /// Emits an AddLineToCart for the most recently created cart.
    fn add_line_txn_for_last_cart(&mut self) -> B2wTxn {
        let idx = self.open_carts.len() - 1;
        self.add_line_txn(idx)
    }

    fn add_line_txn(&mut self, idx: usize) -> B2wTxn {
        let sku = self.random_sku();
        let qty = self.rng.random_range(1..4);
        let price = self.rng.random_range(5.0..500.0f64);
        self.clock += 1;
        let cart = &mut self.open_carts[idx];
        let line_id = cart.next_line;
        cart.next_line += 1;
        cart.lines.push((line_id, sku.clone(), qty, price));
        B2wTxn::AddLineToCart(AddLineToCart {
            cart_id: cart.id.clone(),
            customer_id: cart.customer.clone(),
            line_id,
            sku,
            quantity: qty,
            unit_price: price,
            now: self.clock,
        })
    }

    /// Queues the full checkout flow for the cart at `idx` (removing it
    /// from the open set) and returns the first transaction.
    fn start_checkout(&mut self, idx: usize) -> B2wTxn {
        let cart = self.open_carts.swap_remove(idx);
        self.clock += 1;
        let checkout_id = format!(
            "chk-{:012x}",
            splitmix(self.cfg.seed ^ 0xC0, self.next_checkout)
        );
        self.next_checkout += 1;
        let amount: f64 = cart.lines.iter().map(|(_, _, q, p)| *q as f64 * p).sum();

        let mut flow: Vec<B2wTxn> = Vec::new();
        flow.push(B2wTxn::ReserveCart(ReserveCart {
            cart_id: cart.id.clone(),
            now: self.clock,
        }));
        // Reserve stock per line; record a stock transaction for each.
        let mut stock_txns = Vec::new();
        for (line_id, sku, qty, price) in &cart.lines {
            let stx = format!(
                "stx-{:012x}",
                splitmix(self.cfg.seed ^ 0x57, self.next_stock_txn)
            );
            self.next_stock_txn += 1;
            flow.push(B2wTxn::ReserveStock(ReserveStock {
                sku: sku.clone(),
                quantity: *qty,
            }));
            flow.push(B2wTxn::CreateStockTransaction(CreateStockTransaction {
                stock_txn_id: stx.clone(),
                sku: sku.clone(),
                cart_id: cart.id.clone(),
                quantity: *qty,
            }));
            stock_txns.push((*line_id, sku.clone(), *qty, *price, stx));
        }
        flow.push(B2wTxn::CreateCheckout(CreateCheckout {
            checkout_id: checkout_id.clone(),
            cart_id: cart.id.clone(),
            amount_due: amount,
            now: self.clock,
        }));
        for (line_id, sku, qty, price, stx) in &stock_txns {
            flow.push(B2wTxn::AddLineToCheckout(AddLineToCheckout {
                checkout_id: checkout_id.clone(),
                line_id: *line_id,
                sku: sku.clone(),
                quantity: *qty,
                price: *price,
                stock_txn_id: stx.clone(),
            }));
        }

        // Most checkouts pay and purchase; some cancel everything.
        let cancels = self.rng.random_range(0.0..1.0) < 0.1;
        if cancels {
            for (line_id, sku, qty, _, stx) in &stock_txns {
                flow.push(B2wTxn::CancelStockReservation(CancelStockReservation {
                    sku: sku.clone(),
                    quantity: *qty,
                }));
                flow.push(B2wTxn::UpdateStockTransaction(UpdateStockTransaction {
                    stock_txn_id: stx.clone(),
                    new_status: status::CANCELLED.into(),
                }));
                flow.push(B2wTxn::DeleteLineFromCheckout(DeleteLineFromCheckout {
                    checkout_id: checkout_id.clone(),
                    line_id: *line_id,
                }));
            }
            flow.push(B2wTxn::DeleteCheckout(DeleteCheckout {
                checkout_id: checkout_id.clone(),
            }));
            flow.push(B2wTxn::DeleteCart(DeleteCart {
                cart_id: cart.id.clone(),
            }));
            for (_, _, _, _, stx) in &stock_txns {
                self.completed_stock_txns.push_back(stx.clone());
            }
        } else {
            flow.push(B2wTxn::CreateCheckoutPayment(CreateCheckoutPayment {
                checkout_id: checkout_id.clone(),
                payment_id: 0,
                method: if self.rng.random_range(0.0..1.0) < 0.7 {
                    "CARD".into()
                } else {
                    "BOLETO".into()
                },
                amount,
            }));
            for (_, sku, qty, _, stx) in &stock_txns {
                flow.push(B2wTxn::PurchaseStock(PurchaseStock {
                    sku: sku.clone(),
                    quantity: *qty,
                }));
                flow.push(B2wTxn::UpdateStockTransaction(UpdateStockTransaction {
                    stock_txn_id: stx.clone(),
                    new_status: status::PURCHASED.into(),
                }));
            }
            flow.push(B2wTxn::GetCheckout(GetCheckout {
                checkout_id: checkout_id.clone(),
            }));
            flow.push(B2wTxn::DeleteCart(DeleteCart {
                cart_id: cart.id.clone(),
            }));
            for (_, _, _, _, stx) in &stock_txns {
                self.completed_stock_txns.push_back(stx.clone());
            }
            self.live_checkouts.push(checkout_id);
        }

        let first = flow.remove(0);
        self.pending.extend(flow);
        first
    }

    /// The next transaction of the workload stream.
    pub fn next_txn(&mut self) -> B2wTxn {
        if let Some(txn) = self.pending.pop_front() {
            return txn;
        }
        // Garbage-collect so the database holds only active data (§4.2):
        // old checkouts are deleted and finalised stock transactions are
        // archived to the (out-of-band) warehouse.
        if self.live_checkouts.len() > 400 {
            let id = self.live_checkouts.remove(0);
            return B2wTxn::DeleteCheckout(DeleteCheckout { checkout_id: id });
        }
        if self.completed_stock_txns.len() > 400 {
            if let Some(id) = self.completed_stock_txns.pop_front() {
                return B2wTxn::ArchiveStockTransaction(ArchiveStockTransaction {
                    stock_txn_id: id,
                });
            }
        }

        let roll: f64 = self.rng.random_range(0.0..1.0);
        // Mix tuned towards the browse-heavy retail profile of §7.
        if roll < 0.28 {
            // Browse stock.
            let sku = self.random_sku();
            if self.rng.random_range(0.0..1.0) < 0.75 {
                B2wTxn::GetStockQuantity(GetStockQuantity { sku })
            } else {
                B2wTxn::GetStock(GetStock { sku })
            }
        } else if roll < 0.48 && !self.open_carts.is_empty() {
            // Re-read an open cart.
            let idx = self.rng.random_range(0..self.open_carts.len());
            B2wTxn::GetCart(GetCart {
                cart_id: self.open_carts[idx].id.clone(),
            })
        } else if roll < 0.60 {
            // Start a new cart — unless too many are already open, in
            // which case push an existing one towards checkout instead.
            if self.open_carts.len() > 4 * self.cfg.initial_carts.max(25) {
                let idx = self.rng.random_range(0..self.open_carts.len());
                if self.open_carts[idx].lines.is_empty() {
                    return self.add_line_txn(idx);
                }
                return self.start_checkout(idx);
            }
            let idx = self.new_cart();
            self.add_line_txn(idx)
        } else if roll < 0.80 && !self.open_carts.is_empty() {
            // Grow an existing cart, possibly triggering checkout.
            let idx = self.rng.random_range(0..self.open_carts.len());
            if self.open_carts[idx].lines.len() >= self.cfg.max_lines_per_cart {
                if self.rng.random_range(0.0..1.0) < self.cfg.checkout_probability {
                    return self.start_checkout(idx);
                }
                // Abandon: delete the cart.
                let cart = self.open_carts.swap_remove(idx);
                return B2wTxn::DeleteCart(DeleteCart { cart_id: cart.id });
            }
            self.add_line_txn(idx)
        } else if roll < 0.86 && !self.open_carts.is_empty() {
            // Remove a line (second thoughts).
            let idx = self.rng.random_range(0..self.open_carts.len());
            if self.open_carts[idx].lines.is_empty() {
                return self.add_line_txn(idx);
            }
            self.clock += 1;
            let cart = &mut self.open_carts[idx];
            let li = cart.lines.len() - 1;
            let (line_id, ..) = cart.lines.remove(li);
            B2wTxn::DeleteLineFromCart(DeleteLineFromCart {
                cart_id: cart.id.clone(),
                line_id,
                now: self.clock,
            })
        } else if roll < 0.93 && !self.open_carts.is_empty() {
            // Checkout an arbitrary cart with lines.
            let idx = self.rng.random_range(0..self.open_carts.len());
            if self.open_carts[idx].lines.is_empty() {
                return self.add_line_txn(idx);
            }
            self.start_checkout(idx)
        } else if roll < 0.96 && !self.completed_stock_txns.is_empty() {
            // Inspect a recent stock transaction.
            let idx = self.rng.random_range(0..self.completed_stock_txns.len());
            B2wTxn::GetStockTransaction(GetStockTransaction {
                stock_txn_id: self.completed_stock_txns[idx].clone(),
            })
        } else if !self.live_checkouts.is_empty() {
            // Browse a completed checkout.
            let idx = self.rng.random_range(0..self.live_checkouts.len());
            B2wTxn::GetCheckout(GetCheckout {
                checkout_id: self.live_checkouts[idx].clone(),
            })
        } else {
            let idx = self.new_cart();
            self.add_line_txn(idx)
        }
    }

    /// Number of carts currently open.
    pub fn open_cart_count(&self) -> usize {
        self.open_carts.len()
    }
}

/// Deterministic 64-bit mix (SplitMix64 finaliser) for id generation.
fn splitmix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(i.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn sku_name(i: usize) -> String {
    format!("sku-{:08x}", splitmix(0x5C0C, i as u64))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::b2w_catalog;
    use pstore_dbms::cluster::{Cluster, ClusterConfig};
    use std::collections::HashMap;

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            seed: 7,
            num_skus: 200,
            initial_stock: 100_000,
            initial_carts: 30,
            lines_per_initial_cart: 2,
            max_lines_per_cart: 5,
            checkout_probability: 0.5,
        }
    }

    fn loaded_cluster(gen: &mut WorkloadGenerator) -> Cluster {
        let mut cluster = Cluster::new(
            b2w_catalog(),
            ClusterConfig {
                partitions_per_node: 2,
                num_slots: 64,
            },
            3,
        );
        for p in gen.seed_stock_procedures() {
            cluster.execute(&p).unwrap();
        }
        for t in gen.initial_load() {
            cluster.execute(&t).unwrap();
        }
        cluster
    }

    #[test]
    fn generated_stream_executes_without_unexpected_aborts() {
        let mut gen = WorkloadGenerator::new(small_cfg());
        let mut cluster = loaded_cluster(&mut gen);
        let mut business_aborts = 0u64;
        for i in 0..20_000 {
            let txn = gen.next_txn();
            match cluster.execute(&txn) {
                Ok(_) => {}
                Err(TxnError::Aborted(_)) => business_aborts += 1,
                Err(e) => panic!("unexpected abort at txn {i} ({}): {e}", txn.name()),
            }
        }
        // With deep stock, business aborts should be rare or absent.
        assert!(business_aborts < 20, "{business_aborts} business aborts");
    }

    #[test]
    fn stream_is_deterministic_per_seed() {
        let mut a = WorkloadGenerator::new(small_cfg());
        let mut b = WorkloadGenerator::new(small_cfg());
        a.initial_load();
        b.initial_load();
        for _ in 0..500 {
            assert_eq!(a.next_txn(), b.next_txn());
        }
    }

    #[test]
    fn stream_covers_all_nineteen_procedures() {
        let mut gen = WorkloadGenerator::new(small_cfg());
        let mut cluster = loaded_cluster(&mut gen);
        let mut seen: HashMap<&'static str, u64> = HashMap::new();
        for _ in 0..60_000 {
            let txn = gen.next_txn();
            *seen.entry(txn.name()).or_default() += 1;
            let _ = cluster.execute(&txn);
        }
        let expected = [
            "AddLineToCart",
            "DeleteLineFromCart",
            "GetCart",
            "DeleteCart",
            "ReserveCart",
            "GetStock",
            "GetStockQuantity",
            "ReserveStock",
            "PurchaseStock",
            "CancelStockReservation",
            "CreateStockTransaction",
            "GetStockTransaction",
            "UpdateStockTransaction",
            "CreateCheckout",
            "CreateCheckoutPayment",
            "AddLineToCheckout",
            "DeleteLineFromCheckout",
            "GetCheckout",
            "DeleteCheckout",
        ];
        for name in expected {
            if name == "GetStockTransaction" {
                // Only generated via explicit browse; allow absence in the
                // stream but it must exist as a procedure (exercised in
                // procedures::tests).
                continue;
            }
            assert!(
                seen.get(name).copied().unwrap_or(0) > 0,
                "procedure {name} never generated; mix: {seen:?}"
            );
        }
    }

    #[test]
    fn database_size_stays_bounded() {
        let mut gen = WorkloadGenerator::new(small_cfg());
        let mut cluster = loaded_cluster(&mut gen);
        let mut sizes = Vec::new();
        for _ in 0..10 {
            for _ in 0..5_000 {
                let txn = gen.next_txn();
                let _ = cluster.execute(&txn);
            }
            sizes.push(cluster.total_bytes());
        }
        // The last snapshot should not be more than ~3x the first (active
        // data only; carts and checkouts are cleaned up).
        let first = sizes[0] as f64;
        let last = *sizes.last().unwrap() as f64;
        assert!(last < 3.0 * first, "database grows unbounded: {sizes:?}");
    }

    #[test]
    fn key_access_is_near_uniform_across_partitions() {
        // The §8.1 uniformity check, scaled down: run a chunk of workload
        // and verify partition access skew is low.
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            num_skus: 2_000,
            initial_carts: 200,
            ..small_cfg()
        });
        let mut cluster = Cluster::new(
            b2w_catalog(),
            ClusterConfig {
                partitions_per_node: 6,
                num_slots: 720,
            },
            5,
        );
        for p in gen.seed_stock_procedures() {
            cluster.execute(&p).unwrap();
        }
        for t in gen.initial_load() {
            cluster.execute(&t).unwrap();
        }
        for _ in 0..40_000 {
            let txn = gen.next_txn();
            let _ = cluster.execute(&txn);
        }
        let report = cluster.partition_report();
        let accesses: Vec<f64> = report.iter().map(|r| r.2 as f64).collect();
        let summary = pstore_dbms::stats::SkewSummary::from_values(&accesses).unwrap();
        assert!(
            summary.stddev_over_mean < 0.25,
            "access skew too high: {summary}"
        );
    }
}
