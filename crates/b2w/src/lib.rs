//! The B2W Digital online-retail benchmark (§7 and Appendix C of the
//! P-Store paper).
//!
//! Implements the shopping-cart / checkout / stock schema of Fig 14, all 19
//! stored procedures of Table 4, and a session-driven workload generator
//! that stands in for B2W's proprietary transaction logs (see DESIGN.md for
//! the substitution argument). Every generated transaction is
//! single-partition, and keys are random identifiers so partition access is
//! near-uniform — the two workload properties P-Store's planner assumes
//! (§4.2, §8.1).
//!
//! # Quick example
//!
//! ```
//! use pstore_b2w::generator::{WorkloadConfig, WorkloadGenerator};
//! use pstore_b2w::schema::b2w_catalog;
//! use pstore_dbms::cluster::{Cluster, ClusterConfig};
//!
//! let mut gen = WorkloadGenerator::new(WorkloadConfig {
//!     num_skus: 100,
//!     initial_carts: 10,
//!     ..WorkloadConfig::default()
//! });
//! let mut cluster = Cluster::new(b2w_catalog(), ClusterConfig::default(), 2);
//! for p in gen.seed_stock_procedures() {
//!     cluster.execute(&p).unwrap();
//! }
//! for t in gen.initial_load() {
//!     cluster.execute(&t).unwrap();
//! }
//! for _ in 0..100 {
//!     let txn = gen.next_txn();
//!     let _ = cluster.execute(&txn); // business aborts are part of life
//! }
//! assert!(cluster.total_rows() > 0);
//! ```

#![warn(missing_docs)]

pub mod generator;
pub mod procedures;
pub mod schema;
pub mod trace;

pub use generator::{SeedStock, WorkloadConfig, WorkloadGenerator};
pub use procedures::B2wTxn;
pub use schema::b2w_catalog;
pub use trace::{Trace, TraceEntry};
