//! Property tests for the trace-diff gate: a summary diffed against
//! itself is always clean (for any metric set and any tolerance table),
//! and a drift strictly beyond tolerance always regresses.

use proptest::prelude::*;
use pstore_telemetry::summary::{diff, RunSummary, ToleranceTable};
use std::collections::BTreeMap;

/// Metric names drawn from the real summary vocabulary plus arbitrary
/// extras, with values spanning counters, latencies, and byte counts.
fn metrics_map() -> impl Strategy<Value = BTreeMap<String, f64>> {
    let name = prop_oneof![
        Just("events".to_string()),
        Just("reconfigs".to_string()),
        Just("sla_violation_seconds".to_string()),
        Just("stable_p99.p99".to_string()),
        Just("stable_p99.count".to_string()),
        Just("throughput.mean".to_string()),
        Just("bytes_moved".to_string()),
        (0u64..50).prop_map(|i| format!("custom.metric_{i}")),
    ];
    let value = prop_oneof![
        Just(0.0),
        0.0..1e9f64,
        (-6.0..9.0f64).prop_map(|e| 10f64.powf(e)),
    ];
    prop::collection::vec((name, value), 0..24).prop_map(|pairs| pairs.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Self-diff is clean for any summary under the builtin table.
    #[test]
    fn self_diff_is_always_clean(metrics in metrics_map()) {
        let s = RunSummary { metrics };
        let report = diff(&s, &s, &ToleranceTable::builtin());
        prop_assert!(report.is_clean(), "self-diff regressed: {}", report.render(true));
    }

    /// Self-diff stays clean even under an all-zero tolerance table
    /// (identical values never drift).
    #[test]
    fn self_diff_is_clean_with_zero_tolerances(metrics in metrics_map()) {
        let s = RunSummary { metrics };
        let table = ToleranceTable::from_json_str(
            r#"{"default": {"rel": 0.0, "abs": 0.0}}"#
        ).unwrap_or_else(|e| panic!("{e}"));
        prop_assert!(diff(&s, &s, &table).is_clean());
    }

    /// A drift strictly beyond both slack components always regresses,
    /// and the offending metric is named in the rendered report.
    #[test]
    fn drift_beyond_tolerance_always_regresses(
        base_value in 0.01..1e6f64,
        rel in 0.0..0.5f64,
        abs in 0.0..10.0f64,
        direction in any::<bool>(),
    ) {
        let mut base = BTreeMap::new();
        base.insert("probe".to_string(), base_value);
        let slack = abs.max(rel * base_value);
        let delta = slack * 1.01 + 1e-9;
        let cand_value = if direction { base_value + delta } else { base_value - delta };
        let mut cand = base.clone();
        cand.insert("probe".to_string(), cand_value);
        let table = ToleranceTable::from_json_str(&format!(
            r#"{{"default": {{"rel": {rel}, "abs": {abs}}}}}"#
        )).unwrap_or_else(|e| panic!("{e}"));
        let report = diff(
            &RunSummary { metrics: base },
            &RunSummary { metrics: cand },
            &table,
        );
        prop_assert!(!report.is_clean());
        prop_assert!(report.render(false).contains("FAIL probe"));
    }

    /// Round-tripping any summary through JSON never changes the diff
    /// verdict: parse(to_json(s)) self-diffs clean against s.
    #[test]
    fn json_round_trip_preserves_cleanliness(metrics in metrics_map()) {
        // to_json/from_json only guarantee finite numbers; the generator
        // above only produces finite values.
        let s = RunSummary { metrics };
        let back = RunSummary::from_json_str(&s.to_json())
            .unwrap_or_else(|e| panic!("{e}"));
        let table = ToleranceTable::from_json_str(
            r#"{"default": {"rel": 1e-12, "abs": 1e-12}}"#
        ).unwrap_or_else(|e| panic!("{e}"));
        prop_assert!(diff(&s, &back, &table).is_clean());
    }
}
