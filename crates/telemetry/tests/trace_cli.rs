//! End-to-end tests of the `pstore-trace` binary: subcommand behaviour,
//! exit codes, and robustness to malformed traces (truncated lines,
//! unknown kinds, out-of-order seq) — the CLI must report line-numbered
//! errors and exit non-zero instead of panicking.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_pstore-trace")
}

fn run(args: &[&str]) -> Output {
    Command::new(bin())
        .args(args)
        .output()
        .expect("spawn pstore-trace")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pstore_trace_cli_{}_{name}", std::process::id()))
}

fn write(path: &Path, text: &str) {
    std::fs::write(path, text).expect("write fixture");
}

/// A small well-formed trace in event-time order: one reconfiguration
/// with a chunk move, nested spans for the profiler, and per-second
/// samples.
fn good_trace() -> String {
    let second = |seq: u64, s: u64, machines: u64, reconf: bool| {
        format!(
            r#"{{"seq":{seq},"t":{s},"kind":"second","second":{s},"throughput":1000,"p50":0.004,"p95":0.01,"p99":0.02,"mean":0.005,"machines":{machines},"reconfiguring":{reconf}}}"#
        )
    };
    let lines = vec![
        r#"{"seq":1,"t":0,"wall_us":0,"kind":"span_begin","id":1,"name":"detailed_sim"}"#
            .to_string(),
        second(2, 0, 2, false),
        second(3, 1, 2, false),
        r#"{"seq":4,"t":2,"kind":"span_begin","id":2,"name":"reconfig","from":2,"to":3}"#
            .to_string(),
        second(5, 2, 2, true),
        r#"{"seq":6,"t":2.5,"kind":"chunk_move","from":0,"to":2,"slot":5,"bytes":4096,"rows":16}"#
            .to_string(),
        second(7, 3, 3, true),
        r#"{"seq":8,"t":4,"kind":"span_end","id":2,"name":"reconfig"}"#.to_string(),
        second(9, 4, 3, false),
        second(10, 5, 3, false),
        r#"{"seq":11,"t":5,"kind":"sla_violation","second":5,"p99":0.2}"#.to_string(),
        r#"{"seq":12,"t":6,"kind":"span_end","id":1,"name":"detailed_sim"}"#.to_string(),
    ];
    lines.join("\n") + "\n"
}

#[test]
fn report_subcommand_and_legacy_form_agree() {
    let path = tmp("good.jsonl");
    write(&path, &good_trace());
    let sub = run(&["report", path.to_str().unwrap()]);
    let legacy = run(&[path.to_str().unwrap()]);
    assert!(sub.status.success(), "stderr: {}", stderr(&sub));
    assert!(legacy.status.success());
    assert_eq!(stdout(&sub), stdout(&legacy));
    assert!(stdout(&sub).contains("reconfigurations (1 total"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn profile_renders_tree_and_folded_deterministically() {
    let path = tmp("profile.jsonl");
    write(&path, &good_trace());
    let tree = run(&["profile", path.to_str().unwrap()]);
    assert!(tree.status.success(), "stderr: {}", stderr(&tree));
    let text = stdout(&tree);
    assert!(text.contains("span profile (sim clock)"));
    assert!(text.contains("detailed_sim"));
    assert!(text.contains("reconfig"));

    let folded = run(&["profile", path.to_str().unwrap(), "--folded"]);
    let folded_text = stdout(&folded);
    // reconfig span: t=2..4 => 2s total; detailed_sim self = 6s - 2s.
    assert!(folded_text.contains("detailed_sim 1 4000000"));
    assert!(folded_text.contains("detailed_sim;reconfig 1 2000000"));

    let again = run(&["profile", path.to_str().unwrap(), "--folded"]);
    assert_eq!(folded_text, stdout(&again));

    let wall = run(&["profile", path.to_str().unwrap(), "--wall"]);
    assert!(wall.status.success());
    assert!(stdout(&wall).contains("wall clock"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn timeline_renders_gantt() {
    let path = tmp("timeline.jsonl");
    write(&path, &good_trace());
    let out = run(&["timeline", path.to_str().unwrap(), "--width", "32"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("== timeline =="));
    assert!(text.contains("node   0"));
    assert!(text.contains("2 -> 3"));
    assert!(text.contains("chunk moves: 1"));
    assert_eq!(
        text,
        stdout(&run(&["timeline", path.to_str().unwrap(), "--width", "32"]))
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn truncated_line_reports_line_number_and_fails() {
    let path = tmp("truncated.jsonl");
    let mut text = good_trace();
    text.push_str("{\"seq\":13,\"t\":7,\"kind\":\"seco"); // mid-write truncation
    write(&path, &text);
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let err = stderr(&out);
    assert!(err.contains("unparseable line(s)"), "stderr: {err}");
    assert!(err.contains("line 13"), "stderr: {err}");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn unknown_kind_is_tolerated_not_fatal() {
    let path = tmp("unknown_kind.jsonl");
    let text = good_trace() + "{\"seq\":13,\"t\":7,\"kind\":\"experimental_new_kind\",\"x\":1}\n";
    write(&path, &text);
    let out = run(&["report", path.to_str().unwrap()]);
    // Unknown kinds are forward-compatible data, not corruption.
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("experimental_new_kind"));
    let _ = std::fs::remove_file(&path);
}

#[test]
fn out_of_order_seq_fails_with_ordering_violation() {
    let path = tmp("out_of_order.jsonl");
    let text = good_trace().replace("{\"seq\":6,", "{\"seq\":3,");
    write(&path, &text);
    let out = run(&["report", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("ordering violation"),
        "stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn missing_file_and_bad_usage_exit_2() {
    let out = run(&["report", "/nonexistent/definitely_missing.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&[]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["profile"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["profile", "x.jsonl", "--bogus"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["diff", "only_one.jsonl"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["timeline", "x.jsonl", "--width", "abc"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn diff_self_is_clean_and_regression_fails_naming_metric() {
    let trace_path = tmp("diff_base.jsonl");
    write(&trace_path, &good_trace());

    // Self-diff on the raw trace: exit 0.
    let out = run(&[
        "diff",
        trace_path.to_str().unwrap(),
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("no regression"));

    // Bless a golden summary from the trace: exit 0, file written.
    let golden = tmp("diff_golden.json");
    let out = run(&[
        "diff",
        golden.to_str().unwrap(),
        trace_path.to_str().unwrap(),
        "--bless",
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let golden_text = std::fs::read_to_string(&golden).unwrap();
    assert!(golden_text.contains("pstore-run-summary/v1"));

    // Trace vs its own golden: clean.
    let out = run(&[
        "diff",
        golden.to_str().unwrap(),
        trace_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));

    // Seeded regression: inflate every stable p99 sample 2x.
    let bad_path = tmp("diff_bad.jsonl");
    write(
        &bad_path,
        &good_trace().replace("\"p99\":0.02", "\"p99\":0.04"),
    );
    let out = run(&["diff", golden.to_str().unwrap(), bad_path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let text = stdout(&out);
    assert!(text.contains("FAIL stable_p99"), "stdout: {text}");

    // A loose tolerance file waves the same regression through.
    let tol = tmp("diff_tol.json");
    write(
        &tol,
        r#"{"metrics": {"stable_p99.*": {"rel": 5.0}, "reconfig_p99.*": {"rel": 5.0}, "sla_violation_seconds": {"abs": 10}}}"#,
    );
    let out = run(&[
        "diff",
        golden.to_str().unwrap(),
        bad_path.to_str().unwrap(),
        "--tolerances",
        tol.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stdout: {}", stdout(&out));

    for p in [&trace_path, &golden, &bad_path, &tol] {
        let _ = std::fs::remove_file(p);
    }
}

/// The good trace extended with a provisioning run: header, per-interval
/// capacity samples, a predictive decision (lead 2) that triggers a
/// scale-out, and a scored forecast joined to its observation.
fn prov_trace() -> String {
    good_trace()
        + concat!(
            r#"{"seq":13,"t":0,"kind":"prov_run","q":1000,"d_s":2,"interval_s":1,"initial":2,"policy":"predictive"}"#,
            "\n",
            r#"{"seq":14,"t":1,"kind":"prov_interval","interval":0,"observed":1500,"machines":2,"reconfiguring":false}"#,
            "\n",
            r#"{"seq":15,"t":1,"kind":"prov_forecast","interval":3,"horizon":2,"model":"oracle","predicted":2500,"observed":2500}"#,
            "\n",
            r#"{"seq":16,"t":1,"kind":"prov_decision","id":1,"interval":1,"machines":2,"target":3,"reason":"planned","trigger":0.9,"peak":2500,"cost":1,"lead":2,"rate":1}"#,
            "\n",
            r#"{"seq":17,"t":2,"kind":"prov_interval","interval":1,"observed":1500,"machines":2,"reconfiguring":true}"#,
            "\n",
            r#"{"seq":18,"t":3,"kind":"prov_interval","interval":2,"observed":1600,"machines":2,"reconfiguring":true}"#,
            "\n",
            r#"{"seq":19,"t":3,"kind":"prov_chunk","id":1,"from":0,"to":2,"bytes":4096}"#,
            "\n",
            r#"{"seq":20,"t":3,"kind":"prov_reconfig","id":1,"from":2,"to":3,"start":1,"duration_s":2,"chunks":1,"rows":16,"bytes":4096,"fences":1}"#,
            "\n",
            r#"{"seq":21,"t":4,"kind":"prov_interval","interval":3,"observed":2500,"machines":3,"reconfiguring":false}"#,
            "\n",
        )
}

#[test]
fn provisioning_renders_ledger_audit_and_summary() {
    let path = tmp("prov.jsonl");
    write(&path, &prov_trace());
    let summary = tmp("prov_summary.json");
    let out = run(&[
        "provisioning",
        path.to_str().unwrap(),
        "--width",
        "32",
        "--summary",
        summary.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("capacity ledger"), "stdout: {text}");
    assert!(
        text.contains("== decisions (forecast -> decision -> cost -> SLA) =="),
        "stdout: {text}"
    );
    assert!(text.contains("forecast error"), "stdout: {text}");
    // The timeline carries the decision overlay for the lead-2 decision.
    assert!(
        text.contains("'P>' predictive decision+lead"),
        "stdout: {text}"
    );
    assert!(text.contains("1 predictive, 0 reactive"), "stdout: {text}");

    let summary_text = std::fs::read_to_string(&summary).unwrap();
    assert!(summary_text.contains("pstore-run-summary/v1"));
    assert!(summary_text.contains("prov.run0.provisioned_machine_s"));
    assert!(summary_text.contains("prov.total.decisions"));

    // Deterministic output for the same trace.
    let again = run(&["provisioning", path.to_str().unwrap(), "--width", "32"]);
    assert_eq!(
        text.replace(
            &format!("provisioning summary written to {}\n", summary.display()),
            ""
        ),
        stdout(&again)
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&summary);
}

#[test]
fn provisioning_without_prov_events_exits_1() {
    let path = tmp("prov_none.jsonl");
    write(&path, &good_trace());
    let out = run(&["provisioning", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    assert!(
        stderr(&out).contains("no prov_* events"),
        "stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(&path);
}

#[test]
fn timeline_overlays_decisions_when_prov_events_present() {
    let plain = tmp("timeline_plain.jsonl");
    write(&plain, &good_trace());
    let out = run(&["timeline", plain.to_str().unwrap(), "--width", "32"]);
    assert!(out.status.success());
    assert!(!stdout(&out).contains("plan     |"));

    let prov = tmp("timeline_prov.jsonl");
    write(&prov, &prov_trace());
    let out = run(&["timeline", prov.to_str().unwrap(), "--width", "32"]);
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("plan     |"), "stdout: {text}");
    assert!(text.contains('P'), "stdout: {text}");
    let _ = std::fs::remove_file(&plain);
    let _ = std::fs::remove_file(&prov);
}

#[test]
fn diff_refuses_corrupt_trace() {
    let good = tmp("diff_ok.jsonl");
    write(&good, &good_trace());
    let corrupt = tmp("diff_corrupt.jsonl");
    write(&corrupt, &(good_trace() + "garbage line\n"));
    let out = run(&["diff", good.to_str().unwrap(), corrupt.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        stderr(&out).contains("malformed line"),
        "stderr: {}",
        stderr(&out)
    );
    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&corrupt);
}
