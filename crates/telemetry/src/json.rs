//! Minimal JSON reader/writer.
//!
//! The build environment is offline and the vendored `serde` is a marker
//! stub (see `vendor/serde`), so the trace pipeline carries its own tiny
//! JSON implementation: enough to round-trip the flat-ish objects the
//! telemetry layer emits (objects, arrays, strings, finite numbers, bools,
//! null). Non-finite floats serialise as `null`, matching RFC 8259's lack
//! of NaN/Infinity literals.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in key order as parsed.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value as an object map, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as a finite number, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out` (`null` for non-finite values).
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Rust's float formatting prints the shortest digits that
        // round-trip, which is valid JSON.
        let _ = write!(out, "{v}");
        if v.fract() == 0.0 && !out.ends_with(|c: char| !c.is_ascii_digit() && c != '-') {
            // `{}` prints integral floats without a decimal point; that is
            // still a valid JSON number, nothing to fix.
        }
    } else {
        out.push_str("null");
    }
}

/// Parse error: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset where parsing failed.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
///
/// # Errors
/// Returns a [`ParseError`] with the failing byte offset on malformed
/// input or trailing garbage.
pub fn parse(text: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid UTF-8 in number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one whole UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let Some(c) = rest.chars().next() else {
                        return Err(self.err("unterminated string"));
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // exact round-trips asserted on purpose
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":null}"#).unwrap();
        let obj = v.as_obj().unwrap();
        let Json::Arr(items) = &obj["a"] else {
            panic!("a is not an array")
        };
        assert_eq!(items.len(), 3);
        assert_eq!(obj["d"], Json::Null);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "quote\" back\\ newline\n tab\t unicode \u{263a} ctrl\u{1}";
        let mut encoded = String::new();
        write_str(&mut encoded, original);
        assert_eq!(parse(&encoded).unwrap(), Json::Str(original.to_string()));
    }

    #[test]
    fn float_formatting_round_trips() {
        for v in [0.0015, 13.75, -2.5e-9, 1.0, 438.0] {
            let mut out = String::new();
            write_f64(&mut out, v);
            assert_eq!(parse(&out).unwrap().as_num().unwrap(), v);
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} extra").is_err());
        assert!(parse("nul").is_err());
    }
}
