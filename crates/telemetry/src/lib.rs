//! pstore-telemetry: structured tracing, metrics registry, and
//! run-trace tooling for the P-Store workspace.
//!
//! Three layers:
//!
//! 1. **Metrics** ([`metrics`]): counters, gauges, and mergeable
//!    log-bucketed latency histograms with `SecondMetrics`-compatible
//!    p50/p95/p99/max readout.
//! 2. **Events and spans** ([`event`], this module): plain structured
//!    events plus begin/end span pairs with globally unique ids, emitted
//!    through a thread-local [`Sink`] (no-op by default, in-memory for
//!    tests, JSONL for runs).
//! 3. **Traces** ([`trace`], the `pstore-trace` binary): read a JSONL
//!    trace back, validate span pairing/nesting, and render a run report
//!    (reconfiguration timeline, per-phase histograms, top counters).
//!
//! # Zero cost when disabled
//!
//! Instrumented crates (`pstore-sim`, `pstore-dbms`, `pstore-core`,
//! `pstore-forecast`, `pstore-bench`) each declare their own `telemetry`
//! cargo feature and guard every call site with it — directly with
//! `#[cfg(feature = "telemetry")]` or via the [`tel_event!`] /
//! [`tel_span!`] macros, whose bodies carry that `cfg` and therefore
//! resolve against the *calling* crate's features. With the feature off
//! the instrumentation compiles to nothing: no sink lookup, no
//! allocation, no branch.
//!
//! # Threading model
//!
//! Sink, clock, and metrics registry are thread-local. Simulator runs
//! are single-threaded, and `cargo test` runs tests on many threads in
//! one process — per-thread state means tests cannot contaminate each
//! other. [`install`] returns a [`SinkGuard`] that restores the previous
//! sink on drop, so even panicking tests clean up.

pub mod event;
pub mod expose;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod prov;
pub mod sink;
pub mod slo;
pub mod summary;
pub mod sync;
pub mod timeline;
pub mod timeseries;
pub mod trace;

pub use event::{encode_key_versions, kinds, parse_key_versions, Event, Value};
pub use expose::Exposer;
pub use metrics::{Histogram, MetricsRegistry};
pub use profile::{Profile, ProfileClock};
pub use prov::RunProv;
pub use sink::{JsonlSink, MemorySink, MemorySinkHandle, NoopSink, Sink};
pub use slo::{RunSlo, SlaWindow};
pub use summary::RunSummary;
pub use timeseries::{LiveMetrics, TimeSeriesSink};

use crate::sync::{AtomicU64, OnceLock, Ordering};
use std::cell::{Cell, RefCell};
use std::rc::Rc;
use std::time::Instant;

thread_local! {
    static SINK: RefCell<Option<Rc<dyn Sink>>> = const { RefCell::new(None) };
    static CLOCK: Cell<f64> = const { Cell::new(f64::NAN) };
    static REGISTRY: RefCell<MetricsRegistry> = RefCell::new(MetricsRegistry::new());
    static PROV: Cell<bool> = const { Cell::new(false) };
}

/// Global event sequence (total order across threads within a process).
static SEQ: AtomicU64 = AtomicU64::new(1);
/// Global span-id source; 0 is reserved for "no span".
static SPAN_IDS: AtomicU64 = AtomicU64::new(1);
/// Process-wide wall-clock epoch: the first emission anchors it, and all
/// `wall_us` stamps are microseconds since then.
static WALL_EPOCH: OnceLock<Instant> = OnceLock::new();

/// Microseconds of wall-clock time since the process's telemetry epoch
/// (the first call anchors the epoch at "now", returning 0).
pub fn wall_now_us() -> u64 {
    let epoch = WALL_EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Installs `sink` as this thread's event sink. The returned guard
/// restores the previous sink when dropped; keep it alive for the
/// duration of the run or test.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install(sink: Rc<dyn Sink>) -> SinkGuard {
    let previous = SINK.with(|s| s.borrow_mut().replace(sink));
    SinkGuard { previous }
}

/// Restores the previously installed sink on drop.
pub struct SinkGuard {
    previous: Option<Rc<dyn Sink>>,
}

impl Drop for SinkGuard {
    fn drop(&mut self) {
        let restored = self.previous.take();
        SINK.with(|s| *s.borrow_mut() = restored);
    }
}

/// True when a sink is installed on this thread. The macros check this
/// before building an event, so uninstrumented runs with the feature on
/// still skip all field formatting.
pub fn enabled() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Enables or disables the provisioning-observatory event family
/// (`prov_*`) on this thread, returning the previous setting so callers
/// can restore it. Off by default: default-config traces stay
/// byte-identical, and a run opts in (e.g. via `PSTORE_PROV_EVENTS=1`)
/// to get decision-provenance events. Thread-local for the same reason
/// the sink is: parallel tests must not contaminate each other.
pub fn set_prov_enabled(on: bool) -> bool {
    PROV.with(|p| p.replace(on))
}

/// True when the provisioning-observatory family is enabled *and* a sink
/// is installed on this thread.
pub fn prov_enabled() -> bool {
    PROV.with(Cell::get) && enabled()
}

/// Sets the thread's simulated-time clock; subsequent events carry `t`.
pub fn set_time(t: f64) {
    CLOCK.with(|c| c.set(t));
}

/// Clears the thread's clock (events carry no `t`).
pub fn clear_time() {
    CLOCK.with(|c| c.set(f64::NAN));
}

/// Emits an event through the installed sink, stamping `seq`, the
/// current sim clock, and a wall-clock stamp. A no-op without a sink.
pub fn emit(mut event: Event) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
            let t = CLOCK.with(Cell::get);
            event.t = if t.is_finite() { Some(t) } else { None };
            event.wall_us = Some(wall_now_us());
            sink.record(&event);
        }
    });
}

/// Re-emits an already-stamped event through the installed sink,
/// assigning a fresh global `seq` but preserving its `t` and fields.
///
/// This is the replay half of cross-thread capture: a sweep runner
/// records worker-thread events into per-cell [`MemorySink`]s and then
/// forwards them to the main thread's sink in a deterministic cell
/// order, so the merged trace is identical at any worker count (the
/// workers' original `seq` stamps reflect scheduling and are discarded).
/// A no-op without a sink.
pub fn forward(mut event: Event) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            event.seq = SEQ.fetch_add(1, Ordering::Relaxed);
            sink.record(&event);
        }
    });
}

/// Flushes the installed sink, if any.
pub fn flush() {
    SINK.with(|s| {
        if let Some(sink) = s.borrow().as_ref() {
            sink.flush();
        }
    });
}

/// Allocates a fresh globally unique span id (never 0).
pub fn next_span_id() -> u64 {
    SPAN_IDS.fetch_add(1, Ordering::Relaxed)
}

/// Emits a `span_begin` event for a new span and returns its id.
/// `extras` become additional fields on the begin event.
pub fn begin_span(name: &str, extras: &[(&str, Value)]) -> u64 {
    let id = next_span_id();
    let mut ev = Event::new(kinds::SPAN_BEGIN)
        .with("id", id)
        .with("name", name);
    for (k, v) in extras {
        ev = ev.with(k, v.clone());
    }
    emit(ev);
    id
}

/// Emits the matching `span_end` for `id`. Ignores id 0 so callers can
/// keep a "no span" sentinel without branching.
pub fn end_span(name: &str, id: u64, extras: &[(&str, Value)]) {
    if id == 0 {
        return;
    }
    let mut ev = Event::new(kinds::SPAN_END)
        .with("id", id)
        .with("name", name);
    for (k, v) in extras {
        ev = ev.with(k, v.clone());
    }
    emit(ev);
}

/// RAII span: emits `span_begin` on creation and `span_end` on drop.
/// For spans whose lifetime does not follow lexical scope (e.g. a
/// reconfiguration tracked across simulator events), use
/// [`begin_span`]/[`end_span`] with a stored id instead.
pub struct SpanGuard {
    name: String,
    id: u64,
}

impl SpanGuard {
    /// Opens a span named `name`.
    pub fn enter(name: &str) -> Self {
        let id = begin_span(name, &[]);
        SpanGuard {
            name: name.to_string(),
            id,
        }
    }

    /// The span's id (to correlate child events).
    pub fn id(&self) -> u64 {
        self.id
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        end_span(&self.name, self.id, &[]);
    }
}

/// Runs `f` with mutable access to this thread's metrics registry.
pub fn with_registry<R>(f: impl FnOnce(&mut MetricsRegistry) -> R) -> R {
    REGISTRY.with(|r| f(&mut r.borrow_mut()))
}

/// Clears this thread's metrics registry (between runs or tests).
pub fn reset_registry() {
    with_registry(MetricsRegistry::clear);
}

/// Emits a [`kinds::METRICS_SNAPSHOT`] event carrying every counter and
/// gauge in this thread's registry, then flushes the sink. Histograms
/// are summarised as `<name>.p50/.p95/.p99/.max/.count` fields.
pub fn emit_metrics_snapshot() {
    if !enabled() {
        return;
    }
    let ev = with_registry(|r| {
        let mut ev = Event::new(kinds::METRICS_SNAPSHOT);
        for (name, v) in r.counters() {
            ev = ev.with(name, v);
        }
        for (name, v) in r.gauges() {
            ev = ev.with(name, v);
        }
        for (name, h) in r.histograms() {
            ev = ev
                .with(&format!("{name}.count"), h.count())
                .with(&format!("{name}.p50"), h.quantile(0.50))
                .with(&format!("{name}.p95"), h.quantile(0.95))
                .with(&format!("{name}.p99"), h.quantile(0.99))
                .with(&format!("{name}.max"), h.max());
        }
        ev
    });
    emit(ev);
    flush();
}

/// Builds and emits an [`Event`] — but only when the **calling** crate's
/// `telemetry` feature is enabled; otherwise the whole statement
/// compiles away. Skips event construction when no sink is installed.
///
/// ```ignore
/// tel_event!(kinds::CHUNK_MOVE, "from" => from_node, "to" => to_node);
/// ```
#[macro_export]
macro_rules! tel_event {
    ($kind:expr $(, $key:literal => $value:expr)* $(,)?) => {
        #[cfg(feature = "telemetry")]
        {
            if $crate::enabled() {
                $crate::emit(
                    $crate::Event::new($kind)$(.with($key, $value))*
                );
            }
        }
    };
}

/// Opens an RAII span bound to `$guard` for the rest of the enclosing
/// scope — only when the calling crate's `telemetry` feature is enabled;
/// otherwise `$guard` is `()`.
///
/// ```ignore
/// tel_span!(guard, "planner");
/// ```
#[macro_export]
macro_rules! tel_span {
    ($guard:ident, $name:expr) => {
        #[cfg(feature = "telemetry")]
        let $guard = $crate::SpanGuard::enter($name);
        #[cfg(not(feature = "telemetry"))]
        let $guard = ();
        let _ = &$guard;
    };
}

/// Runs `$body` only when the calling crate's `telemetry` feature is
/// enabled — for instrumentation too stateful for [`tel_event!`]
/// (storing span ids, updating the registry).
#[macro_export]
macro_rules! tel_scope {
    ($body:block) => {
        #[cfg(feature = "telemetry")]
        $body
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emit_without_sink_is_noop() {
        assert!(!enabled());
        emit(Event::new("orphan")); // must not panic
    }

    #[test]
    fn install_emit_and_guard_restore() {
        let (sink, handle) = MemorySink::new();
        {
            let _guard = install(Rc::new(sink));
            assert!(enabled());
            set_time(3.25);
            emit(Event::new("a").with("x", 1u64));
            clear_time();
            emit(Event::new("b"));
        }
        assert!(!enabled());
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].t, Some(3.25));
        assert_eq!(events[1].t, None);
        assert!(events[0].seq < events[1].seq);
    }

    #[test]
    fn span_guard_emits_balanced_pair() {
        let (sink, handle) = MemorySink::new();
        let _guard = install(Rc::new(sink));
        {
            let span = SpanGuard::enter("outer");
            assert_ne!(span.id(), 0);
            emit(Event::new("inside"));
        }
        let events = handle.events();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].kind, kinds::SPAN_BEGIN);
        assert_eq!(events[2].kind, kinds::SPAN_END);
        assert_eq!(events[0].field_u64("id"), events[2].field_u64("id"));
        assert_eq!(events[0].field_str("name"), Some("outer"));
    }

    #[test]
    fn manual_span_ignores_zero_id() {
        let (sink, handle) = MemorySink::new();
        let _guard = install(Rc::new(sink));
        end_span("none", 0, &[]);
        assert!(handle.is_empty());
        let id = begin_span(
            "reconfig",
            &[("from", Value::U64(2)), ("to", Value::U64(4))],
        );
        end_span("reconfig", id, &[]);
        let events = handle.events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].field_u64("from"), Some(2));
    }

    #[test]
    fn registry_is_per_thread() {
        reset_registry();
        with_registry(|r| r.inc_counter("c", 1));
        let other = std::thread::spawn(|| with_registry(|r| r.counter("c")))
            .join()
            .unwrap();
        assert_eq!(other, 0);
        assert_eq!(with_registry(|r| r.counter("c")), 1);
        reset_registry();
    }

    #[test]
    fn metrics_snapshot_summarises_registry() {
        let (sink, handle) = MemorySink::new();
        let _guard = install(Rc::new(sink));
        reset_registry();
        with_registry(|r| {
            r.inc_counter("moves", 4);
            r.set_gauge("skew", 1.25);
            r.record_histogram("lat", 0.2);
        });
        emit_metrics_snapshot();
        let events = handle.of_kind(kinds::METRICS_SNAPSHOT);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field_u64("moves"), Some(4));
        assert_eq!(events[0].field_f64("skew"), Some(1.25));
        assert_eq!(events[0].field_u64("lat.count"), Some(1));
        reset_registry();
    }

    #[test]
    fn nested_install_restores_outer_sink() {
        let (outer, outer_h) = MemorySink::new();
        let _outer_guard = install(Rc::new(outer));
        {
            let (inner, inner_h) = MemorySink::new();
            let _inner_guard = install(Rc::new(inner));
            emit(Event::new("inner"));
            assert_eq!(inner_h.len(), 1);
        }
        emit(Event::new("outer"));
        let outer_events = outer_h.events();
        assert_eq!(outer_events.len(), 1);
        assert_eq!(outer_events[0].kind, "outer");
    }
}
