//! `pstore-trace`: read a JSONL telemetry trace and print a run report.
//!
//! ```text
//! pstore-trace <trace.jsonl>
//! ```
//!
//! Exit codes: 0 = clean; 1 = structural problems (unmatched or
//! misnested spans, unparseable lines); 2 = usage or I/O error. CI's
//! telemetry smoke step relies on these.

use pstore_telemetry::trace::{read_jsonl, RunReport};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(path) = args.next() else {
        eprintln!("usage: pstore-trace <trace.jsonl>");
        return ExitCode::from(2);
    };
    if args.next().is_some() {
        eprintln!("usage: pstore-trace <trace.jsonl>");
        return ExitCode::from(2);
    }
    let path = PathBuf::from(path);

    let (events, line_errors) = match read_jsonl(&path) {
        Ok(read) => read,
        Err(e) => {
            eprintln!("pstore-trace: cannot read {}: {e}", path.display());
            return ExitCode::from(2);
        }
    };

    let report = RunReport::from_events(&events);
    print!("{}", report.render());

    let mut failed = false;
    if !line_errors.is_empty() {
        failed = true;
        eprintln!("pstore-trace: {} unparseable line(s):", line_errors.len());
        for e in line_errors.iter().take(10) {
            eprintln!("  line {}: {}", e.line, e.msg);
        }
    }
    if !report.span_errors.is_empty() {
        failed = true;
        eprintln!(
            "pstore-trace: {} span error(s) (see report)",
            report.span_errors.len()
        );
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
