//! `pstore-trace`: run-analysis toolchain over JSONL telemetry traces.
//!
//! ```text
//! pstore-trace report   <trace.jsonl>                 # run report (default)
//! pstore-trace profile  <trace.jsonl> [--wall] [--folded]
//! pstore-trace timeline <trace.jsonl> [--width N]
//! pstore-trace slo      <trace.jsonl> [--width N] [--summary <out.json>]
//! pstore-trace provisioning <trace.jsonl> [--width N] [--summary <out.json>]
//! pstore-trace diff     <baseline> <candidate> [--tolerances <file>]
//!                       [--bless] [--verbose]
//! pstore-trace <trace.jsonl>                          # legacy = report
//! ```
//!
//! `slo` prints the latency-attribution table (queue/exec/migration-stall
//! txn-seconds per simulator run), every SLA-violation window with the
//! reconfiguration span or chunk moves it overlaps, and the timeline with
//! a `!` violation overlay. `--summary` additionally writes a
//! `pstore-run-summary/v1` document holding only the `slo.*` metrics —
//! the shape committed as `results/golden/fig9_slo_quick.summary.json`
//! and gated by `pstore-trace diff` in CI.
//!
//! `provisioning` reads the `prov_*` event family (emission-gated; see
//! docs/observability.md) and prints the capacity ledger
//! (machine-seconds provisioned vs ideal — the Fig 9 over/under areas),
//! the planner decision audit with reasons and leads, forecast error by
//! horizon, under-forecast windows, and the timeline with the decision
//! overlay (`P>` predictive lead arrows, `R` reactive marks).
//! `--summary` writes a document holding only the `prov.*` metrics —
//! committed as `results/golden/fig9_prov_quick.summary.json`. A trace
//! with no `prov_*` events exits 1: the subcommand exists to audit
//! provisioning, so a silently-gated-off run is a failure, not a pass.
//!
//! `diff` arguments may be `.jsonl` traces (summarised on the fly) or
//! `.json` summary documents (e.g. the goldens under `results/golden/`).
//! `--bless` rewrites the baseline file with the candidate's summary —
//! the golden-refresh workflow after an intentional metrics change.
//!
//! Exit codes: 0 = clean; 1 = regression or structural problems
//! (unmatched/misnested spans, unparseable lines, ordering violations);
//! 2 = usage or I/O error. CI's telemetry smoke and trace-diff steps
//! rely on these.

use pstore_telemetry::summary::{diff, RunSummary, ToleranceTable};
use pstore_telemetry::trace::{order_errors, read_jsonl, LineError, RunReport};
use pstore_telemetry::{prov, slo, timeline, Event, Profile, ProfileClock};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: pstore-trace <subcommand> ...
  report   <trace.jsonl>
  profile  <trace.jsonl> [--wall] [--folded]
  timeline <trace.jsonl> [--width N]
  slo      <trace.jsonl> [--width N] [--summary <out.json>]
  provisioning <trace.jsonl> [--width N] [--summary <out.json>]
  diff     <baseline.jsonl|.json> <candidate.jsonl|.json> [--tolerances <file>] [--bless] [--verbose]
  <trace.jsonl>   (legacy: same as report)";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(first) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    match first.as_str() {
        "report" => cmd_report(&args[1..]),
        "profile" => cmd_profile(&args[1..]),
        "timeline" => cmd_timeline(&args[1..]),
        "slo" => cmd_slo(&args[1..]),
        "provisioning" => cmd_provisioning(&args[1..]),
        "diff" => cmd_diff(&args[1..]),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ if first.starts_with('-') => {
            eprintln!("pstore-trace: unknown option \"{first}\"\n{USAGE}");
            ExitCode::from(2)
        }
        // Legacy single-argument form: treat the argument as a trace path.
        _ => cmd_report(&args[..]),
    }
}

/// Reads a trace, printing line errors to stderr. `Err` carries the exit
/// code (2 on I/O failure).
fn load_trace(path: &Path) -> Result<(Vec<Event>, Vec<LineError>), ExitCode> {
    let (events, line_errors) = match read_jsonl(path) {
        Ok(read) => read,
        Err(e) => {
            eprintln!("pstore-trace: cannot read {}: {e}", path.display());
            return Err(ExitCode::from(2));
        }
    };
    if !line_errors.is_empty() {
        eprintln!(
            "pstore-trace: {} unparseable line(s) in {}:",
            line_errors.len(),
            path.display()
        );
        for e in line_errors.iter().take(10) {
            eprintln!("  line {}: {}", e.line, e.msg);
        }
    }
    Ok((events, line_errors))
}

/// A parsed flag: name plus optional value.
type Flag<'a> = (&'a str, Option<&'a str>);

/// Parses `<path> [flags...]`, validating flags against `allowed`.
fn parse_path_and_flags<'a>(
    args: &'a [String],
    allowed: &[&str],
) -> Result<(PathBuf, Vec<Flag<'a>>), String> {
    let mut path = None;
    let mut flags = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg.starts_with('-') {
            if !allowed.contains(&arg.as_str()) {
                return Err(format!("unknown flag \"{arg}\""));
            }
            // Flags taking a value: --width, --tolerances, --summary.
            let takes_value = matches!(arg.as_str(), "--width" | "--tolerances" | "--summary");
            let value = if takes_value {
                Some(
                    it.next()
                        .ok_or_else(|| format!("flag \"{arg}\" needs a value"))?
                        .as_str(),
                )
            } else {
                None
            };
            flags.push((arg.as_str(), value));
        } else if path.is_none() {
            path = Some(PathBuf::from(arg));
        } else {
            return Err(format!("unexpected argument \"{arg}\""));
        }
    }
    let path = path.ok_or("missing trace path")?;
    Ok((path, flags))
}

fn cmd_report(args: &[String]) -> ExitCode {
    let (path, _) = match parse_path_and_flags(args, &[]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pstore-trace report: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let (events, line_errors) = match load_trace(&path) {
        Ok(read) => read,
        Err(code) => return code,
    };

    let report = RunReport::from_events(&events);
    print!("{}", report.render());

    let ordering = order_errors(&events);
    let mut failed = !line_errors.is_empty();
    if !report.span_errors.is_empty() {
        failed = true;
        eprintln!(
            "pstore-trace: {} span error(s) (see report)",
            report.span_errors.len()
        );
    }
    if !ordering.is_empty() {
        failed = true;
        eprintln!("pstore-trace: {} ordering violation(s):", ordering.len());
        for e in ordering.iter().take(10) {
            eprintln!("  {e}");
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_profile(args: &[String]) -> ExitCode {
    let (path, flags) = match parse_path_and_flags(args, &["--wall", "--folded"]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pstore-trace profile: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let clock = if flags.iter().any(|(f, _)| *f == "--wall") {
        ProfileClock::Wall
    } else {
        ProfileClock::Sim
    };
    let folded = flags.iter().any(|(f, _)| *f == "--folded");
    let (events, line_errors) = match load_trace(&path) {
        Ok(read) => read,
        Err(code) => return code,
    };
    let prof = Profile::from_events(&events, clock);
    if folded {
        print!("{}", prof.folded());
    } else {
        print!("{}", prof.render(clock));
    }
    if line_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_timeline(args: &[String]) -> ExitCode {
    let (path, flags) = match parse_path_and_flags(args, &["--width"]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pstore-trace timeline: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut width = timeline::DEFAULT_WIDTH;
    if let Some((_, Some(value))) = flags.iter().find(|(f, _)| *f == "--width") {
        match value.parse::<usize>() {
            Ok(w) => width = w,
            Err(_) => {
                eprintln!("pstore-trace timeline: --width wants an integer, got \"{value}\"");
                return ExitCode::from(2);
            }
        }
    }
    let (events, line_errors) = match load_trace(&path) {
        Ok(read) => read,
        Err(code) => return code,
    };
    // Traces carrying prov_* events get the decision overlay for free;
    // for everything else decision_times is empty and the output is
    // byte-identical to the plain renderer.
    let decisions = prov::decision_times(&prov::analyze(&events));
    print!(
        "{}",
        timeline::render_with_decisions(&events, width, &[], &decisions)
    );
    if line_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_slo(args: &[String]) -> ExitCode {
    let (path, flags) = match parse_path_and_flags(args, &["--width", "--summary"]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pstore-trace slo: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut width = timeline::DEFAULT_WIDTH;
    if let Some((_, Some(value))) = flags.iter().find(|(f, _)| *f == "--width") {
        match value.parse::<usize>() {
            Ok(w) => width = w,
            Err(_) => {
                eprintln!("pstore-trace slo: --width wants an integer, got \"{value}\"");
                return ExitCode::from(2);
            }
        }
    }
    let summary_out = flags
        .iter()
        .find(|(f, _)| *f == "--summary")
        .and_then(|(_, v)| *v)
        .map(PathBuf::from);
    let (events, line_errors) = match load_trace(&path) {
        Ok(read) => read,
        Err(code) => return code,
    };
    let runs = slo::analyze(&events);
    print!("{}", slo::render(&runs));
    println!();
    print!(
        "{}",
        timeline::render_with_violations(&events, width, &slo::violation_times(&runs))
    );
    if let Some(out) = summary_out {
        let mut summary = RunSummary::default();
        for (name, value) in slo::metrics(&runs) {
            summary.metrics.insert(name, value);
        }
        if let Err(e) = std::fs::write(&out, summary.to_json()) {
            eprintln!("pstore-trace slo: cannot write {}: {e}", out.display());
            return ExitCode::from(2);
        }
        println!("slo summary written to {}", out.display());
    }
    if line_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_provisioning(args: &[String]) -> ExitCode {
    let (path, flags) = match parse_path_and_flags(args, &["--width", "--summary"]) {
        Ok(parsed) => parsed,
        Err(e) => {
            eprintln!("pstore-trace provisioning: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let mut width = timeline::DEFAULT_WIDTH;
    if let Some((_, Some(value))) = flags.iter().find(|(f, _)| *f == "--width") {
        match value.parse::<usize>() {
            Ok(w) => width = w,
            Err(_) => {
                eprintln!("pstore-trace provisioning: --width wants an integer, got \"{value}\"");
                return ExitCode::from(2);
            }
        }
    }
    let summary_out = flags
        .iter()
        .find(|(f, _)| *f == "--summary")
        .and_then(|(_, v)| *v)
        .map(PathBuf::from);
    let (events, line_errors) = match load_trace(&path) {
        Ok(read) => read,
        Err(code) => return code,
    };
    let runs = prov::analyze(&events);
    if runs.is_empty() {
        eprintln!(
            "pstore-trace provisioning: no prov_* events in {} \
             (provisioning telemetry is emission-gated; run with prov \
             events enabled)",
            path.display()
        );
        return ExitCode::from(1);
    }
    print!("{}", prov::render(&runs));
    println!();
    print!(
        "{}",
        timeline::render_with_decisions(
            &events,
            width,
            &slo::violation_times(&slo::analyze(&events)),
            &prov::decision_times(&runs),
        )
    );
    if let Some(out) = summary_out {
        let mut summary = RunSummary::default();
        for (name, value) in prov::metrics(&runs) {
            summary.metrics.insert(name, value);
        }
        if let Err(e) = std::fs::write(&out, summary.to_json()) {
            eprintln!(
                "pstore-trace provisioning: cannot write {}: {e}",
                out.display()
            );
            return ExitCode::from(2);
        }
        println!("provisioning summary written to {}", out.display());
    }
    if line_errors.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

fn cmd_diff(args: &[String]) -> ExitCode {
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut tolerances: Option<PathBuf> = None;
    let mut bless = false;
    let mut verbose = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--tolerances" => {
                let Some(value) = it.next() else {
                    eprintln!("pstore-trace diff: --tolerances needs a path");
                    return ExitCode::from(2);
                };
                tolerances = Some(PathBuf::from(value));
            }
            "--bless" => bless = true,
            "--verbose" => verbose = true,
            _ if arg.starts_with('-') => {
                eprintln!("pstore-trace diff: unknown flag \"{arg}\"\n{USAGE}");
                return ExitCode::from(2);
            }
            _ => paths.push(PathBuf::from(arg)),
        }
    }
    if paths.len() != 2 {
        eprintln!("pstore-trace diff: need exactly <baseline> and <candidate>\n{USAGE}");
        return ExitCode::from(2);
    }
    let (baseline_path, candidate_path) = (&paths[0], &paths[1]);

    let table = match tolerances {
        None => ToleranceTable::builtin(),
        Some(path) => {
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    eprintln!("pstore-trace diff: cannot read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            match ToleranceTable::from_json_str(&text) {
                Ok(table) => table,
                Err(e) => {
                    eprintln!(
                        "pstore-trace diff: bad tolerance file {}: {e}",
                        path.display()
                    );
                    return ExitCode::from(2);
                }
            }
        }
    };

    let candidate = match RunSummary::load(candidate_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pstore-trace diff: {e}");
            return ExitCode::from(2);
        }
    };
    if bless {
        if let Err(e) = std::fs::write(baseline_path, candidate.to_json()) {
            eprintln!(
                "pstore-trace diff: cannot bless {}: {e}",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
        println!(
            "blessed: {} now holds the summary of {}",
            baseline_path.display(),
            candidate_path.display()
        );
        return ExitCode::SUCCESS;
    }
    let baseline = match RunSummary::load(baseline_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("pstore-trace diff: {e}");
            return ExitCode::from(2);
        }
    };

    let report = diff(&baseline, &candidate, &table);
    print!("{}", report.render(verbose));
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
