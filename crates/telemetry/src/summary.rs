//! Run summaries and the trace-diff regression gate.
//!
//! A [`RunSummary`] flattens a trace (or [`RunReport`]) into named
//! scalar metrics — counters, histogram quantiles, SLA-violation
//! seconds — serialisable as a small JSON document
//! (`{"schema":"pstore-run-summary/v1","metrics":{...}}`). Golden
//! summaries for canonical runs live under `results/golden/`, and
//! `pstore-trace diff <baseline> <candidate>` compares two summaries
//! against per-metric tolerances ([`ToleranceTable`]), exiting non-zero
//! on regression. This is the first automated guard on the paper-facing
//! metrics themselves (p99 tails, bytes moved per reconfiguration, SLA
//! seconds — §8 of the paper).

use crate::json::{self, Json};
use crate::metrics::Histogram;
use crate::trace::{self, RunReport};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Schema tag written into every summary document.
pub const SCHEMA: &str = "pstore-run-summary/v1";

/// Metric counting the names outside every known family (see
/// [`known_metric`]). Always present in summaries built by
/// [`RunSummary::from_events`] or parsed by
/// [`RunSummary::from_json_str`], and gated at zero tolerance so any
/// drift in the count is a regression.
pub const UNKNOWN_METRICS: &str = "meta.unknown_metrics";

/// Whether `name` belongs to a metric family the summary schema
/// understands: the fixed per-report counters plus the
/// `stable_p99.*` / `reconfig_p99.*` / `throughput.*` / `slo.*` /
/// `prov.*` / `meta.*` families.
///
/// Unknown names are *tolerated* — they stay in the metric map and the
/// diff still compares them — but they are *counted* into
/// [`UNKNOWN_METRICS`]. Without the count, a typo'd family name
/// (`prv.run0.mape` for `prov.run0.mape`) would silently ride through
/// the gate as "new metric, passes" while the real metric quietly
/// vanished from future baselines.
pub fn known_metric(name: &str) -> bool {
    const EXACT: [&str; 9] = [
        "events",
        "reconfigs",
        "chunk_moves",
        "bytes_moved",
        "sla_violation_seconds",
        "planner_calls",
        "planner_feasible",
        "forecasts",
        "span_errors",
    ];
    const FAMILIES: [&str; 6] = [
        "stable_p99.",
        "reconfig_p99.",
        "throughput.",
        "slo.",
        "prov.",
        "meta.",
    ];
    EXACT.contains(&name) || FAMILIES.iter().any(|p| name.starts_with(p))
}

/// A run flattened to named scalar metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunSummary {
    /// Metric name -> value, in sorted order.
    pub metrics: BTreeMap<String, f64>,
}

impl RunSummary {
    /// Derives the summary from an aggregated [`RunReport`].
    pub fn from_report(report: &RunReport) -> Self {
        let mut metrics = BTreeMap::new();
        let mut put = |k: &str, v: f64| {
            metrics.insert(k.to_string(), v);
        };
        #[allow(clippy::cast_precision_loss)] // counts far below 2^53
        {
            put("events", report.events as f64);
            put("reconfigs", report.reconfigs.len() as f64);
            put("chunk_moves", report.chunk_moves as f64);
            let bytes: u64 = report.reconfigs.iter().map(|r| r.bytes_moved).sum();
            put("bytes_moved", bytes as f64);
            put("sla_violation_seconds", report.sla_violations as f64);
            put("planner_calls", report.planner_calls as f64);
            put("planner_feasible", report.planner_feasible as f64);
            put("forecasts", report.forecasts as f64);
            put("span_errors", report.span_errors.len() as f64);
        }
        let mut put_hist = |prefix: &str, h: &Histogram| {
            #[allow(clippy::cast_precision_loss)] // counts far below 2^53
            metrics.insert(format!("{prefix}.count"), h.count() as f64);
            metrics.insert(format!("{prefix}.p50"), h.quantile(0.50));
            metrics.insert(format!("{prefix}.p95"), h.quantile(0.95));
            metrics.insert(format!("{prefix}.p99"), h.quantile(0.99));
            metrics.insert(format!("{prefix}.max"), h.max());
        };
        put_hist("stable_p99", &report.stable_p99);
        put_hist("reconfig_p99", &report.reconfig_p99);
        #[allow(clippy::cast_precision_loss)] // counts far below 2^53
        metrics.insert(
            "throughput.count".to_string(),
            report.throughput.count() as f64,
        );
        metrics.insert("throughput.mean".to_string(), report.throughput.mean());
        RunSummary { metrics }
    }

    /// Derives the summary straight from parsed trace events, including
    /// the per-run SLA/attribution metrics (`slo.*`) from [`crate::slo`]
    /// and the provisioning-observatory metrics (`prov.*`) from
    /// [`crate::prov`]. Traces without `prov_*` events (the default —
    /// emission is gated) contribute no `prov.*` keys, keeping
    /// pre-existing golden summaries comparable.
    pub fn from_events(events: &[crate::Event]) -> Self {
        let mut summary = RunSummary::from_report(&RunReport::from_events(events));
        for (name, value) in crate::slo::metrics(&crate::slo::analyze(events)) {
            summary.metrics.insert(name, value);
        }
        for (name, value) in crate::prov::metrics(&crate::prov::analyze(events)) {
            summary.metrics.insert(name, value);
        }
        summary.count_unknown();
        summary
    }

    /// Recounts the metric names outside every known family into
    /// [`UNKNOWN_METRICS`]. The names themselves are kept — tolerated,
    /// diffed — but the count makes them explicit so a typo'd family
    /// can't be silently absorbed.
    fn count_unknown(&mut self) {
        #[allow(clippy::cast_precision_loss)] // counts far below 2^53
        let unknown = self.metrics.keys().filter(|k| !known_metric(k)).count() as f64;
        self.metrics.insert(UNKNOWN_METRICS.to_string(), unknown);
    }

    /// Loads a summary from either a `.jsonl` trace (summarised on the
    /// fly) or a `.json` summary document.
    ///
    /// # Errors
    /// Fails on I/O problems, malformed trace lines (reported with their
    /// 1-based line number — the diff gate must not trust a summary
    /// built from a corrupt trace), or a bad summary document.
    pub fn load(path: &Path) -> Result<RunSummary, String> {
        let is_trace = path.extension().is_some_and(|e| e == "jsonl");
        if is_trace {
            let (events, errors) =
                trace::read_jsonl(path).map_err(|e| format!("{}: {e}", path.display()))?;
            if let Some(first) = errors.first() {
                return Err(format!(
                    "{}: {} malformed line(s); first at line {}: {}",
                    path.display(),
                    errors.len(),
                    first.line,
                    first.msg
                ));
            }
            Ok(RunSummary::from_events(&events))
        } else {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
            RunSummary::from_json_str(&text).map_err(|e| format!("{}: {e}", path.display()))
        }
    }

    /// Serialises the summary as a pretty-printed JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 40 * self.metrics.len());
        out.push_str("{\n  \"schema\": ");
        json::write_str(&mut out, SCHEMA);
        out.push_str(",\n  \"metrics\": {\n");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            out.push_str("    ");
            json::write_str(&mut out, k);
            out.push_str(": ");
            json::write_f64(&mut out, *v);
            if i + 1 < self.metrics.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a summary document produced by [`RunSummary::to_json`].
    ///
    /// [`UNKNOWN_METRICS`] is recomputed from the parsed names rather
    /// than trusted from the document, so a hand-edited or typo'd
    /// summary reports its own drift.
    ///
    /// # Errors
    /// Fails on JSON errors, a missing/foreign `schema` tag, or
    /// non-numeric metric values.
    pub fn from_json_str(text: &str) -> Result<RunSummary, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let obj = value.as_obj().ok_or("summary is not a JSON object")?;
        match obj.get("schema").and_then(Json::as_str) {
            Some(s) if s == SCHEMA => {}
            Some(s) => return Err(format!("unsupported schema \"{s}\" (want \"{SCHEMA}\")")),
            None => return Err("missing \"schema\" tag".to_string()),
        }
        let metrics_obj = obj
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("missing \"metrics\" object")?;
        let mut metrics = BTreeMap::new();
        for (k, v) in metrics_obj {
            let v = v
                .as_num()
                .ok_or_else(|| format!("metric \"{k}\" is not a number"))?;
            metrics.insert(k.clone(), v);
        }
        let mut summary = RunSummary { metrics };
        summary.count_unknown();
        Ok(summary)
    }
}

/// Allowed drift for one metric: a value passes when
/// `|cand - base| <= max(abs, rel * |base|)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tolerance {
    /// Relative slack, as a fraction of the baseline's magnitude.
    pub rel: f64,
    /// Absolute slack, in the metric's own units.
    pub abs: f64,
}

impl Tolerance {
    /// True when `cand` is within this tolerance of `base`.
    pub fn accepts(&self, base: f64, cand: f64) -> bool {
        (cand - base).abs() <= self.abs.max(self.rel * base.abs())
    }
}

/// Per-metric tolerance rules: exact names or `prefix*` patterns, looked
/// up most-specific-first, with a default for everything else. File
/// rules (from `--tolerances <path>`) outrank the built-in table.
#[derive(Debug, Clone)]
pub struct ToleranceTable {
    default: Tolerance,
    /// `(pattern, tolerance)`; a trailing `*` makes it a prefix pattern.
    rules: Vec<(String, Tolerance)>,
}

impl Default for ToleranceTable {
    fn default() -> Self {
        Self::builtin()
    }
}

impl ToleranceTable {
    /// The built-in table used when no tolerance file is given: exact
    /// counters get 2% slack, histogram quantiles 15% (log-bucket
    /// resolution is ~9%), SLA seconds 25% or 3 s, reconfiguration
    /// count ±1, and any new span error — or any change in the
    /// unknown-metric count — is an outright regression.
    pub fn builtin() -> Self {
        let t = |rel: f64, abs: f64| Tolerance { rel, abs };
        ToleranceTable {
            default: t(0.02, 1e-9),
            rules: vec![
                ("span_errors".to_string(), t(0.0, 0.0)),
                (UNKNOWN_METRICS.to_string(), t(0.0, 0.0)),
                ("reconfigs".to_string(), t(0.0, 1.0)),
                ("sla_violation_seconds".to_string(), t(0.25, 3.0)),
                ("slo.*".to_string(), t(0.25, 1.0)),
                ("prov.*".to_string(), t(0.25, 1.0)),
                ("chunk_moves".to_string(), t(0.05, 2.0)),
                ("bytes_moved".to_string(), t(0.05, 0.0)),
                ("stable_p99.count".to_string(), t(0.02, 1.0)),
                ("reconfig_p99.count".to_string(), t(0.05, 5.0)),
                ("throughput.count".to_string(), t(0.02, 1.0)),
                ("stable_p99.*".to_string(), t(0.15, 1e-3)),
                ("reconfig_p99.*".to_string(), t(0.20, 2e-3)),
                ("throughput.*".to_string(), t(0.10, 1.0)),
            ],
        }
    }

    /// Parses a tolerance file and layers it over the built-in table:
    ///
    /// ```json
    /// {
    ///   "default": {"rel": 0.02, "abs": 0.0},
    ///   "metrics": {
    ///     "stable_p99.p99": {"rel": 0.25},
    ///     "throughput.*":  {"rel": 0.10, "abs": 5.0}
    ///   }
    /// }
    /// ```
    ///
    /// Omitted `rel`/`abs` components default to 0.
    ///
    /// # Errors
    /// Fails on JSON errors or non-numeric components.
    pub fn from_json_str(text: &str) -> Result<ToleranceTable, String> {
        let value = json::parse(text).map_err(|e| e.to_string())?;
        let obj = value
            .as_obj()
            .ok_or("tolerance file is not a JSON object")?;
        let parse_tol = |v: &Json, what: &str| -> Result<Tolerance, String> {
            let o = v
                .as_obj()
                .ok_or_else(|| format!("{what} is not an object"))?;
            let comp = |key: &str| -> Result<f64, String> {
                match o.get(key) {
                    None => Ok(0.0),
                    Some(v) => v
                        .as_num()
                        .ok_or_else(|| format!("{what}.{key} is not a number")),
                }
            };
            Ok(Tolerance {
                rel: comp("rel")?,
                abs: comp("abs")?,
            })
        };
        let mut table = ToleranceTable::builtin();
        if let Some(d) = obj.get("default") {
            table.default = parse_tol(d, "default")?;
        }
        if let Some(metrics) = obj.get("metrics") {
            let metrics = metrics.as_obj().ok_or("\"metrics\" is not an object")?;
            // File rules take priority: prepend them (lookup scans in order).
            let mut file_rules = Vec::new();
            for (pattern, v) in metrics {
                file_rules.push((pattern.clone(), parse_tol(v, pattern)?));
            }
            file_rules.append(&mut table.rules);
            table.rules = file_rules;
        }
        Ok(table)
    }

    /// The tolerance applied to `metric`: first exact match in rule
    /// order, else the first matching `prefix*` pattern in rule order
    /// (file rules precede built-ins, so a file pattern always wins),
    /// else the default.
    pub fn lookup(&self, metric: &str) -> Tolerance {
        for (pattern, tol) in &self.rules {
            if pattern == metric {
                return *tol;
            }
        }
        for (pattern, tol) in &self.rules {
            if let Some(prefix) = pattern.strip_suffix('*') {
                if metric.starts_with(prefix) {
                    return *tol;
                }
            }
        }
        self.default
    }
}

/// One metric's comparison in a diff.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffLine {
    /// Metric name.
    pub metric: String,
    /// Baseline value (`None` when the metric is new in the candidate).
    pub base: Option<f64>,
    /// Candidate value (`None` when the metric vanished).
    pub cand: Option<f64>,
    /// The tolerance that was applied.
    pub tolerance: Tolerance,
    /// True when this line fails the gate.
    pub regression: bool,
}

/// The result of diffing two summaries.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Every compared metric, sorted by name.
    pub lines: Vec<DiffLine>,
}

impl DiffReport {
    /// Lines that fail the gate.
    pub fn regressions(&self) -> Vec<&DiffLine> {
        self.lines.iter().filter(|l| l.regression).collect()
    }

    /// True when no metric regressed.
    pub fn is_clean(&self) -> bool {
        self.lines.iter().all(|l| !l.regression)
    }

    /// Renders the diff table; `verbose` includes in-tolerance lines.
    pub fn render(&self, verbose: bool) -> String {
        let mut out = String::new();
        let regressions = self.regressions();
        let _ = writeln!(
            out,
            "trace diff: {} metric(s) compared, {} regression(s)",
            self.lines.len(),
            regressions.len()
        );
        let fmt_opt = |v: Option<f64>| v.map_or("(missing)".to_string(), |v| format!("{v:.6}"));
        for line in &self.lines {
            if !line.regression && !verbose {
                continue;
            }
            let marker = if line.regression { "FAIL" } else { "  ok" };
            let _ = writeln!(
                out,
                "  {marker} {:<28} base {:>14} -> cand {:>14}  (tol rel {} abs {})",
                line.metric,
                fmt_opt(line.base),
                fmt_opt(line.cand),
                line.tolerance.rel,
                line.tolerance.abs
            );
        }
        if regressions.is_empty() {
            let _ = writeln!(out, "  within tolerance: no regression");
        }
        out
    }
}

/// Compares `candidate` against `baseline` under `table`. Every metric
/// present in the baseline must exist in the candidate and sit within
/// tolerance (drift in *either* direction fails — a too-good-to-be-true
/// p99 usually means the workload silently changed). Metrics new in the
/// candidate are reported but pass: instrumentation is allowed to grow.
pub fn diff(baseline: &RunSummary, candidate: &RunSummary, table: &ToleranceTable) -> DiffReport {
    let mut lines = Vec::new();
    for (metric, base) in &baseline.metrics {
        let tolerance = table.lookup(metric);
        let cand = candidate.metrics.get(metric).copied();
        let regression = match cand {
            Some(c) => !tolerance.accepts(*base, c),
            None => true,
        };
        lines.push(DiffLine {
            metric: metric.clone(),
            base: Some(*base),
            cand,
            tolerance,
            regression,
        });
    }
    for (metric, cand) in &candidate.metrics {
        if !baseline.metrics.contains_key(metric) {
            lines.push(DiffLine {
                metric: metric.clone(),
                base: None,
                cand: Some(*cand),
                tolerance: table.lookup(metric),
                regression: false,
            });
        }
    }
    lines.sort_by(|a, b| a.metric.cmp(&b.metric));
    DiffReport { lines }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{kinds, Event};

    fn sample_summary() -> RunSummary {
        let mut events = Vec::new();
        let mut begin = Event::new(kinds::SPAN_BEGIN)
            .with("id", 1u64)
            .with("name", kinds::SPAN_RECONFIG)
            .with("from", 2u64)
            .with("to", 3u64);
        begin.seq = 1;
        begin.t = Some(5.0);
        events.push(begin);
        let mut mv = Event::new(kinds::CHUNK_MOVE).with("bytes", 2048u64);
        mv.seq = 2;
        events.push(mv);
        let mut end = Event::new(kinds::SPAN_END)
            .with("id", 1u64)
            .with("name", kinds::SPAN_RECONFIG);
        end.seq = 3;
        end.t = Some(8.0);
        events.push(end);
        for (i, p99) in [0.01f64, 0.02, 0.03].iter().enumerate() {
            let mut sec = Event::new(kinds::SECOND)
                .with("p99", *p99)
                .with("throughput", 1000.0)
                .with("reconfiguring", false);
            sec.seq = 4 + u64::try_from(i).unwrap_or(0);
            events.push(sec);
        }
        RunSummary::from_events(&events)
    }

    #[test]
    fn summary_flattens_report() {
        let s = sample_summary();
        assert_eq!(s.metrics.get("reconfigs"), Some(&1.0));
        assert_eq!(s.metrics.get("chunk_moves"), Some(&1.0));
        assert_eq!(s.metrics.get("bytes_moved"), Some(&2048.0));
        assert_eq!(s.metrics.get("stable_p99.count"), Some(&3.0));
        assert_eq!(s.metrics.get("span_errors"), Some(&0.0));
        assert!(s.metrics.contains_key("stable_p99.p99"));
    }

    #[test]
    fn summary_json_round_trips() {
        let s = sample_summary();
        let text = s.to_json();
        assert!(text.contains(SCHEMA));
        let back = RunSummary::from_json_str(&text).unwrap_or_default();
        assert_eq!(back, s);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(RunSummary::from_json_str("not json").is_err());
        assert!(RunSummary::from_json_str(r#"{"metrics":{}}"#).is_err());
        assert!(RunSummary::from_json_str(r#"{"schema":"other/v9","metrics":{}}"#).is_err());
        assert!(RunSummary::from_json_str(
            r#"{"schema":"pstore-run-summary/v1","metrics":{"a":"x"}}"#
        )
        .is_err());
    }

    #[test]
    fn self_diff_is_clean() {
        let s = sample_summary();
        let report = diff(&s, &s, &ToleranceTable::builtin());
        assert!(report.is_clean());
        assert!(report.render(false).contains("no regression"));
    }

    #[test]
    fn inflated_p99_fails_and_names_the_metric() {
        let base = sample_summary();
        let mut cand = base.clone();
        if let Some(v) = cand.metrics.get_mut("stable_p99.p99") {
            *v *= 2.0;
        }
        let report = diff(&base, &cand, &ToleranceTable::builtin());
        assert!(!report.is_clean());
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|l| l.metric.as_str())
            .collect();
        assert_eq!(names, vec!["stable_p99.p99"]);
        assert!(report.render(false).contains("FAIL stable_p99.p99"));
    }

    #[test]
    fn improvement_beyond_tolerance_also_fails() {
        let base = sample_summary();
        let mut cand = base.clone();
        if let Some(v) = cand.metrics.get_mut("stable_p99.p99") {
            *v *= 0.2;
        }
        assert!(!diff(&base, &cand, &ToleranceTable::builtin()).is_clean());
    }

    #[test]
    fn missing_metric_is_a_regression_but_new_metric_passes() {
        let base = sample_summary();
        let mut cand = base.clone();
        cand.metrics.remove("chunk_moves");
        cand.metrics.insert("brand_new".to_string(), 7.0);
        let report = diff(&base, &cand, &ToleranceTable::builtin());
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|l| l.metric.as_str())
            .collect();
        assert_eq!(names, vec!["chunk_moves"]);
        assert!(report.lines.iter().any(|l| l.metric == "brand_new"));
    }

    #[test]
    fn tolerance_lookup_prefers_exact_then_longest_prefix() {
        let table = ToleranceTable::builtin();
        assert!(table.lookup("span_errors").abs.abs() < 1e-12);
        assert!((table.lookup("stable_p99.p50").rel - 0.15).abs() < 1e-12);
        // Exact beats the prefix rule.
        assert!((table.lookup("stable_p99.count").rel - 0.02).abs() < 1e-12);
        // Unknown metric falls to the default.
        assert!((table.lookup("something_else").rel - 0.02).abs() < 1e-12);
    }

    #[test]
    fn tolerance_file_overrides_builtin() {
        let table = ToleranceTable::from_json_str(
            r#"{
                "default": {"rel": 0.5},
                "metrics": {
                    "stable_p99.p99": {"abs": 10.0},
                    "through*": {"rel": 0.9}
                }
            }"#,
        )
        .unwrap_or_else(|e| panic!("{e}"));
        assert!((table.lookup("stable_p99.p99").abs - 10.0).abs() < 1e-12);
        assert!((table.lookup("throughput.mean").rel - 0.9).abs() < 1e-12);
        assert!((table.lookup("unknown").rel - 0.5).abs() < 1e-12);
        assert!(ToleranceTable::from_json_str("[]").is_err());
        assert!(ToleranceTable::from_json_str(r#"{"metrics":{"a":{"rel":"x"}}}"#).is_err());
    }

    #[test]
    fn typo_metric_family_is_counted_and_trips_the_gate() {
        let base = sample_summary();
        assert_eq!(base.metrics.get(UNKNOWN_METRICS), Some(&0.0));
        // A typo'd family name ("prv." for "prov.") sneaks into a
        // candidate document; parsing recomputes the unknown count.
        let mut doc = base.clone();
        doc.metrics.insert("prv.run0.mape".to_string(), 12.0);
        let cand = RunSummary::from_json_str(&doc.to_json()).unwrap_or_default();
        assert_eq!(cand.metrics.get(UNKNOWN_METRICS), Some(&1.0));
        // Tolerated: the unknown key is kept, not dropped.
        assert!(cand.metrics.contains_key("prv.run0.mape"));
        // Counted: the zero-tolerance count is the line that fails.
        let report = diff(&base, &cand, &ToleranceTable::builtin());
        let names: Vec<&str> = report
            .regressions()
            .iter()
            .map(|l| l.metric.as_str())
            .collect();
        assert_eq!(names, vec![UNKNOWN_METRICS]);
    }

    #[test]
    fn prov_metrics_flow_into_event_summaries() {
        let mut events = Vec::new();
        let mut run = Event::new(kinds::PROV_RUN)
            .with("q", 100.0)
            .with("interval_s", 1.0)
            .with("initial", 1u64)
            .with("policy", "reactive");
        run.seq = 1;
        events.push(run);
        for i in 0..3u64 {
            let mut iv = Event::new(kinds::PROV_INTERVAL)
                .with("interval", i)
                .with("observed", 150.0)
                .with("machines", 1u64);
            iv.seq = 2 + i;
            events.push(iv);
        }
        let s = RunSummary::from_events(&events);
        // One machine serving 150 load against q=100 under-provisions.
        assert!(
            s.metrics
                .get("prov.run0.under_provision_machine_s")
                .is_some_and(|v| *v > 0.0),
            "metrics: {:?}",
            s.metrics
        );
        assert_eq!(s.metrics.get(UNKNOWN_METRICS), Some(&0.0));
        // Without prov events no prov.* key appears (golden stability).
        let plain = sample_summary();
        assert!(!plain.metrics.keys().any(|k| k.starts_with("prov.")));
    }

    #[test]
    fn span_error_appearance_is_always_a_regression() {
        let base = sample_summary();
        let mut cand = base.clone();
        cand.metrics.insert("span_errors".to_string(), 1.0);
        assert!(!diff(&base, &cand, &ToleranceTable::builtin()).is_clean());
    }
}
