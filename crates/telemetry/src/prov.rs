//! Provisioning observatory: decision provenance, forecast accuracy, and
//! the capacity ledger over a trace.
//!
//! The control loop — forecast, plan, decide, migrate — emits the
//! `prov_*` event family (opt-in via
//! [`set_prov_enabled`](crate::set_prov_enabled)): `prov_run` describes
//! the run (capacity `Q`, lead time `D`, monitoring interval),
//! `prov_interval` records each interval's observed demand and active
//! machine count, `prov_forecast` joins every prediction with the
//! observation it targeted, `prov_decision` records why the controller
//! asked for a new machine count, and `prov_reconfig`/`prov_chunk` carry
//! the migration cost of acting on it. This module reads a trace back,
//! segments it into simulator runs (like [`slo`](crate::slo)), and
//! produces three artifacts per run:
//!
//! 1. a **capacity ledger**: machine-seconds provisioned vs the ideal
//!    demand curve `ceil(observed / Q)`, split into over- and
//!    under-provision areas — the quantity behind the paper's Fig 9;
//! 2. a **forecast-accuracy report**: MAPE and signed bias per
//!    (model, horizon), plus *under-forecast windows* — maximal interval
//!    stretches where demand exceeded even the most generous prediction
//!    by more than the planner's 15% inflation headroom — correlated
//!    with SLA-violation seconds;
//! 3. a **decision audit**: every decision joined with the
//!    reconfiguration it caused and the SLA effect around it.
//!
//! The `PRV-01..03` invariants in `pstore-verify` re-derive the ledger
//! and the decision/forecast joins from the raw events and require them
//! to reconcile with this module's output.

use crate::event::{kinds, span_names, Event};
use crate::slo::SLA_THRESHOLD_S;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Headroom an observation must exceed the best prediction by before the
/// interval counts as under-forecast — mirrors the controller's 15%
/// prediction inflation (§6): demand inside the inflated envelope was,
/// by construction, provisioned for.
pub const UNDER_FORECAST_MARGIN: f64 = 0.15;

/// One provisioning decision (a `prov_decision` event).
#[derive(Debug, Clone)]
pub struct ProvDecision {
    /// Per-controller decision id (> 0).
    pub id: u64,
    /// Monitoring interval the decision was made in.
    pub interval: u64,
    /// Machines at decision time.
    pub machines: u64,
    /// Machines requested.
    pub target: u64,
    /// Controller's stated reason (`planned`, `emergency`, ...).
    pub reason: String,
    /// Load that tripped the decision.
    pub trigger: f64,
    /// Predicted peak demand driving the size.
    pub peak: f64,
    /// DP plan cost (0 when no plan was involved).
    pub cost: f64,
    /// Seconds between the decision and its target interval (0 for
    /// reactive and emergency decisions).
    pub lead_s: f64,
    /// Migration-rate multiplier requested.
    pub rate: f64,
    /// Sim time of the decision.
    pub t: f64,
}

/// One completed reconfiguration (a `prov_reconfig` event).
#[derive(Debug, Clone)]
pub struct ProvReconfig {
    /// Decision id this move traces back to (0 = unattributed).
    pub id: u64,
    /// Machines before.
    pub from: u64,
    /// Machines after.
    pub to: u64,
    /// Sim time the move started.
    pub start: f64,
    /// Sim seconds the move took.
    pub duration_s: f64,
    /// Chunks migrated.
    pub chunks: u64,
    /// Rows migrated.
    pub rows: u64,
    /// Bytes migrated.
    pub bytes: u64,
    /// Fence epochs crossed (0 on the inline backend).
    pub fences: u64,
}

/// One scored forecast (a `prov_forecast` event): a prediction joined
/// with the observation for its target interval.
#[derive(Debug, Clone)]
pub struct ForecastScore {
    /// Forecasting model name.
    pub model: String,
    /// Intervals ahead the prediction was made.
    pub horizon: u64,
    /// Target interval.
    pub interval: u64,
    /// Predicted demand (raw, uninflated).
    pub predicted: f64,
    /// Observed demand for the target interval.
    pub observed: f64,
}

/// Accuracy of one (model, horizon) cell.
#[derive(Debug, Clone)]
pub struct HorizonAccuracy {
    /// Forecasting model name.
    pub model: String,
    /// Horizon in intervals.
    pub horizon: u64,
    /// Scored samples.
    pub samples: u64,
    /// Mean absolute percentage error; `None` when every observation was
    /// ~zero (MAPE is undefined on zero-demand intervals).
    pub mape: Option<f64>,
    /// Mean signed error `predicted - observed` (negative = the model
    /// under-forecasts).
    pub bias: f64,
}

/// A maximal stretch of under-forecast intervals (observation above the
/// best prediction by more than [`UNDER_FORECAST_MARGIN`]), tolerating
/// single-interval gaps like SLA windows do.
#[derive(Debug, Clone)]
pub struct UnderForecastWindow {
    /// First under-forecast interval (inclusive).
    pub start: u64,
    /// Last under-forecast interval (inclusive).
    pub end: u64,
    /// Under-forecast intervals inside the window (gaps excluded).
    pub intervals: u64,
    /// Worst `observed / predicted` ratio inside the window.
    pub worst_ratio: f64,
    /// SLA-violating seconds inside the window's time range.
    pub sla_seconds: u64,
}

/// Capacity-ledger totals (all in machine-seconds).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct LedgerTotals {
    /// Machine-seconds actually provisioned.
    pub provisioned: f64,
    /// Machine-seconds the ideal demand curve needed.
    pub ideal: f64,
    /// Area where provisioned exceeded ideal.
    pub over: f64,
    /// Area where ideal exceeded provisioned.
    pub under: f64,
}

/// Integrates the capacity ledger over `(machines, observed)` interval
/// samples: ideal machines per interval are `ceil(observed / q)`,
/// clamped to at least 1 (a running cluster never drops to zero). The
/// conservation identity `provisioned - ideal == over - under` holds
/// exactly up to floating-point reassociation — PRV-01 checks it.
pub fn ledger_areas(intervals: &[(u64, f64)], q: f64, interval_s: f64) -> LedgerTotals {
    let mut totals = LedgerTotals::default();
    for &(machines, observed) in intervals {
        #[allow(clippy::cast_precision_loss)] // machine counts far below 2^53
        let have = machines as f64;
        let ideal = if q > 0.0 {
            (observed / q).ceil().max(1.0)
        } else {
            1.0
        };
        totals.provisioned += have * interval_s;
        totals.ideal += ideal * interval_s;
        totals.over += (have - ideal).max(0.0) * interval_s;
        totals.under += (ideal - have).max(0.0) * interval_s;
    }
    totals
}

/// Per-(model, horizon) accuracy over scored forecasts. Zero-demand
/// observations (|observed| < 1e-9) are excluded from MAPE — relative
/// error is undefined there — but still count toward bias and samples.
pub fn horizon_accuracy(scores: &[ForecastScore]) -> Vec<HorizonAccuracy> {
    let mut cells: BTreeMap<(String, u64), (u64, u64, f64, f64)> = BTreeMap::new();
    for s in scores {
        let cell = cells
            .entry((s.model.clone(), s.horizon))
            .or_insert((0, 0, 0.0, 0.0));
        cell.0 += 1;
        cell.3 += s.predicted - s.observed;
        if s.observed.abs() >= 1e-9 {
            cell.1 += 1;
            cell.2 += (s.predicted - s.observed).abs() / s.observed.abs();
        }
    }
    cells
        .into_iter()
        .map(
            |((model, horizon), (samples, mape_n, mape_sum, bias_sum))| {
                #[allow(clippy::cast_precision_loss)] // sample counts far below 2^53
                HorizonAccuracy {
                    model,
                    horizon,
                    samples,
                    mape: (mape_n > 0).then(|| 100.0 * mape_sum / mape_n as f64),
                    bias: if samples > 0 {
                        bias_sum / samples as f64
                    } else {
                        0.0
                    },
                }
            },
        )
        .collect()
}

/// Provisioning analysis of one simulator run.
#[derive(Debug, Clone, Default)]
pub struct RunProv {
    /// Run label: `{index}:{span name}` (or `{index}:trace`).
    pub label: String,
    /// Policy name from `prov_run`, if recorded.
    pub policy: String,
    /// Per-machine capacity `Q` (txn/s).
    pub q: f64,
    /// Migration lead time `D` in seconds.
    pub d_s: f64,
    /// Monitoring interval in seconds.
    pub interval_s: f64,
    /// `prov_interval` events observed.
    pub intervals: u64,
    /// The capacity ledger.
    pub ledger: LedgerTotals,
    /// Decisions, in time order.
    pub decisions: Vec<ProvDecision>,
    /// Completed reconfigurations, in completion order.
    pub reconfigs: Vec<ProvReconfig>,
    /// Scored forecasts.
    pub scores: Vec<ForecastScore>,
    /// Per-(model, horizon) accuracy (derived from `scores`).
    pub accuracy: Vec<HorizonAccuracy>,
    /// Under-forecast windows, in interval order.
    pub under_forecast: Vec<UnderForecastWindow>,
    /// SLA-violating seconds in the run (`second` events with
    /// `p99 > SLA_THRESHOLD_S`).
    pub violation_seconds: u64,
}

impl RunProv {
    /// The reconfiguration a decision caused, if one completed.
    pub fn reconfig_of(&self, decision_id: u64) -> Option<&ProvReconfig> {
        if decision_id == 0 {
            return None;
        }
        self.reconfigs.iter().find(|r| r.id == decision_id)
    }
}

/// Working state while a run is being scanned.
#[derive(Default)]
struct RunBuilder {
    label: String,
    policy: String,
    q: f64,
    d_s: f64,
    interval_s: f64,
    /// `(interval, machines, observed)` in event order.
    intervals: Vec<(u64, u64, f64)>,
    decisions: Vec<ProvDecision>,
    reconfigs: Vec<ProvReconfig>,
    scores: Vec<ForecastScore>,
    /// Sim times of SLA-violating `second` events.
    violation_times: Vec<f64>,
}

impl RunBuilder {
    fn new(label: String) -> Self {
        RunBuilder {
            label,
            interval_s: 1.0,
            ..RunBuilder::default()
        }
    }

    fn observe(&mut self, ev: &Event) {
        match ev.kind.as_str() {
            kinds::PROV_RUN => {
                self.q = ev.field_f64("q").unwrap_or(0.0);
                self.d_s = ev.field_f64("d_s").unwrap_or(0.0);
                self.interval_s = ev.field_f64("interval_s").unwrap_or(1.0);
                self.policy = ev.field_str("policy").unwrap_or("").to_string();
            }
            kinds::PROV_INTERVAL => {
                self.intervals.push((
                    ev.field_u64("interval").unwrap_or(0),
                    ev.field_u64("machines").unwrap_or(0),
                    ev.field_f64("observed").unwrap_or(0.0),
                ));
            }
            kinds::PROV_FORECAST => {
                self.scores.push(ForecastScore {
                    model: ev.field_str("model").unwrap_or("?").to_string(),
                    horizon: ev.field_u64("horizon").unwrap_or(0),
                    interval: ev.field_u64("interval").unwrap_or(0),
                    predicted: ev.field_f64("predicted").unwrap_or(0.0),
                    observed: ev.field_f64("observed").unwrap_or(0.0),
                });
            }
            kinds::PROV_DECISION => {
                // Controllers report lead in monitoring intervals (they
                // don't know wall seconds); the run header's interval
                // length converts it.
                #[allow(clippy::cast_precision_loss)] // interval counts far below 2^53
                let lead_s = ev.field_u64("lead").unwrap_or(0) as f64 * self.interval_s;
                self.decisions.push(ProvDecision {
                    id: ev.field_u64("id").unwrap_or(0),
                    interval: ev.field_u64("interval").unwrap_or(0),
                    machines: ev.field_u64("machines").unwrap_or(0),
                    target: ev.field_u64("target").unwrap_or(0),
                    reason: ev.field_str("reason").unwrap_or("?").to_string(),
                    trigger: ev.field_f64("trigger").unwrap_or(0.0),
                    peak: ev.field_f64("peak").unwrap_or(0.0),
                    cost: ev.field_f64("cost").unwrap_or(0.0),
                    lead_s,
                    rate: ev.field_f64("rate").unwrap_or(1.0),
                    t: ev.t.unwrap_or(0.0),
                });
            }
            kinds::PROV_RECONFIG => {
                self.reconfigs.push(ProvReconfig {
                    id: ev.field_u64("id").unwrap_or(0),
                    from: ev.field_u64("from").unwrap_or(0),
                    to: ev.field_u64("to").unwrap_or(0),
                    start: ev.field_f64("start").unwrap_or(0.0),
                    duration_s: ev.field_f64("duration_s").unwrap_or(0.0),
                    chunks: ev.field_u64("chunks").unwrap_or(0),
                    rows: ev.field_u64("rows").unwrap_or(0),
                    bytes: ev.field_u64("bytes").unwrap_or(0),
                    fences: ev.field_u64("fences").unwrap_or(0),
                });
            }
            kinds::SECOND if ev.field_f64("p99").unwrap_or(0.0) > SLA_THRESHOLD_S => {
                if let Some(t) = ev.t {
                    self.violation_times.push(t);
                }
            }
            _ => {}
        }
    }

    /// Merges under-forecast intervals into windows and counts the
    /// SLA-violating seconds inside each window's time range.
    fn under_forecast_windows(&self) -> Vec<UnderForecastWindow> {
        // Best (largest) prediction per target interval, joined with the
        // observation the score already carries.
        let mut per_interval: BTreeMap<u64, (f64, f64)> = BTreeMap::new();
        for s in &self.scores {
            let cell = per_interval
                .entry(s.interval)
                .or_insert((f64::NEG_INFINITY, s.observed));
            cell.0 = cell.0.max(s.predicted);
            cell.1 = s.observed;
        }
        let mut windows: Vec<UnderForecastWindow> = Vec::new();
        for (&interval, &(predicted, observed)) in &per_interval {
            if observed <= predicted * (1.0 + UNDER_FORECAST_MARGIN) {
                continue;
            }
            let ratio = if predicted > 0.0 {
                observed / predicted
            } else {
                f64::INFINITY
            };
            match windows.last_mut() {
                Some(w) if interval <= w.end + 2 => {
                    w.end = interval;
                    w.intervals += 1;
                    w.worst_ratio = w.worst_ratio.max(ratio);
                }
                _ => windows.push(UnderForecastWindow {
                    start: interval,
                    end: interval,
                    intervals: 1,
                    worst_ratio: ratio,
                    sla_seconds: 0,
                }),
            }
        }
        #[allow(clippy::cast_precision_loss)] // interval indices far below 2^53
        for w in &mut windows {
            let lo = w.start as f64 * self.interval_s;
            let hi = (w.end + 1) as f64 * self.interval_s;
            w.sla_seconds = u64::try_from(
                self.violation_times
                    .iter()
                    .filter(|&&t| t >= lo && t < hi)
                    .count(),
            )
            .unwrap_or(u64::MAX);
        }
        windows
    }

    fn finish(self) -> RunProv {
        let samples: Vec<(u64, f64)> = self
            .intervals
            .iter()
            .map(|&(_, machines, observed)| (machines, observed))
            .collect();
        let ledger = ledger_areas(&samples, self.q, self.interval_s);
        let under_forecast = self.under_forecast_windows();
        let accuracy = horizon_accuracy(&self.scores);
        RunProv {
            label: self.label,
            policy: self.policy,
            q: self.q,
            d_s: self.d_s,
            interval_s: self.interval_s,
            intervals: u64::try_from(self.intervals.len()).unwrap_or(u64::MAX),
            ledger,
            decisions: self.decisions,
            reconfigs: self.reconfigs,
            scores: self.scores,
            accuracy,
            under_forecast,
            violation_seconds: u64::try_from(self.violation_times.len()).unwrap_or(u64::MAX),
        }
    }
}

/// True for kinds that should start an implicit run in a trace without
/// simulator spans.
fn is_prov_kind(kind: &str) -> bool {
    matches!(
        kind,
        kinds::PROV_RUN
            | kinds::PROV_INTERVAL
            | kinds::PROV_FORECAST
            | kinds::PROV_DECISION
            | kinds::PROV_RECONFIG
            | kinds::PROV_CHUNK
    )
}

/// Segments a trace into simulator runs and analyzes each — the same
/// segmentation as [`slo::analyze`](crate::slo::analyze): a run is
/// everything between a top-level `detailed_sim`/`fast_sim` span pair;
/// traces without simulator spans yield one implicit `{i}:trace` run
/// when they contain any `prov_*` events.
pub fn analyze(events: &[Event]) -> Vec<RunProv> {
    let mut runs: Vec<RunProv> = Vec::new();
    let mut current: Option<(RunBuilder, usize)> = None; // builder + base depth
    let mut depth: usize = 0;
    for ev in events {
        let begins = ev.kind == kinds::SPAN_BEGIN;
        let ends = ev.kind == kinds::SPAN_END;
        let name = ev.field_str("name").unwrap_or("");
        let is_sim = name == span_names::DETAILED_SIM || name == span_names::FAST_SIM;
        if begins && is_sim && current.as_ref().is_none_or(|&(_, base)| depth == base) {
            if let Some((b, _)) = current.take() {
                runs.push(b.finish());
            }
            current = Some((RunBuilder::new(format!("{}:{name}", runs.len())), depth + 1));
        }
        if begins {
            depth += 1;
        }
        if let Some((b, _)) = current.as_mut() {
            b.observe(ev);
        } else if is_prov_kind(&ev.kind) {
            let mut b = RunBuilder::new(format!("{}:trace", runs.len()));
            b.observe(ev);
            current = Some((b, 0));
        }
        if ends {
            depth = depth.saturating_sub(1);
            let closes_run = matches!(&current, Some((_, base)) if is_sim && depth + 1 == *base);
            if closes_run {
                if let Some((b, _)) = current.take() {
                    runs.push(b.finish());
                }
            }
        }
    }
    if let Some((b, _)) = current.take() {
        runs.push(b.finish());
    }
    // Drop sim runs that carried no prov events at all (prov disabled):
    // they would only add all-zero metric rows.
    runs.retain(|r| r.intervals > 0 || !r.decisions.is_empty() || !r.scores.is_empty());
    runs
}

/// Flattens the analysis into `pstore-run-summary/v1` metrics:
/// `prov.run{i}.*` per run plus `prov.total.*`.
pub fn metrics(runs: &[RunProv]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    #[allow(clippy::cast_precision_loss)] // counts far below 2^53
    for (i, r) in runs.iter().enumerate() {
        out.push((
            format!("prov.run{i}.provisioned_machine_s"),
            r.ledger.provisioned,
        ));
        out.push((format!("prov.run{i}.ideal_machine_s"), r.ledger.ideal));
        out.push((
            format!("prov.run{i}.over_provision_machine_s"),
            r.ledger.over,
        ));
        out.push((
            format!("prov.run{i}.under_provision_machine_s"),
            r.ledger.under,
        ));
        out.push((format!("prov.run{i}.decisions"), r.decisions.len() as f64));
        out.push((format!("prov.run{i}.reconfigs"), r.reconfigs.len() as f64));
        out.push((
            format!("prov.run{i}.under_forecast_windows"),
            r.under_forecast.len() as f64,
        ));
        out.push((
            format!("prov.run{i}.bytes_moved"),
            // fold from +0.0: an empty `sum::<f64>()` is -0.0, which
            // would print as "-0" in the summary JSON.
            r.reconfigs.iter().fold(0.0, |a, m| a + m.bytes as f64),
        ));
        let scored: Vec<&HorizonAccuracy> =
            r.accuracy.iter().filter(|a| a.mape.is_some()).collect();
        if !scored.is_empty() {
            let mape = scored.iter().filter_map(|a| a.mape).sum::<f64>() / scored.len() as f64;
            out.push((format!("prov.run{i}.mape"), mape));
        }
    }
    #[allow(clippy::cast_precision_loss)] // counts far below 2^53
    if !runs.is_empty() {
        out.push((
            "prov.total.over_provision_machine_s".to_string(),
            runs.iter().map(|r| r.ledger.over).sum::<f64>(),
        ));
        out.push((
            "prov.total.under_provision_machine_s".to_string(),
            runs.iter().map(|r| r.ledger.under).sum::<f64>(),
        ));
        out.push((
            "prov.total.decisions".to_string(),
            runs.iter().map(|r| r.decisions.len()).sum::<usize>() as f64,
        ));
        out.push((
            "prov.total.under_forecast_windows".to_string(),
            runs.iter().map(|r| r.under_forecast.len()).sum::<usize>() as f64,
        ));
    }
    out
}

/// `(t, lead_s)` of every decision across runs, for timeline overlays:
/// `lead_s > 0` marks a predictive decision whose effect lands later.
pub fn decision_times(runs: &[RunProv]) -> Vec<(f64, f64)> {
    let mut times: Vec<(f64, f64)> = runs
        .iter()
        .flat_map(|r| r.decisions.iter().map(|d| (d.t, d.lead_s)))
        .collect();
    times.sort_by(|a, b| a.0.total_cmp(&b.0));
    times
}

/// Renders the decision audit, ledger totals, and forecast-error report.
pub fn render(runs: &[RunProv]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== capacity ledger (machine-seconds) ==");
    let _ = writeln!(
        out,
        "  {:<16} {:<22} {:>9} {:>12} {:>12} {:>12} {:>12}",
        "run", "policy", "intervals", "provisioned", "ideal", "over", "under"
    );
    for r in runs {
        let _ = writeln!(
            out,
            "  {:<16} {:<22} {:>9} {:>12.0} {:>12.0} {:>12.0} {:>12.0}",
            r.label,
            r.policy,
            r.intervals,
            r.ledger.provisioned,
            r.ledger.ideal,
            r.ledger.over,
            r.ledger.under
        );
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "== decisions (forecast -> decision -> cost -> SLA) ==");
    let mut any = false;
    for r in runs {
        for d in &r.decisions {
            any = true;
            let cost = match r.reconfig_of(d.id) {
                Some(m) => format!(
                    "{} chunks / {} rows / {} bytes / {} fences in {:.0}s",
                    m.chunks, m.rows, m.bytes, m.fences, m.duration_s
                ),
                None => "no completed reconfig".to_string(),
            };
            let sla = sla_effect(r, d);
            let _ = writeln!(
                out,
                "  {:<16} t={:<8.0} #{:<3} {:<20} {}->{} trigger {:.0} peak {:.0} lead {:.0}s  {cost}  {sla}",
                r.label, d.t, d.id, d.reason, d.machines, d.target, d.trigger, d.peak, d.lead_s
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }

    let _ = writeln!(out);
    let _ = writeln!(out, "== forecast error by horizon ==");
    any = false;
    for r in runs {
        for a in &r.accuracy {
            any = true;
            let mape = a.mape.map_or("n/a".to_string(), |m| format!("{m:.1}%"));
            let _ = writeln!(
                out,
                "  {:<16} {:<14} h={:<3} samples {:<5} MAPE {:<8} bias {:+.1}",
                r.label, a.model, a.horizon, a.samples, mape, a.bias
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }

    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "== under-forecast windows (observed > best prediction x {:.2}) ==",
        1.0 + UNDER_FORECAST_MARGIN
    );
    any = false;
    for r in runs {
        for w in &r.under_forecast {
            any = true;
            let _ = writeln!(
                out,
                "  {:<16} intervals {}..{} ({} under)  worst obs/pred {:.2}  SLA-violating seconds inside: {}",
                r.label, w.start, w.end, w.intervals, w.worst_ratio, w.sla_seconds
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }
    out
}

/// Counts SLA-violating seconds from the decision until its
/// reconfiguration settled (plus a one-interval tail), a rough per-move
/// SLA effect.
fn sla_effect(r: &RunProv, d: &ProvDecision) -> String {
    let end = r.reconfig_of(d.id).map_or(d.t + r.interval_s, |m| {
        m.start + m.duration_s + r.interval_s
    });
    // Recompute from the windows' sla counts is lossy; use decisions'
    // surrounding window over the run's recorded violating seconds.
    let hits = r
        .under_forecast
        .iter()
        .filter(|w| {
            #[allow(clippy::cast_precision_loss)] // interval indices far below 2^53
            let lo = w.start as f64 * r.interval_s;
            lo >= d.t && lo < end
        })
        .map(|w| w.sla_seconds)
        .sum::<u64>();
    if hits > 0 {
        format!("SLA hit ({hits}s violating)")
    } else {
        "SLA held".to_string()
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact arithmetic
    use super::*;

    fn seq(events: &mut [Event]) {
        for (i, ev) in events.iter_mut().enumerate() {
            ev.seq = u64::try_from(i).unwrap_or(u64::MAX) + 1;
        }
    }

    fn at(mut ev: Event, t: f64) -> Event {
        ev.t = Some(t);
        ev
    }

    fn span(kind: &str, t: f64, id: u64, name: &str) -> Event {
        at(Event::new(kind).with("id", id).with("name", name), t)
    }

    fn run_header(q: f64, interval_s: f64) -> Event {
        at(
            Event::new(kinds::PROV_RUN)
                .with("q", q)
                .with("d_s", 300.0)
                .with("interval_s", interval_s)
                .with("initial", 2u64)
                .with("policy", "test"),
            0.0,
        )
    }

    #[allow(clippy::cast_precision_loss)] // test interval indices are tiny
    fn interval(k: u64, observed: f64, machines: u64, interval_s: f64) -> Event {
        at(
            Event::new(kinds::PROV_INTERVAL)
                .with("interval", k)
                .with("observed", observed)
                .with("machines", machines),
            k as f64 * interval_s,
        )
    }

    #[allow(clippy::cast_precision_loss)] // test interval indices are tiny
    fn forecast(k: u64, horizon: u64, predicted: f64, observed: f64) -> Event {
        at(
            Event::new(kinds::PROV_FORECAST)
                .with("interval", k)
                .with("horizon", horizon)
                .with("model", "persistence")
                .with("predicted", predicted)
                .with("observed", observed),
            k as f64 * 30.0,
        )
    }

    #[test]
    fn ledger_areas_integrate_over_and_under() {
        // Q=100, 30s intervals: demand 150 needs 2, demand 450 needs 5.
        let totals = ledger_areas(&[(2, 150.0), (2, 450.0), (6, 450.0)], 100.0, 30.0);
        assert_eq!(totals.provisioned, (2 + 2 + 6) as f64 * 30.0);
        assert_eq!(totals.ideal, (2 + 5 + 5) as f64 * 30.0);
        assert_eq!(totals.over, 30.0); // 6 vs 5 on the last interval
        assert_eq!(totals.under, 90.0); // 2 vs 5 on the middle interval
                                        // Conservation identity.
        assert!((totals.provisioned - totals.ideal - (totals.over - totals.under)).abs() < 1e-9);
    }

    #[test]
    fn ledger_zero_demand_interval_still_needs_one_machine() {
        let totals = ledger_areas(&[(1, 0.0), (3, 0.0)], 100.0, 10.0);
        assert_eq!(totals.ideal, 20.0);
        assert_eq!(totals.under, 0.0);
        assert_eq!(totals.over, 20.0);
    }

    #[test]
    fn mape_on_single_sample_and_zero_demand() {
        // Single sample: MAPE is just that sample's relative error.
        let one = horizon_accuracy(&[ForecastScore {
            model: "m".into(),
            horizon: 1,
            interval: 0,
            predicted: 110.0,
            observed: 100.0,
        }]);
        assert_eq!(one.len(), 1);
        assert!((one[0].mape.unwrap_or(f64::NAN) - 10.0).abs() < 1e-9);
        assert!((one[0].bias - 10.0).abs() < 1e-9);

        // All-zero demand: MAPE undefined, bias still defined.
        let zero = horizon_accuracy(&[ForecastScore {
            model: "m".into(),
            horizon: 1,
            interval: 0,
            predicted: 50.0,
            observed: 0.0,
        }]);
        assert!(zero[0].mape.is_none());
        assert_eq!(zero[0].samples, 1);
        assert!((zero[0].bias - 50.0).abs() < 1e-9);
    }

    #[test]
    fn horizon_longer_than_run_scores_nothing() {
        // A horizon that never gets an observation simply produces no
        // scores — the accuracy table has no cell for it.
        let acc = horizon_accuracy(&[]);
        assert!(acc.is_empty());
        let runs = analyze(&[]);
        assert!(runs.is_empty());
        assert!(metrics(&runs).is_empty());
    }

    #[test]
    fn under_forecast_windows_merge_and_respect_margin() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            run_header(100.0, 30.0),
            // Within the 15% envelope: not under-forecast.
            forecast(1, 1, 100.0, 110.0),
            // Truly under-forecast, adjacent intervals merge.
            forecast(2, 1, 100.0, 200.0),
            forecast(3, 1, 100.0, 180.0),
            // Far away: a second window.
            forecast(8, 1, 100.0, 300.0),
            span(kinds::SPAN_END, 300.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs.len(), 1);
        let w = &runs[0].under_forecast;
        assert_eq!(w.len(), 2);
        assert_eq!((w[0].start, w[0].end, w[0].intervals), (2, 3, 2));
        assert_eq!(w[0].worst_ratio, 2.0);
        assert_eq!((w[1].start, w[1].end), (8, 8));
    }

    #[test]
    fn under_forecast_windows_count_sla_seconds_inside() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            run_header(100.0, 30.0),
            forecast(2, 1, 100.0, 250.0),
            // Violating seconds at t=65 and t=70 fall inside interval 2's
            // range [60, 90); t=100 falls outside.
            at(Event::new(kinds::SECOND).with("p99", 0.9), 65.0),
            at(Event::new(kinds::SECOND).with("p99", 0.8), 70.0),
            at(Event::new(kinds::SECOND).with("p99", 0.7), 100.0),
            span(kinds::SPAN_END, 300.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs[0].under_forecast.len(), 1);
        assert_eq!(runs[0].under_forecast[0].sla_seconds, 2);
        assert_eq!(runs[0].violation_seconds, 3);
    }

    #[test]
    fn decisions_join_their_reconfigs() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            run_header(100.0, 30.0),
            interval(0, 150.0, 2, 30.0),
            at(
                Event::new(kinds::PROV_DECISION)
                    .with("id", 1u64)
                    .with("interval", 0u64)
                    .with("machines", 2u64)
                    .with("target", 4u64)
                    .with("reason", "planned")
                    .with("trigger", 150.0)
                    .with("peak", 380.0)
                    .with("cost", 12.5)
                    .with("lead", 10u64)
                    .with("rate", 1.0),
                10.0,
            ),
            at(
                Event::new(kinds::PROV_RECONFIG)
                    .with("id", 1u64)
                    .with("from", 2u64)
                    .with("to", 4u64)
                    .with("start", 10.0)
                    .with("duration_s", 50.0)
                    .with("chunks", 64u64)
                    .with("rows", 4096u64)
                    .with("bytes", 1_000_000u64)
                    .with("fences", 3u64),
                60.0,
            ),
            span(kinds::SPAN_END, 300.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        let r = &runs[0];
        assert_eq!(r.decisions.len(), 1);
        assert_eq!(r.reconfigs.len(), 1);
        let joined = r.reconfig_of(1).map(|m| (m.chunks, m.fences));
        assert_eq!(joined, Some((64, 3)));
        assert!(r.reconfig_of(0).is_none());
        let text = render(&runs);
        assert!(text.contains("capacity ledger"));
        assert!(text.contains("planned"));
        assert!(text.contains("64 chunks"));
        let times = decision_times(&runs);
        assert_eq!(times, vec![(10.0, 300.0)]);
    }

    #[test]
    fn metrics_cover_ledger_decisions_and_accuracy() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            run_header(100.0, 30.0),
            interval(0, 150.0, 2, 30.0),
            interval(1, 450.0, 2, 30.0),
            forecast(1, 1, 400.0, 450.0),
            span(kinds::SPAN_END, 60.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        let m = metrics(&runs);
        let get = |k: &str| {
            m.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        assert_eq!(get("prov.run0.provisioned_machine_s"), 120.0);
        assert_eq!(get("prov.run0.ideal_machine_s"), 210.0);
        assert_eq!(get("prov.run0.under_provision_machine_s"), 90.0);
        assert_eq!(get("prov.run0.decisions"), 0.0);
        assert!((get("prov.run0.mape") - 100.0 / 9.0).abs() < 1e-6);
        assert_eq!(get("prov.total.under_provision_machine_s"), 90.0);
    }

    #[test]
    fn sim_runs_without_prov_events_are_dropped() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            at(Event::new(kinds::SECOND).with("p99", 0.1), 1.0),
            span(kinds::SPAN_END, 10.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        assert!(analyze(&events).is_empty());
    }

    #[test]
    fn prov_events_without_sim_spans_form_an_implicit_run() {
        let mut events = vec![run_header(100.0, 30.0), interval(0, 50.0, 1, 30.0)];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "0:trace");
        assert_eq!(runs[0].intervals, 1);
    }
}
