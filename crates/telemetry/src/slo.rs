//! SLA-window detection and end-to-end latency attribution over a trace.
//!
//! The simulator decomposes every transaction's latency into queueing,
//! execution, and migration-interference ("stall") time and publishes the
//! per-second sums on `second` events (`attr_queue`/`attr_exec`/
//! `attr_stall`/`attr_total`; the TEL-06 identity is
//! `queue + exec + stall == total`). This module reads a trace back,
//! segments it into simulator runs (top-level `detailed_sim`/`fast_sim`
//! spans — a merged fig9-style trace holds one run per approach), finds
//! SLA-violation windows (maximal stretches of seconds whose p99 exceeds
//! the 500 ms SLA, tolerating 1-second gaps), and correlates each window
//! with the reconfiguration spans and chunk moves active at the time.
//! That turns the paper's headline claim — reactive provisioning blows
//! the SLA *because of* migration interference, predictive holds it —
//! into a measured, regression-gated artifact (`slo.*` summary metrics).

use crate::event::{kinds, span_names, Event};
use std::fmt::Write as _;

/// The SLA threshold in seconds (the paper's 500 ms; mirrors
/// `pstore_sim::latency::SLA_THRESHOLD_S`).
pub const SLA_THRESHOLD_S: f64 = 0.5;

/// Attribution lead, in seconds: migration activity ending at most this
/// long before a violation window still counts as overlapping it — the
/// queues a chunk burst builds keep violating after the last chunk lands.
pub const MIGRATION_LEAD_S: f64 = 5.0;

/// A reconfiguration span reconstructed inside one run.
#[derive(Debug, Clone)]
pub struct ReconfigSpan {
    /// Start time (sim seconds).
    pub start: f64,
    /// End time; for a span still open at end of run, the run's last
    /// timestamp.
    pub end: f64,
    /// Machine count before, if recorded.
    pub from: Option<u64>,
    /// Machine count after, if recorded.
    pub to: Option<u64>,
    /// Chunk moves observed while the span was open.
    pub chunk_moves: u64,
}

/// One SLA-violation window: a maximal run of violating seconds
/// (`p99 > SLA_THRESHOLD_S`), tolerating single-second gaps.
#[derive(Debug, Clone)]
pub struct SlaWindow {
    /// First violating second (inclusive).
    pub start: u64,
    /// Last violating second (inclusive).
    pub end: u64,
    /// Violating seconds inside the window (gaps excluded).
    pub violation_seconds: u64,
    /// Worst p99 inside the window.
    pub peak_p99: f64,
    /// Migration-stall txn-seconds accumulated over the window.
    pub stall_s: f64,
    /// Chunk moves inside `[start - MIGRATION_LEAD_S, end + 1]`.
    pub chunk_moves: u64,
    /// Index (into [`RunSlo::reconfigs`]) of the first reconfiguration
    /// span overlapping the window (with the lead), if any.
    pub reconfig: Option<usize>,
}

impl SlaWindow {
    /// Wall-clock length of the window in seconds.
    pub fn len_s(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Whether the window is attributable to migration activity: an
    /// overlapping reconfiguration span or chunk moves in range.
    pub fn migration_attributed(&self) -> bool {
        self.reconfig.is_some() || self.chunk_moves > 0
    }
}

/// Attribution and SLA analysis of one simulator run.
#[derive(Debug, Clone, Default)]
pub struct RunSlo {
    /// Run label: `{index}:{span name}` (or `0:trace` for a trace with no
    /// simulator spans).
    pub label: String,
    /// `second` events observed.
    pub seconds: u64,
    /// Total queueing txn-seconds.
    pub queue_s: f64,
    /// Total execution txn-seconds.
    pub exec_s: f64,
    /// Total migration-stall txn-seconds.
    pub stall_s: f64,
    /// Total end-to-end txn-seconds (`queue + exec + stall`).
    pub total_s: f64,
    /// Seconds whose p99 exceeded the SLA.
    pub violation_seconds: u64,
    /// Violation windows, in time order.
    pub windows: Vec<SlaWindow>,
    /// Reconfiguration spans of this run, in start order.
    pub reconfigs: Vec<ReconfigSpan>,
    /// Trace timestamps of the violating `second` events (for overlays).
    pub violation_times: Vec<f64>,
}

/// Working state while a run is being scanned.
#[derive(Default)]
struct RunBuilder {
    label: String,
    seconds: u64,
    queue_s: f64,
    exec_s: f64,
    stall_s: f64,
    total_s: f64,
    /// `(second, p99, attr_stall, t)` of violating seconds, in order.
    violations: Vec<(u64, f64, f64, f64)>,
    reconfigs: Vec<ReconfigSpan>,
    /// id -> index into `reconfigs` for spans still open.
    open_reconfigs: Vec<(u64, usize)>,
    chunk_moves: Vec<f64>,
    t_max: f64,
}

impl RunBuilder {
    fn new(label: String) -> Self {
        RunBuilder {
            label,
            t_max: f64::NEG_INFINITY,
            ..RunBuilder::default()
        }
    }

    fn observe(&mut self, ev: &Event) {
        if let Some(t) = ev.t {
            self.t_max = self.t_max.max(t);
        }
        match ev.kind.as_str() {
            kinds::SECOND => {
                self.seconds += 1;
                self.queue_s += ev.field_f64("attr_queue").unwrap_or(0.0);
                self.exec_s += ev.field_f64("attr_exec").unwrap_or(0.0);
                let stall = ev.field_f64("attr_stall").unwrap_or(0.0);
                self.stall_s += stall;
                self.total_s += ev.field_f64("attr_total").unwrap_or(0.0);
                let p99 = ev.field_f64("p99").unwrap_or(0.0);
                if p99 > SLA_THRESHOLD_S {
                    let second = ev.field_u64("second").unwrap_or(self.seconds - 1);
                    #[allow(clippy::cast_precision_loss)] // run lengths far below 2^53
                    let t = ev.t.unwrap_or(second as f64);
                    self.violations.push((second, p99, stall, t));
                }
            }
            kinds::CHUNK_MOVE => {
                if let Some(t) = ev.t {
                    self.chunk_moves.push(t);
                    for &(_, idx) in &self.open_reconfigs {
                        self.reconfigs[idx].chunk_moves += 1;
                    }
                }
            }
            kinds::SPAN_BEGIN if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                if let (Some(id), Some(t)) = (ev.field_u64("id"), ev.t) {
                    self.reconfigs.push(ReconfigSpan {
                        start: t,
                        end: t,
                        from: ev.field_u64("from"),
                        to: ev.field_u64("to"),
                        chunk_moves: 0,
                    });
                    self.open_reconfigs.push((id, self.reconfigs.len() - 1));
                }
            }
            kinds::SPAN_END if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                if let Some(id) = ev.field_u64("id") {
                    if let Some(pos) = self.open_reconfigs.iter().position(|&(i, _)| i == id) {
                        let (_, idx) = self.open_reconfigs.remove(pos);
                        self.reconfigs[idx].end = ev.t.unwrap_or(self.reconfigs[idx].start);
                    }
                }
            }
            _ => {}
        }
    }

    fn finish(mut self) -> RunSlo {
        // Spans still open at end of run extend to the last timestamp.
        for (_, idx) in self.open_reconfigs.drain(..) {
            if self.t_max.is_finite() {
                self.reconfigs[idx].end = self.t_max.max(self.reconfigs[idx].start);
            }
        }
        // Merge violating seconds into windows, tolerating 1-second gaps.
        let mut windows: Vec<SlaWindow> = Vec::new();
        for &(second, p99, stall, _) in &self.violations {
            match windows.last_mut() {
                Some(w) if second <= w.end + 2 => {
                    w.end = w.end.max(second);
                    w.violation_seconds += 1;
                    w.peak_p99 = w.peak_p99.max(p99);
                    w.stall_s += stall;
                }
                _ => windows.push(SlaWindow {
                    start: second,
                    end: second,
                    violation_seconds: 1,
                    peak_p99: p99,
                    stall_s: stall,
                    chunk_moves: 0,
                    reconfig: None,
                }),
            }
        }
        // Correlate each window with migration activity.
        #[allow(clippy::cast_precision_loss)] // run lengths far below 2^53
        for w in &mut windows {
            let lo = w.start as f64 - MIGRATION_LEAD_S;
            let hi = w.end as f64 + 1.0;
            w.chunk_moves = u64::try_from(
                self.chunk_moves
                    .iter()
                    .filter(|&&t| t >= lo && t <= hi)
                    .count(),
            )
            .unwrap_or(u64::MAX);
            w.reconfig = self
                .reconfigs
                .iter()
                .position(|r| r.start <= hi && r.end >= lo);
        }
        RunSlo {
            label: self.label,
            seconds: self.seconds,
            queue_s: self.queue_s,
            exec_s: self.exec_s,
            stall_s: self.stall_s,
            total_s: self.total_s,
            violation_seconds: u64::try_from(self.violations.len()).unwrap_or(u64::MAX),
            windows,
            reconfigs: self.reconfigs,
            violation_times: self.violations.iter().map(|&(_, _, _, t)| t).collect(),
        }
    }
}

/// Segments a trace into simulator runs and analyzes each.
///
/// A run is everything between a top-level (span depth 0)
/// `detailed_sim`/`fast_sim` `span_begin` and its matching end. Traces
/// without simulator spans yield a single implicit run labelled
/// `0:trace` when they contain any `second` events.
pub fn analyze(events: &[Event]) -> Vec<RunSlo> {
    let mut runs: Vec<RunSlo> = Vec::new();
    let mut current: Option<(RunBuilder, usize)> = None; // builder + its base depth
    let mut depth: usize = 0;
    for ev in events {
        let begins = ev.kind == kinds::SPAN_BEGIN;
        let ends = ev.kind == kinds::SPAN_END;
        let name = ev.field_str("name").unwrap_or("");
        let is_sim = name == span_names::DETAILED_SIM || name == span_names::FAST_SIM;
        if begins && is_sim && current.as_ref().is_none_or(|&(_, base)| depth == base) {
            // A sim span at the segmentation depth starts a new run (and
            // closes any implicit run that was accumulating).
            if let Some((b, _)) = current.take() {
                runs.push(b.finish());
            }
            current = Some((RunBuilder::new(format!("{}:{name}", runs.len())), depth + 1));
        }
        if begins {
            depth += 1;
        }
        if let Some((b, _)) = current.as_mut() {
            b.observe(ev);
        } else if ev.kind == kinds::SECOND {
            // Trace without simulator spans: accumulate an implicit run.
            let mut b = RunBuilder::new(format!("{}:trace", runs.len()));
            b.observe(ev);
            current = Some((b, 0));
        }
        if ends {
            depth = depth.saturating_sub(1);
            let closes_run = matches!(&current, Some((_, base)) if is_sim && depth + 1 == *base);
            if closes_run {
                if let Some((b, _)) = current.take() {
                    runs.push(b.finish());
                }
            }
        }
    }
    if let Some((b, _)) = current.take() {
        runs.push(b.finish());
    }
    runs
}

/// Flattens the analysis into `pstore-run-summary/v1` metrics:
/// `slo.run{i}.{windows,migration_windows,violation_seconds,stall_s}`
/// per run, plus cluster-wide totals under `slo.total.*`.
pub fn metrics(runs: &[RunSlo]) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    #[allow(clippy::cast_precision_loss)] // counts far below 2^53
    for (i, r) in runs.iter().enumerate() {
        let mig = r
            .windows
            .iter()
            .filter(|w| w.migration_attributed())
            .count();
        out.push((format!("slo.run{i}.windows"), r.windows.len() as f64));
        out.push((format!("slo.run{i}.migration_windows"), mig as f64));
        out.push((
            format!("slo.run{i}.violation_seconds"),
            r.violation_seconds as f64,
        ));
        out.push((format!("slo.run{i}.stall_s"), r.stall_s));
    }
    #[allow(clippy::cast_precision_loss)] // counts far below 2^53
    if !runs.is_empty() {
        out.push((
            "slo.total.windows".to_string(),
            runs.iter().map(|r| r.windows.len()).sum::<usize>() as f64,
        ));
        out.push((
            "slo.total.violation_seconds".to_string(),
            runs.iter().map(|r| r.violation_seconds).sum::<u64>() as f64,
        ));
        out.push((
            "slo.total.stall_s".to_string(),
            runs.iter().map(|r| r.stall_s).sum::<f64>(),
        ));
    }
    out
}

/// All violating-second timestamps across runs (for timeline overlays).
pub fn violation_times(runs: &[RunSlo]) -> Vec<f64> {
    let mut t: Vec<f64> = runs
        .iter()
        .flat_map(|r| r.violation_times.iter().copied())
        .collect();
    t.sort_by(f64::total_cmp);
    t
}

/// Renders the attribution table and per-window report.
pub fn render(runs: &[RunSlo]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== latency attribution (txn-seconds per run) ==");
    let _ = writeln!(
        out,
        "  {:<16} {:>8} {:>11} {:>11} {:>11} {:>7} {:>7} {:>8} {:>8}",
        "run", "seconds", "queue_s", "exec_s", "stall_s", "stall%", "viol_s", "windows", "mig-win"
    );
    for r in runs {
        let stall_pct = if r.total_s > 0.0 {
            100.0 * r.stall_s / r.total_s
        } else {
            0.0
        };
        let mig = r
            .windows
            .iter()
            .filter(|w| w.migration_attributed())
            .count();
        let _ = writeln!(
            out,
            "  {:<16} {:>8} {:>11.2} {:>11.2} {:>11.2} {:>6.2}% {:>7} {:>8} {:>8}",
            r.label,
            r.seconds,
            r.queue_s,
            r.exec_s,
            r.stall_s,
            stall_pct,
            r.violation_seconds,
            r.windows.len(),
            mig
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "== SLA-violation windows (p99 > {SLA_THRESHOLD_S}s) =="
    );
    let mut any = false;
    for r in runs {
        for w in &r.windows {
            any = true;
            let attribution = match w.reconfig {
                Some(idx) => {
                    let rc = &r.reconfigs[idx];
                    let from = rc.from.map_or("?".to_string(), |v| v.to_string());
                    let to = rc.to.map_or("?".to_string(), |v| v.to_string());
                    format!(
                        "reconfig #{idx} ({from}->{to} machines, t={:.1}s..{:.1}s, {} chunks in range)",
                        rc.start, rc.end, w.chunk_moves
                    )
                }
                None if w.chunk_moves > 0 => {
                    format!("{} chunk moves in range (no reconfig span)", w.chunk_moves)
                }
                None => "no migration activity in range".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:<16} t={}s..{}s ({}s, {} violating)  peak p99 {:.3}s  stall {:.2}s  {attribution}",
                r.label,
                w.start,
                w.end,
                w.len_s(),
                w.violation_seconds,
                w.peak_p99,
                w.stall_s
            );
        }
    }
    if !any {
        let _ = writeln!(out, "  (none)");
    }
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp)] // tests assert exact arithmetic
    use super::*;

    fn seq(events: &mut [Event]) {
        for (i, ev) in events.iter_mut().enumerate() {
            ev.seq = u64::try_from(i).unwrap_or(u64::MAX) + 1;
        }
    }

    fn second(t: f64, second: u64, p99: f64, stall: f64) -> Event {
        let mut ev = Event::new(kinds::SECOND)
            .with("second", second)
            .with("p99", p99)
            .with("attr_queue", 1.0)
            .with("attr_exec", 2.0)
            .with("attr_stall", stall)
            .with("attr_total", 3.0 + stall);
        ev.t = Some(t);
        ev
    }

    fn span(kind: &str, t: f64, id: u64, name: &str) -> Event {
        let mut ev = Event::new(kind).with("id", id).with("name", name);
        ev.t = Some(t);
        ev
    }

    #[test]
    fn windows_merge_across_single_second_gaps() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            second(10.0, 10, 0.9, 0.5),
            second(11.0, 11, 0.1, 0.0), // 1-second gap: same window
            second(12.0, 12, 0.8, 0.3),
            second(20.0, 20, 0.7, 0.0), // far away: new window
            span(kinds::SPAN_END, 30.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs.len(), 1);
        let r = &runs[0];
        assert_eq!(r.windows.len(), 2);
        assert_eq!((r.windows[0].start, r.windows[0].end), (10, 12));
        assert_eq!(r.windows[0].violation_seconds, 2);
        assert_eq!(r.windows[0].peak_p99, 0.9);
        assert!((r.windows[0].stall_s - 0.8).abs() < 1e-12);
        assert_eq!((r.windows[1].start, r.windows[1].end), (20, 20));
        assert_eq!(r.violation_seconds, 3);
    }

    #[test]
    fn windows_overlapping_migration_are_attributed() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            span(kinds::SPAN_BEGIN, 8.0, 2, kinds::SPAN_RECONFIG)
                .with("from", 2u64)
                .with("to", 4u64),
            {
                let mut mv = Event::new(kinds::CHUNK_MOVE).with("bytes", 1024u64);
                mv.t = Some(9.0);
                mv
            },
            second(10.0, 10, 0.9, 1.5),
            span(kinds::SPAN_END, 11.0, 2, kinds::SPAN_RECONFIG),
            second(40.0, 40, 0.6, 0.0), // far from any migration
            span(kinds::SPAN_END, 50.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        let r = &runs[0];
        assert_eq!(r.windows.len(), 2);
        assert!(r.windows[0].migration_attributed());
        assert_eq!(r.windows[0].reconfig, Some(0));
        assert_eq!(r.windows[0].chunk_moves, 1);
        assert!(!r.windows[1].migration_attributed());
        assert_eq!(r.reconfigs.len(), 1);
        assert_eq!(r.reconfigs[0].chunk_moves, 1);
    }

    #[test]
    fn multi_run_traces_segment_per_sim_span() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            second(5.0, 5, 0.9, 0.2),
            span(kinds::SPAN_END, 10.0, 1, span_names::DETAILED_SIM),
            span(kinds::SPAN_BEGIN, 0.0, 2, span_names::DETAILED_SIM),
            second(5.0, 5, 0.1, 0.0),
            span(kinds::SPAN_END, 10.0, 2, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "0:detailed_sim");
        assert_eq!(runs[1].label, "1:detailed_sim");
        assert_eq!(runs[0].windows.len(), 1);
        assert_eq!(runs[1].windows.len(), 0);
        let m = metrics(&runs);
        let get = |k: &str| {
            m.iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN)
        };
        assert_eq!(get("slo.run0.windows"), 1.0);
        assert_eq!(get("slo.run1.windows"), 0.0);
        assert_eq!(get("slo.total.violation_seconds"), 1.0);
        assert_eq!(get("slo.run0.stall_s"), 0.2);
    }

    #[test]
    fn traces_without_sim_spans_form_an_implicit_run() {
        let mut events = vec![second(1.0, 1, 0.9, 0.0), second(2.0, 2, 0.8, 0.0)];
        seq(&mut events);
        let runs = analyze(&events);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].label, "0:trace");
        assert_eq!(runs[0].violation_seconds, 2);
        assert_eq!(violation_times(&runs), vec![1.0, 2.0]);
    }

    #[test]
    fn attribution_totals_accumulate() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            second(1.0, 1, 0.1, 0.5),
            second(2.0, 2, 0.1, 0.25),
            span(kinds::SPAN_END, 3.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let r = &analyze(&events)[0];
        assert_eq!(r.queue_s, 2.0);
        assert_eq!(r.exec_s, 4.0);
        assert_eq!(r.stall_s, 0.75);
        assert_eq!(r.total_s, 6.75);
        assert_eq!(r.seconds, 2);
    }

    #[test]
    fn render_names_the_attributed_reconfig() {
        let mut events = vec![
            span(kinds::SPAN_BEGIN, 0.0, 1, span_names::DETAILED_SIM),
            span(kinds::SPAN_BEGIN, 8.0, 2, kinds::SPAN_RECONFIG)
                .with("from", 2u64)
                .with("to", 4u64),
            second(10.0, 10, 0.9, 1.0),
            span(kinds::SPAN_END, 12.0, 2, kinds::SPAN_RECONFIG),
            span(kinds::SPAN_END, 20.0, 1, span_names::DETAILED_SIM),
        ];
        seq(&mut events);
        let runs = analyze(&events);
        let text = render(&runs);
        assert!(text.contains("latency attribution"));
        assert!(text.contains("0:detailed_sim"));
        assert!(text.contains("reconfig #0 (2->4 machines"));
        let empty = render(&[]);
        assert!(empty.contains("(none)"));
    }
}
