//! Trace reading and run reports.
//!
//! A trace is a JSONL file (one [`Event`] per line) written by
//! [`crate::JsonlSink`]. This module reads traces back, validates span
//! pairing and nesting (the checks behind `pstore-verify`'s `TEL-01` and
//! `TEL-02`), and renders the run report printed by the `pstore-trace`
//! binary.

use crate::event::{kinds, Event};
use crate::json;
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// A line that failed to parse: line number (1-based) and message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineError {
    /// 1-based line number in the trace file.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

/// Reads a JSONL trace. Blank lines are skipped; malformed lines are
/// collected as [`LineError`]s rather than aborting the read, so a
/// truncated trace still yields its prefix.
///
/// # Errors
/// Returns `Err` only for I/O failures (missing/unreadable file).
pub fn read_jsonl(path: &Path) -> std::io::Result<(Vec<Event>, Vec<LineError>)> {
    let text = std::fs::read_to_string(path)?;
    let mut events = Vec::new();
    let mut errors = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let parsed = json::parse(line)
            .map_err(|e| e.to_string())
            .and_then(|v| Event::from_json(&v));
        match parsed {
            Ok(ev) => events.push(ev),
            Err(msg) => errors.push(LineError { line: idx + 1, msg }),
        }
    }
    Ok((events, errors))
}

/// A structural problem with the spans in a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum SpanError {
    /// `span_end` whose id was never opened (or already closed).
    EndWithoutBegin {
        /// Offending event's sequence number.
        seq: u64,
        /// The unmatched span id.
        id: u64,
    },
    /// `span_begin` reusing an id that is still open.
    DuplicateBegin {
        /// Offending event's sequence number.
        seq: u64,
        /// The reused span id.
        id: u64,
    },
    /// `span_end` that closes a span other than the innermost open one
    /// (spans must nest LIFO).
    BadNesting {
        /// Offending event's sequence number.
        seq: u64,
        /// The id that was closed.
        closed: u64,
        /// The innermost open id that should have closed first.
        expected: u64,
    },
    /// Span still open at end of trace.
    Unclosed {
        /// The dangling span id.
        id: u64,
        /// The span's name, for the report.
        name: String,
    },
    /// Span event missing its `id` field.
    MissingId {
        /// Offending event's sequence number.
        seq: u64,
    },
}

impl std::fmt::Display for SpanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpanError::EndWithoutBegin { seq, id } => {
                write!(f, "seq {seq}: span_end for id {id} which is not open")
            }
            SpanError::DuplicateBegin { seq, id } => {
                write!(f, "seq {seq}: span_begin reuses open id {id}")
            }
            SpanError::BadNesting {
                seq,
                closed,
                expected,
            } => write!(
                f,
                "seq {seq}: span {closed} closed while span {expected} is still innermost"
            ),
            SpanError::Unclosed { id, name } => {
                write!(f, "span {id} (\"{name}\") never closed")
            }
            SpanError::MissingId { seq } => {
                write!(f, "seq {seq}: span event without an \"id\" field")
            }
        }
    }
}

/// Validates span pairing and LIFO nesting over a trace.
///
/// Every `span_begin` must have exactly one matching `span_end`, ends
/// must close the innermost open span, and no span may remain open at
/// end of trace. This is the shared implementation behind `TEL-01`
/// (pairing) and `TEL-02` (nesting) in `pstore-verify`.
pub fn span_errors(events: &[Event]) -> Vec<SpanError> {
    let mut errors = Vec::new();
    // Stack of (id, name) for open spans, in open order.
    let mut stack: Vec<(u64, String)> = Vec::new();
    for ev in events {
        match ev.kind.as_str() {
            kinds::SPAN_BEGIN => match ev.field_u64("id") {
                None => errors.push(SpanError::MissingId { seq: ev.seq }),
                Some(id) => {
                    if stack.iter().any(|(open, _)| *open == id) {
                        errors.push(SpanError::DuplicateBegin { seq: ev.seq, id });
                    } else {
                        let name = ev.field_str("name").unwrap_or("?").to_string();
                        stack.push((id, name));
                    }
                }
            },
            kinds::SPAN_END => match ev.field_u64("id") {
                None => errors.push(SpanError::MissingId { seq: ev.seq }),
                Some(id) => match stack.last() {
                    Some((top, _)) if *top == id => {
                        stack.pop();
                    }
                    Some((top, _)) if stack.iter().any(|(open, _)| *open == id) => {
                        errors.push(SpanError::BadNesting {
                            seq: ev.seq,
                            closed: id,
                            expected: *top,
                        });
                        stack.retain(|(open, _)| *open != id);
                    }
                    _ => errors.push(SpanError::EndWithoutBegin { seq: ev.seq, id }),
                },
            },
            _ => {}
        }
    }
    for (id, name) in stack {
        errors.push(SpanError::Unclosed { id, name });
    }
    errors
}

/// An ordering problem in a trace (the `TEL-04` invariant).
#[derive(Debug, Clone, PartialEq)]
pub enum OrderError {
    /// `seq` did not strictly increase between consecutive events.
    SeqNotIncreasing {
        /// Previous event's sequence number.
        prev: u64,
        /// Offending event's sequence number.
        seq: u64,
    },
    /// `t` went backwards while spans were still open.
    TimeRegression {
        /// Offending event's sequence number.
        seq: u64,
        /// The previous timestamp.
        prev_t: f64,
        /// The regressed timestamp.
        t: f64,
    },
}

impl std::fmt::Display for OrderError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OrderError::SeqNotIncreasing { prev, seq } => {
                write!(f, "seq {seq} follows seq {prev}: not strictly increasing")
            }
            OrderError::TimeRegression { seq, prev_t, t } => {
                write!(f, "seq {seq}: t={t} regresses below t={prev_t} mid-run")
            }
        }
    }
}

/// Validates trace ordering (`TEL-04` in `pstore-verify`): `seq` must
/// strictly increase, and the sim clock `t` must be non-decreasing —
/// except that `t` may reset when no span is open, because a merged
/// sweep trace restarts simulated time at 0 for each cell (cell
/// boundaries always coincide with an empty span stack).
pub fn order_errors(events: &[Event]) -> Vec<OrderError> {
    let mut errors = Vec::new();
    let mut prev_seq: Option<u64> = None;
    let mut prev_t: Option<f64> = None;
    let mut open_depth: usize = 0;
    for ev in events {
        if let Some(prev) = prev_seq {
            if ev.seq <= prev {
                errors.push(OrderError::SeqNotIncreasing { prev, seq: ev.seq });
            }
        }
        prev_seq = Some(ev.seq);
        if let Some(t) = ev.t {
            match prev_t {
                Some(p) if t < p => {
                    if open_depth == 0 {
                        prev_t = Some(t); // legitimate per-cell clock reset
                    } else {
                        errors.push(OrderError::TimeRegression {
                            seq: ev.seq,
                            prev_t: p,
                            t,
                        });
                    }
                }
                _ => prev_t = Some(t),
            }
        }
        match ev.kind.as_str() {
            kinds::SPAN_BEGIN => open_depth += 1,
            kinds::SPAN_END => open_depth = open_depth.saturating_sub(1),
            _ => {}
        }
    }
    errors
}

/// One completed reconfiguration reconstructed from a trace.
#[derive(Debug, Clone)]
pub struct ReconfigSummary {
    /// Start time (sim seconds), if the begin event carried a clock.
    pub start: Option<f64>,
    /// End time (sim seconds), if the end event carried a clock.
    pub end: Option<f64>,
    /// Machine count before.
    pub from: Option<u64>,
    /// Machine count after.
    pub to: Option<u64>,
    /// Chunk-move events observed while this span was open.
    pub chunk_moves: u64,
    /// Bytes moved across those chunk moves.
    pub bytes_moved: u64,
}

/// Aggregated view of a whole trace, renderable as a text report.
#[derive(Debug, Default)]
pub struct RunReport {
    /// Total events in the trace.
    pub events: usize,
    /// Completed reconfigurations, in start order.
    pub reconfigs: Vec<ReconfigSummary>,
    /// Event counts by kind, descending.
    pub kind_counts: Vec<(String, usize)>,
    /// p99 histogram of `second` events outside reconfigurations.
    pub stable_p99: Histogram,
    /// p99 histogram of `second` events during reconfigurations.
    pub reconfig_p99: Histogram,
    /// Throughput histogram over all `second` events.
    pub throughput: Histogram,
    /// Count of `sla_violation` events.
    pub sla_violations: u64,
    /// Count of `planner` events.
    pub planner_calls: u64,
    /// Count of feasible `planner` events.
    pub planner_feasible: u64,
    /// Count of `forecast_predict` events.
    pub forecasts: u64,
    /// Count of `chunk_move` events (anywhere in the trace).
    pub chunk_moves: u64,
    /// Structural span problems (also reported by `pstore-verify`).
    pub span_errors: Vec<SpanError>,
    /// The trailing `metrics_snapshot` event, if the run emitted one.
    pub metrics_snapshot: Option<Event>,
}

impl RunReport {
    /// Builds a report from parsed trace events.
    pub fn from_events(events: &[Event]) -> Self {
        let mut report = RunReport {
            events: events.len(),
            ..RunReport::default()
        };
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        // Open reconfig spans: id -> index into report.reconfigs.
        let mut open_reconfigs: BTreeMap<u64, usize> = BTreeMap::new();

        for ev in events {
            *counts.entry(ev.kind.as_str()).or_insert(0) += 1;
            match ev.kind.as_str() {
                kinds::SPAN_BEGIN if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                    if let Some(id) = ev.field_u64("id") {
                        report.reconfigs.push(ReconfigSummary {
                            start: ev.t,
                            end: None,
                            from: ev.field_u64("from"),
                            to: ev.field_u64("to"),
                            chunk_moves: 0,
                            bytes_moved: 0,
                        });
                        open_reconfigs.insert(id, report.reconfigs.len() - 1);
                    }
                }
                kinds::SPAN_END if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                    if let Some(idx) = ev.field_u64("id").and_then(|id| open_reconfigs.remove(&id))
                    {
                        report.reconfigs[idx].end = ev.t;
                    }
                }
                kinds::CHUNK_MOVE => {
                    report.chunk_moves += 1;
                    let bytes = ev.field_u64("bytes").unwrap_or(0);
                    // Attribute to every open reconfiguration (normally one).
                    for idx in open_reconfigs.values() {
                        report.reconfigs[*idx].chunk_moves += 1;
                        report.reconfigs[*idx].bytes_moved += bytes;
                    }
                }
                kinds::SECOND => {
                    if let Some(p99) = ev.field_f64("p99") {
                        let during = ev
                            .field("reconfiguring")
                            .and_then(crate::Value::as_bool)
                            .unwrap_or(!open_reconfigs.is_empty());
                        if during {
                            report.reconfig_p99.record(p99);
                        } else {
                            report.stable_p99.record(p99);
                        }
                    }
                    if let Some(tp) = ev.field_f64("throughput") {
                        report.throughput.record(tp);
                    }
                }
                kinds::SLA_VIOLATION => report.sla_violations += 1,
                kinds::PLANNER => {
                    report.planner_calls += 1;
                    if ev.field("feasible").and_then(crate::Value::as_bool) == Some(true) {
                        report.planner_feasible += 1;
                    }
                }
                kinds::FORECAST_PREDICT => report.forecasts += 1,
                kinds::METRICS_SNAPSHOT => report.metrics_snapshot = Some(ev.clone()),
                _ => {}
            }
        }

        let mut kind_counts: Vec<(String, usize)> = counts
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect();
        kind_counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        report.kind_counts = kind_counts;
        report.span_errors = span_errors(events);
        report
    }

    /// Renders the human-readable report text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "trace: {} events", self.events);
        let _ = writeln!(out);

        let _ = writeln!(out, "== event kinds ==");
        for (kind, n) in self.kind_counts.iter().take(12) {
            let _ = writeln!(out, "  {kind:<20} {n:>8}");
        }
        let _ = writeln!(out);

        let _ = writeln!(
            out,
            "== reconfigurations ({} total, {} chunk moves) ==",
            self.reconfigs.len(),
            self.chunk_moves
        );
        for (i, r) in self.reconfigs.iter().enumerate() {
            let from = r.from.map_or("?".to_string(), |v| v.to_string());
            let to = r.to.map_or("?".to_string(), |v| v.to_string());
            let window = match (r.start, r.end) {
                (Some(s), Some(e)) => format!("t={s:.1}s..{e:.1}s ({:.1}s)", e - s),
                (Some(s), None) => format!("t={s:.1}s.. (unfinished)"),
                _ => "t=?".to_string(),
            };
            let _ = writeln!(
                out,
                "  #{i:<3} {from:>3} -> {to:<3} machines  {window}  {} chunks, {} bytes",
                r.chunk_moves, r.bytes_moved
            );
        }
        let _ = writeln!(out);

        let _ = writeln!(out, "== per-second latency (p99, seconds) ==");
        let _ = writeln!(
            out,
            "  phase        seconds     p50      p95      p99      max"
        );
        for (label, h) in [
            ("stable", &self.stable_p99),
            ("reconfig", &self.reconfig_p99),
        ] {
            let _ = writeln!(
                out,
                "  {label:<10} {:>8} {:>8.4} {:>8.4} {:>8.4} {:>8.4}",
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max()
            );
        }
        let _ = writeln!(out, "  SLA-violation seconds: {}", self.sla_violations);
        let _ = writeln!(out);

        let _ = writeln!(out, "== counters ==");
        let _ = writeln!(
            out,
            "  planner calls: {} ({} feasible)   forecasts: {}   throughput seconds: {}",
            self.planner_calls,
            self.planner_feasible,
            self.forecasts,
            self.throughput.count()
        );
        if let Some(snap) = &self.metrics_snapshot {
            let _ = writeln!(out, "  metrics snapshot ({} fields):", snap.fields.len());
            for (k, v) in snap.fields.iter().take(24) {
                let rendered = match v {
                    crate::Value::U64(n) => n.to_string(),
                    crate::Value::I64(n) => n.to_string(),
                    crate::Value::F64(n) => format!("{n:.4}"),
                    crate::Value::Bool(b) => b.to_string(),
                    crate::Value::Str(s) => s.clone(),
                };
                let _ = writeln!(out, "    {k:<32} {rendered}");
            }
        }

        if !self.span_errors.is_empty() {
            let _ = writeln!(out);
            let _ = writeln!(out, "== span errors ({}) ==", self.span_errors.len());
            for e in &self.span_errors {
                let _ = writeln!(out, "  {e}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Event;

    fn span(kind: &str, seq: u64, id: u64, name: &str) -> Event {
        let mut ev = Event::new(kind).with("id", id).with("name", name);
        ev.seq = seq;
        ev
    }

    #[test]
    fn well_nested_spans_pass() {
        let events = vec![
            span(kinds::SPAN_BEGIN, 1, 1, "outer"),
            span(kinds::SPAN_BEGIN, 2, 2, "inner"),
            span(kinds::SPAN_END, 3, 2, "inner"),
            span(kinds::SPAN_END, 4, 1, "outer"),
        ];
        assert!(span_errors(&events).is_empty());
    }

    #[test]
    fn detects_unmatched_and_misnested_spans() {
        let unclosed = vec![span(kinds::SPAN_BEGIN, 1, 1, "a")];
        assert!(matches!(
            span_errors(&unclosed)[0],
            SpanError::Unclosed { id: 1, .. }
        ));

        let stray_end = vec![span(kinds::SPAN_END, 1, 9, "a")];
        assert!(matches!(
            span_errors(&stray_end)[0],
            SpanError::EndWithoutBegin { id: 9, .. }
        ));

        let crossed = vec![
            span(kinds::SPAN_BEGIN, 1, 1, "a"),
            span(kinds::SPAN_BEGIN, 2, 2, "b"),
            span(kinds::SPAN_END, 3, 1, "a"),
            span(kinds::SPAN_END, 4, 2, "b"),
        ];
        let errs = span_errors(&crossed);
        assert!(errs.iter().any(|e| matches!(
            e,
            SpanError::BadNesting {
                closed: 1,
                expected: 2,
                ..
            }
        )));

        let dup = vec![
            span(kinds::SPAN_BEGIN, 1, 1, "a"),
            span(kinds::SPAN_BEGIN, 2, 1, "a"),
        ];
        assert!(span_errors(&dup)
            .iter()
            .any(|e| matches!(e, SpanError::DuplicateBegin { id: 1, .. })));
    }

    #[test]
    fn report_reconstructs_reconfig_timeline() {
        let mut events = Vec::new();
        let mut begin = span(kinds::SPAN_BEGIN, 1, 5, kinds::SPAN_RECONFIG)
            .with("from", 2u64)
            .with("to", 4u64);
        begin.t = Some(10.0);
        events.push(begin);
        let mut mv = Event::new(kinds::CHUNK_MOVE).with("bytes", 1000u64);
        mv.seq = 2;
        events.push(mv);
        let mut end = span(kinds::SPAN_END, 3, 5, kinds::SPAN_RECONFIG);
        end.t = Some(25.0);
        events.push(end);
        let mut sec = Event::new(kinds::SECOND)
            .with("p99", 0.04)
            .with("throughput", 500.0)
            .with("reconfiguring", false);
        sec.seq = 4;
        events.push(sec);

        let report = RunReport::from_events(&events);
        assert_eq!(report.reconfigs.len(), 1);
        let r = &report.reconfigs[0];
        assert_eq!(r.from, Some(2));
        assert_eq!(r.to, Some(4));
        assert_eq!(r.chunk_moves, 1);
        assert_eq!(r.bytes_moved, 1000);
        assert_eq!(r.start, Some(10.0));
        assert_eq!(r.end, Some(25.0));
        assert_eq!(report.stable_p99.count(), 1);
        assert_eq!(report.reconfig_p99.count(), 0);
        assert!(report.span_errors.is_empty());
        let text = report.render();
        assert!(text.contains("reconfigurations (1 total"));
    }

    #[test]
    fn order_errors_flags_seq_and_time_regressions() {
        let at = |seq: u64, t: f64, kind: &str| {
            let mut ev = Event::new(kind);
            ev.seq = seq;
            ev.t = Some(t);
            ev
        };
        // Clean, monotone trace.
        let clean = vec![at(1, 0.0, "a"), at(2, 1.0, "b"), at(3, 1.0, "c")];
        assert!(order_errors(&clean).is_empty());

        // Duplicate / regressing seq.
        let dup_seq = vec![at(5, 0.0, "a"), at(5, 1.0, "b"), at(3, 2.0, "c")];
        let errs = order_errors(&dup_seq);
        assert_eq!(errs.len(), 2);
        assert!(matches!(
            errs[0],
            OrderError::SeqNotIncreasing { prev: 5, seq: 5 }
        ));

        // t regression while a span is open is an error...
        let mid_span = vec![
            {
                let mut ev = span(kinds::SPAN_BEGIN, 1, 1, "run");
                ev.t = Some(5.0);
                ev
            },
            at(2, 3.0, "x"),
        ];
        assert!(matches!(
            order_errors(&mid_span)[0],
            OrderError::TimeRegression { seq: 2, .. }
        ));

        // ...but a reset at an empty span stack (sweep cell boundary) is fine.
        let cell_boundary = vec![
            {
                let mut ev = span(kinds::SPAN_BEGIN, 1, 1, "run");
                ev.t = Some(0.0);
                ev
            },
            at(2, 9.0, "x"),
            {
                let mut ev = span(kinds::SPAN_END, 3, 1, "run");
                ev.t = Some(9.0);
                ev
            },
            at(4, 0.0, "next_cell_start"),
        ];
        assert!(order_errors(&cell_boundary).is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri isolation rejects real file I/O")]
    fn read_jsonl_collects_line_errors() {
        let path = std::env::temp_dir().join("pstore_telemetry_trace_test.jsonl");
        std::fs::write(
            &path,
            "{\"seq\":1,\"kind\":\"a\"}\nnot json\n\n{\"seq\":2,\"kind\":\"b\"}\n",
        )
        .unwrap();
        let (events, errors) = read_jsonl(&path).unwrap();
        assert_eq!(events.len(), 2);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 2);
        let _ = std::fs::remove_file(&path);
    }
}
