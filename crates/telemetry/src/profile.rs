//! Span-tree profiler: aggregates `span_begin`/`span_end` pairs from a
//! trace into a self-time/total-time tree.
//!
//! Spans with the same name under the same ancestry are merged into one
//! node (count, summed total), so hot phases of the detailed simulator
//! and engine are visible without an external profiler. Two clocks are
//! supported: the simulated-time stamp `t` (deterministic for a fixed
//! seed — what `pstore-trace profile` uses by default) and the
//! wall-clock stamp `wall_us` (`--wall`, for real CPU cost).
//!
//! The tree renders either as an indented table or as flamegraph-folded
//! text, one line per node: `root;child;leaf <count> <self_us>` —
//! semicolon-joined ancestry, the number of spans merged into the node,
//! and the node's self time in integer microseconds. Re-summing the
//! folded lines reproduces the tree's totals (the `TEL-05` invariant in
//! `pstore-verify`).

use crate::event::{kinds, Event};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Which stamp the profiler aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileClock {
    /// Simulated time (`t`, seconds) — deterministic for a fixed seed.
    Sim,
    /// Wall-clock time (`wall_us`) — real elapsed time, varies run to run.
    Wall,
}

impl ProfileClock {
    fn label(self) -> &'static str {
        match self {
            ProfileClock::Sim => "sim clock",
            ProfileClock::Wall => "wall clock",
        }
    }

    /// The chosen stamp of `ev`, in microseconds.
    fn stamp_us(self, ev: &Event) -> Option<f64> {
        match self {
            ProfileClock::Sim => ev.t.map(|t| t * 1e6),
            #[allow(clippy::cast_precision_loss)] // micros far below 2^53
            ProfileClock::Wall => ev.wall_us.map(|w| w as f64),
        }
    }
}

/// One aggregated node of the profile tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileNode {
    /// Span name.
    pub name: String,
    /// Completed spans merged into this node.
    pub count: u64,
    /// Summed duration of those spans, microseconds.
    pub total_us: f64,
    /// Summed duration of their direct children, microseconds.
    pub child_total_us: f64,
    /// Child nodes, sorted by name.
    pub children: Vec<ProfileNode>,
}

impl ProfileNode {
    /// Self time: total minus time attributed to children (clamped at 0
    /// for display; the unclamped difference is what `TEL-05` checks).
    pub fn self_us(&self) -> f64 {
        (self.total_us - self.child_total_us).max(0.0)
    }
}

/// The aggregated profile of a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Top-level nodes (spans opened with no span above them).
    pub roots: Vec<ProfileNode>,
    /// Span pairs skipped because either endpoint lacked the chosen
    /// clock stamp.
    pub unstamped: usize,
    /// Span events skipped because of structural problems (ends without
    /// begins, spans left open, mis-nested closes). These are reported
    /// in detail by [`crate::trace::span_errors`].
    pub unmatched: usize,
}

/// An open span on the builder's stack.
struct Frame {
    id: u64,
    name: String,
    start_us: Option<f64>,
    child_total_us: f64,
}

/// Per-path aggregate while building.
#[derive(Default)]
struct Agg {
    count: u64,
    total_us: f64,
    child_total_us: f64,
}

impl Profile {
    /// Builds the profile tree from parsed trace events.
    pub fn from_events(events: &[Event], clock: ProfileClock) -> Profile {
        let mut aggs: BTreeMap<Vec<String>, Agg> = BTreeMap::new();
        let mut stack: Vec<Frame> = Vec::new();
        let mut unstamped = 0usize;
        let mut unmatched = 0usize;

        for ev in events {
            match ev.kind.as_str() {
                kinds::SPAN_BEGIN => {
                    let Some(id) = ev.field_u64("id") else {
                        unmatched += 1;
                        continue;
                    };
                    stack.push(Frame {
                        id,
                        name: ev.field_str("name").unwrap_or("?").to_string(),
                        start_us: clock.stamp_us(ev),
                        child_total_us: 0.0,
                    });
                }
                kinds::SPAN_END => {
                    let Some(id) = ev.field_u64("id") else {
                        unmatched += 1;
                        continue;
                    };
                    let Some(pos) = stack.iter().rposition(|f| f.id == id) else {
                        unmatched += 1;
                        continue;
                    };
                    // Anything opened above a mis-nested close is dropped
                    // (its completed children were already attributed).
                    unmatched += stack.len() - pos - 1;
                    stack.truncate(pos + 1);
                    // `pos + 1 == stack.len()`, so this pop always succeeds.
                    let Some(frame) = stack.pop() else { continue };
                    let duration = match (frame.start_us, clock.stamp_us(ev)) {
                        (Some(s), Some(e)) => Some((e - s).max(0.0)),
                        _ => None,
                    };
                    let Some(duration) = duration else {
                        unstamped += 1;
                        continue;
                    };
                    let path: Vec<String> = stack
                        .iter()
                        .map(|f| f.name.clone())
                        .chain(std::iter::once(frame.name))
                        .collect();
                    let agg = aggs.entry(path).or_default();
                    agg.count += 1;
                    agg.total_us += duration;
                    agg.child_total_us += frame.child_total_us;
                    if let Some(parent) = stack.last_mut() {
                        parent.child_total_us += duration;
                    }
                }
                _ => {}
            }
        }
        unmatched += stack.len();

        Profile {
            roots: assemble(&aggs),
            unstamped,
            unmatched,
        }
    }

    /// Renders the indented self/total table.
    pub fn render(&self, clock: ProfileClock) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== span profile ({}) ==", clock.label());
        let _ = writeln!(
            out,
            "  {:<40} {:>8} {:>14} {:>14}",
            "span", "count", "total_us", "self_us"
        );
        fn walk(out: &mut String, node: &ProfileNode, depth: usize) {
            let indent = "  ".repeat(depth);
            let _ = writeln!(
                out,
                "  {:<40} {:>8} {:>14} {:>14}",
                format!("{indent}{}", node.name),
                node.count,
                round_us(node.total_us),
                round_us(node.self_us()),
            );
            for child in &node.children {
                walk(out, child, depth + 1);
            }
        }
        for root in &self.roots {
            walk(&mut out, root, 0);
        }
        if self.roots.is_empty() {
            let _ = writeln!(out, "  (no completed spans with this clock)");
        }
        if self.unstamped > 0 || self.unmatched > 0 {
            let _ = writeln!(
                out,
                "  ({} span pair(s) unstamped, {} span event(s) unmatched)",
                self.unstamped, self.unmatched
            );
        }
        out
    }

    /// Renders flamegraph-folded text: one `path;to;node <count>
    /// <self_us>` line per node, sorted by path.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        fn walk(out: &mut String, node: &ProfileNode, prefix: &str) {
            let path = if prefix.is_empty() {
                node.name.clone()
            } else {
                format!("{prefix};{}", node.name)
            };
            let _ = writeln!(out, "{path} {} {}", node.count, round_us(node.self_us()));
            for child in &node.children {
                walk(out, child, &path);
            }
        }
        for root in &self.roots {
            walk(&mut out, root, "");
        }
        out
    }

    /// All nodes with their depth, in render order (depth-first).
    pub fn nodes(&self) -> Vec<(&ProfileNode, usize)> {
        let mut out = Vec::new();
        fn walk<'a>(out: &mut Vec<(&'a ProfileNode, usize)>, node: &'a ProfileNode, depth: usize) {
            out.push((node, depth));
            for child in &node.children {
                walk(out, child, depth + 1);
            }
        }
        for root in &self.roots {
            walk(&mut out, root, 0);
        }
        out
    }

    /// Tree-conservation problems (`TEL-05`, first half): every node's
    /// total must cover the sum of its direct children's totals, and the
    /// node's recorded `child_total_us` must equal that sum.
    pub fn conservation_errors(&self) -> Vec<String> {
        let mut errors = Vec::new();
        for (node, _) in self.nodes() {
            let child_sum: f64 = node.children.iter().map(|c| c.total_us).sum();
            let tolerance = 1e-9 * node.total_us.abs() + 1e-3;
            if child_sum > node.total_us + tolerance {
                errors.push(format!(
                    "node \"{}\": children total {child_sum:.3}us exceeds own total {:.3}us",
                    node.name, node.total_us
                ));
            }
            if (node.child_total_us - child_sum).abs() > tolerance {
                errors.push(format!(
                    "node \"{}\": recorded child total {:.3}us != children sum {child_sum:.3}us",
                    node.name, node.child_total_us
                ));
            }
        }
        errors
    }

    /// Folded-resum problems (`TEL-05`, second half): parsing
    /// [`Profile::folded`] back and re-summing self times over each
    /// subtree must reproduce every node's total (up to the 1 µs/line
    /// rounding of the folded format).
    pub fn folded_resum_errors(&self, folded: &str) -> Vec<String> {
        let lines = match parse_folded(folded) {
            Ok(lines) => lines,
            Err(e) => return vec![format!("folded output unparseable: {e}")],
        };
        let by_path: BTreeMap<&[String], &FoldedLine> =
            lines.iter().map(|l| (l.path.as_slice(), l)).collect();
        let mut errors = Vec::new();
        let mut prefix: Vec<String> = Vec::new();
        for (node, depth) in self.nodes() {
            prefix.truncate(depth);
            prefix.push(node.name.clone());
            let Some(line) = by_path.get(prefix.as_slice()) else {
                errors.push(format!("node \"{}\" missing from folded output", node.name));
                continue;
            };
            if line.count != node.count {
                errors.push(format!(
                    "node \"{}\": folded count {} != tree count {}",
                    node.name, line.count, node.count
                ));
            }
            // Re-sum self times over the subtree rooted here.
            let mut resum = 0.0f64;
            let mut nodes_in_subtree = 0u64;
            for l in &lines {
                if l.path.len() >= prefix.len() && l.path[..prefix.len()] == prefix[..] {
                    #[allow(clippy::cast_precision_loss)] // micros far below 2^53
                    {
                        resum += l.self_us as f64;
                    }
                    nodes_in_subtree += 1;
                }
            }
            // Each folded line is rounded to the nearest µs, and clamped
            // self times can under-report by at most the clamp slack.
            #[allow(clippy::cast_precision_loss)] // node counts far below 2^53
            let tolerance = nodes_in_subtree as f64 + 1e-6 * node.total_us.abs() + 1.0;
            if (resum - node.total_us).abs() > tolerance {
                errors.push(format!(
                    "node \"{}\": folded subtree self-sum {resum:.3}us != total {:.3}us",
                    node.name, node.total_us
                ));
            }
        }
        errors
    }
}

/// One parsed line of flamegraph-folded output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedLine {
    /// Semicolon-split ancestry, root first.
    pub path: Vec<String>,
    /// Spans merged into the node.
    pub count: u64,
    /// Node self time, integer microseconds.
    pub self_us: u64,
}

/// Parses [`Profile::folded`] output back into lines.
///
/// # Errors
/// Returns a description of the first malformed line.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedLine>, String> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let mut parts = line.rsplitn(3, ' ');
        let (Some(self_us), Some(count), Some(path)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!("line {}: expected `path count self_us`", idx + 1));
        };
        let count = count
            .parse::<u64>()
            .map_err(|e| format!("line {}: bad count: {e}", idx + 1))?;
        let self_us = self_us
            .parse::<u64>()
            .map_err(|e| format!("line {}: bad self_us: {e}", idx + 1))?;
        out.push(FoldedLine {
            path: path.split(';').map(str::to_string).collect(),
            count,
            self_us,
        });
    }
    Ok(out)
}

/// Nearest-microsecond rounding for display (u64 keeps the folded format
/// integer and platform-independent).
fn round_us(us: f64) -> u64 {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // clamped non-negative, far below 2^53 for any real run
    {
        us.round().max(0.0) as u64
    }
}

/// Assembles the sorted path->aggregate map into a tree.
fn assemble(aggs: &BTreeMap<Vec<String>, Agg>) -> Vec<ProfileNode> {
    let mut roots: Vec<ProfileNode> = Vec::new();
    for (path, agg) in aggs {
        let mut level = &mut roots;
        for (i, name) in path.iter().enumerate() {
            let pos = match level.iter().position(|n| &n.name == name) {
                Some(pos) => pos,
                None => {
                    // Interior nodes missing their own aggregate (possible
                    // when a parent never completed) start empty.
                    level.push(ProfileNode {
                        name: name.clone(),
                        count: 0,
                        total_us: 0.0,
                        child_total_us: 0.0,
                        children: Vec::new(),
                    });
                    level.sort_by(|a, b| a.name.cmp(&b.name));
                    match level.iter().position(|n| &n.name == name) {
                        Some(pos) => pos,
                        None => continue, // unreachable: just inserted
                    }
                }
            };
            if i + 1 == path.len() {
                level[pos].count += agg.count;
                level[pos].total_us += agg.total_us;
                level[pos].child_total_us += agg.child_total_us;
            }
            level = &mut level[pos].children;
        }
    }
    roots
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(kind: &str, seq: u64, id: u64, name: &str, t: f64) -> Event {
        let mut ev = Event::new(kind).with("id", id).with("name", name);
        ev.seq = seq;
        ev.t = Some(t);
        // Test fixture times are small non-negative floats, so the
        // microsecond conversion fits u64 without truncation.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        {
            ev.wall_us = Some((t * 2e6) as u64); // wall runs at 2x sim
        }
        ev
    }

    /// root(0..10) { a(1..3), a(4..7) { b(5..6) } }
    fn sample_events() -> Vec<Event> {
        vec![
            span(kinds::SPAN_BEGIN, 1, 1, "root", 0.0),
            span(kinds::SPAN_BEGIN, 2, 2, "a", 1.0),
            span(kinds::SPAN_END, 3, 2, "a", 3.0),
            span(kinds::SPAN_BEGIN, 4, 3, "a", 4.0),
            span(kinds::SPAN_BEGIN, 5, 4, "b", 5.0),
            span(kinds::SPAN_END, 6, 4, "b", 6.0),
            span(kinds::SPAN_END, 7, 3, "a", 7.0),
            span(kinds::SPAN_END, 8, 1, "root", 10.0),
        ]
    }

    #[test]
    fn aggregates_same_name_siblings_and_computes_self_time() {
        let p = Profile::from_events(&sample_events(), ProfileClock::Sim);
        assert_eq!(p.unmatched, 0);
        assert_eq!(p.unstamped, 0);
        assert_eq!(p.roots.len(), 1);
        let root = &p.roots[0];
        assert_eq!(root.name, "root");
        assert_eq!(root.count, 1);
        assert!((root.total_us - 10e6).abs() < 1.0);
        // Children: the two "a" spans merged (2s + 3s = 5s total).
        assert_eq!(root.children.len(), 1);
        let a = &root.children[0];
        assert_eq!((a.name.as_str(), a.count), ("a", 2));
        assert!((a.total_us - 5e6).abs() < 1.0);
        // a's self = 5s - 1s (the nested b).
        assert!((a.self_us() - 4e6).abs() < 1.0);
        // root self = 10 - 5.
        assert!((root.self_us() - 5e6).abs() < 1.0);
        let b = &a.children[0];
        assert!((b.total_us - 1e6).abs() < 1.0);
    }

    #[test]
    fn wall_clock_uses_wall_stamps() {
        let p = Profile::from_events(&sample_events(), ProfileClock::Wall);
        // The test stamps wall at 2x sim.
        assert!((p.roots[0].total_us - 20e6).abs() < 2.0);
    }

    #[test]
    fn folded_round_trips_and_resums() {
        let p = Profile::from_events(&sample_events(), ProfileClock::Sim);
        let folded = p.folded();
        assert!(folded.contains("root 1 5000000"));
        assert!(folded.contains("root;a 2 4000000"));
        assert!(folded.contains("root;a;b 1 1000000"));
        let lines = parse_folded(&folded).unwrap_or_default();
        assert_eq!(lines.len(), 3);
        assert!(p.conservation_errors().is_empty());
        assert!(p.folded_resum_errors(&folded).is_empty());
    }

    #[test]
    fn corrupted_folded_output_fails_resum() {
        let p = Profile::from_events(&sample_events(), ProfileClock::Sim);
        let folded = p.folded().replace("root;a 2 4000000", "root;a 2 400");
        assert!(!p.folded_resum_errors(&folded).is_empty());
    }

    #[test]
    fn unstamped_and_unmatched_spans_are_counted_not_fatal() {
        let mut events = sample_events();
        events[3].t = None; // second "a" begin loses its sim stamp
        events.push(span(kinds::SPAN_END, 9, 99, "ghost", 11.0));
        let p = Profile::from_events(&events, ProfileClock::Sim);
        assert_eq!(p.unstamped, 1);
        assert_eq!(p.unmatched, 1);
        // The stamped sibling still aggregated.
        assert_eq!(p.roots[0].children[0].count, 1);
    }

    #[test]
    fn misnested_close_drops_inner_frames_only() {
        let events = vec![
            span(kinds::SPAN_BEGIN, 1, 1, "outer", 0.0),
            span(kinds::SPAN_BEGIN, 2, 2, "inner", 1.0),
            span(kinds::SPAN_END, 3, 1, "outer", 5.0), // closes past inner
        ];
        let p = Profile::from_events(&events, ProfileClock::Sim);
        assert_eq!(p.unmatched, 1);
        assert_eq!(p.roots.len(), 1);
        assert!((p.roots[0].total_us - 5e6).abs() < 1.0);
    }

    #[test]
    fn render_is_deterministic_and_ordered() {
        let a = Profile::from_events(&sample_events(), ProfileClock::Sim);
        let b = Profile::from_events(&sample_events(), ProfileClock::Sim);
        assert_eq!(a.render(ProfileClock::Sim), b.render(ProfileClock::Sim));
        assert!(a.render(ProfileClock::Sim).contains("sim clock"));
    }

    #[test]
    fn parse_folded_rejects_garbage() {
        assert!(parse_folded("just-a-name\n").is_err());
        assert!(parse_folded("a b c\n").is_err());
        assert!(parse_folded("").unwrap_or_default().is_empty());
    }
}
