//! Synchronisation shim for the telemetry crate.
//!
//! pstore-lint: sync-shim — this module is the crate's single sanctioned
//! gateway to synchronisation primitives (SA-04). Under `cfg(loom)` the
//! scheduling-relevant types come from the vendored loom model checker,
//! so the cross-thread paths (`LiveSink` → `Exposer`) can be explored
//! exhaustively; under normal builds they are plain `std::sync` types.
//!
//! Two items deliberately stay `std` under both cfgs:
//!
//! * [`AtomicU64`] — the crate's uses are const-initialised statics
//!   (`SEQ`, `SPAN_IDS`), which loom atomics cannot express (their
//!   constructors register with the model runtime). Both counters are
//!   `Relaxed`-only ID generators carrying no synchronisation protocol,
//!   so there is no interleaving for loom to explore.
//! * [`OnceLock`] — loom has no once-cell; `WALL_EPOCH` is written once
//!   before any reader can observe it and never mutated after.

#![allow(unexpected_cfgs)]
// `cfg(loom)` is set via RUSTFLAGS by the loom sweep, not by a cargo
// feature, so rustc cannot know it is expected without this allow.

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, Ordering};
#[cfg(not(loom))]
pub use std::sync::{Arc, Mutex};

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, Ordering};
#[cfg(loom)]
pub use loom::sync::{Arc, Mutex};

pub use std::sync::atomic::AtomicU64;
pub use std::sync::OnceLock;
