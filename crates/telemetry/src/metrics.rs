//! Metrics registry: counters, gauges, and log-bucketed latency
//! histograms.
//!
//! The histogram uses logarithmic buckets (8 sub-buckets per octave,
//! ~9% relative error) so merging is exact on counts and quantile
//! readout matches the rank-selection semantics of
//! `pstore_sim::SecondMetrics`: the q-quantile of n samples is the
//! sample at rank `ceil(n * q)` (clamped to `[1, n]`), here answered to
//! bucket resolution and clamped to the exact observed min/max.

use std::collections::BTreeMap;

/// Smallest distinguishable value; everything at or below maps to
/// bucket 0. 1 microsecond when recording seconds.
const MIN_VALUE: f64 = 1e-6;
/// Sub-buckets per octave (power of two). 8 gives <= 9% relative error.
const SUB_BUCKETS: usize = 8;
/// Octaves covered above `MIN_VALUE`: 2^44 * 1e-6 ~ 1.8e7, plenty for
/// latencies in seconds and loads in txn/s.
const OCTAVES: usize = 44;
/// Total bucket count (one extra catch-all bucket at the top).
const BUCKETS: usize = OCTAVES * SUB_BUCKETS + 1;

/// A mergeable log-bucketed histogram of non-negative `f64` samples.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram {
            counts: vec![0; BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample. Negative and non-finite samples are clamped
    /// to zero (they land in the bottom bucket) so a stray NaN cannot
    /// poison a whole run's statistics.
    pub fn record(&mut self, value: f64) {
        let v = if value.is_finite() {
            value.max(0.0)
        } else {
            0.0
        };
        self.counts[bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)] // counts far below 2^52
            {
                self.sum / self.count as f64
            }
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// The q-quantile using the same rank rule as `SecondMetrics`
    /// (`rank = ceil(n*q)` clamped to `[1, n]`), answered at bucket
    /// resolution and clamped to the exact observed `[min, max]`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        // rank fits u64 because count does; q clamped below
        let rank = ((self.count as f64 * q.clamp(0.0, 1.0)).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Structural equality that tolerates floating-point reassociation
    /// in `sum`: bucket counts and count must match exactly, `sum`
    /// within a relative tolerance, min/max exactly by bit pattern.
    ///
    /// This is the right equality for checking merge associativity
    /// (`(a+b)+c == a+(b+c)`): `f64` addition itself is not associative,
    /// so exact `sum` equality would be a false invariant.
    pub fn content_eq(&self, other: &Histogram) -> bool {
        let sum_close = {
            let scale = self.sum.abs().max(other.sum.abs()).max(1.0);
            (self.sum - other.sum).abs() <= 1e-9 * scale
        };
        self.counts == other.counts
            && self.count == other.count
            && sum_close
            && self.min.to_bits() == other.min.to_bits()
            && self.max.to_bits() == other.max.to_bits()
    }

    /// Serialises as a JSON object with sparse bucket encoding
    /// (`[[index, count], ...]`).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\"count\":");
        let _ = write!(out, "{}", self.count);
        out.push_str(",\"sum\":");
        crate::json::write_f64(&mut out, self.sum);
        out.push_str(",\"min\":");
        crate::json::write_f64(&mut out, self.min());
        out.push_str(",\"max\":");
        crate::json::write_f64(&mut out, self.max());
        out.push_str(",\"buckets\":[");
        let mut first = true;
        for (i, c) in self.counts.iter().enumerate() {
            if *c > 0 {
                if !first {
                    out.push(',');
                }
                first = false;
                let _ = write!(out, "[{i},{c}]");
            }
        }
        out.push_str("]}");
        out
    }
}

/// Maps a non-negative finite sample to its bucket index.
fn bucket_index(v: f64) -> usize {
    if v <= MIN_VALUE {
        return 0;
    }
    let octaves = (v / MIN_VALUE).log2();
    #[allow(
        clippy::cast_possible_truncation,
        clippy::cast_sign_loss,
        clippy::cast_precision_loss
    )]
    // octaves > 0 here; index clamped to the table
    let idx = (octaves * SUB_BUCKETS as f64).floor() as usize + 1;
    idx.min(BUCKETS - 1)
}

/// Upper edge of bucket `i` (a representative value for quantiles).
fn bucket_upper(i: usize) -> f64 {
    if i == 0 {
        return MIN_VALUE;
    }
    #[allow(clippy::cast_precision_loss)] // i <= BUCKETS
    {
        MIN_VALUE * 2f64.powf(i as f64 / SUB_BUCKETS as f64)
    }
}

/// A registry of named counters, gauges, and histograms.
///
/// Names are free-form dotted strings (`"reconfig.chunks_moved"`). The
/// registry is plain data — ownership/threading is the caller's concern
/// (the crate-level API keeps one per thread).
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn inc_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records one sample into the named histogram (creating it empty).
    pub fn record_histogram(&mut self, name: &str, value: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Reads a counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Reads a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges, sorted by name.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms, sorted by name.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Merges another registry: counters add, gauges take `other`'s
    /// value (last write wins), histograms merge.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }

    /// Clears all recorded data.
    pub fn clear(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64, rel: f64) {
        let scale = a.abs().max(b.abs()).max(1e-12);
        assert!(
            (a - b).abs() <= rel * scale,
            "expected {a} ~ {b} within {rel}"
        );
    }

    #[test]
    fn empty_histogram_reads_zero() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_close(h.quantile(0.5), 0.0, 1e-12);
        assert_close(h.mean(), 0.0, 1e-12);
        assert_close(h.max(), 0.0, 1e-12);
    }

    #[test]
    fn single_sample_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(0.137);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            // min == max == sample, so the bucket answer clamps exact.
            assert_close(h.quantile(q), 0.137, 1e-12);
        }
    }

    #[test]
    fn quantiles_match_rank_semantics_within_bucket_error() {
        // Mirror SecondMetrics: sorted samples, pick rank ceil(n*q).
        let samples: Vec<f64> = (1..=1000).map(|i| f64::from(i) * 1e-3).collect();
        let mut h = Histogram::new();
        for s in &samples {
            h.record(*s);
        }
        for q in [0.5, 0.95, 0.99] {
            // Rank is ceil(q * 1000) for q in (0, 1]: small, positive,
            // exactly representable — the casts cannot truncate or flip.
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let rank = ((samples.len() as f64 * q).ceil() as usize).clamp(1, samples.len());
            let exact = samples[rank - 1];
            // Log buckets with 8 sub-buckets per octave: <= 9% relative.
            assert_close(h.quantile(q), exact, 0.09);
        }
    }

    #[test]
    fn merge_matches_bulk_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut bulk = Histogram::new();
        for i in 0..500 {
            let v = f64::from(i) * 7e-4 + 1e-4;
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
            bulk.record(v);
        }
        a.merge(&b);
        assert!(a.content_eq(&bulk));
    }

    #[test]
    fn pathological_samples_are_clamped() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        h.record(-3.0);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 3);
        assert_close(h.max(), 0.0, 1e-12);
        assert!(h.quantile(0.99).is_finite());
    }

    #[test]
    fn huge_values_land_in_top_bucket() {
        let mut h = Histogram::new();
        h.record(1e30);
        assert_eq!(h.count(), 1);
        // Clamped to exact max by the quantile path.
        assert_close(h.quantile(1.0), 1e30, 1e-12);
    }

    #[test]
    fn registry_basics() {
        let mut r = MetricsRegistry::new();
        r.inc_counter("moves", 2);
        r.inc_counter("moves", 3);
        r.set_gauge("skew", 1.5);
        r.record_histogram("lat", 0.01);
        assert_eq!(r.counter("moves"), 5);
        assert_close(r.gauge("skew").unwrap(), 1.5, 1e-12);
        assert_eq!(r.histogram("lat").unwrap().count(), 1);
        assert_eq!(r.counter("absent"), 0);

        let mut other = MetricsRegistry::new();
        other.inc_counter("moves", 10);
        other.set_gauge("skew", 2.0);
        other.record_histogram("lat", 0.02);
        r.merge(&other);
        assert_eq!(r.counter("moves"), 15);
        assert_close(r.gauge("skew").unwrap(), 2.0, 1e-12);
        assert_eq!(r.histogram("lat").unwrap().count(), 2);
    }

    #[test]
    fn histogram_json_is_parseable_and_sparse() {
        let mut h = Histogram::new();
        h.record(0.1);
        h.record(0.2);
        let parsed = crate::json::parse(&h.to_json()).unwrap();
        let obj = parsed.as_obj().unwrap();
        assert_close(obj["count"].as_num().unwrap(), 2.0, 1e-12);
        let crate::json::Json::Arr(buckets) = &obj["buckets"] else {
            panic!("buckets not an array");
        };
        assert!(buckets.len() <= 2);
    }
}
