//! ASCII Gantt timeline: machine activity, reconfiguration windows, and
//! chunk moves over simulated time.
//!
//! One row per machine (node), one column per time bucket:
//!
//! - `.` — node not provisioned at that time
//! - `#` — node active (serving)
//! - `=` — node inside a reconfiguration window whose machine range
//!   covers it (scale-out adds it / scale-in drains it)
//! - `M` — at least one chunk moved from or to the node in the bucket
//!
//! Built from `second` events (activity), `reconfig` span pairs
//! (windows, with `from`/`to` machine counts), and `chunk_move` events
//! (endpoints are 0-based node ids). Output is deterministic for a
//! fixed-seed trace: it depends only on event payloads, never on wall
//! time.

use crate::event::{kinds, Event};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default number of time-bucket columns.
pub const DEFAULT_WIDTH: usize = 96;

struct ReconfigWindow {
    t_begin: f64,
    t_end: f64,
    from: u64,
    to: u64,
    finished: bool,
}

/// Renders the timeline for a trace; `width` is the column count
/// (clamped to `[16, 512]`).
pub fn render(events: &[Event], width: usize) -> String {
    render_with_violations(events, width, &[])
}

/// Renders the timeline with an SLA-violation overlay: `violations` are
/// the timestamps of violating seconds (see
/// [`crate::slo::violation_times`]); each lands a `!` in a dedicated
/// `sla` row aligned under the node rows, so a violation column can be
/// read straight up against the machine activity, reconfiguration
/// shading, and chunk moves above it.
pub fn render_with_violations(events: &[Event], width: usize, violations: &[f64]) -> String {
    render_full(events, width, violations, &[])
}

/// Renders the timeline with both the SLA overlay and a provisioning
/// decision overlay: `decisions` are `(t, lead_s)` pairs (see
/// [`crate::prov::decision_times`]). Each decision lands in a dedicated
/// `plan` row aligned under the node rows — a predictive decision
/// (`lead_s > 0`) prints `P` at the decision time with a `>` arrow
/// running to the interval it provisioned for, so the lead D is visible
/// as horizontal distance; a reactive decision prints a bare `R` at the
/// moment it fired. Reading a `P`'s arrow against the `=` reconfiguration
/// shading above shows whether capacity arrived before the demand it was
/// bought for.
pub fn render_with_decisions(
    events: &[Event],
    width: usize,
    violations: &[f64],
    decisions: &[(f64, f64)],
) -> String {
    render_full(events, width, violations, decisions)
}

fn render_full(
    events: &[Event],
    width: usize,
    violations: &[f64],
    decisions: &[(f64, f64)],
) -> String {
    let width = width.clamp(16, 512);
    let mut seconds: Vec<(f64, u64)> = Vec::new();
    let mut moves: Vec<(f64, u64, u64)> = Vec::new();
    let mut open: BTreeMap<u64, ReconfigWindow> = BTreeMap::new();
    let mut windows: Vec<ReconfigWindow> = Vec::new();
    let mut t_max = f64::NEG_INFINITY;
    let mut t_min = f64::INFINITY;

    for ev in events {
        let Some(t) = ev.t else { continue };
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        match ev.kind.as_str() {
            kinds::SECOND => {
                if let Some(m) = ev.field_u64("machines") {
                    seconds.push((t, m));
                }
            }
            kinds::CHUNK_MOVE => {
                if let (Some(from), Some(to)) = (ev.field_u64("from"), ev.field_u64("to")) {
                    moves.push((t, from, to));
                }
            }
            kinds::SPAN_BEGIN if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                if let (Some(id), Some(from), Some(to)) =
                    (ev.field_u64("id"), ev.field_u64("from"), ev.field_u64("to"))
                {
                    open.insert(
                        id,
                        ReconfigWindow {
                            t_begin: t,
                            t_end: t,
                            from,
                            to,
                            finished: false,
                        },
                    );
                }
            }
            kinds::SPAN_END if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                if let Some(id) = ev.field_u64("id") {
                    if let Some(mut w) = open.remove(&id) {
                        w.t_end = t;
                        w.finished = true;
                        windows.push(w);
                    }
                }
            }
            _ => {}
        }
    }
    // Unclosed reconfigurations run to the end of the trace.
    for (_, mut w) in open {
        w.t_end = t_max;
        windows.push(w);
    }
    windows.sort_by(|a, b| a.t_begin.total_cmp(&b.t_begin));

    if !t_min.is_finite() || t_max <= t_min {
        return "== timeline ==\n  (no timestamped events in trace)\n".to_string();
    }

    let nodes = node_count(&seconds, &windows, &moves);
    let span = t_max - t_min;
    let bucket = |t: f64| -> usize {
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // clamped into [0, width-1]
        {
            #[allow(clippy::cast_precision_loss)] // width <= 512
            let raw = ((t - t_min) / span * width as f64).floor();
            (raw.max(0.0) as usize).min(width - 1)
        }
    };

    let mut grid = vec![vec!['.'; width]; nodes];
    // Activity: machines >= node index + 1 at a sampled second.
    for &(t, machines) in &seconds {
        let col = bucket(t);
        for (node, row) in grid.iter_mut().enumerate() {
            let node = u64::try_from(node).unwrap_or(u64::MAX);
            if node < machines && row[col] == '.' {
                row[col] = '#';
            }
        }
    }
    // Reconfiguration windows shade the machine range they change.
    for w in &windows {
        let lo = w.from.min(w.to);
        let hi = w.from.max(w.to);
        for col in bucket(w.t_begin)..=bucket(w.t_end) {
            for (node, row) in grid.iter_mut().enumerate() {
                let node = u64::try_from(node).unwrap_or(u64::MAX);
                if node >= lo && node < hi {
                    row[col] = '=';
                }
            }
        }
    }
    // Chunk moves mark both endpoints.
    for &(t, from, to) in &moves {
        let col = bucket(t);
        for node in [from, to] {
            if let Ok(node) = usize::try_from(node) {
                if let Some(row) = grid.get_mut(node) {
                    row[col] = 'M';
                }
            }
        }
    }

    let mut out = String::new();
    let _ = writeln!(out, "== timeline ==");
    let _ = writeln!(
        out,
        "  t = {t_min:.1}s .. {t_max:.1}s  ({:.2}s per column, {width} columns)",
        span / {
            #[allow(clippy::cast_precision_loss)] // width <= 512
            {
                width as f64
            }
        }
    );
    let overlay = if violations.is_empty() {
        ""
    } else {
        "  '!' SLA violation"
    };
    let decision_overlay = if decisions.is_empty() {
        ""
    } else {
        "  'P>' predictive decision+lead  'R' reactive decision"
    };
    let _ = writeln!(
        out,
        "  legend: '.' off  '#' active  '=' reconfiguring  'M' chunk move{overlay}{decision_overlay}"
    );
    for (node, row) in grid.iter().enumerate().rev() {
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  node {node:>3} |{line}|");
    }
    if !violations.is_empty() {
        let mut row = vec![' '; width];
        let mut shown = 0u64;
        for &t in violations {
            if t >= t_min && t <= t_max {
                row[bucket(t)] = '!';
                shown += 1;
            }
        }
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  sla      |{line}|");
        let _ = writeln!(out, "  sla-violation seconds: {shown}");
    }
    if !decisions.is_empty() {
        let mut row = vec![' '; width];
        let mut predictive = 0u64;
        let mut reactive = 0u64;
        for &(t, lead_s) in decisions {
            if !(t >= t_min && t <= t_max) {
                continue;
            }
            let col = bucket(t);
            if lead_s > 0.0 {
                predictive += 1;
                // Arrow from the decision column toward the interval it
                // provisioned for; the marker wins over arrow shafts so
                // overlapping decisions stay countable.
                let tip = bucket((t + lead_s).min(t_max));
                for cell in row.iter_mut().take(tip + 1).skip(col + 1) {
                    if *cell == ' ' {
                        *cell = '>';
                    }
                }
                row[col] = 'P';
            } else {
                reactive += 1;
                row[col] = 'R';
            }
        }
        let line: String = row.iter().collect();
        let _ = writeln!(out, "  plan     |{line}|");
        let _ = writeln!(
            out,
            "  decisions: {} predictive, {} reactive",
            predictive, reactive
        );
    }
    let _ = writeln!(out, "  reconfigurations: {}", windows.len());
    for w in &windows {
        let suffix = if w.finished { "" } else { "  (unfinished)" };
        let _ = writeln!(
            out,
            "    {:>4} -> {:<4} @ {:.1}s .. {:.1}s ({:.1}s){suffix}",
            w.from,
            w.to,
            w.t_begin,
            w.t_end,
            w.t_end - w.t_begin
        );
    }
    let _ = writeln!(out, "  chunk moves: {}", moves.len());
    out
}

fn node_count(
    seconds: &[(f64, u64)],
    windows: &[ReconfigWindow],
    moves: &[(f64, u64, u64)],
) -> usize {
    let mut max = 1u64;
    for &(_, m) in seconds {
        max = max.max(m);
    }
    for w in windows {
        max = max.max(w.from).max(w.to);
    }
    for &(_, from, to) in moves {
        max = max.max(from + 1).max(to + 1);
    }
    usize::try_from(max.min(512)).unwrap_or(512)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev_at(t: f64, kind: &str) -> Event {
        let mut ev = Event::new(kind);
        ev.t = Some(t);
        ev
    }

    fn sample_trace() -> Vec<Event> {
        let mut events = Vec::new();
        for s in 0..10 {
            let machines = if s < 5 { 2u64 } else { 3u64 };
            let mut ev = ev_at(f64::from(s), kinds::SECOND).with("machines", machines);
            ev.fields.push(("p99".to_string(), 0.01f64.into()));
            events.push(ev);
        }
        events.push(
            ev_at(4.0, kinds::SPAN_BEGIN)
                .with("id", 7u64)
                .with("name", kinds::SPAN_RECONFIG)
                .with("from", 2u64)
                .with("to", 3u64),
        );
        events.push(
            ev_at(4.5, kinds::CHUNK_MOVE)
                .with("from", 0u64)
                .with("to", 2u64)
                .with("bytes", 4096u64),
        );
        events.push(
            ev_at(6.0, kinds::SPAN_END)
                .with("id", 7u64)
                .with("name", kinds::SPAN_RECONFIG),
        );
        events
    }

    #[test]
    fn renders_rows_windows_and_moves() {
        let out = render(&sample_trace(), 32);
        assert!(out.contains("node   0"));
        assert!(out.contains("node   2"));
        assert!(!out.contains("node   3"));
        assert!(out.contains("reconfigurations: 1"));
        assert!(out.contains("2 -> 3"));
        assert!(out.contains("chunk moves: 1"));
        assert!(out.contains('M'));
        assert!(out.contains('='));
        assert!(out.contains('#'));
    }

    #[test]
    fn deterministic_for_same_trace() {
        let trace = sample_trace();
        assert_eq!(render(&trace, 48), render(&trace, 48));
    }

    #[test]
    fn unfinished_reconfig_is_flagged() {
        let mut trace = sample_trace();
        trace.retain(|e| e.kind != kinds::SPAN_END);
        let out = render(&trace, 32);
        assert!(out.contains("(unfinished)"));
    }

    #[test]
    fn violation_overlay_adds_aligned_sla_row() {
        let trace = sample_trace();
        let plain = render(&trace, 32);
        assert!(!plain.contains("sla"));
        let out = render_with_violations(&trace, 32, &[4.0, 5.0, 99.0]);
        assert!(out.contains("'!' SLA violation"));
        // Out-of-range timestamps are dropped from the count.
        assert!(out.contains("sla-violation seconds: 2"));
        let sla_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("sla      |"))
            .expect("sla row");
        let node_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("node"))
            .expect("node row");
        // The overlay row's cells align column-for-column with node rows.
        assert_eq!(
            sla_line.find('|').expect("bar"),
            node_line.find('|').expect("bar")
        );
        assert!(sla_line.contains('!'));
    }

    #[test]
    fn decision_overlay_draws_lead_arrows_and_reactive_marks() {
        let trace = sample_trace();
        // No decisions: output byte-identical to the plain renderer.
        assert_eq!(
            render_with_decisions(&trace, 32, &[], &[]),
            render(&trace, 32)
        );
        let out = render_with_decisions(&trace, 32, &[], &[(2.0, 5.0), (8.0, 0.0)]);
        assert!(out.contains("'P>' predictive decision+lead"));
        let plan_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("plan     |"))
            .expect("plan row");
        let node_line = out
            .lines()
            .find(|l| l.trim_start().starts_with("node"))
            .expect("node row");
        assert_eq!(
            plan_line.find('|').expect("bar"),
            node_line.find('|').expect("bar")
        );
        assert!(plan_line.contains('P'));
        assert!(plan_line.contains('>'));
        assert!(plan_line.contains('R'));
        // The P marker precedes its arrow shaft, which precedes the R.
        let p = plan_line.find('P').expect("P");
        let arrow = plan_line.find('>').expect(">");
        let r = plan_line.find('R').expect("R");
        assert!(p < arrow && arrow < r);
        assert!(out.contains("decisions: 1 predictive, 1 reactive"));
    }

    #[test]
    fn empty_trace_degrades_gracefully() {
        let out = render(&[], 32);
        assert!(out.contains("no timestamped events"));
        let untimed = vec![Event::new(kinds::SECOND)];
        assert!(render(&untimed, 32).contains("no timestamped events"));
    }
}
