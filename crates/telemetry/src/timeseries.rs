//! Live run metrics: a ring-buffered time-series view of the event
//! stream, updated as events are emitted.
//!
//! [`TimeSeriesSink`] wraps (optionally tees to) another [`Sink`] and
//! folds every event into a shared [`LiveMetrics`] behind an
//! `Arc<Mutex<..>>`. The simulator thread pays one short lock per event;
//! the exposition thread ([`crate::expose::Exposer`]) locks the same
//! state to render the Prometheus text format, so a long run can be
//! scraped mid-flight.

use crate::event::{kinds, Event, Value};
use crate::sink::Sink;
use crate::sync::{Arc, Mutex};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// Default ring capacity for per-second series (~8.5 simulated minutes).
const DEFAULT_RING: usize = 512;

/// A fixed-capacity ring buffer of `(t, value)` samples.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    samples: Vec<(f64, f64)>,
    capacity: usize,
    next: usize,
    pushed: u64,
}

impl TimeSeries {
    /// An empty series holding at most `capacity` samples (min 1).
    pub fn new(capacity: usize) -> Self {
        TimeSeries {
            samples: Vec::new(),
            capacity: capacity.max(1),
            next: 0,
            pushed: 0,
        }
    }

    /// Appends a sample, evicting the oldest once at capacity.
    pub fn push(&mut self, t: f64, value: f64) {
        if self.samples.len() < self.capacity {
            self.samples.push((t, value));
        } else {
            self.samples[self.next] = (t, value);
        }
        self.next = (self.next + 1) % self.capacity;
        self.pushed += 1;
    }

    /// Samples currently retained, oldest first.
    pub fn samples(&self) -> Vec<(f64, f64)> {
        if self.samples.len() < self.capacity {
            self.samples.clone()
        } else {
            let mut out = Vec::with_capacity(self.capacity);
            out.extend_from_slice(&self.samples[self.next..]);
            out.extend_from_slice(&self.samples[..self.next]);
            out
        }
    }

    /// The most recently pushed sample.
    pub fn latest(&self) -> Option<(f64, f64)> {
        if self.samples.is_empty() {
            None
        } else {
            let idx = (self.next + self.capacity - 1) % self.capacity;
            self.samples.get(idx).or(self.samples.last()).copied()
        }
    }

    /// Mean over the retained window (0 when empty).
    pub fn window_mean(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let sum: f64 = self.samples.iter().map(|(_, v)| v).sum();
        #[allow(clippy::cast_precision_loss)] // ring sizes are small
        {
            sum / self.samples.len() as f64
        }
    }

    /// Samples retained right now.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Total samples ever pushed (including evicted ones).
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }
}

/// Aggregated live view of a run, scrapeable while the run is going.
#[derive(Debug, Default)]
pub struct LiveMetrics {
    events_by_kind: BTreeMap<String, u64>,
    counters: BTreeMap<String, f64>,
    gauges: BTreeMap<String, f64>,
    series: BTreeMap<String, TimeSeries>,
}

impl LiveMetrics {
    /// Fresh, empty state.
    pub fn new() -> Self {
        LiveMetrics::default()
    }

    /// Folds one event into the live view.
    pub fn observe(&mut self, ev: &Event) {
        *self.events_by_kind.entry(ev.kind.clone()).or_insert(0) += 1;
        if let Some(t) = ev.t {
            self.set_gauge("sim_time_seconds", t);
        }
        match ev.kind.as_str() {
            kinds::SECOND => {
                let t = ev.t.unwrap_or(0.0);
                for key in [
                    "p99",
                    "p95",
                    "throughput",
                    "machines",
                    "win_p50",
                    "win_p95",
                    "win_p99",
                    "attr_queue",
                    "attr_exec",
                    "attr_stall",
                ] {
                    if let Some(v) = ev.field_f64(key) {
                        self.set_gauge(key, v);
                        self.push_series(key, t, v);
                    }
                }
                // Migration interference accumulates so operators can
                // alert on its rate, not just the instantaneous gauge.
                if let Some(stall) = ev.field_f64("attr_stall") {
                    self.inc_counter("migration_stall_seconds", stall);
                }
                if let Some(r) = ev.field("reconfiguring") {
                    let v = match r {
                        Value::Bool(b) => {
                            if *b {
                                1.0
                            } else {
                                0.0
                            }
                        }
                        other => other.as_f64().unwrap_or(0.0),
                    };
                    self.set_gauge("reconfiguring", v);
                }
            }
            kinds::SLA_VIOLATION => self.inc_counter("sla_violation_seconds", 1.0),
            kinds::CHUNK_MOVE => {
                self.inc_counter("chunk_moves", 1.0);
                if let Some(bytes) = ev.field_f64("bytes") {
                    self.inc_counter("bytes_moved", bytes);
                }
            }
            kinds::SPAN_BEGIN if ev.field_str("name") == Some(kinds::SPAN_RECONFIG) => {
                self.inc_counter("reconfigurations", 1.0);
            }
            kinds::PLANNER => {
                self.inc_counter("planner_calls", 1.0);
                if ev.field("feasible").and_then(Value::as_bool) == Some(true) {
                    self.inc_counter("planner_feasible", 1.0);
                }
            }
            kinds::FORECAST_PREDICT => self.inc_counter("forecasts", 1.0),
            // Provisioning observatory: surface the decision/reconfig
            // stream and per-interval capacity as prov.* metrics so the
            // exposition endpoint can alert on provisioning drift.
            kinds::PROV_DECISION => {
                self.inc_counter("prov.decisions", 1.0);
                if let Some(m) = ev.field_f64("target") {
                    self.set_gauge("prov.target_machines", m);
                }
            }
            kinds::PROV_RECONFIG => self.inc_counter("prov.reconfigs", 1.0),
            kinds::PROV_FORECAST => self.inc_counter("prov.forecast_scores", 1.0),
            kinds::PROV_INTERVAL => {
                if let Some(m) = ev.field_f64("machines") {
                    self.set_gauge("prov.machines", m);
                }
                if let Some(o) = ev.field_f64("observed") {
                    self.set_gauge("prov.observed_load", o);
                }
            }
            kinds::METRICS_SNAPSHOT => {
                // End-of-run registry dump: publish every scalar field.
                for (k, v) in &ev.fields {
                    if let Some(v) = v.as_f64() {
                        self.set_gauge(k, v);
                    }
                }
            }
            _ => {}
        }
    }

    /// Adds `delta` to a named counter.
    pub fn inc_counter(&mut self, name: &str, delta: f64) {
        *self.counters.entry(name.to_string()).or_insert(0.0) += delta;
    }

    /// Sets a named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// A counter's current value (0 when never incremented).
    pub fn counter(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// A gauge's current value, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The ring-buffered series for `name`, if any samples arrived.
    pub fn series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// Events observed of `kind`.
    pub fn events_of_kind(&self, kind: &str) -> u64 {
        self.events_by_kind.get(kind).copied().unwrap_or(0)
    }

    /// Total events observed.
    pub fn events_total(&self) -> u64 {
        self.events_by_kind.values().sum()
    }

    fn push_series(&mut self, name: &str, t: f64, value: f64) {
        self.series
            .entry(name.to_string())
            .or_insert_with(|| TimeSeries::new(DEFAULT_RING))
            .push(t, value);
    }

    /// Renders the Prometheus text exposition format (version 0.0.4):
    /// `pstore_events_total{kind="..."}` per event kind, one
    /// `pstore_<name>_total` counter per accumulated counter, one
    /// `pstore_<name>` gauge per gauge, and `_window_mean` gauges over
    /// each ring-buffered series. Output order is deterministic.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("# HELP pstore_events_total Telemetry events observed, by kind.\n");
        out.push_str("# TYPE pstore_events_total counter\n");
        for (kind, n) in &self.events_by_kind {
            let _ = writeln!(
                out,
                "pstore_events_total{{kind=\"{}\"}} {n}",
                sanitize(kind)
            );
        }
        for (name, v) in &self.counters {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE pstore_{name}_total counter");
            let _ = writeln!(out, "pstore_{name}_total {}", fmt_value(*v));
        }
        for (name, v) in &self.gauges {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE pstore_{name} gauge");
            let _ = writeln!(out, "pstore_{name} {}", fmt_value(*v));
        }
        for (name, series) in &self.series {
            let name = sanitize(name);
            let _ = writeln!(out, "# TYPE pstore_{name}_window_mean gauge");
            let _ = writeln!(
                out,
                "pstore_{name}_window_mean {}",
                fmt_value(series.window_mean())
            );
        }
        out
    }
}

/// Prometheus metric names allow `[a-zA-Z0-9_:]`; everything else
/// (dots in registry names, dashes) becomes `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Integral values print without a fraction so counters read naturally.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{v:.0}")
    } else {
        format!("{v}")
    }
}

/// A [`Sink`] that folds events into a shared [`LiveMetrics`] and
/// optionally tees them to an inner sink (usually a
/// [`crate::sink::JsonlSink`], so `--trace` and `--expose-metrics`
/// compose).
pub struct TimeSeriesSink {
    shared: Arc<Mutex<LiveMetrics>>,
    inner: Option<Rc<dyn Sink>>,
}

impl TimeSeriesSink {
    /// Creates a sink feeding `shared`, teeing to `inner` when given.
    pub fn new(shared: Arc<Mutex<LiveMetrics>>, inner: Option<Rc<dyn Sink>>) -> Self {
        TimeSeriesSink { shared, inner }
    }

    /// Convenience: fresh shared state plus a sink feeding it.
    pub fn create(inner: Option<Rc<dyn Sink>>) -> (Self, Arc<Mutex<LiveMetrics>>) {
        let shared = Arc::new(Mutex::new(LiveMetrics::new()));
        (TimeSeriesSink::new(Arc::clone(&shared), inner), shared)
    }
}

impl Sink for TimeSeriesSink {
    fn record(&self, event: &Event) {
        // A poisoned lock means the exposition thread panicked while
        // holding it; the run's trace matters more, so keep going.
        if let Ok(mut live) = self.shared.lock() {
            live.observe(event);
        }
        if let Some(inner) = &self.inner {
            inner.record(event);
        }
    }

    fn flush(&self) {
        if let Some(inner) = &self.inner {
            inner.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;

    fn second(t: f64, p99: f64, thr: f64, machines: u64, reconf: bool) -> Event {
        let mut ev = Event::new(kinds::SECOND)
            .with("second", t)
            .with("throughput", thr)
            .with("p99", p99)
            .with("machines", machines)
            .with("reconfiguring", reconf);
        ev.t = Some(t);
        ev
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut ts = TimeSeries::new(3);
        for i in 0..5 {
            ts.push(f64::from(i), f64::from(i) * 10.0);
        }
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.total_pushed(), 5);
        let samples = ts.samples();
        assert_eq!(samples, vec![(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]);
        assert_eq!(ts.latest(), Some((4.0, 40.0)));
        assert!((ts.window_mean() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn observe_folds_seconds_and_counters() {
        let mut live = LiveMetrics::new();
        live.observe(&second(1.0, 0.02, 5000.0, 4, false));
        live.observe(&second(2.0, 0.09, 4000.0, 5, true));
        live.observe(&Event::new(kinds::SLA_VIOLATION).with("second", 2u64));
        live.observe(
            &Event::new(kinds::CHUNK_MOVE)
                .with("from", 0u64)
                .with("to", 1u64)
                .with("bytes", 1024u64),
        );
        assert_eq!(live.events_of_kind(kinds::SECOND), 2);
        assert!((live.counter("sla_violation_seconds") - 1.0).abs() < 1e-9);
        assert!((live.counter("bytes_moved") - 1024.0).abs() < 1e-9);
        assert_eq!(live.gauge("p99"), Some(0.09));
        assert_eq!(live.gauge("reconfiguring"), Some(1.0));
        let series = live.series("p99").map(TimeSeries::samples);
        assert_eq!(series, Some(vec![(1.0, 0.02), (2.0, 0.09)]));
    }

    #[test]
    fn prov_events_surface_as_prov_metrics() {
        let mut live = LiveMetrics::new();
        live.observe(
            &Event::new(kinds::PROV_INTERVAL)
                .with("interval", 3u64)
                .with("observed", 512.0)
                .with("machines", 2u64),
        );
        live.observe(
            &Event::new(kinds::PROV_DECISION)
                .with("id", 1u64)
                .with("target", 4u64),
        );
        live.observe(&Event::new(kinds::PROV_RECONFIG).with("id", 1u64));
        live.observe(&Event::new(kinds::PROV_FORECAST).with("horizon", 2u64));
        assert_eq!(live.gauge("prov.machines"), Some(2.0));
        assert_eq!(live.gauge("prov.observed_load"), Some(512.0));
        assert_eq!(live.gauge("prov.target_machines"), Some(4.0));
        assert!((live.counter("prov.decisions") - 1.0).abs() < 1e-9);
        assert!((live.counter("prov.reconfigs") - 1.0).abs() < 1e-9);
        assert!((live.counter("prov.forecast_scores") - 1.0).abs() < 1e-9);
        // Dots sanitize to underscores in the exposition text.
        let text = live.render_prometheus();
        assert!(text.contains("pstore_prov_decisions_total 1"));
        assert!(text.contains("pstore_prov_machines 2"));
    }

    #[test]
    fn attribution_fields_become_gauges_and_a_stall_counter() {
        let mut live = LiveMetrics::new();
        let mut sec = second(1.0, 0.02, 5000.0, 4, false)
            .with("win_p99", 0.7)
            .with("attr_queue", 3.0)
            .with("attr_exec", 8.0)
            .with("attr_stall", 1.5);
        sec.t = Some(1.0);
        live.observe(&sec);
        let mut sec2 = second(2.0, 0.02, 5000.0, 4, false).with("attr_stall", 0.5);
        sec2.t = Some(2.0);
        live.observe(&sec2);
        assert_eq!(live.gauge("win_p99"), Some(0.7));
        assert_eq!(live.gauge("attr_queue"), Some(3.0));
        assert_eq!(live.gauge("attr_stall"), Some(0.5));
        assert!((live.counter("migration_stall_seconds") - 2.0).abs() < 1e-9);
        let series = live.series("attr_stall").map(TimeSeries::samples);
        assert_eq!(series, Some(vec![(1.0, 1.5), (2.0, 0.5)]));
        let prom = live.render_prometheus();
        assert!(prom.contains("pstore_migration_stall_seconds_total 2"));
        assert!(prom.contains("# TYPE pstore_attr_stall gauge"));
    }

    #[test]
    fn reconfig_span_begin_counts_reconfigurations() {
        let mut live = LiveMetrics::new();
        live.observe(
            &Event::new(kinds::SPAN_BEGIN)
                .with("id", 1u64)
                .with("name", kinds::SPAN_RECONFIG),
        );
        live.observe(
            &Event::new(kinds::SPAN_BEGIN)
                .with("id", 2u64)
                .with("name", "tick"),
        );
        assert!((live.counter("reconfigurations") - 1.0).abs() < 1e-9);
    }

    #[test]
    fn prometheus_rendering_is_wellformed_and_deterministic() {
        let mut live = LiveMetrics::new();
        live.observe(&second(1.0, 0.02, 5000.0, 4, false));
        live.observe(&Event::new(kinds::SLA_VIOLATION).with("second", 1u64));
        live.set_gauge("stable.p99", 0.025);
        let a = live.render_prometheus();
        let b = live.render_prometheus();
        assert_eq!(a, b);
        assert!(a.contains("pstore_events_total{kind=\"second\"} 1"));
        assert!(a.contains("# TYPE pstore_sla_violation_seconds_total counter"));
        assert!(a.contains("pstore_sla_violation_seconds_total 1"));
        // Dots sanitize to underscores.
        assert!(a.contains("pstore_stable_p99 0.025"));
        // Every non-comment line is `name[{labels}] value`.
        for line in a.lines() {
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.rsplitn(2, ' ');
            let value = parts.next().unwrap_or("");
            let name = parts.next().unwrap_or("");
            assert!(!name.is_empty(), "bad line: {line}");
            assert!(value.parse::<f64>().is_ok(), "bad value in line: {line}");
        }
    }

    #[test]
    fn sink_tees_to_inner_and_updates_shared() {
        let (mem, handle) = MemorySink::new();
        let (sink, shared) = TimeSeriesSink::create(Some(Rc::new(mem)));
        sink.record(&second(1.0, 0.02, 5000.0, 4, false));
        sink.flush();
        assert_eq!(handle.len(), 1);
        let live = shared.lock().unwrap();
        assert_eq!(live.events_of_kind(kinds::SECOND), 1);
    }
}
