//! Pluggable event sinks.
//!
//! A [`Sink`] receives every emitted [`Event`]. Three implementations
//! cover the crate's needs: [`NoopSink`] (the default — emission is
//! additionally compiled out entirely in consumer crates when their
//! `telemetry` feature is off), [`MemorySink`] for tests, and
//! [`JsonlSink`] for runs that want a trace file `pstore-trace` can
//! read back.

use crate::event::Event;
use std::cell::RefCell;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::rc::Rc;

/// Receives emitted events. Sinks are thread-local (installed via
/// [`crate::install`]), so implementations use interior mutability
/// rather than `&mut self`.
pub trait Sink {
    /// Records one event.
    fn record(&self, event: &Event);
    /// Flushes buffered output (no-op for unbuffered sinks).
    fn flush(&self) {}
}

/// Discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn record(&self, _event: &Event) {}
}

/// Collects events in memory; the [`MemorySinkHandle`] returned by
/// [`MemorySink::new`] stays valid for assertions after the sink is
/// installed.
pub struct MemorySink {
    events: Rc<RefCell<Vec<Event>>>,
}

/// Shared view into a [`MemorySink`]'s collected events.
#[derive(Clone)]
pub struct MemorySinkHandle {
    events: Rc<RefCell<Vec<Event>>>,
}

impl MemorySink {
    /// Creates a sink plus a handle for reading what it collected.
    pub fn new() -> (Self, MemorySinkHandle) {
        let events = Rc::new(RefCell::new(Vec::new()));
        (
            MemorySink {
                events: Rc::clone(&events),
            },
            MemorySinkHandle { events },
        )
    }
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events.borrow_mut().push(event.clone());
    }
}

impl MemorySinkHandle {
    /// A snapshot of all events recorded so far.
    pub fn events(&self) -> Vec<Event> {
        self.events.borrow().clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }

    /// Events of one kind, cloned.
    pub fn of_kind(&self, kind: &str) -> Vec<Event> {
        self.events
            .borrow()
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }
}

/// Appends one JSON object per event to a file.
pub struct JsonlSink {
    writer: RefCell<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the trace file at `path`.
    ///
    /// # Errors
    /// Propagates file-creation errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: RefCell::new(BufWriter::new(file)),
        })
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let mut w = self.writer.borrow_mut();
        // Trace output is best-effort: a full disk should not crash the
        // run being traced.
        let _ = writeln!(w, "{}", event.to_json_line());
    }

    fn flush(&self) {
        let _ = self.writer.borrow_mut().flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        let _ = self.writer.borrow_mut().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_sink_collects_and_filters() {
        let (sink, handle) = MemorySink::new();
        sink.record(&Event::new("a"));
        sink.record(&Event::new("b"));
        sink.record(&Event::new("a"));
        assert_eq!(handle.len(), 3);
        assert_eq!(handle.of_kind("a").len(), 2);
        assert!(!handle.is_empty());
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri isolation rejects real file I/O")]
    fn jsonl_sink_writes_parseable_lines() {
        let path = std::env::temp_dir().join("pstore_telemetry_sink_test.jsonl");
        {
            let sink = JsonlSink::create(&path).unwrap();
            let mut ev = Event::new("x").with("v", 1u64);
            ev.seq = 7;
            sink.record(&ev);
            sink.flush();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let line = text.lines().next().unwrap();
        let parsed = Event::from_json(&crate::json::parse(line).unwrap()).unwrap();
        assert_eq!(parsed.seq, 7);
        assert_eq!(parsed.field_u64("v"), Some(1));
        let _ = std::fs::remove_file(&path);
    }
}
