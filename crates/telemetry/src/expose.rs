//! Prometheus-text-format exposition over a plain `TcpListener`.
//!
//! [`Exposer::bind`] starts a background thread serving the current
//! [`LiveMetrics`] state at every request (any path), using the
//! Prometheus text format version 0.0.4. No HTTP library: the server
//! reads until the end of the request headers and writes one fixed
//! response, which is all a scraper (or `curl`) needs. Opt-in via
//! `--expose-metrics <port>` on the shared bench `RunReporter`; with the
//! flag off nothing binds and the telemetry feature still compiles away
//! in consumer crates.

use crate::sync::{Arc, AtomicBool, Mutex, Ordering};
use crate::timeseries::LiveMetrics;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread::JoinHandle;
use std::time::Duration;

/// A running exposition endpoint. Dropping it (or calling
/// [`Exposer::shutdown`]) stops the background thread.
pub struct Exposer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Exposer {
    /// Binds `127.0.0.1:port` (port 0 picks an ephemeral port — read the
    /// result from [`Exposer::addr`]) and serves `shared` until shutdown.
    ///
    /// # Errors
    /// Returns the bind error with the attempted address spelled out —
    /// `--expose-metrics` on an already-bound port must surface as a
    /// clear, actionable message, never a panic path.
    pub fn bind(port: u16, shared: Arc<Mutex<LiveMetrics>>) -> std::io::Result<Exposer> {
        let listener = TcpListener::bind(("127.0.0.1", port)).map_err(|e| {
            let hint = if e.kind() == std::io::ErrorKind::AddrInUse {
                " (already in use — pick another port, or 0 for an ephemeral one)"
            } else {
                ""
            };
            std::io::Error::new(
                e.kind(),
                format!("cannot bind metrics endpoint 127.0.0.1:{port}: {e}{hint}"),
            )
        })?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        // pstore-lint: allow(SA-04): the exposition thread blocks in socket
        // accept(), which loom cannot model; its shared state (stop flag,
        // LiveMetrics mutex) still goes through the crate::sync shim.
        let thread = std::thread::Builder::new()
            .name("pstore-expose".to_string())
            .spawn(move || serve(&listener, &shared, &stop_flag))?;
        Ok(Exposer {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the serving thread and waits for it to exit.
    pub fn shutdown(&mut self) {
        if self.thread.is_none() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop only checks the flag between connections, so
        // poke it awake with one throwaway connect.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for Exposer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn serve(listener: &TcpListener, shared: &Arc<Mutex<LiveMetrics>>, stop: &Arc<AtomicBool>) {
    for stream in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = stream else { continue };
        // Per-connection errors (slow or vanished scrapers) must not
        // take the run down; just drop the connection.
        let _ = handle_connection(stream, shared);
    }
}

fn handle_connection(
    mut stream: TcpStream,
    shared: &Arc<Mutex<LiveMetrics>>,
) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the blank line ending the request headers (or timeout /
    // a hard cap — the request itself is irrelevant, every path serves
    // the same metrics page).
    let mut buf = [0u8; 1024];
    let mut seen = Vec::with_capacity(1024);
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                seen.extend_from_slice(&buf[..n]);
                if seen.windows(4).any(|w| w == b"\r\n\r\n") || seen.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let body = match shared.lock() {
        Ok(live) => live.render_prometheus(),
        Err(_) => String::new(),
    };
    let response = format!(
        "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// One blocking scrape of `addr`, returning the response body. Used by
/// the telemetry smoke test and the bench self-checks.
///
/// # Errors
/// Propagates connect/read errors and malformed (headerless) responses.
pub fn scrape(addr: SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"GET /metrics HTTP/1.0\r\nHost: localhost\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let Some(idx) = response.find("\r\n\r\n") else {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response has no header/body separator",
        ));
    };
    if !response.starts_with("HTTP/1.0 200") && !response.starts_with("HTTP/1.1 200") {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!(
                "non-200 response: {}",
                response.lines().next().unwrap_or_default()
            ),
        ));
    }
    Ok(response[idx + 4..].to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{kinds, Event};

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot bind TCP sockets")]
    fn binds_serves_and_shuts_down() {
        let shared = Arc::new(Mutex::new(LiveMetrics::new()));
        {
            let mut ev = Event::new(kinds::SECOND)
                .with("p99", 0.02)
                .with("throughput", 1000.0);
            ev.t = Some(1.0);
            if let Ok(mut live) = shared.lock() {
                live.observe(&ev);
            }
        }
        let mut exposer = Exposer::bind(0, Arc::clone(&shared)).unwrap();
        let body = scrape(exposer.addr()).unwrap();
        assert!(body.contains("pstore_events_total{kind=\"second\"} 1"));
        assert!(body.contains("pstore_p99 0.02"));

        // State updates are visible on the next scrape.
        if let Ok(mut live) = shared.lock() {
            live.inc_counter("chunk_moves", 3.0);
        }
        let body = scrape(exposer.addr()).unwrap();
        assert!(body.contains("pstore_chunk_moves_total 3"));

        let addr = exposer.addr();
        exposer.shutdown();
        // After shutdown the port no longer answers.
        assert!(TcpStream::connect_timeout(&addr, Duration::from_millis(200)).is_err());
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot bind TCP sockets")]
    fn bind_of_taken_port_is_a_clear_error_not_a_panic() {
        let shared = Arc::new(Mutex::new(LiveMetrics::new()));
        let first = Exposer::bind(0, Arc::clone(&shared)).unwrap();
        let port = first.addr().port();
        let second = Exposer::bind(port, shared);
        let err = second.err().expect("second bind of the same port");
        assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse);
        let msg = err.to_string();
        assert!(
            msg.contains(&format!("127.0.0.1:{port}")),
            "error names the address: {msg}"
        );
        assert!(msg.contains("already in use"), "error gives a hint: {msg}");
    }

    #[test]
    #[cfg_attr(miri, ignore = "miri cannot bind TCP sockets")]
    fn scrape_of_dead_port_errors() {
        let shared = Arc::new(Mutex::new(LiveMetrics::new()));
        let exposer = Exposer::bind(0, shared).unwrap();
        let addr = exposer.addr();
        drop(exposer);
        assert!(scrape(addr).is_err());
    }
}
