//! Structured events: the unit every sink records.
//!
//! An [`Event`] is a stable `kind` string (see [`kinds`]) plus a small
//! flat list of typed fields. Events carry a global sequence number (so
//! traces have a total order even when the sim clock stalls) and the
//! simulated-time timestamp that was current when they were emitted.

use crate::json::{self, Json};

/// A typed field value attached to an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, ids, slots, bytes).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (latencies, rates, costs).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Short string (names, reasons).
    Str(String),
}

impl Value {
    /// The value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers widen losslessly up to 2^53).
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)] // telemetry readout, 2^53 is ample
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        // usize -> u64 is lossless on every supported target.
        Value::U64(u64::try_from(v).unwrap_or(u64::MAX))
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// One structured telemetry record.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global monotonic sequence number (total order across a run).
    pub seq: u64,
    /// Simulated time in seconds, if a clock was set when emitting.
    pub t: Option<f64>,
    /// Wall-clock microseconds since the process's telemetry epoch,
    /// stamped at emission. Unlike `t` (which tracks *simulated* time and
    /// is deterministic for a fixed seed), `wall_us` measures real
    /// elapsed time and differs run to run — it is what the span-tree
    /// profiler (`pstore-trace profile --wall`) aggregates.
    pub wall_us: Option<u64>,
    /// Stable event kind; one of the [`kinds`] constants.
    pub kind: String,
    /// Flat key/value payload, in insertion order.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// Creates an event of `kind` with no fields (seq/t/wall filled at
    /// emit).
    pub fn new(kind: &str) -> Self {
        Event {
            seq: 0,
            t: None,
            wall_us: None,
            kind: kind.to_string(),
            fields: Vec::new(),
        }
    }

    /// Builder-style field append.
    #[must_use]
    pub fn with(mut self, key: &str, value: impl Into<Value>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Field as `u64`, if present and unsigned.
    pub fn field_u64(&self, key: &str) -> Option<u64> {
        self.field(key).and_then(Value::as_u64)
    }

    /// Field as `f64`, if present and numeric.
    pub fn field_f64(&self, key: &str) -> Option<f64> {
        self.field(key).and_then(Value::as_f64)
    }

    /// Field as `&str`, if present and a string.
    pub fn field_str(&self, key: &str) -> Option<&str> {
        self.field(key).and_then(Value::as_str)
    }

    /// Serialises the event as a single-line JSON object.
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + 24 * self.fields.len());
        out.push_str("{\"seq\":");
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{}", self.seq));
        if let Some(t) = self.t {
            out.push_str(",\"t\":");
            json::write_f64(&mut out, t);
        }
        if let Some(w) = self.wall_us {
            out.push_str(",\"wall_us\":");
            let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{w}"));
        }
        out.push_str(",\"kind\":");
        json::write_str(&mut out, &self.kind);
        for (k, v) in &self.fields {
            out.push(',');
            json::write_str(&mut out, k);
            out.push(':');
            match v {
                Value::U64(n) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
                }
                Value::I64(n) => {
                    let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{n}"));
                }
                Value::F64(n) => json::write_f64(&mut out, *n),
                Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Value::Str(s) => json::write_str(&mut out, s),
            }
        }
        out.push('}');
        out
    }

    /// Parses an event back from a JSON object produced by
    /// [`Event::to_json_line`].
    ///
    /// Numbers that are non-negative integers parse as [`Value::U64`];
    /// negative integers as [`Value::I64`]; everything else as
    /// [`Value::F64`]. Unknown shapes (nested arrays/objects) are
    /// rejected — trace lines are flat by construction.
    ///
    /// # Errors
    /// Returns a description of the structural problem when the object
    /// is missing `seq`/`kind` or holds a non-scalar field.
    pub fn from_json(value: &Json) -> Result<Event, String> {
        let obj = value.as_obj().ok_or("trace line is not a JSON object")?;
        let seq = obj
            .get("seq")
            .and_then(Json::as_num)
            .ok_or("missing numeric \"seq\"")?;
        if seq < 0.0 || seq.fract() != 0.0 {
            return Err("\"seq\" is not a non-negative integer".to_string());
        }
        let kind = obj
            .get("kind")
            .and_then(Json::as_str)
            .ok_or("missing string \"kind\"")?
            .to_string();
        let t = match obj.get("t") {
            Some(Json::Num(n)) => Some(*n),
            Some(Json::Null) | None => None,
            Some(_) => return Err("\"t\" is not a number".to_string()),
        };
        let wall_us = match obj.get("wall_us") {
            Some(Json::Num(n)) if *n >= 0.0 && n.fract() == 0.0 => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                // checked non-negative integral above
                Some(*n as u64)
            }
            Some(Json::Null) | None => None,
            Some(_) => return Err("\"wall_us\" is not a non-negative integer".to_string()),
        };
        let mut fields = Vec::new();
        for (k, v) in obj {
            if k == "seq" || k == "t" || k == "wall_us" || k == "kind" {
                continue;
            }
            let value = match v {
                Json::Num(n) => num_to_value(*n),
                Json::Bool(b) => Value::Bool(*b),
                Json::Str(s) => Value::Str(s.clone()),
                Json::Null => Value::F64(f64::NAN),
                Json::Arr(_) | Json::Obj(_) => {
                    return Err(format!("field \"{k}\" is not a scalar"));
                }
            };
            fields.push((k.clone(), value));
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        // checked non-negative integral above
        let seq = seq as u64;
        Ok(Event {
            seq,
            t,
            wall_us,
            kind,
            fields,
        })
    }
}

/// Encodes a key-level version history for a `txn_rwset` field (`rset` /
/// `wset`): each `(table, key, version)` entry renders as
/// `table:key@version` and entries are joined with `;`. Key text is
/// escaped (`\` → `\\`, `;` → `\;`, `@` → `\@`) so arbitrary key
/// displays round-trip; the table id and version are plain decimal.
/// Event fields are flat scalars by contract ([`Event::from_json`]
/// rejects arrays), so set-valued payloads ride in strings.
pub fn encode_key_versions(entries: impl IntoIterator<Item = (u64, String, u64)>) -> String {
    let mut out = String::new();
    for (table, key, version) in entries {
        if !out.is_empty() {
            out.push(';');
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("{table}:"));
        for c in key.chars() {
            if matches!(c, '\\' | ';' | '@') {
                out.push('\\');
            }
            out.push(c);
        }
        let _ = std::fmt::Write::write_fmt(&mut out, format_args!("@{version}"));
    }
    out
}

/// Decodes a string produced by [`encode_key_versions`] back into
/// `(table, key, version)` entries. The empty string decodes to an empty
/// list (an empty access set encodes to `""`).
///
/// # Errors
/// Returns a description of the malformed entry when the text does not
/// follow the `table:key@version` grammar.
pub fn parse_key_versions(text: &str) -> Result<Vec<(u64, String, u64)>, String> {
    let mut entries = Vec::new();
    if text.is_empty() {
        return Ok(entries);
    }
    let mut chars = text.chars().peekable();
    loop {
        // table id: decimal digits up to ':'
        let mut table_digits = String::new();
        for c in chars.by_ref() {
            if c == ':' {
                break;
            }
            table_digits.push(c);
        }
        let table: u64 = table_digits
            .parse()
            .map_err(|_| format!("bad table id {table_digits:?} in key-version entry"))?;
        // key: escaped text up to an unescaped '@'
        let mut key = String::new();
        let mut terminated = false;
        while let Some(c) = chars.next() {
            match c {
                '\\' => match chars.next() {
                    Some(esc) => key.push(esc),
                    None => return Err("dangling escape in key-version entry".to_string()),
                },
                '@' => {
                    terminated = true;
                    break;
                }
                other => key.push(other),
            }
        }
        if !terminated {
            return Err(format!("key-version entry for key {key:?} has no version"));
        }
        // version: decimal digits up to an (unescapable) ';' or the end
        let mut version_digits = String::new();
        let mut more = false;
        for c in chars.by_ref() {
            if c == ';' {
                more = true;
                break;
            }
            version_digits.push(c);
        }
        let version: u64 = version_digits
            .parse()
            .map_err(|_| format!("bad version {version_digits:?} in key-version entry"))?;
        entries.push((table, key, version));
        if !more {
            return Ok(entries);
        }
    }
}

fn num_to_value(n: f64) -> Value {
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    // guarded: integral, in-range, non-negative
    if n.fract() == 0.0 && (0.0..=9_007_199_254_740_992.0).contains(&n) {
        Value::U64(n as u64)
    } else if n.fract() == 0.0 && (-9_007_199_254_740_992.0..0.0).contains(&n) {
        #[allow(clippy::cast_possible_truncation)] // integral, in i64 range
        Value::I64(n as i64)
    } else {
        Value::F64(n)
    }
}

/// Stable event-kind names.
///
/// These strings are the contract between the instrumented crates, the
/// JSONL traces on disk, `pstore-trace`, and the `TEL-*` invariants in
/// `pstore-verify`. Add new kinds freely; never rename existing ones.
pub mod kinds {
    /// A span opened: fields `id`, `name`, plus span-specific extras.
    pub const SPAN_BEGIN: &str = "span_begin";
    /// A span closed: fields `id`, `name`, plus span-specific extras.
    pub const SPAN_END: &str = "span_end";
    /// Span name used for a reconfiguration (begin fields: `from`, `to`).
    pub const SPAN_RECONFIG: &str = "reconfig";
    /// One chunk migrated: `from`, `to`, `slot`, `bytes`, `rows`,
    /// `slot_completed`.
    pub const CHUNK_MOVE: &str = "chunk_move";
    /// DP planner invocation: `horizon`, `n0`, `feasible`, `cost`,
    /// `end_machines`.
    pub const PLANNER: &str = "planner";
    /// Forecaster retrain attempt: `history`, `ok`.
    pub const FORECAST_RETRAIN: &str = "forecast_retrain";
    /// Forecast emitted: `horizon`, `peak`.
    pub const FORECAST_PREDICT: &str = "forecast_predict";
    /// Controller decision to reconfigure: `interval`, `machines`,
    /// `target`, `rate`, `reason`.
    pub const SCALE_DECISION: &str = "scale_decision";
    /// Per-second latency snapshot: `second`, `throughput`, `p50`, `p95`,
    /// `p99`, `mean`, `machines`, `reconfiguring`.
    pub const SECOND: &str = "second";
    /// A second whose p99 exceeded the SLA: `second`, `p99`.
    pub const SLA_VIOLATION: &str = "sla_violation";
    /// Periodic skew observation: `metric`, `value`.
    pub const SKEW_SAMPLE: &str = "skew_sample";
    /// Migration schedule planned: `from`, `to`, `rounds`.
    pub const SCHEDULE_PLANNED: &str = "schedule_planned";
    /// End-of-run metrics registry dump: one field per counter/gauge.
    pub const METRICS_SNAPSHOT: &str = "metrics_snapshot";
    /// A transaction entered the system: `id`, `slot` (sampled).
    pub const TXN_ARRIVE: &str = "txn_arrive";
    /// A transaction waited in a partition queue before executing:
    /// `id`, `wait` (seconds, total), `stall` (seconds of the wait
    /// attributed to migration interference).
    pub const TXN_QUEUE: &str = "txn_queue";
    /// A transaction's wait overlapped chunk-migration service bursts:
    /// `id`, `stall` (seconds). Emitted alongside [`TXN_QUEUE`] when the
    /// stall component is non-zero.
    pub const TXN_STALL: &str = "txn_stall";
    /// A transaction began executing: `id`, `service` (seconds).
    pub const TXN_EXECUTE: &str = "txn_execute";
    /// Terminal: the transaction committed. `id`, `total`, `queue`,
    /// `exec`, `stall` (seconds; `queue + exec + stall == total`, the
    /// TEL-06 attribution identity), `end` (completion sim time).
    pub const TXN_COMMIT: &str = "txn_commit";
    /// Terminal: the transaction aborted or was dropped. Same attribution
    /// fields as [`TXN_COMMIT`] plus `reason`.
    pub const TXN_ABORT: &str = "txn_abort";
    /// The transaction touched migrating data and was restarted against
    /// the destination partition (Squall §4.2 semantics): `id`, `slot`.
    pub const TXN_RESTART: &str = "txn_restart";
    /// Per-transaction read/write-set record captured at the `TxnCtx`
    /// access points: `id`, `slot`, `reads`, `writes`, `dest_reads`,
    /// `dest_writes`, `migrating`, `restarted`, `committed`, `proc`.
    /// When key-level capture is on (version tracking enabled in the
    /// engine *and* the transaction is sampled), two extra string
    /// fields carry the key-level version history: `rset` (each
    /// `(key, version-read)` pair) and `wset` (each
    /// `(key, version-installed)` pair), encoded by
    /// [`encode_key_versions`](crate::encode_key_versions) and decoded by
    /// [`parse_key_versions`](crate::parse_key_versions). The ISO-01..03
    /// serializability checkers in `pstore-verify` consume these fields;
    /// records without them (capture off) are skipped by those checkers.
    pub const TXN_RWSET: &str = "txn_rwset";
    /// Provisioning-observatory run header (emitted once per sim run when
    /// prov events are enabled): `q` (per-machine capacity), `d_s`
    /// (migration lead time D, seconds), `interval_s` (monitoring
    /// interval), `initial` (starting machine count), `policy`.
    pub const PROV_RUN: &str = "prov_run";
    /// One scored monitoring interval: `interval`, `observed` (measured
    /// demand over the interval), `machines` (active during it),
    /// `reconfiguring`. The ledger integrates these (PRV-01).
    pub const PROV_INTERVAL: &str = "prov_interval";
    /// A forecast joined with its later observation: `interval` (the
    /// target interval that was predicted), `horizon` (intervals ahead
    /// the prediction was made), `model`, `predicted` (raw, uninflated),
    /// `observed`. Emitted at scoring time, once per (model, horizon,
    /// interval) triple (PRV-03).
    pub const PROV_FORECAST: &str = "prov_forecast";
    /// Controller decision provenance: `id` (unique per controller
    /// instance, > 0), `interval`, `machines` (current), `target`,
    /// `reason`, `trigger` (load that tripped the decision), `peak`
    /// (predicted peak driving the size), `cost` (DP plan cost, NaN-free
    /// 0.0 when no plan), `lead` (monitoring intervals between the
    /// decision and the demand change driving it; 0 for
    /// reactive/emergency), `rate`.
    pub const PROV_DECISION: &str = "prov_decision";
    /// A reconfiguration completed, attributed to its decision: `id`
    /// (the `prov_decision` id, 0 = unattributed), `from`, `to`,
    /// `start` (sim time the move began), `duration_s`, `chunks`,
    /// `rows`, `bytes`, `fences` (fence epochs crossed; 0 on the inline
    /// backend, which never fences) (PRV-02).
    pub const PROV_RECONFIG: &str = "prov_reconfig";
    /// One chunk-move burst attributed to a decision: `id` (decision),
    /// `from`, `to`, `bytes`. Cheaper sibling of [`CHUNK_MOVE`] carrying
    /// the provenance join key.
    pub const PROV_CHUNK: &str = "prov_chunk";
}

/// Stable span-name strings (`span_begin`/`span_end` `name` field).
///
/// Like [`kinds`], this is a registry, not a convenience: `pstore-lint`
/// rule SA-02 rejects span names that are not declared here (or in
/// [`kinds`], for names like [`kinds::SPAN_RECONFIG`] that double as
/// event kinds), so trace-diff tooling can rely on the full name
/// vocabulary being enumerable.
pub mod span_names {
    /// One DP planner invocation (`crates/core/src/planner.rs`).
    pub const PLANNER_DP: &str = "planner_dp";
    /// A whole fast-simulator run.
    pub const FAST_SIM: &str = "fast_sim";
    /// A whole detailed-simulator run.
    pub const DETAILED_SIM: &str = "detailed_sim";
    /// Detailed-sim warmup phase (excluded from reported latencies).
    pub const WARMUP: &str = "warmup";
    /// One detailed-sim tick (only emitted under span-level profiling).
    pub const TICK: &str = "tick";
    /// One chunk-granularity migration step inside a reconfiguration.
    pub const CHUNK_STEP: &str = "chunk_step";
    /// Per-executor-shard attribution span (transaction count + busy
    /// time), emitted at end of run when `shard_spans` is enabled.
    pub const SHARD_EXEC: &str = "shard_exec";
    /// One reconfiguration fence round-trip on the threaded cluster
    /// (begin fields: `epoch`; end fields: `quiesce_us`), emitted only
    /// when runtime gauges are enabled.
    pub const FENCE: &str = "fence";
    /// Per-worker unit of work in the concurrency verification harness.
    pub const CON_WORK: &str = "con_work";
    /// Generic worker span used by pool/sweep smoke tests.
    pub const WORK: &str = "work";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_json_round_trip() {
        let mut ev = Event::new(kinds::CHUNK_MOVE)
            .with("from", 3u32)
            .with("to", 7u32)
            .with("bytes", 1_048_576u64)
            .with("frac", 0.25)
            .with("done", true)
            .with("why", "scale-out");
        ev.seq = 42;
        ev.t = Some(12.5);
        let line = ev.to_json_line();
        let parsed = Event::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.seq, 42);
        assert_eq!(parsed.t, Some(12.5));
        assert_eq!(parsed.kind, kinds::CHUNK_MOVE);
        assert_eq!(parsed.field_u64("from"), Some(3));
        assert_eq!(parsed.field_u64("bytes"), Some(1_048_576));
        assert_eq!(parsed.field_f64("frac"), Some(0.25));
        assert_eq!(parsed.field("done").and_then(Value::as_bool), Some(true));
        assert_eq!(parsed.field_str("why"), Some("scale-out"));
    }

    #[test]
    fn from_json_rejects_structural_problems() {
        let bad = crate::json::parse(r#"{"kind":"x"}"#).unwrap();
        assert!(Event::from_json(&bad).is_err());
        let nested = crate::json::parse(r#"{"seq":1,"kind":"x","a":[1]}"#).unwrap();
        assert!(Event::from_json(&nested).is_err());
        let arr = crate::json::parse("[1,2]").unwrap();
        assert!(Event::from_json(&arr).is_err());
    }

    #[test]
    fn wall_clock_stamp_round_trips() {
        let mut ev = Event::new("x");
        ev.seq = 1;
        ev.wall_us = Some(12_345_678);
        let line = ev.to_json_line();
        assert!(line.contains("\"wall_us\":12345678"));
        let parsed = Event::from_json(&crate::json::parse(&line).unwrap()).unwrap();
        assert_eq!(parsed.wall_us, Some(12_345_678));
        // Absent stamp parses back as None (older traces stay readable).
        let old = crate::json::parse(r#"{"seq":1,"kind":"x"}"#).unwrap();
        assert_eq!(Event::from_json(&old).unwrap().wall_us, None);
        // A fractional or negative stamp is rejected.
        let bad = crate::json::parse(r#"{"seq":1,"kind":"x","wall_us":1.5}"#).unwrap();
        assert!(Event::from_json(&bad).is_err());
    }

    #[test]
    fn key_versions_round_trip_with_escaping() {
        let entries = vec![
            (0u64, "('c', 2)".to_string(), 3u64),
            (5, "we;rd@key\\with(':')".to_string(), 0),
            (1, String::new(), 17),
        ];
        let encoded = encode_key_versions(entries.clone());
        assert_eq!(parse_key_versions(&encoded).unwrap(), entries);
        // Empty set round-trips through the empty string.
        assert_eq!(encode_key_versions(Vec::new()), "");
        assert_eq!(parse_key_versions("").unwrap(), Vec::new());
        // The plain shape is human-readable.
        assert_eq!(encode_key_versions(vec![(2, "k".to_string(), 9)]), "2:k@9");
    }

    #[test]
    fn key_versions_reject_malformed_entries() {
        assert!(parse_key_versions("x:k@1").is_err()); // non-numeric table
        assert!(parse_key_versions("1:k@").is_err()); // missing version
        assert!(parse_key_versions("1:k").is_err()); // no version separator
        assert!(parse_key_versions("1:k\\").is_err()); // dangling escape
        assert!(parse_key_versions("1:k@2;").is_err()); // trailing empty entry
    }

    #[test]
    fn negative_integers_parse_as_i64() {
        let v = crate::json::parse(r#"{"seq":0,"kind":"x","d":-5}"#).unwrap();
        let ev = Event::from_json(&v).unwrap();
        assert_eq!(ev.field("d"), Some(&Value::I64(-5)));
    }
}
