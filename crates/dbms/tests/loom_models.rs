//! Loom interleaving models for the sharded execution engine's
//! cross-thread protocols (ROADMAP: shard-per-core reactor).
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`; run with
//!
//! ```text
//! RUSTFLAGS="--cfg loom" cargo test -p pstore-dbms --release --test loom_models
//! ```
//!
//! Two invariants are modelled, mirrored as `CON-04`/`CON-05` runtime
//! checks in `pstore-verify`:
//!
//! * **CON-04** — the bounded SPSC mailbox handoff: a payload written
//!   before the `Release` tail publish is fully visible to the consumer's
//!   `Acquire` tail load, values arrive exactly once and in FIFO order,
//!   and close/drain terminates cleanly. Checked against the *real*
//!   [`pstore_dbms::mailbox::Mailbox`] (its primitives are loom types
//!   under this cfg), not a model of it.
//! * **CON-05** — the reconfiguration fence: a shard finishes its
//!   in-flight work *before* acking the fence epoch, the coordinator
//!   observes that work at the ack (the mailbox handoff carries the
//!   happens-before edge), and the shard does not resume until the
//!   coordinator releases the epoch through the real
//!   [`pstore_dbms::shard::FenceGate`].
//!
//! Each invariant has a negative twin seeding the bug the model must
//! catch (`Relaxed` where `Release` is required; an ack sent while work
//! is still in flight), asserting the checker has the discriminating
//! power the positive results rely on. Waiting loops inside models are
//! bounded polls with vacuous fallthrough — loom explores the executions
//! where the observation lands; unbounded spins would hang the model.
//!
//! The positive models run under a CHESS-style preemption bound (2
//! preemptive switches per execution): the mailbox alone carries four
//! modelled atomics, and the unbounded schedule space trips loom's
//! execution safety valve. Bugs reachable only beyond two preemptions
//! are rare in practice, and the seeded-bug twins — which run
//! *unbounded* — prove the discriminating power is intact.
#![cfg(loom)]

use pstore_dbms::mailbox::{Mailbox, TryRecvError};
use pstore_dbms::shard::FenceGate;
use pstore_dbms::sync::{Arc, AtomicUsize, Ordering};

/// Runs a model under the preemption bound (see the module docs).
fn bounded_model<F: Fn() + Send + Sync + 'static>(f: F) {
    loom::model::Builder {
        preemption_bound: Some(2),
        ..loom::model::Builder::default()
    }
    .check(f);
}

// ---- CON-04: mailbox handoff happens-before --------------------------

/// The real mailbox, model-checked: a producer publishes two values and
/// closes; the consumer (bounded poll, then post-join drain) must see
/// exactly `[10, 20]`, in order, in every interleaving.
#[test]
fn con_04_mailbox_delivers_exactly_once_in_order() {
    bounded_model(|| {
        let mb: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(2));
        let tx = Arc::clone(&mb);
        let producer = loom::thread::spawn(move || {
            tx.try_send(10).unwrap();
            tx.try_send(20).unwrap();
            tx.close();
        });
        let mut got = Vec::new();
        // Bounded poll racing the producer; whatever has been published
        // must come out in FIFO order.
        for _ in 0..3 {
            match mb.try_recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Empty) => loom::thread::yield_now(),
                Err(TryRecvError::Disconnected) => break,
            }
        }
        producer.join().unwrap();
        // Post-join (a happens-before edge): the rest drains without
        // racing, ending at Disconnected.
        loop {
            match mb.try_recv() {
                Ok(v) => got.push(v),
                Err(TryRecvError::Empty) => unreachable!("published value not visible"),
                Err(TryRecvError::Disconnected) => break,
            }
        }
        assert_eq!(got, vec![10, 20], "CON-04: lost, duplicated, or reordered");
    });
}

/// Negative twin: a hand-rolled one-slot channel whose publish flag is
/// stored `Relaxed` instead of `Release`. The model must find the
/// execution where the consumer sees the flag but a stale payload — the
/// exact bug class the mailbox's `Release`/`Acquire` tail protocol
/// excludes.
#[test]
#[should_panic(expected = "CON-04 seeded bug")]
fn con_04_relaxed_publish_is_caught() {
    loom::model(|| {
        let data = Arc::new(AtomicUsize::new(0));
        let flag = Arc::new(AtomicUsize::new(0));
        let (d, f) = (Arc::clone(&data), Arc::clone(&flag));
        let producer = loom::thread::spawn(move || {
            d.store(42, Ordering::Relaxed);
            // Seeded bug: the publish must be `Release` to carry the
            // payload write; `Relaxed` gives the consumer no edge.
            f.store(1, Ordering::Relaxed);
        });
        for _ in 0..3 {
            if flag.load(Ordering::Acquire) == 1 {
                assert_eq!(
                    data.load(Ordering::Relaxed),
                    42,
                    "CON-04 seeded bug: flag observed with stale payload"
                );
                break;
            }
            loom::thread::yield_now();
        }
        producer.join().unwrap();
    });
}

// ---- CON-05: reconfig fence excludes in-flight execution -------------

/// Shard side of the fence model. `quiesce_first` is the protocol under
/// test: finish in-flight work, then ack; the twin inverts it.
fn shard_model(
    state: Arc<AtomicUsize>,
    reply: Arc<Mailbox<u64>>,
    gate: Arc<FenceGate>,
    resumed: Arc<AtomicUsize>,
    quiesce_first: bool,
) {
    if quiesce_first {
        // In-flight work retires before the ack; the reply mailbox's
        // Release publish makes it visible to the coordinator.
        state.store(7, Ordering::Relaxed);
        reply.try_send(1).unwrap();
    } else {
        // Seeded bug: ack first, finish the work afterwards.
        reply.try_send(1).unwrap();
        state.store(7, Ordering::Relaxed);
    }
    // Hold at the fence; resume only once the epoch is released.
    for _ in 0..3 {
        if gate.is_released(1) {
            resumed.store(1, Ordering::Relaxed);
            return;
        }
        loom::thread::yield_now();
    }
    // Vacuous fallthrough: this execution never observed the release;
    // the shard simply does not resume (no post-fence work happens).
}

fn fence_model(quiesce_first: bool) {
    let state = Arc::new(AtomicUsize::new(0));
    let reply: Arc<Mailbox<u64>> = Arc::new(Mailbox::new(1));
    let gate = Arc::new(FenceGate::new());
    let resumed = Arc::new(AtomicUsize::new(0));
    let shard = {
        let (st, rp, gt, rs) = (
            Arc::clone(&state),
            Arc::clone(&reply),
            Arc::clone(&gate),
            Arc::clone(&resumed),
        );
        loom::thread::spawn(move || shard_model(st, rp, gt, rs, quiesce_first))
    };
    // Coordinator: bounded poll for the ack; in executions where it
    // arrives, the shard has quiesced — its in-flight write must be
    // visible, and it must not have resumed (the epoch is unreleased).
    for _ in 0..3 {
        if reply.try_recv().is_ok() {
            assert_eq!(
                state.load(Ordering::Relaxed),
                7,
                "CON-05 seeded bug: fence acked with work still in flight"
            );
            assert_eq!(
                resumed.load(Ordering::Relaxed),
                0,
                "CON-05: shard resumed before the epoch release"
            );
            gate.release(1);
            break;
        }
        loom::thread::yield_now();
    }
    // Unblock any execution where the ack was never polled.
    gate.release(1);
    shard.join().unwrap();
}

/// Quiesce-then-ack through the real gate and mailbox: the coordinator
/// always observes the shard's pre-fence work at the ack, and the shard
/// never resumes early. Exhaustive.
#[test]
fn con_05_fence_quiesces_shards_before_global_ops() {
    bounded_model(|| fence_model(true));
}

/// Negative twin: ack the fence while the shard's work is still in
/// flight and the model finds the execution where the coordinator reads
/// stale shard state under the fence — the bug class the
/// quiesce-before-ack discipline excludes.
#[test]
#[should_panic(expected = "CON-05 seeded bug")]
fn con_05_ack_before_quiesce_is_caught() {
    loom::model(|| fence_model(false));
}
