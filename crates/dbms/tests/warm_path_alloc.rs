//! Allocation accounting for the per-transaction warm path, measured with
//! a counting global allocator (test binary only — the library never
//! swaps allocators).
//!
//! The engine's dispatch path — routing-key hashing, slot lookup, dense
//! slot-access counters, procedure statistics — must stay off the heap
//! once warm: it runs once per simulated transaction, hundreds of
//! thousands of times per experiment cell. Workload *content* (B2W
//! transactions own their key strings) is excluded by design; its
//! allocation budget is bounded separately below.

use pstore_dbms::catalog::{columns, Catalog, ColumnType, TableSchema};
use pstore_dbms::cluster::{Cluster, ClusterConfig};
use pstore_dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
use pstore_dbms::value::{Key, KeyValue};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

/// Counts every allocation and reallocation routed through the global
/// allocator, **per thread**: the harness runs tests (and its own
/// bookkeeping) on several threads, so a process-global counter would
/// pick up another thread's allocations mid-measurement and flake — under
/// the native scheduler occasionally, under miri's deterministically.
struct CountingAlloc;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

// SAFETY: delegates every operation to `System`, only adding a counter.
// `try_with` (not `with`) keeps allocations during TLS teardown from
// recursing into a destructed counter.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the `GlobalAlloc::alloc` contract (valid,
    // non-zero-size layout); we forward it to `System` untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: same `layout` the caller vouched for.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller upholds the `GlobalAlloc::dealloc` contract (`ptr`
    // came from this allocator with this `layout`).
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr` was returned by `System` (every alloc above
        // delegates to it), paired with the caller's `layout`.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: caller upholds the `GlobalAlloc::realloc` contract; all
    // three arguments are forwarded untouched.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        // SAFETY: `ptr`/`layout` pair is the caller's obligation and
        // `ptr` originated from `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations (incl. reallocations) performed by this thread while
/// running `f`.
fn allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = THREAD_ALLOCS.with(Cell::get);
    let out = f();
    (THREAD_ALLOCS.with(Cell::get) - before, out)
}

/// Warm-up / probe iteration counts: full-size natively, scaled down
/// under miri (interpreted execution is ~1000x slower; the property —
/// zero allocations once warm — is count-independent as long as every
/// probe key was seen during warm-up).
const WARMUP_KEYS: i64 = if cfg!(miri) { 64 } else { 2_000 };
const PROBE_KEYS: i64 = if cfg!(miri) { 32 } else { 1_000 };

fn test_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "KV",
        columns(&[("k", ColumnType::Int), ("v", ColumnType::Int)]),
        1,
    ));
    cat
}

/// A read-only probe: routes by an integer key and checks for a row that
/// is absent, touching routing, the slot-check, the storage lookup, and
/// the procedure/statistics bookkeeping — without producing owned output.
/// The key is owned by the probe (as a real transaction owns its data), so
/// executing it measures only the engine's work.
struct Probe {
    id: i64,
    key: Key,
}

impl Probe {
    fn new(id: i64) -> Self {
        Probe {
            id,
            key: Key::int(id),
        }
    }
}

impl Procedure for Probe {
    fn name(&self) -> &'static str {
        "Probe"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Int(self.id)
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let _ = ctx.get(0, &self.key);
        Ok(TxnOutput::None)
    }
}

#[test]
fn warm_engine_dispatch_path_is_allocation_free() {
    let mut cluster = Cluster::new(
        test_catalog(),
        ClusterConfig {
            partitions_per_node: 4,
            num_slots: 128,
        },
        3,
    );
    // Warm up: touch every slot so the dense per-partition counters have
    // grown to their final size and the procedure-stats entry exists.
    for key in 0..WARMUP_KEYS {
        let p = Probe::new(key);
        let slot = cluster.slot_of_routing(&p.routing_key());
        cluster.execute_at_slot(&p, slot).unwrap();
    }

    // Probe keys are a subset of the warm-up keys, so no lookup below
    // can grow a table for the first time.
    let probes: Vec<Probe> = (0..PROBE_KEYS).map(Probe::new).collect();
    let (n, ()) = allocations(|| {
        for p in &probes {
            let slot = cluster.slot_of_routing(&p.routing_key());
            cluster.execute_at_slot(p, slot).unwrap();
        }
    });
    assert_eq!(
        n, 0,
        "warm per-transaction dispatch path allocated {n} times over {PROBE_KEYS} txns"
    );
}

#[test]
fn slot_of_routing_never_allocates_for_typical_keys() {
    let cluster = Cluster::new(test_catalog(), ClusterConfig::default(), 2);
    let int_key = KeyValue::Int(0x00de_adbe_ef42);
    let str_key = KeyValue::Str("cart-00deadbeef42".into());
    let (n, _) = allocations(|| {
        let mut acc = 0u64;
        for _ in 0..PROBE_KEYS {
            acc ^= cluster.slot_of_routing(&int_key);
            acc ^= cluster.slot_of_routing(&str_key);
        }
        acc
    });
    assert_eq!(n, 0, "slot_of_routing allocated {n} times");
}

/// With the `telemetry` feature off, the txn-tracing macros must compile
/// to literally nothing: no allocation, no sink check, not even
/// evaluation of their field expressions (which is also the "zero time"
/// guarantee — code that is cfg'd out of the binary cannot take any).
/// The side-effect counter proves the bodies never ran.
#[cfg(not(feature = "telemetry"))]
#[test]
// The unused import and closure are the property under test: with the
// feature off the macro bodies vanish, so nothing references them.
#[allow(unused_imports, unused_variables)]
fn txn_tracing_macros_vanish_without_the_feature() {
    use pstore_telemetry::{kinds, tel_event, tel_scope, tel_span};

    let evaluated = Cell::new(0u64);
    let tick = || {
        evaluated.set(evaluated.get() + 1);
        evaluated.get()
    };
    let (n, ()) = allocations(|| {
        for _ in 0..PROBE_KEYS {
            tel_event!(kinds::TXN_ARRIVE, "id" => tick(), "slot" => tick());
            tel_event!(
                kinds::TXN_COMMIT,
                "id" => tick(),
                "total" => 0.1f64,
                "queue" => 0.05f64,
                "exec" => 0.05f64,
                "stall" => 0.0f64,
            );
            tel_span!(guard, "work");
            tel_scope!({
                tick();
            });
        }
    });
    assert_eq!(n, 0, "disabled txn tracing allocated {n} times");
    assert_eq!(
        evaluated.get(),
        0,
        "disabled txn tracing evaluated its field expressions"
    );
}

#[test]
fn slot_access_reset_keeps_buffers_and_stays_allocation_free() {
    let mut cluster = Cluster::new(test_catalog(), ClusterConfig::default(), 2);
    let probes: Vec<Probe> = (0..PROBE_KEYS).map(Probe::new).collect();
    for p in &probes {
        cluster.execute(p).unwrap();
    }
    let (n, ()) = allocations(|| {
        cluster.reset_slot_accesses();
        for p in &probes {
            let slot = cluster.slot_of_routing(&p.routing_key());
            cluster.execute_at_slot(p, slot).unwrap();
        }
        let counts = cluster.slot_access_counts();
        assert_eq!(
            counts.iter().sum::<u64>(),
            u64::try_from(PROBE_KEYS).unwrap()
        );
    });
    assert_eq!(n, 0, "reset + warm re-count allocated {n} times");
}
