#![allow(clippy::cast_possible_truncation)] // test slot ids are tiny

//! Model-based property tests: the engine must behave exactly like a flat
//! in-memory map, no matter how operations interleave with live
//! reconfigurations.

use proptest::prelude::*;
use pstore_core::partition_plan::SlotPlan;
use pstore_dbms::catalog::{columns, Catalog, ColumnType, TableSchema};
use pstore_dbms::cluster::{Cluster, ClusterConfig};
use pstore_dbms::skew::{imbalance, node_loads, plan_rebalance, SkewConfig};
use pstore_dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
use pstore_dbms::value::{Key, KeyValue, Row, Value};
use std::collections::HashMap;

fn kv_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "KV",
        columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
        1,
    ));
    cat
}

struct Put(String, i64);
impl Procedure for Put {
    fn name(&self) -> &'static str {
        "Put"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.0.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.put(0, Key::str(self.0.clone()), Row(vec![Value::Int(self.1)]));
        Ok(TxnOutput::None)
    }
}

struct Get(String);
impl Procedure for Get {
    fn name(&self) -> &'static str {
        "Get"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.0.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        match ctx.get(0, &Key::str(self.0.clone())) {
            Some(r) => Ok(TxnOutput::Row(r)),
            None => Ok(TxnOutput::None),
        }
    }
}

struct Del(String);
impl Procedure for Del {
    fn name(&self) -> &'static str {
        "Del"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.0.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let n = u64::from(ctx.delete(0, &Key::str(self.0.clone())).is_some());
        Ok(TxnOutput::Count(n))
    }
}

/// One step of the random workload.
#[derive(Debug, Clone)]
enum Op {
    Put(u8, i64),
    Get(u8),
    Del(u8),
    /// Start (or continue) a reconfiguration to this node count.
    Reconfigure(u8),
    /// Push a few migration chunks.
    Chunks(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<i64>()).prop_map(|(k, v)| Op::Put(k, v)),
        any::<u8>().prop_map(Op::Get),
        any::<u8>().prop_map(Op::Del),
        (1u8..=8).prop_map(Op::Reconfigure),
        (1u8..=16).prop_map(Op::Chunks),
    ]
}

fn key_name(k: u8) -> String {
    format!("key-{k:03}")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random puts/gets/deletes interleaved with random reconfigurations
    /// behave exactly like a HashMap.
    #[test]
    fn engine_matches_model_under_migration(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut cluster = Cluster::new(
            kv_catalog(),
            ClusterConfig { partitions_per_node: 2, num_slots: 64 },
            2,
        );
        let mut model: HashMap<String, i64> = HashMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    cluster.execute(&Put(key_name(k), v)).unwrap();
                    model.insert(key_name(k), v);
                }
                Op::Get(k) => {
                    let out = cluster.execute(&Get(key_name(k))).unwrap();
                    match model.get(&key_name(k)) {
                        Some(&v) => prop_assert_eq!(out, TxnOutput::Row(Row(vec![Value::Int(v)]))),
                        None => prop_assert_eq!(out, TxnOutput::None),
                    }
                }
                Op::Del(k) => {
                    let out = cluster.execute(&Del(key_name(k))).unwrap();
                    let existed = model.remove(&key_name(k)).is_some();
                    prop_assert_eq!(out, TxnOutput::Count(u64::from(existed)));
                }
                Op::Reconfigure(n) => {
                    // Ignored when one is already running or it's a no-op.
                    let _ = cluster.begin_reconfiguration(n as u32);
                }
                Op::Chunks(n) => {
                    for i in 0..n as usize {
                        if !cluster.reconfiguring() {
                            break;
                        }
                        let pairs = cluster.pair_transfers().len();
                        let _ = cluster.migrate_chunk(i % pairs, 512);
                    }
                }
            }
        }
        // Drain any outstanding reconfiguration, then do a full audit.
        if cluster.reconfiguring() {
            cluster.run_reconfiguration_to_completion(4096).unwrap();
        }
        prop_assert_eq!(cluster.total_rows(), model.len());
        for (k, &v) in &model {
            let out = cluster.execute(&Get(k.clone())).unwrap();
            prop_assert_eq!(out, TxnOutput::Row(Row(vec![Value::Int(v)])));
        }
    }

    /// The skew balancer never unbalances: for any access distribution the
    /// proposed plan's imbalance is no worse than the current one, and the
    /// proposal only touches slots that exist.
    #[test]
    fn skew_balancer_never_hurts(
        machines in 2u32..=8,
        counts in prop::collection::vec(0u64..2_000, 64),
    ) {
        let plan = SlotPlan::balanced(machines, 64);
        let accesses: HashMap<u64, u64> = counts
            .iter()
            .enumerate()
            .map(|(s, &c)| (s as u64, c))
            .collect();
        let before = imbalance(&node_loads(&plan, &accesses));
        if let Some(p) = plan_rebalance(&plan, &accesses, &SkewConfig::default()) {
            let after = imbalance(&node_loads(&p.plan, &accesses));
            prop_assert!(after <= before + 1e-9, "{before} -> {after}");
            prop_assert_eq!(p.plan.num_slots(), 64);
            prop_assert_eq!(p.plan.machines(), machines);
            for &(slot, from, to) in &p.moves {
                prop_assert!(slot < 64);
                prop_assert_eq!(plan.owner(slot as usize), from);
                prop_assert_eq!(p.plan.owner(slot as usize), to);
            }
        }
    }

    /// Routing is stable: the slot of a key never depends on cluster state.
    #[test]
    fn routing_is_deterministic(keys in prop::collection::vec("[a-z]{1,12}", 1..40)) {
        let c2 = Cluster::new(
            kv_catalog(),
            ClusterConfig { partitions_per_node: 3, num_slots: 128 },
            2,
        );
        let c7 = Cluster::new(
            kv_catalog(),
            ClusterConfig { partitions_per_node: 3, num_slots: 128 },
            7,
        );
        for k in &keys {
            let key = Key::str(k.clone());
            prop_assert_eq!(c2.slot_of_key(&key), c7.slot_of_key(&key));
        }
    }
}
