//! Integration tests for the sharded execution engine's failure and
//! audit paths: a panicking shard must surface as an attributed
//! coordinator panic (the same contract `Sweep::run_fallible` gives
//! cells), and the fenced slot-access recount must agree with the
//! incremental per-shard counters after concurrent runs.

#![allow(clippy::expect_used, clippy::unwrap_used)] // tests abort loudly

use pstore_dbms::catalog::{columns, ColumnType, TableSchema};
use pstore_dbms::{
    Catalog, Cluster, ClusterConfig, Key, KeyValue, Procedure, Row, TxnCtx, TxnError, TxnOutput,
    Value,
};

fn kv_catalog() -> Catalog {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "KV",
        columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
        1,
    ));
    cat
}

fn sharded(nodes: u32, shards: u32) -> Cluster {
    Cluster::with_shards(
        kv_catalog(),
        ClusterConfig {
            partitions_per_node: 4,
            num_slots: 64,
        },
        nodes,
        shards,
    )
}

struct Put {
    key: String,
    value: i64,
}

impl Procedure for Put {
    fn name(&self) -> &'static str {
        "Put"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.key.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.put(
            0,
            Key::str(self.key.clone()),
            Row(vec![Value::Int(self.value)]),
        );
        Ok(TxnOutput::None)
    }
}

struct Get {
    key: String,
}

impl Procedure for Get {
    fn name(&self) -> &'static str {
        "Get"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.key.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let row = ctx.get_required(0, "KV", &Key::str(self.key.clone()))?;
        Ok(TxnOutput::Row(row))
    }
}

/// A procedure that panics mid-execution — the shard-side equivalent of
/// the fault-injected cells `Sweep::run_fallible` attributes.
struct Kaboom;

impl Procedure for Kaboom {
    fn name(&self) -> &'static str {
        "Kaboom"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str("kaboom-key".into())
    }
    fn execute(&self, _ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        panic!("kaboom: injected shard fault");
    }
}

fn submit_put(c: &mut Cluster, i: i64) {
    let put = Put {
        key: format!("key-{i}"),
        value: i,
    };
    let slot = c.slot_of_routing(&put.routing_key());
    c.submit(put, slot);
}

fn submit_get(c: &mut Cluster, i: i64) {
    let get = Get {
        key: format!("key-{i}"),
    };
    let slot = c.slot_of_routing(&get.routing_key());
    c.submit(get, slot);
}

/// A panic inside a shard's procedure does not poison the engine
/// silently and does not tear down the process from a detached thread:
/// it surfaces on the coordinator as a panic naming the shard, so a
/// sweep cell driving this cluster gets the same "caught and
/// attributed" treatment as any other panicking cell.
#[test]
fn panicking_shard_is_caught_and_attributed() {
    let payload = {
        let mut c = sharded(2, 2);
        // Healthy traffic before the fault, so the panic races real work
        // through the mailboxes.
        for i in 0..50 {
            submit_put(&mut c, i);
        }
        let slot = c.slot_of_routing(&Kaboom.routing_key());
        c.submit(Kaboom, slot);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut fates = Vec::new();
            c.drain_fates_into(&mut fates);
        }))
        .expect_err("draining past a panicked shard must panic");
        // The cluster must still drop cleanly after the fault (workers
        // joined, mailboxes closed) — reaching the end of this scope
        // without hanging is part of the test.
        caught
    };
    let message = payload
        .downcast_ref::<String>()
        .expect("coordinator panic carries a String payload")
        .clone();
    let suffix = message
        .strip_prefix("executor shard ")
        .unwrap_or_else(|| panic!("panic not attributed to a shard: {message}"));
    let (shard, rest) = suffix.split_once(' ').expect("shard index then detail");
    let shard: u32 = shard.parse().expect("numeric shard index");
    assert!(shard < 2, "shard {shard} out of range");
    assert!(
        rest.starts_with("panicked: kaboom: injected shard fault"),
        "wrong attribution detail: {message}"
    );
}

/// The audit oracle at shards > 1: after mixed traffic and a live
/// scale-out on the threaded backend, the fenced per-shard recount
/// (`rebuild_slot_access_report`) must agree with the incrementally
/// maintained counters, survive a counter reset, and match the serial
/// engine bit-for-bit.
#[test]
fn rebuild_slot_access_report_matches_incremental_at_four_shards() {
    let mut serial = sharded(2, 1);
    let mut sharded4 = sharded(2, 4);
    for c in [&mut serial, &mut sharded4] {
        let mut fates = Vec::new();
        for i in 0..300 {
            submit_put(c, i);
            if i % 4 == 0 {
                submit_get(c, i / 2);
            }
        }
        c.drain_fates_into(&mut fates);
        assert_eq!(fates.len(), 375);

        // The incremental counters and the fenced recount must agree
        // after purely concurrent traffic...
        assert_eq!(c.rebuild_slot_access_report(), c.slot_access_report());

        // ... and stay in agreement through a live scale-out with reads
        // against mid-flight slots between chunk moves.
        c.begin_reconfiguration(5).unwrap();
        while c.reconfiguring() {
            for pair in 0..c.pair_transfers().len() {
                if c.reconfiguring() {
                    c.migrate_chunk(pair, 500).unwrap();
                }
            }
            for i in 0..25 {
                submit_get(c, i);
            }
            c.drain_fates_into(&mut fates);
        }
        assert_eq!(c.rebuild_slot_access_report(), c.slot_access_report());

        // A reset clears both views; fresh traffic re-fills them in sync.
        c.reset_slot_accesses();
        assert!(c.slot_access_report().is_empty());
        assert!(c.rebuild_slot_access_report().is_empty());
        for i in 0..60 {
            submit_get(c, i);
        }
        c.drain_fates_into(&mut fates);
        assert_eq!(c.rebuild_slot_access_report(), c.slot_access_report());
    }
    assert_eq!(serial.slot_access_report(), sharded4.slot_access_report());
    assert_eq!(
        serial.rebuild_slot_access_report(),
        sharded4.rebuild_slot_access_report()
    );
}

/// Per-shard execution reports cover every transaction exactly once:
/// the shard totals sum to the serial engine's single-shard count, and
/// every shard of the partitioned slot space carries some of the load.
#[test]
fn shard_reports_partition_the_work() {
    let mut serial = sharded(2, 1);
    let mut sharded4 = sharded(2, 4);
    let mut fates = Vec::new();
    for c in [&mut serial, &mut sharded4] {
        for i in 0..400 {
            submit_put(c, i);
        }
        c.drain_fates_into(&mut fates);
    }
    let serial_reports = serial.shard_reports();
    let sharded_reports = sharded4.shard_reports();
    assert_eq!(serial_reports.len(), 1);
    assert_eq!(sharded_reports.len(), 4);
    assert_eq!(
        sharded_reports.iter().map(|r| r.txns).sum::<u64>(),
        serial_reports[0].txns
    );
    for (i, report) in sharded_reports.iter().enumerate() {
        assert!(report.txns > 0, "shard {i} executed nothing");
    }
}
