//! The multi-node cluster: routing, execution, and Squall-style live
//! reconfiguration.
//!
//! A cluster holds `N` nodes of `P` partitions each. The hash space is
//! divided into virtual slots; a [`SlotPlan`] maps slots to nodes and the
//! local partition of a slot is a hash of the slot id (kept independent of
//! the node assignment so every partition receives data). Reconfiguration moves slots
//! between nodes in chunks: each chunk relocates up to a byte budget of one
//! slot's rows, and the migrated-key set lets transactions keep executing
//! against the slot while it is in flight (key-granularity switchover).
//! Chunk *pacing* — how often chunks run and how long they occupy the
//! partition — is the simulator's job; this module provides the mechanism.
//!
//! # Sharded execution
//!
//! The storage is owned by `S` executor shards ([`ShardState`]): shard
//! `s` holds every partition whose local index `l` satisfies
//! `l % S == s`, on every node. With `S == 1` (the default, and
//! [`Cluster::new`]'s only mode) the shard runs *inline* — no threads, no
//! queues, the serial engine unchanged. With `S > 1`
//! ([`Cluster::with_shards`]) each shard runs on its own thread behind a
//! pair of bounded SPSC [`Mailbox`]es, and this struct becomes the
//! *coordinator*: it owns routing, plans, statistics, and telemetry, and
//! ships work to shards as [`Command`]s.
//!
//! Determinism at any shard count comes from three rules:
//!
//! 1. **Single-shard execution.** A slot's local index never changes, and
//!    a migrating slot's source and destination share it, so every
//!    transaction and every migration chunk is handled entirely by one
//!    shard — no cross-thread locking on the execute path.
//! 2. **Submission-order settlement.** [`Cluster::submit`] records which
//!    shard received each transaction; fates are collected back in
//!    exactly that global order, so statistics, per-procedure counters,
//!    and the simulator's telemetry merge are byte-identical to the
//!    serial engine's.
//! 3. **Fence/epoch protocol.** Global structural operations (node
//!    allocation, plan commit, snapshot reads) run only when every shard
//!    has quiesced at a [`Command::Fence`] and acked; shards hold at the
//!    [`FenceGate`] until the coordinator releases the epoch (CON-05).
//!
//! Shard threads emit no telemetry and draw no randomness; all
//! observable effects return as [`Reply`]s and are folded in by the
//! coordinator, on the coordinator's thread.

use crate::catalog::{Catalog, TableId};
use crate::hash::bucket_of;
use crate::mailbox::{Mailbox, TrySendError};
use crate::shard::{
    worker_loop, Command, FenceData, FenceGate, FenceOp, Reply, ShardPanic, ShardState, TxnFate,
};
use crate::sync::Arc;
use crate::txn::{Procedure, TxnError, TxnOutput};
use crate::value::Key;
use pstore_core::partition_plan::SlotPlan;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Command/reply ring capacity per shard. Large enough that a simulator
/// batching one second of arrivals rarely blocks, small enough to bound
/// memory; the blocking send path drains replies while waiting, so a
/// full ring degrades to lockstep rather than deadlock.
const MAILBOX_CAPACITY: usize = 1024;

/// Cluster construction parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// Partitions per node (`P`; the paper's clusters use 6).
    pub partitions_per_node: u32,
    /// Number of virtual hash slots. More slots = finer migration chunks
    /// and better balance; must be at least the maximum node count.
    pub num_slots: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            partitions_per_node: 6,
            num_slots: 720, // divisible by 1..=10 nodes x 6 partitions
        }
    }
}

/// One sender-to-receiver stream of a reconfiguration: the ordered slots it
/// must move. Pairs correspond 1:1 to the machine-pair transfers of the
/// §4.4.1 migration schedule.
#[derive(Debug, Clone)]
pub struct PairTransfer {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Slots to move, in order.
    pub slots: Vec<u64>,
    next: usize,
}

impl PairTransfer {
    /// Whether all slots of this pair have been moved.
    pub fn is_done(&self) -> bool {
        self.next >= self.slots.len()
    }

    /// Slots not yet fully moved.
    pub fn remaining_slots(&self) -> usize {
        self.slots.len() - self.next
    }

    /// The slot the next chunk will draw from, if any remain.
    pub fn current_slot(&self) -> Option<u64> {
        self.slots.get(self.next).copied()
    }
}

/// An in-progress reconfiguration. The coordinator tracks *which* slots
/// are in flight (and their source/destination) for routing; the owning
/// shard tracks the moved-key sets.
#[derive(Debug)]
struct Reconfig {
    new_plan: SlotPlan,
    pairs: Vec<PairTransfer>,
    in_flight: HashMap<u64, (u32, u32)>,
    pending_pairs: usize,
    /// Telemetry span covering this reconfiguration (0 = no span).
    #[cfg_attr(not(feature = "telemetry"), allow(dead_code))]
    span_id: u64,
}

/// Result of one migration chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkResult {
    /// Estimated bytes relocated by this chunk.
    pub bytes: usize,
    /// Rows relocated.
    pub rows: usize,
    /// Whether the chunk completed a slot.
    pub slot_completed: bool,
    /// Whether the pair has no slots left.
    pub pair_done: bool,
    /// Whether the whole reconfiguration just committed.
    pub reconfig_done: bool,
}

/// Errors starting or driving a reconfiguration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReconfigError {
    /// A reconfiguration is already running.
    AlreadyRunning,
    /// No reconfiguration is running.
    NotRunning,
    /// The requested size equals the current size.
    NoChange,
    /// The requested size is invalid (zero, or more nodes than slots).
    InvalidTarget {
        /// The rejected size.
        target: u32,
    },
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::AlreadyRunning => write!(f, "a reconfiguration is already running"),
            ReconfigError::NotRunning => write!(f, "no reconfiguration is running"),
            ReconfigError::NoChange => write!(f, "target size equals current size"),
            ReconfigError::InvalidTarget { target } => {
                write!(f, "invalid target cluster size {target}")
            }
        }
    }
}

impl std::error::Error for ReconfigError {}

/// Aggregate execution counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Committed transactions.
    pub committed: u64,
    /// Aborted transactions.
    pub aborted: u64,
    /// Transactions that touched in-flight (migrating) data.
    pub touched_migrating: u64,
    /// Completed reconfigurations.
    pub reconfigurations: u64,
}

/// Per-shard execution attribution, from [`Cluster::shard_reports`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardReport {
    /// Transactions executed by the shard.
    pub txns: u64,
    /// Wall-clock microseconds the shard spent applying commands
    /// (always 0 for the inline backend, which does not meter itself).
    pub busy_us: u64,
}

/// One executor-shard thread and its command/reply rings.
struct Worker {
    cmd: Arc<Mailbox<Command>>,
    reply: Arc<Mailbox<Reply>>,
    handle: Option<crate::sync::thread::JoinHandle<()>>,
}

/// Where the storage lives: inline in the coordinator (serial engine,
/// `shards == 1`) or spread over executor threads.
enum Backend {
    Inline(ShardState),
    Threaded {
        workers: Vec<Worker>,
        gate: Arc<FenceGate>,
    },
}

/// A shared-nothing, partitioned, main-memory cluster.
pub struct Cluster {
    catalog: Catalog,
    cfg: ClusterConfig,
    plan: SlotPlan,
    /// Dense slot → node routing cache: the committed plan with completed
    /// in-flight moves applied on top (the role the override map used to
    /// play, but resolved with one indexed load instead of two hash
    /// lookups). In-flight slots keep routing to their source node until
    /// their last chunk lands, exactly as before.
    route_node: Vec<u32>,
    /// Dense slot → local-partition cache. `local_of_slot` is a pure hash
    /// of the slot id, so this never changes after construction.
    route_local: Vec<u32>,
    /// Cluster-wide per-slot access counters, maintained incrementally on
    /// the execute path — [`slot_access_report`](Self::slot_access_report)
    /// reads this instead of re-aggregating every partition's counters.
    slot_access_totals: Vec<u64>,
    /// Executor shard count (1 = inline serial engine).
    num_shards: u32,
    /// Nodes currently holding resources.
    allocated: u32,
    backend: Backend,
    /// Shard of each outstanding (submitted, un-settled) transaction, in
    /// global submission order — the ordered-merge discipline that makes
    /// fate collection deterministic.
    pending_order: VecDeque<u32>,
    /// Fates already collected but not yet handed to the caller.
    drained: VecDeque<TxnFate>,
    /// Monotone fence epoch (interior-mutable so read-only snapshot ops
    /// can fence without `&mut self`).
    fence_epoch: Cell<u64>,
    reconfig: Option<Reconfig>,
    stats: ClusterStats,
    /// Per-procedure (committed, aborted) counters.
    procedure_stats: HashMap<&'static str, (u64, u64)>,
    /// Coordinator mirror of the shards' per-key version tracking flag
    /// (see [`set_track_versions`](Self::set_track_versions)): sampled
    /// transactions are only captured at key level while this is on.
    versions_on: bool,
    /// Trace id for the next transaction, set by a sampling caller (the
    /// simulator): `execute_at_slot` emits that transaction's `txn_rwset`
    /// (and `txn_restart`, if it was rerouted to a migration destination)
    /// under this id, then clears it. Applies to the inline execute path
    /// only — fates from [`submit`](Self::submit) carry the same data for
    /// the caller to emit itself.
    #[cfg(feature = "telemetry")]
    txn_trace_id: Option<u64>,
    /// Opt-in runtime instrumentation of the threaded backend: mailbox
    /// depth/occupancy histograms on the command/reply rings and a
    /// `fence` latency span per fence round. Off by default — the warm
    /// path then carries no sampling and default-config traces stay
    /// byte-stable (see [`set_runtime_gauges`](Self::set_runtime_gauges)).
    #[cfg(feature = "telemetry")]
    runtime_gauges: bool,
}

impl Cluster {
    /// Boots a serial (single-shard, inline) cluster of `initial_nodes`
    /// nodes.
    ///
    /// # Panics
    /// Panics on zero nodes or too few slots.
    pub fn new(catalog: Catalog, cfg: ClusterConfig, initial_nodes: u32) -> Self {
        Self::with_shards(catalog, cfg, initial_nodes, 1)
    }

    /// Boots a cluster whose storage is split over `shards` executor
    /// shards. `shards == 1` is the serial engine (inline, no threads);
    /// larger counts spawn one executor thread per shard. The count is
    /// clamped to `partitions_per_node` — beyond that shards would own no
    /// partitions.
    ///
    /// # Panics
    /// Panics on zero nodes, zero shards, or too few slots.
    pub fn with_shards(
        catalog: Catalog,
        cfg: ClusterConfig,
        initial_nodes: u32,
        shards: u32,
    ) -> Self {
        assert!(initial_nodes > 0, "need at least one node");
        assert!(
            cfg.num_slots >= initial_nodes as usize,
            "need at least one slot per node"
        );
        assert!(cfg.partitions_per_node > 0, "need at least one partition");
        assert!(shards > 0, "need at least one executor shard");
        let shards = shards.min(cfg.partitions_per_node);
        let plan = SlotPlan::balanced(initial_nodes, cfg.num_slots);
        let num_tables = catalog.len();
        let route_node = plan.assignments().to_vec();
        #[allow(clippy::cast_possible_truncation)] // the bucket is below P, a u32
        let route_local: Vec<u32> = (0..cfg.num_slots as u64)
            .map(|slot| bucket_of(&slot.to_le_bytes(), cfg.partitions_per_node as u64) as u32)
            .collect();
        let make_state = |shard: u32| {
            ShardState::new(
                shard,
                shards,
                cfg.partitions_per_node,
                num_tables,
                cfg.num_slots as u64,
                initial_nodes,
            )
        };
        let backend = if shards == 1 {
            Backend::Inline(make_state(0))
        } else {
            let gate = Arc::new(FenceGate::new());
            let workers = (0..shards)
                .map(|s| {
                    let cmd = Arc::new(Mailbox::new(MAILBOX_CAPACITY));
                    let reply = Arc::new(Mailbox::new(MAILBOX_CAPACITY));
                    let state = make_state(s);
                    let (c, r, g) = (Arc::clone(&cmd), Arc::clone(&reply), Arc::clone(&gate));
                    let handle = crate::sync::thread::spawn(move || worker_loop(state, &c, &r, &g));
                    Worker {
                        cmd,
                        reply,
                        handle: Some(handle),
                    }
                })
                .collect();
            Backend::Threaded { workers, gate }
        };
        Cluster {
            catalog,
            plan,
            route_node,
            route_local,
            slot_access_totals: vec![0; cfg.num_slots],
            num_shards: shards,
            allocated: initial_nodes,
            backend,
            pending_order: VecDeque::new(),
            drained: VecDeque::new(),
            fence_epoch: Cell::new(0),
            cfg,
            reconfig: None,
            stats: ClusterStats::default(),
            procedure_stats: HashMap::new(),
            versions_on: false,
            #[cfg(feature = "telemetry")]
            txn_trace_id: None,
            #[cfg(feature = "telemetry")]
            runtime_gauges: false,
        }
    }

    /// Enables or disables the runtime gauges of the threaded backend:
    /// every [`send_cmd`](Self::submit) samples the command ring's depth
    /// and occupancy into `mailbox.cmd.*` registry histograms (and reply
    /// receives into `mailbox.reply.*`), and every fence round opens a
    /// `fence` span carrying the epoch and the measured quiesce time.
    /// Off by default so the default-config trace and registry stay
    /// byte-identical across shard counts; the simulator turns it on
    /// together with per-shard spans.
    #[cfg(feature = "telemetry")]
    pub fn set_runtime_gauges(&mut self, on: bool) {
        self.runtime_gauges = on;
    }

    /// Whether runtime mailbox/fence instrumentation is on.
    #[cfg(feature = "telemetry")]
    pub fn runtime_gauges(&self) -> bool {
        self.runtime_gauges
    }

    /// Enables or disables per-key version counting across every shard —
    /// the substrate of the sampled ISO-01..03 serializability histories.
    /// Off by default: the warm path then carries no version bookkeeping
    /// and sampled `txn_rwset` events keep their side-tally-only shape,
    /// so golden traces stay byte-stable. On the threaded backend this
    /// fences (the flag flip must not race in-flight execution), which
    /// requires collecting outstanding fates first; enable it before
    /// submitting traffic.
    pub fn set_track_versions(&mut self, on: bool) {
        self.versions_on = on;
        if let Backend::Inline(state) = &mut self.backend {
            state.set_track_versions(on);
            return;
        }
        self.settle_outstanding();
        self.fence_all(FenceOp::TrackVersions(on));
    }

    /// Whether per-key version counting is on.
    pub fn track_versions(&self) -> bool {
        self.versions_on
    }

    /// Tags the next [`execute_at_slot`](Self::execute_at_slot) or
    /// [`submit`](Self::submit) call with a per-transaction trace id.
    /// On the execute path the engine emits that transaction's
    /// `txn_rwset` record (and `txn_restart` when it touched a migration
    /// destination) into the telemetry stream, then clears the tag; on
    /// the submit path the tag only arms key-level capture (when
    /// [`track_versions`](Self::track_versions) is on) — the caller emits
    /// from the returned fate. The simulator sets this only for sampled
    /// transactions, keeping untagged executions free of per-txn trace
    /// traffic.
    #[cfg(feature = "telemetry")]
    pub fn set_txn_trace_id(&mut self, id: u64) {
        self.txn_trace_id = Some(id);
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The executor shard count (1 = inline serial engine).
    pub fn num_shards(&self) -> u32 {
        self.num_shards
    }

    /// Current (committed) number of nodes. During a scale-out this is
    /// still the pre-move count until the reconfiguration commits; use
    /// [`allocated_nodes`](Self::allocated_nodes) for machine-cost
    /// accounting.
    pub fn active_nodes(&self) -> u32 {
        self.plan.machines()
    }

    /// Nodes currently holding resources (includes scale-out targets while
    /// a reconfiguration runs).
    pub fn allocated_nodes(&self) -> u32 {
        self.allocated
    }

    /// Whether a reconfiguration is running.
    pub fn reconfiguring(&self) -> bool {
        self.reconfig.is_some()
    }

    /// Total fence epochs issued so far. Always 0 on the inline backend,
    /// which never fences; on the sharded backend the difference across a
    /// time window counts the fences (snapshot ops, reconfiguration
    /// barriers) the window crossed.
    pub fn fence_epochs(&self) -> u64 {
        self.fence_epoch.get()
    }

    /// Execution counters. Transactions submitted via
    /// [`submit`](Self::submit) are counted when their fate is collected.
    pub fn stats(&self) -> ClusterStats {
        self.stats
    }

    /// The virtual slot a routing key hashes to.
    pub fn slot_of_key(&self, key: &Key) -> u64 {
        bucket_of(&key.routing_bytes(), self.cfg.num_slots as u64)
    }

    /// The virtual slot a single routing-key component hashes to, without
    /// materialising a [`Key`] (no heap allocation for integer components
    /// or strings up to 59 bytes). Agrees with
    /// `slot_of_key(&Key::new(vec![part.clone()]))` for every component.
    pub fn slot_of_routing(&self, part: &crate::value::KeyValue) -> u64 {
        part.with_hash_bytes(|bytes| bucket_of(bytes, self.cfg.num_slots as u64))
    }

    /// The node currently serving `slot`. In-flight slots keep routing to
    /// their migration source until the last chunk lands; the cache entry
    /// flips to the destination at that moment.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn node_of_slot(&self, slot: u64) -> u32 {
        self.route_node[slot as usize]
    }

    /// The local partition index a slot maps to on whichever node owns it.
    ///
    /// Hashed (rather than `slot % P`) so it stays uncorrelated with the
    /// slot-to-node assignment — `slot % machines` and `slot % P` share
    /// factors, which would leave some (node, partition) combinations
    /// permanently empty. Precomputed per slot at construction.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn local_of_slot(&self, slot: u64) -> u32 {
        self.route_local[slot as usize]
    }

    /// The (node, local-partition) pair serving `slot`.
    pub fn partition_of_slot(&self, slot: u64) -> (u32, u32) {
        (self.node_of_slot(slot), self.local_of_slot(slot))
    }

    /// The executor shard serving `slot`: `local_of_slot(slot) % shards`.
    /// Stable across migrations — a slot's local index never changes, so
    /// neither does its shard.
    pub fn shard_of_slot(&self, slot: u64) -> u32 {
        self.local_of_slot(slot) % self.num_shards
    }

    /// Executes a stored procedure, routing by its partitioning key.
    /// Inline (serial) backend only; sharded clusters use
    /// [`submit`](Self::submit) / [`drain_fates_into`](Self::drain_fates_into).
    ///
    /// # Errors
    /// Propagates the procedure's [`TxnError`] on abort.
    pub fn execute(&mut self, proc: &dyn Procedure) -> Result<TxnOutput, TxnError> {
        let slot = self.slot_of_routing(&proc.routing_key());
        self.execute_at_slot(proc, slot)
    }

    /// Executes a stored procedure whose routing slot the caller has
    /// already resolved (e.g. a simulator that needed the slot for queue
    /// placement before deciding to execute) — skips re-hashing the
    /// routing key.
    ///
    /// # Errors
    /// Propagates the procedure's [`TxnError`] on abort.
    ///
    /// # Panics
    /// Panics on a threaded (sharded) backend — a `&dyn Procedure` cannot
    /// cross threads; use [`submit`](Self::submit). Debug builds assert
    /// that `slot` matches the procedure's routing key; a mismatched slot
    /// in release builds misroutes the transaction.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn execute_at_slot(
        &mut self,
        proc: &dyn Procedure,
        slot: u64,
    ) -> Result<TxnOutput, TxnError> {
        debug_assert_eq!(
            slot,
            self.slot_of_routing(&proc.routing_key()),
            "caller-resolved slot disagrees with the routing key"
        );
        let (node, local, in_flight) = self.routing_of(slot);
        self.slot_access_totals[slot as usize] += 1;
        #[cfg(feature = "telemetry")]
        let trace_id = self.txn_trace_id.take();
        #[cfg(feature = "telemetry")]
        let capture = trace_id.is_some() && self.versions_on;
        #[cfg(not(feature = "telemetry"))]
        let capture = false;
        let fate = match &mut self.backend {
            Backend::Inline(state) => state.execute(proc, slot, node, local, in_flight, capture),
            Backend::Threaded { .. } => {
                panic!("execute_at_slot requires the inline backend; use submit/drain_fates_into")
            }
        };
        account(&mut self.stats, &mut self.procedure_stats, &fate);
        #[cfg(feature = "telemetry")]
        if let Some(id) = trace_id {
            if pstore_telemetry::enabled() {
                if fate.touched_dest {
                    // The Squall-style switchover: an access resolved
                    // against the destination means the transaction was
                    // rerouted mid-migration — the engine-level analogue
                    // of a restart-on-moved-data.
                    pstore_telemetry::emit(
                        pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_RESTART)
                            .with("id", id)
                            .with("slot", slot),
                    );
                }
                pstore_telemetry::emit(txn_rwset_event(id, slot, &fate));
            }
        }
        fate.result
    }

    /// Submits a transaction for execution on its slot's shard. Works on
    /// both backends: inline executes immediately; threaded enqueues on
    /// the owning shard's mailbox. The fate (result, read/write set,
    /// restart flag) is returned by
    /// [`drain_fates_into`](Self::drain_fates_into) in global submission
    /// order, which is what keeps every output byte-identical at any
    /// shard count.
    ///
    /// # Panics
    /// Debug builds assert that `slot` matches the procedure's routing
    /// key. Panics (attributed) if the owning shard has panicked.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn submit<P: Procedure + Send + 'static>(&mut self, proc: P, slot: u64) {
        debug_assert_eq!(
            slot,
            self.slot_of_routing(&proc.routing_key()),
            "caller-resolved slot disagrees with the routing key"
        );
        let (node, local, in_flight) = self.routing_of(slot);
        self.slot_access_totals[slot as usize] += 1;
        // The trace tag arms key-level capture on this submission path; the
        // fate carries the captured sets back through drain_fates_into, and
        // the caller (the simulator's pipeline flush) does the emitting.
        #[cfg(feature = "telemetry")]
        let capture = self.txn_trace_id.take().is_some() && self.versions_on;
        #[cfg(not(feature = "telemetry"))]
        let capture = false;
        match &mut self.backend {
            Backend::Inline(state) => {
                let fate = state.execute(&proc, slot, node, local, in_flight, capture);
                account(&mut self.stats, &mut self.procedure_stats, &fate);
                self.drained.push_back(fate);
            }
            Backend::Threaded { .. } => {
                let shard = local % self.num_shards;
                self.send_cmd(
                    shard,
                    Command::Execute {
                        proc: Box::new(proc),
                        slot,
                        node,
                        local,
                        in_flight,
                        capture,
                    },
                );
                self.pending_order.push_back(shard);
            }
        }
    }

    /// Collects the fates of all submitted transactions, in submission
    /// order, appending them to `out`. Blocks until every outstanding
    /// transaction has executed.
    ///
    /// # Panics
    /// Panics (attributed to the shard) if an executor shard panicked.
    pub fn drain_fates_into(&mut self, out: &mut Vec<TxnFate>) {
        self.settle_outstanding();
        out.extend(self.drained.drain(..));
    }

    /// Submitted transactions whose fates the caller has not collected
    /// yet (both in-flight and already settled).
    pub fn pending_fates(&self) -> usize {
        self.pending_order.len() + self.drained.len()
    }

    /// `(node, local, in_flight)` routing of a slot.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    fn routing_of(&self, slot: u64) -> (u32, u32, Option<(u32, u32)>) {
        let in_flight = self
            .reconfig
            .as_ref()
            .and_then(|r| r.in_flight.get(&slot))
            .copied();
        (
            self.route_node[slot as usize],
            self.route_local[slot as usize],
            in_flight,
        )
    }

    /// Sends a command to a shard, draining settled fates (in submission
    /// order) while the ring is full so the pipeline cannot deadlock:
    /// every drained reply frees ring space somewhere, and a full command
    /// ring implies that shard has replies outstanding.
    fn send_cmd(&mut self, shard: u32, mut command: Command) {
        #[cfg(feature = "telemetry")]
        if self.runtime_gauges && pstore_telemetry::enabled() {
            if let Backend::Threaded { workers, .. } = &self.backend {
                // Sampled before the enqueue: the pre-send depth is the
                // backlog this command queues behind.
                workers[shard as usize].cmd.record_depth("mailbox.cmd");
            }
        }
        let mut spins = 0u32;
        loop {
            let Backend::Threaded { workers, .. } = &self.backend else {
                unreachable!("send_cmd requires the threaded backend");
            };
            match workers[shard as usize].cmd.try_send(command) {
                Ok(()) => return,
                Err(TrySendError::Closed(_)) => {
                    panic!("executor shard {shard} shut down (command ring closed)")
                }
                Err(TrySendError::Full(c)) => {
                    command = c;
                    if let Some(s) = self.pending_order.pop_front() {
                        let reply = self.recv_reply(s);
                        self.intake_reply(s, reply);
                    } else {
                        crate::sync::backoff(spins);
                        spins = spins.saturating_add(1);
                    }
                }
            }
        }
    }

    /// Blocking receive of one reply from a shard.
    fn recv_reply(&self, shard: u32) -> Reply {
        let Backend::Threaded { workers, .. } = &self.backend else {
            unreachable!("recv_reply requires the threaded backend");
        };
        #[cfg(feature = "telemetry")]
        if self.runtime_gauges && pstore_telemetry::enabled() {
            // Pre-receive depth: how many replies the coordinator let
            // accumulate before draining this ring.
            workers[shard as usize].reply.record_depth("mailbox.reply");
        }
        match workers[shard as usize].reply.recv() {
            Some(r) => r,
            None => panic!("executor shard {shard} disconnected (reply ring closed)"),
        }
    }

    /// Folds one expected-fate reply into the coordinator's state.
    fn intake_reply(&mut self, shard: u32, reply: Reply) {
        match reply {
            Reply::Fate(fate) => {
                account(&mut self.stats, &mut self.procedure_stats, &fate);
                self.drained.push_back(fate);
            }
            Reply::Panicked { message } => panic!("{}", ShardPanic { shard, message }),
            other => panic!("shard protocol violation: expected a fate, got {other:?}"),
        }
    }

    /// Collects every outstanding fate, in submission order.
    fn settle_outstanding(&mut self) {
        while let Some(s) = self.pending_order.pop_front() {
            let reply = self.recv_reply(s);
            self.intake_reply(s, reply);
        }
    }

    /// Runs one fence round: sends `ops[s]` to shard `s`, waits for every
    /// ack (all shards quiesced and holding), then releases the epoch.
    /// Returns each shard's result, in shard order.
    ///
    /// Requires a settled engine (`pending_order` empty): outstanding
    /// transactions would otherwise execute *behind* the fence on their
    /// shard while the coordinator considers the world stopped.
    fn fence_with(&self, ops: Vec<FenceOp>) -> Vec<FenceData> {
        let Backend::Threaded { workers, gate } = &self.backend else {
            unreachable!("fence requires the threaded backend");
        };
        assert!(
            self.pending_order.is_empty(),
            "fence requires a settled engine: drain fates first"
        );
        assert_eq!(ops.len(), workers.len(), "one fence op per shard");
        let epoch = self.fence_epoch.get() + 1;
        self.fence_epoch.set(epoch);
        #[cfg(feature = "telemetry")]
        let fence_span = if self.runtime_gauges && pstore_telemetry::enabled() {
            // pstore-lint: allow(SA-03): wall clock measures the real
            // stop-the-world cost of this fence for the profiler; it never
            // feeds simulated state, and runtime gauges are off on the
            // deterministic default path.
            let started = std::time::Instant::now();
            let id = pstore_telemetry::begin_span(
                pstore_telemetry::event::span_names::FENCE,
                &[("epoch", pstore_telemetry::Value::from(epoch))],
            );
            Some((id, started))
        } else {
            None
        };
        for (shard, (w, op)) in workers.iter().zip(ops).enumerate() {
            if w.cmd.send(Command::Fence { epoch, op }).is_err() {
                panic!("executor shard {shard} shut down (fence refused)");
            }
        }
        let data: Vec<FenceData> = workers
            .iter()
            .enumerate()
            .map(|(s, w)| match w.reply.recv() {
                Some(Reply::FenceAck { epoch: e, data }) => {
                    assert_eq!(e, epoch, "fence epoch mismatch from shard {s}");
                    data
                }
                Some(Reply::Panicked { message }) => panic!(
                    "{}",
                    ShardPanic {
                        #[allow(clippy::cast_possible_truncation)] // shard counts fit u32
                        shard: s as u32,
                        message
                    }
                ),
                Some(other) => {
                    panic!("shard protocol violation: expected a fence ack, got {other:?}")
                }
                None => panic!("executor shard {s} disconnected during fence"),
            })
            .collect();
        gate.release(epoch);
        #[cfg(feature = "telemetry")]
        if let Some((id, started)) = fence_span {
            let quiesce_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            pstore_telemetry::end_span(
                pstore_telemetry::event::span_names::FENCE,
                id,
                &[("quiesce_us", pstore_telemetry::Value::from(quiesce_us))],
            );
        }
        data
    }

    /// [`fence_with`](Self::fence_with) with the same op for every shard.
    fn fence_all(&self, op: FenceOp) -> Vec<FenceData> {
        let Backend::Threaded { workers, .. } = &self.backend else {
            unreachable!("fence requires the threaded backend");
        };
        self.fence_with(vec![op; workers.len()])
    }

    /// Per-shard execution attribution (transaction counts, busy wall
    /// time), for the profiler's per-shard spans and registry gauges.
    /// Requires a settled engine on the threaded backend.
    pub fn shard_reports(&self) -> Vec<ShardReport> {
        match &self.backend {
            Backend::Inline(state) => vec![ShardReport {
                txns: state.txns(),
                busy_us: 0,
            }],
            Backend::Threaded { .. } => self
                .fence_all(FenceOp::ShardReport)
                .into_iter()
                .map(|d| match d {
                    FenceData::ShardReport { txns, busy_us } => ShardReport { txns, busy_us },
                    other => {
                        panic!("shard protocol violation: expected a shard report, got {other:?}")
                    }
                })
                .collect(),
        }
    }

    /// Per-procedure `(committed, aborted)` counters, sorted by call count
    /// (descending) — the workload-mix report of a run.
    pub fn procedure_report(&self) -> Vec<(&'static str, u64, u64)> {
        let mut out: Vec<(&'static str, u64, u64)> = self
            .procedure_stats
            .iter()
            .map(|(&name, &(c, a))| (name, c, a))
            .collect();
        out.sort_by(|x, y| (y.1 + y.2).cmp(&(x.1 + x.2)).then(x.0.cmp(y.0)));
        out
    }

    /// Starts a reconfiguration to `target` nodes. New nodes are allocated
    /// immediately at the engine level; the simulator decides *when* to
    /// call this per the §4.4.1 just-in-time schedule by issuing staged
    /// reconfigurations.
    ///
    /// # Errors
    /// See [`ReconfigError`].
    pub fn begin_reconfiguration(&mut self, target: u32) -> Result<(), ReconfigError> {
        if self.reconfig.is_some() {
            return Err(ReconfigError::AlreadyRunning);
        }
        if target == self.active_nodes() {
            return Err(ReconfigError::NoChange);
        }
        if target == 0 || target as usize > self.cfg.num_slots {
            return Err(ReconfigError::InvalidTarget { target });
        }
        let (new_plan, transfers) = self.plan.rebalance_to(target);
        let pairs: Vec<PairTransfer> = transfers
            .into_iter()
            .map(|t| PairTransfer {
                from: t.from,
                to: t.to,
                slots: t.slots.into_iter().map(|s| s as u64).collect(),
                next: 0,
            })
            .collect();
        self.install_reconfig(new_plan, pairs);
        Ok(())
    }

    /// Starts a reconfiguration to an arbitrary caller-supplied plan — the
    /// hook for skew-driven rebalancing (E-Store-style hot-slot placement,
    /// the future-work combination sketched in the paper's §10). The plan
    /// must keep the slot count and may change the machine count.
    ///
    /// # Errors
    /// See [`ReconfigError`]; additionally rejects plans whose slot count
    /// differs from the cluster's.
    pub fn begin_plan_reconfiguration(&mut self, new_plan: SlotPlan) -> Result<(), ReconfigError> {
        if self.reconfig.is_some() {
            return Err(ReconfigError::AlreadyRunning);
        }
        if new_plan.num_slots() != self.cfg.num_slots {
            return Err(ReconfigError::InvalidTarget {
                target: new_plan.machines(),
            });
        }
        if new_plan.machines() == 0 {
            return Err(ReconfigError::InvalidTarget { target: 0 });
        }
        if new_plan.assignments() == self.plan.assignments() {
            return Err(ReconfigError::NoChange);
        }
        // Diff the plans into per-(from, to) slot streams.
        let mut by_pair: HashMap<(u32, u32), Vec<u64>> = HashMap::new();
        for (slot, (&old, &new)) in self
            .plan
            .assignments()
            .iter()
            .zip(new_plan.assignments())
            .enumerate()
        {
            if old != new {
                by_pair.entry((old, new)).or_default().push(slot as u64);
            }
        }
        let mut pairs: Vec<PairTransfer> = by_pair
            .into_iter()
            .map(|((from, to), slots)| PairTransfer {
                from,
                to,
                slots,
                next: 0,
            })
            .collect();
        pairs.sort_by_key(|p| (p.from, p.to));
        self.install_reconfig(new_plan, pairs);
        Ok(())
    }

    fn install_reconfig(&mut self, new_plan: SlotPlan, pairs: Vec<PairTransfer>) {
        // Allocate any nodes the new plan references. On the threaded
        // backend this is the first fence of the reconfiguration: every
        // shard grows its store matrix while quiesced.
        let max_node = new_plan
            .assignments()
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
            .max(new_plan.machines().saturating_sub(1));
        let needed = max_node + 1;
        if needed > self.allocated {
            match &mut self.backend {
                Backend::Inline(state) => state.ensure_nodes(needed),
                Backend::Threaded { .. } => {
                    self.settle_outstanding();
                    self.fence_all(FenceOp::EnsureNodes(needed));
                }
            }
            self.allocated = needed;
        }
        let pending = pairs.iter().filter(|p| !p.is_done()).count();
        #[cfg(feature = "telemetry")]
        let span_id = if pstore_telemetry::enabled() {
            // pstore-lint: allow(SA-02): the reconfig span covers the whole
            // migration lifetime — opened here, closed in commit_reconfig /
            // end_truncated_reconfig_span; TEL-01/02 verify pairing at runtime.
            pstore_telemetry::begin_span(
                pstore_telemetry::kinds::SPAN_RECONFIG,
                &[
                    ("from", pstore_telemetry::Value::from(self.plan.machines())),
                    ("to", pstore_telemetry::Value::from(new_plan.machines())),
                ],
            )
        } else {
            0
        };
        #[cfg(not(feature = "telemetry"))]
        let span_id = 0u64;
        self.reconfig = Some(Reconfig {
            new_plan,
            pairs,
            in_flight: HashMap::new(),
            pending_pairs: pending,
            span_id,
        });
        if pending == 0 {
            self.commit_reconfig();
        }
    }

    /// The current slot plan (committed routing, ignoring in-flight moves).
    pub fn current_plan(&self) -> &SlotPlan {
        &self.plan
    }

    /// Aggregated per-slot access counts across all partitions since the
    /// last [`reset_slot_accesses`](Self::reset_slot_accesses) — the input
    /// to skew-driven rebalancing. Served from the incrementally-maintained
    /// cluster-wide counters (no walk over nodes and partitions); see
    /// [`rebuild_slot_access_report`](Self::rebuild_slot_access_report) for
    /// the from-scratch audit path.
    pub fn slot_access_report(&self) -> HashMap<u64, u64> {
        self.slot_access_totals
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s as u64, c))
            .collect()
    }

    /// The dense per-slot access counters, indexed by slot id — the
    /// allocation-free view of [`slot_access_report`](Self::slot_access_report).
    pub fn slot_access_counts(&self) -> &[u64] {
        &self.slot_access_totals
    }

    /// Re-aggregates the per-slot access counts by walking every
    /// partition's own counters — on the threaded backend, a fence that
    /// collects each shard's merged counters. Kept as the audit oracle:
    /// the incremental totals must always match this rebuild, including
    /// after concurrent runs (the per-shard counters partition the slot
    /// space, so their merge is exact, not approximate).
    ///
    /// Requires a settled engine (drain fates first) on the threaded
    /// backend.
    pub fn rebuild_slot_access_report(&self) -> HashMap<u64, u64> {
        let mut out: HashMap<u64, u64> = HashMap::new();
        match &self.backend {
            Backend::Inline(state) => {
                for (slot, count) in state.slot_counts() {
                    *out.entry(slot).or_default() += count;
                }
            }
            Backend::Threaded { .. } => {
                for data in self.fence_all(FenceOp::SlotAccessCounts) {
                    let FenceData::SlotCounts(counts) = data else {
                        panic!("shard protocol violation: expected slot counts, got {data:?}");
                    };
                    for (slot, count) in counts {
                        *out.entry(slot).or_default() += count;
                    }
                }
            }
        }
        out
    }

    /// Clears all per-slot access counters (start a fresh monitoring
    /// window).
    pub fn reset_slot_accesses(&mut self) {
        self.slot_access_totals.fill(0);
        match &mut self.backend {
            Backend::Inline(state) => state.reset_slot_accesses(),
            Backend::Threaded { .. } => {
                self.settle_outstanding();
                self.fence_all(FenceOp::ResetSlotAccesses);
            }
        }
    }

    /// The pair transfers of the running reconfiguration.
    pub fn pair_transfers(&self) -> &[PairTransfer] {
        self.reconfig.as_ref().map_or(&[], |r| &r.pairs)
    }

    /// Moves up to `budget_bytes` of the next slot of pair `pair_idx`.
    /// Runs on the slot's own shard (source and destination partitions
    /// share a local index, hence a shard); outstanding fates are settled
    /// first so the chunk observes every earlier transaction.
    ///
    /// # Errors
    /// Returns [`ReconfigError::NotRunning`] outside a reconfiguration.
    ///
    /// # Panics
    /// Panics if `pair_idx` is out of range.
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn migrate_chunk(
        &mut self,
        pair_idx: usize,
        budget_bytes: usize,
    ) -> Result<ChunkResult, ReconfigError> {
        if self.reconfig.is_none() {
            return Err(ReconfigError::NotRunning);
        }
        self.settle_outstanding();
        let Some(reconfig) = self.reconfig.as_mut() else {
            unreachable!("checked above");
        };
        let pair = &mut reconfig.pairs[pair_idx];
        if pair.is_done() {
            return Ok(ChunkResult {
                bytes: 0,
                rows: 0,
                slot_completed: false,
                pair_done: true,
                reconfig_done: false,
            });
        }
        let slot = pair.slots[pair.next];
        let (from, to) = (pair.from, pair.to);
        let local = self.route_local[slot as usize];
        reconfig.in_flight.entry(slot).or_insert((from, to));

        // Per-chunk work span: nests inside the open reconfiguration
        // span and makes extract/install cost visible to the profiler.
        // Emitted coordinator-side so the trace is identical at every
        // shard count.
        #[cfg(feature = "telemetry")]
        let step_span = if pstore_telemetry::enabled() {
            pstore_telemetry::begin_span("chunk_step", &[])
        } else {
            0
        };
        let (n_rows, bytes, emptied) = match &mut self.backend {
            Backend::Inline(state) => state.migrate_chunk(slot, from, to, local, budget_bytes),
            Backend::Threaded { .. } => {
                let shard = local % self.num_shards;
                self.send_cmd(
                    shard,
                    Command::Chunk {
                        slot,
                        from,
                        to,
                        local,
                        budget: budget_bytes,
                    },
                );
                match self.recv_reply(shard) {
                    Reply::Chunk {
                        rows,
                        bytes,
                        emptied,
                    } => (rows, bytes, emptied),
                    Reply::Panicked { message } => {
                        panic!("{}", ShardPanic { shard, message })
                    }
                    other => {
                        panic!("shard protocol violation: expected a chunk reply, got {other:?}")
                    }
                }
            }
        };
        #[cfg(feature = "telemetry")]
        pstore_telemetry::end_span("chunk_step", step_span, &[]);

        pstore_telemetry::tel_event!(
            pstore_telemetry::kinds::CHUNK_MOVE,
            "from" => from,
            "to" => to,
            "slot" => slot,
            "bytes" => bytes,
            "rows" => n_rows,
            "slot_completed" => emptied,
        );
        #[cfg(feature = "telemetry")]
        if pstore_telemetry::enabled() {
            pstore_telemetry::with_registry(|r| {
                r.inc_counter("reconfig.chunks_moved", 1);
                r.inc_counter("reconfig.bytes_moved", bytes as u64);
                r.inc_counter("reconfig.rows_moved", n_rows as u64);
            });
        }

        let Some(reconfig) = self.reconfig.as_mut() else {
            unreachable!("reconfig cannot end mid-chunk");
        };
        let mut slot_completed = false;
        let mut pair_done = false;
        let mut reconfig_done = false;
        if emptied {
            // Slot fully relocated: switch routing, clear tracking.
            reconfig.in_flight.remove(&slot);
            self.route_node[slot as usize] = to;
            let pair = &mut reconfig.pairs[pair_idx];
            pair.next += 1;
            slot_completed = true;
            if pair.is_done() {
                pair_done = true;
                reconfig.pending_pairs -= 1;
                if reconfig.pending_pairs == 0 {
                    self.commit_reconfig();
                    reconfig_done = true;
                }
            }
        }
        Ok(ChunkResult {
            bytes,
            rows: n_rows,
            slot_completed,
            pair_done,
            reconfig_done,
        })
    }

    /// Drives the whole reconfiguration to completion in one call, visiting
    /// pairs round-robin with the given chunk budget. Intended for tests
    /// and standalone use; simulations pace chunks themselves.
    ///
    /// # Errors
    /// Returns [`ReconfigError::NotRunning`] outside a reconfiguration.
    pub fn run_reconfiguration_to_completion(
        &mut self,
        budget_bytes: usize,
    ) -> Result<u64, ReconfigError> {
        if self.reconfig.is_none() {
            return Err(ReconfigError::NotRunning);
        }
        let mut chunks = 0u64;
        // Upper bound: every slot needs at least one chunk, plus slack for
        // small budgets; a pass without progress indicates a logic bug.
        let mut stalled_passes = 0u32;
        loop {
            let pairs = self.pair_transfers().len();
            let mut progressed = false;
            for p in 0..pairs {
                if self.reconfig.is_none() {
                    return Ok(chunks);
                }
                let r = self.migrate_chunk(p, budget_bytes)?;
                chunks += 1;
                if r.reconfig_done {
                    return Ok(chunks);
                }
                if r.bytes > 0 || r.slot_completed {
                    progressed = true;
                }
            }
            stalled_passes = if progressed { 0 } else { stalled_passes + 1 };
            assert!(
                stalled_passes < 3,
                "reconfiguration stalled: no chunk made progress"
            );
        }
    }

    /// Closes the telemetry span of an in-flight reconfiguration without
    /// committing it — for simulators whose run ends mid-migration. The
    /// engine state is untouched (the run is over); only the trace is
    /// balanced so every `span_begin` pairs (TEL-01/02) and downstream
    /// cells can legally reset the sim clock (TEL-04). No-op when nothing
    /// is in flight or telemetry is off.
    pub fn end_truncated_reconfig_span(&mut self) {
        #[cfg(feature = "telemetry")]
        if let Some(reconfig) = self.reconfig.as_mut() {
            if reconfig.span_id != 0 {
                // pstore-lint: allow(SA-02): closes the cross-function
                // reconfig span opened in start_migration (truncated end);
                // TEL-01/02 verify pairing at runtime.
                pstore_telemetry::end_span(
                    pstore_telemetry::kinds::SPAN_RECONFIG,
                    reconfig.span_id,
                    &[("truncated", pstore_telemetry::Value::from(true))],
                );
                reconfig.span_id = 0;
            }
        }
    }

    fn commit_reconfig(&mut self) {
        let Some(reconfig) = self.reconfig.take() else {
            unreachable!("commit requires reconfig");
        };
        debug_assert_eq!(reconfig.pending_pairs, 0);
        #[cfg(feature = "telemetry")]
        // pstore-lint: allow(SA-02): closes the cross-function reconfig
        // span opened in start_migration; TEL-01/02 verify pairing at
        // runtime.
        pstore_telemetry::end_span(
            pstore_telemetry::kinds::SPAN_RECONFIG,
            reconfig.span_id,
            &[],
        );
        let target = reconfig.new_plan.machines();
        self.plan = reconfig.new_plan;
        // Completed moves already flipped their routing-cache entries to
        // the destination, which is the new plan's owner; unmoved slots
        // kept their owner. The cache therefore already equals the new
        // plan — re-sync defensively and assert the invariant.
        debug_assert_eq!(self.route_node, self.plan.assignments());
        self.route_node.copy_from_slice(self.plan.assignments());
        // Drop drained nodes on scale-in. The plan swap above is
        // coordinator-only state; the truncation is the shards' part and
        // rides a fence (every shard quiesced, dropped stores empty).
        if target < self.allocated {
            match &mut self.backend {
                Backend::Inline(state) => state.drop_nodes(target),
                Backend::Threaded { .. } => {
                    self.fence_all(FenceOp::DropNodes(target));
                }
            }
            self.allocated = target;
        }
        self.stats.reconfigurations += 1;
    }

    /// Per-partition reports from every shard, merged into (node, local)
    /// order. Requires a settled engine on the threaded backend.
    fn all_reports(&self) -> Vec<(u32, u32, u64, usize, usize)> {
        match &self.backend {
            Backend::Inline(state) => state.report(),
            Backend::Threaded { .. } => {
                let mut out: Vec<(u32, u32, u64, usize, usize)> = self
                    .fence_all(FenceOp::Report)
                    .into_iter()
                    .flat_map(|d| match d {
                        FenceData::Report(v) => v,
                        other => {
                            panic!("shard protocol violation: expected a report, got {other:?}")
                        }
                    })
                    .collect();
                out.sort_unstable_by_key(|r| (r.0, r.1));
                out
            }
        }
    }

    /// Estimated total resident bytes across the cluster. Requires a
    /// settled engine on the threaded backend.
    pub fn total_bytes(&self) -> usize {
        self.all_reports().iter().map(|r| r.3).sum()
    }

    /// Total resident rows across the cluster. Requires a settled engine
    /// on the threaded backend.
    pub fn total_rows(&self) -> usize {
        self.all_reports().iter().map(|r| r.4).sum()
    }

    /// Exports every row of a table as a snapshot, ordered by key — the
    /// extraction side of the paper's §4.2 archival story (historical data
    /// moves to a separate warehouse out of band). On the threaded
    /// backend the snapshot rides a fence: every shard contributes its
    /// rows while quiesced.
    ///
    /// # Errors
    /// Refuses while a reconfiguration is running (rows would be split
    /// between migration sides).
    pub fn export_table(
        &self,
        table: TableId,
    ) -> Result<Vec<(Key, crate::value::Row)>, ReconfigError> {
        if self.reconfig.is_some() {
            return Err(ReconfigError::AlreadyRunning);
        }
        let mut out: Vec<(Key, crate::value::Row)> = match &self.backend {
            Backend::Inline(state) => state.export_table(table),
            Backend::Threaded { .. } => self
                .fence_all(FenceOp::ExportTable(table))
                .into_iter()
                .flat_map(|d| match d {
                    FenceData::Rows(v) => v,
                    other => panic!("shard protocol violation: expected rows, got {other:?}"),
                })
                .collect(),
        };
        out.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(out)
    }

    /// Per-partition statistics: `(node, local_partition, accesses, bytes,
    /// rows)`. Requires a settled engine on the threaded backend.
    pub fn partition_report(&self) -> Vec<(u32, u32, u64, usize, usize)> {
        self.all_reports()
    }

    /// Full integrity audit: every resident row lives in the slot its key
    /// hashes to, on the partition and node that currently serve that
    /// slot; byte accounting matches row contents. Intended for tests and
    /// post-migration assertions (O(total rows)).
    ///
    /// # Errors
    /// Returns a description of the first violation found.
    pub fn verify_integrity(&self) -> Result<(), String> {
        if self.reconfig.is_some() {
            return Err("verify_integrity requires a settled cluster".into());
        }
        let snapshots = match &self.backend {
            Backend::Inline(state) => state.integrity(),
            Backend::Threaded { .. } => self
                .fence_all(FenceOp::Integrity)
                .into_iter()
                .flat_map(|d| match d {
                    FenceData::Integrity(v) => v,
                    other => {
                        panic!("shard protocol violation: expected integrity, got {other:?}")
                    }
                })
                .collect(),
        };
        for snap in &snapshots {
            for &slot in &snap.resident_slots {
                let (owner, local) = self.partition_of_slot(slot);
                if owner != snap.node || local != snap.local {
                    return Err(format!(
                        "slot {slot} resident on node {} partition {}, \
                         but routing maps it to node {owner} partition {local}",
                        snap.node, snap.local
                    ));
                }
            }
            if snap.claimed_bytes != snap.actual_bytes {
                return Err(format!(
                    "node {} partition {}: byte accounting drift \
                     (claimed {}, actual {})",
                    snap.node, snap.local, snap.claimed_bytes, snap.actual_bytes
                ));
            }
        }
        Ok(())
    }

    /// Bytes that a reconfiguration to `target` nodes would move (the data
    /// on slots that change owners under the minimal rebalance). Requires
    /// a settled engine on the threaded backend.
    pub fn bytes_to_move(&self, target: u32) -> usize {
        let (_, transfers) = self.plan.rebalance_to(target);
        let slots: Vec<u64> = transfers
            .iter()
            .flat_map(|t| t.slots.iter())
            .map(|&s| s as u64)
            .collect();
        match &self.backend {
            Backend::Inline(state) => slots
                .iter()
                .map(|&slot| {
                    let (node, local) = self.partition_of_slot(slot);
                    state.slot_bytes_at(slot, node, local)
                })
                .sum(),
            Backend::Threaded { .. } => {
                let mut per_shard: Vec<Vec<(u64, u32, u32)>> =
                    vec![Vec::new(); self.num_shards as usize];
                for &slot in &slots {
                    let (node, local) = self.partition_of_slot(slot);
                    per_shard[(local % self.num_shards) as usize].push((slot, node, local));
                }
                self.fence_with(per_shard.into_iter().map(FenceOp::SlotBytes).collect())
                    .into_iter()
                    .flat_map(|d| match d {
                        FenceData::SlotBytes(v) => v,
                        other => {
                            panic!("shard protocol violation: expected slot bytes, got {other:?}")
                        }
                    })
                    .sum()
            }
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        if let Backend::Threaded { workers, gate } = &mut self.backend {
            // Closing both rings unblocks every worker wherever it is:
            // recv returns None, a blocked reply send returns Err, and a
            // fence hold re-checks the closed command ring. Releasing all
            // epochs covers a shard parked at an unreleased fence.
            for w in workers.iter() {
                w.cmd.close();
                w.reply.close();
            }
            gate.release(u64::MAX);
            for w in workers.iter_mut() {
                if let Some(handle) = w.handle.take() {
                    // A panicked worker already reported (or tried to);
                    // its join error carries nothing new.
                    let _ = handle.join();
                }
            }
        }
    }
}

/// Folds a fate into the aggregate and per-procedure counters (the
/// coordinator-intake half of execution accounting).
fn account(
    stats: &mut ClusterStats,
    procedure_stats: &mut HashMap<&'static str, (u64, u64)>,
    fate: &TxnFate,
) {
    let proc_entry = procedure_stats.entry(fate.proc).or_insert((0, 0));
    match &fate.result {
        Ok(_) => {
            stats.committed += 1;
            proc_entry.0 += 1;
        }
        Err(_) => {
            stats.aborted += 1;
            proc_entry.1 += 1;
        }
    }
    if fate.touched_dest {
        stats.touched_migrating += 1;
    }
}

/// Builds the sampled `txn_rwset` event for a fate traced under `id` —
/// shared by both emission paths (the inline engine in
/// [`Cluster::execute_at_slot`] and the simulator's pipeline flush), so
/// traces stay byte-identical at any shard count. The key-level `rset` /
/// `wset` fields appear only when the fate captured any key accesses
/// (sampling on *and* version tracking enabled), which keeps pre-existing
/// golden traces byte-stable.
#[cfg(feature = "telemetry")]
pub fn txn_rwset_event(id: u64, slot: u64, fate: &TxnFate) -> pstore_telemetry::Event {
    let mut ev = pstore_telemetry::Event::new(pstore_telemetry::kinds::TXN_RWSET)
        .with("id", id)
        .with("slot", slot)
        .with("proc", fate.proc)
        .with("reads", fate.rwset.reads)
        .with("writes", fate.rwset.writes)
        .with("dest_reads", fate.rwset.dest_reads)
        .with("dest_writes", fate.rwset.dest_writes)
        .with("migrating", fate.migrating)
        .with("restarted", fate.touched_dest)
        .with("committed", fate.result.is_ok());
    if !fate.key_reads.is_empty() || !fate.key_writes.is_empty() {
        ev = ev
            .with("rset", encode_accesses(&fate.key_reads))
            .with("wset", encode_accesses(&fate.key_writes));
    }
    ev
}

/// String-encodes a captured key-access list for a `txn_rwset` field.
#[cfg(feature = "telemetry")]
fn encode_accesses(accesses: &[crate::txn::KeyAccess]) -> String {
    pstore_telemetry::encode_key_versions(
        accesses
            .iter()
            .map(|(table, key, version)| (*table as u64, key.to_string(), *version)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{columns, ColumnType, TableSchema};
    use crate::txn::TxnCtx;
    use crate::value::{KeyValue, Row, Value};

    fn test_catalog() -> Catalog {
        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new(
            "KV",
            columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
            1,
        ));
        cat
    }

    /// A trivial upsert procedure.
    struct Put {
        key: String,
        value: i64,
    }

    impl Procedure for Put {
        fn name(&self) -> &'static str {
            "Put"
        }
        fn routing_key(&self) -> KeyValue {
            KeyValue::Str(self.key.clone())
        }
        fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
            ctx.put(
                0,
                Key::str(self.key.clone()),
                Row(vec![Value::Int(self.value)]),
            );
            Ok(TxnOutput::None)
        }
    }

    struct Get {
        key: String,
    }

    impl Procedure for Get {
        fn name(&self) -> &'static str {
            "Get"
        }
        fn routing_key(&self) -> KeyValue {
            KeyValue::Str(self.key.clone())
        }
        fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
            let row = ctx.get_required(0, "KV", &Key::str(self.key.clone()))?;
            Ok(TxnOutput::Row(row))
        }
    }

    fn cluster(nodes: u32) -> Cluster {
        Cluster::new(
            test_catalog(),
            ClusterConfig {
                partitions_per_node: 2,
                num_slots: 64,
            },
            nodes,
        )
    }

    fn load_keys(c: &mut Cluster, n: usize) {
        for i in 0..n {
            c.execute(&Put {
                key: format!("key-{i}"),
                value: i as i64,
            })
            .unwrap();
        }
    }

    fn check_all_keys(c: &mut Cluster, n: usize) {
        for i in 0..n {
            let out = c
                .execute(&Get {
                    key: format!("key-{i}"),
                })
                .unwrap_or_else(|e| panic!("key-{i} lost: {e}"));
            assert_eq!(out, TxnOutput::Row(Row(vec![Value::Int(i as i64)])));
        }
    }

    #[test]
    fn execute_routes_and_round_trips() {
        let mut c = cluster(3);
        load_keys(&mut c, 200);
        check_all_keys(&mut c, 200);
        assert_eq!(c.total_rows(), 200);
        assert_eq!(c.stats().committed, 400);
    }

    #[test]
    fn procedure_report_counts_by_name() {
        let mut c = cluster(2);
        load_keys(&mut c, 10);
        let _ = c.execute(&Get { key: "nope".into() });
        let report = c.procedure_report();
        assert_eq!(report[0], ("Put", 10, 0));
        let get = report.iter().find(|r| r.0 == "Get").unwrap();
        assert_eq!((get.1, get.2), (0, 1));
    }

    #[test]
    fn missing_key_aborts() {
        let mut c = cluster(2);
        let err = c.execute(&Get { key: "nope".into() }).unwrap_err();
        assert!(matches!(err, TxnError::NotFound { .. }));
        assert_eq!(c.stats().aborted, 1);
    }

    #[test]
    fn scale_out_preserves_every_row() {
        let mut c = cluster(2);
        load_keys(&mut c, 300);
        c.begin_reconfiguration(5).unwrap();
        assert!(c.reconfiguring());
        assert!(c.verify_integrity().is_err()); // mid-move audits refused
        c.run_reconfiguration_to_completion(4096).unwrap();
        assert!(!c.reconfiguring());
        assert_eq!(c.active_nodes(), 5);
        assert_eq!(c.total_rows(), 300);
        c.verify_integrity().unwrap();
        check_all_keys(&mut c, 300);
    }

    #[test]
    fn scale_in_preserves_every_row_and_drops_nodes() {
        let mut c = cluster(5);
        load_keys(&mut c, 300);
        c.begin_reconfiguration(2).unwrap();
        c.run_reconfiguration_to_completion(4096).unwrap();
        assert_eq!(c.active_nodes(), 2);
        assert_eq!(c.allocated_nodes(), 2);
        assert_eq!(c.total_rows(), 300);
        check_all_keys(&mut c, 300);
    }

    #[test]
    fn transactions_execute_correctly_mid_migration() {
        let mut c = cluster(2);
        load_keys(&mut c, 400);
        c.begin_reconfiguration(4).unwrap();
        // Interleave chunks with reads and writes.
        let mut i = 0usize;
        while c.reconfiguring() {
            let pairs = c.pair_transfers().len();
            let _ = c.migrate_chunk(i % pairs, 512).unwrap();
            // Read an existing key and write a new one every step.
            let k = format!("key-{}", i % 400);
            let out = c.execute(&Get { key: k }).unwrap();
            assert!(matches!(out, TxnOutput::Row(_)));
            c.execute(&Put {
                key: format!("new-{i}"),
                value: -1,
            })
            .unwrap();
            i += 1;
            assert!(i < 100_000, "migration did not converge");
        }
        check_all_keys(&mut c, 400);
        // New keys written during migration also survive.
        for j in 0..i {
            c.execute(&Get {
                key: format!("new-{j}"),
            })
            .unwrap_or_else(|e| panic!("new-{j} lost: {e}"));
        }
    }

    #[test]
    fn updates_to_moved_keys_land_at_destination() {
        let mut c = cluster(2);
        load_keys(&mut c, 200);
        c.begin_reconfiguration(4).unwrap();
        // Move a couple of chunks, then update every key; values must all
        // read back updated regardless of which side they live on.
        for p in 0..c.pair_transfers().len() {
            let _ = c.migrate_chunk(p, 2048).unwrap();
        }
        for i in 0..200 {
            c.execute(&Put {
                key: format!("key-{i}"),
                value: 1000 + i as i64,
            })
            .unwrap();
        }
        c.run_reconfiguration_to_completion(4096).unwrap();
        for i in 0..200 {
            let out = c
                .execute(&Get {
                    key: format!("key-{i}"),
                })
                .unwrap();
            assert_eq!(out, TxnOutput::Row(Row(vec![Value::Int(1000 + i as i64)])));
        }
        assert_eq!(c.total_rows(), 200);
    }

    #[test]
    fn reconfig_guards() {
        let mut c = cluster(2);
        assert_eq!(
            c.begin_reconfiguration(2).unwrap_err(),
            ReconfigError::NoChange
        );
        assert_eq!(
            c.begin_reconfiguration(0).unwrap_err(),
            ReconfigError::InvalidTarget { target: 0 }
        );
        c.begin_reconfiguration(3).unwrap();
        assert_eq!(
            c.begin_reconfiguration(4).unwrap_err(),
            ReconfigError::AlreadyRunning
        );
        assert_eq!(
            Cluster::new(test_catalog(), ClusterConfig::default(), 1)
                .migrate_chunk(0, 100)
                .unwrap_err(),
            ReconfigError::NotRunning
        );
    }

    #[test]
    fn chained_reconfigurations_keep_data_intact() {
        let mut c = cluster(1);
        load_keys(&mut c, 250);
        for &target in &[4u32, 9, 3, 10, 2] {
            c.begin_reconfiguration(target).unwrap();
            c.run_reconfiguration_to_completion(1500).unwrap();
            assert_eq!(c.active_nodes(), target);
            assert_eq!(c.total_rows(), 250);
            c.verify_integrity().unwrap();
        }
        check_all_keys(&mut c, 250);
        assert_eq!(c.stats().reconfigurations, 5);
    }

    #[test]
    fn export_table_returns_all_rows_sorted() {
        let mut c = cluster(3);
        load_keys(&mut c, 120);
        let rows = c.export_table(0).unwrap();
        assert_eq!(rows.len(), 120);
        assert!(rows.windows(2).all(|w| w[0].0 < w[1].0));
        // Refused mid-reconfiguration.
        c.begin_reconfiguration(5).unwrap();
        assert!(c.export_table(0).is_err());
        c.run_reconfiguration_to_completion(8192).unwrap();
        assert_eq!(c.export_table(0).unwrap().len(), 120);
    }

    #[test]
    fn incremental_slot_access_report_matches_rebuild() {
        // The report is maintained incrementally on the execute path; it
        // must agree with a from-scratch walk over every partition's own
        // counters at all times — settled, mid-migration, and after a
        // window reset.
        let mut c = cluster(2);
        load_keys(&mut c, 300);
        assert_eq!(c.slot_access_report(), c.rebuild_slot_access_report());
        assert!(!c.slot_access_report().is_empty());

        c.begin_reconfiguration(4).unwrap();
        let mut i = 0usize;
        while c.reconfiguring() {
            let pairs = c.pair_transfers().len();
            let _ = c.migrate_chunk(i % pairs, 512).unwrap();
            let _ = c.execute(&Get {
                key: format!("key-{}", i % 300),
            });
            c.execute(&Put {
                key: format!("mid-{i}"),
                value: 0,
            })
            .unwrap();
            i += 1;
            assert!(i < 100_000, "migration did not converge");
        }
        assert_eq!(c.slot_access_report(), c.rebuild_slot_access_report());

        c.reset_slot_accesses();
        assert_eq!(c.slot_access_report(), HashMap::new());
        assert_eq!(c.rebuild_slot_access_report(), HashMap::new());
        load_keys(&mut c, 50);
        assert_eq!(c.slot_access_report(), c.rebuild_slot_access_report());
        // The dense view agrees with the sparse report entry-by-entry.
        let report = c.slot_access_report();
        for (slot, &count) in c.slot_access_counts().iter().enumerate() {
            assert_eq!(report.get(&(slot as u64)).copied().unwrap_or(0), count);
        }
    }

    #[test]
    fn slot_of_routing_matches_slot_of_key() {
        let c = cluster(3);
        let mut parts = vec![
            KeyValue::Int(0),
            KeyValue::Int(-7),
            KeyValue::Int(i64::MAX),
            KeyValue::Str(String::new()),
            KeyValue::Str("cart-00deadbeef42".into()),
            // Longer than the 59-byte stack-buffer fast path.
            KeyValue::Str("x".repeat(200)),
        ];
        for i in 0..64 {
            parts.push(KeyValue::Str(format!("key-{i}")));
        }
        for part in parts {
            assert_eq!(
                c.slot_of_routing(&part),
                c.slot_of_key(&Key::new(vec![part.clone()])),
                "mismatch for {part:?}"
            );
        }
    }

    #[test]
    fn routing_cache_tracks_plan_across_reconfigurations() {
        let mut c = cluster(2);
        load_keys(&mut c, 200);
        for &target in &[5u32, 3, 1, 4] {
            c.begin_reconfiguration(target).unwrap();
            c.run_reconfiguration_to_completion(2048).unwrap();
            for slot in 0..64usize {
                let owner = c.current_plan().owner(slot);
                assert_eq!(c.node_of_slot(slot as u64), owner);
                assert!(owner < target);
            }
        }
        check_all_keys(&mut c, 200);
    }

    #[test]
    fn execute_at_slot_matches_execute() {
        let mut c = cluster(3);
        for i in 0..50 {
            let put = Put {
                key: format!("key-{i}"),
                value: i,
            };
            let slot = c.slot_of_routing(&put.routing_key());
            c.execute_at_slot(&put, slot).unwrap();
        }
        check_all_keys(&mut c, 50);
        assert_eq!(c.slot_access_report(), c.rebuild_slot_access_report());
    }

    #[test]
    fn bytes_to_move_matches_fraction() {
        let mut c = cluster(2);
        load_keys(&mut c, 1000);
        let total = c.total_bytes();
        let to_move = c.bytes_to_move(4);
        // Scale 2 -> 4 moves ~half the data.
        let frac = to_move as f64 / total as f64;
        assert!((0.4..0.6).contains(&frac), "moved fraction {frac}");
    }

    #[test]
    fn data_balanced_after_scale_out() {
        let mut c = cluster(2);
        load_keys(&mut c, 2000);
        c.begin_reconfiguration(5).unwrap();
        c.run_reconfiguration_to_completion(8192).unwrap();
        let report = c.partition_report();
        let node_bytes: Vec<usize> = (0..5)
            .map(|n| {
                report
                    .iter()
                    .filter(|r| r.0 == n)
                    .map(|r| r.3)
                    .sum::<usize>()
            })
            .collect();
        let mean = node_bytes.iter().sum::<usize>() as f64 / 5.0;
        for (n, &b) in node_bytes.iter().enumerate() {
            let dev = (b as f64 - mean).abs() / mean;
            assert!(dev < 0.25, "node {n} holds {b} bytes vs mean {mean}");
        }
    }

    #[test]
    fn inline_submit_matches_execute() {
        // The pipelined API on the serial backend is the plain engine
        // with deferred fates: same stats, same stores, same results.
        let mut a = cluster(3);
        let mut b = cluster(3);
        let mut fates = Vec::new();
        for i in 0..80 {
            let key = format!("key-{i}");
            let ra = a.execute(&Put {
                key: key.clone(),
                value: i,
            });
            let put = Put { key, value: i };
            let slot = b.slot_of_routing(&put.routing_key());
            b.submit(put, slot);
            b.drain_fates_into(&mut fates);
            assert_eq!(ra, fates.pop().unwrap().result);
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(a.slot_access_report(), b.slot_access_report());
        assert_eq!(a.export_table(0).unwrap(), b.export_table(0).unwrap());
    }

    fn sharded_cluster(nodes: u32, shards: u32) -> Cluster {
        Cluster::with_shards(
            test_catalog(),
            ClusterConfig {
                partitions_per_node: 4,
                num_slots: 64,
            },
            nodes,
            shards,
        )
    }

    #[test]
    fn threaded_backend_matches_inline_through_a_reconfiguration() {
        let mut inline = sharded_cluster(2, 1);
        let mut sharded = sharded_cluster(2, 4);
        assert_eq!(sharded.num_shards(), 4);
        let mut fates_a = Vec::new();
        let mut fates_b = Vec::new();
        let drive = |c: &mut Cluster, fates: &mut Vec<TxnFate>| {
            for i in 0..200 {
                let put = Put {
                    key: format!("key-{i}"),
                    value: i,
                };
                let slot = c.slot_of_routing(&put.routing_key());
                c.submit(put, slot);
            }
            c.drain_fates_into(fates);
            c.begin_reconfiguration(5).unwrap();
            while c.reconfiguring() {
                let pairs = c.pair_transfers().len();
                for p in 0..pairs {
                    if c.reconfiguring() {
                        let _ = c.migrate_chunk(p, 700).unwrap();
                    }
                }
                // Traffic against in-flight slots, via the pipelined API.
                for i in 0..40 {
                    let get = Get {
                        key: format!("key-{i}"),
                    };
                    let slot = c.slot_of_routing(&get.routing_key());
                    c.submit(get, slot);
                }
                c.drain_fates_into(fates);
            }
        };
        drive(&mut inline, &mut fates_a);
        drive(&mut sharded, &mut fates_b);
        assert_eq!(fates_a.len(), fates_b.len());
        for (a, b) in fates_a.iter().zip(&fates_b) {
            assert_eq!(a.result, b.result);
            assert_eq!(a.slot, b.slot);
            assert_eq!(a.rwset, b.rwset);
            assert_eq!(a.touched_dest, b.touched_dest);
        }
        assert_eq!(inline.stats(), sharded.stats());
        assert_eq!(inline.active_nodes(), sharded.active_nodes());
        inline.verify_integrity().unwrap();
        sharded.verify_integrity().unwrap();
        assert_eq!(
            inline.export_table(0).unwrap(),
            sharded.export_table(0).unwrap()
        );
        assert_eq!(inline.partition_report(), sharded.partition_report());
        assert_eq!(
            inline.rebuild_slot_access_report(),
            sharded.rebuild_slot_access_report()
        );
        let reports = sharded.shard_reports();
        assert_eq!(reports.len(), 4);
        assert_eq!(
            reports.iter().map(|r| r.txns).sum::<u64>(),
            inline.shard_reports()[0].txns
        );
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn runtime_gauges_sample_mailboxes_and_fences_only_when_on() {
        use pstore_telemetry::event::span_names;

        let drive = |gauges: bool| {
            pstore_telemetry::reset_registry();
            let (sink, handle) = pstore_telemetry::MemorySink::new();
            let _guard = pstore_telemetry::install(std::rc::Rc::new(sink));
            let mut c = sharded_cluster(2, 4);
            c.set_runtime_gauges(gauges);
            assert_eq!(c.runtime_gauges(), gauges);
            let mut fates = Vec::new();
            for i in 0..50 {
                let put = Put {
                    key: format!("key-{i}"),
                    value: i,
                };
                let slot = c.slot_of_routing(&put.routing_key());
                c.submit(put, slot);
            }
            c.drain_fates_into(&mut fates);
            // shard_reports fences on the threaded backend.
            let _ = c.shard_reports();
            let depth = pstore_telemetry::with_registry(|r| {
                r.histogram("mailbox.cmd.depth").map(|h| h.count())
            });
            let occupancy = pstore_telemetry::with_registry(|r| {
                r.histogram("mailbox.cmd.occupancy").map(|h| h.count())
            });
            let reply_depth = pstore_telemetry::with_registry(|r| {
                r.histogram("mailbox.reply.depth").map(|h| h.count())
            });
            let fence_begins = handle
                .of_kind(pstore_telemetry::kinds::SPAN_BEGIN)
                .iter()
                .filter(|e| e.field_str("name") == Some(span_names::FENCE))
                .count();
            let fence_ends: Vec<u64> = handle
                .of_kind(pstore_telemetry::kinds::SPAN_END)
                .iter()
                .filter(|e| e.field_str("name") == Some(span_names::FENCE))
                .map(|e| e.field_u64("quiesce_us").unwrap_or(u64::MAX))
                .collect();
            pstore_telemetry::reset_registry();
            (depth, occupancy, reply_depth, fence_begins, fence_ends)
        };

        // Off (the default): no registry samples, no fence spans.
        let (depth, occupancy, reply_depth, begins, ends) = drive(false);
        assert_eq!((depth, occupancy, reply_depth), (None, None, None));
        assert_eq!((begins, ends.len()), (0, 0));

        // On: every command send and reply receive samples its ring, and
        // each fence round opens and closes one `fence` span carrying the
        // measured quiesce time.
        let (depth, occupancy, reply_depth, begins, ends) = drive(true);
        assert_eq!(depth, occupancy);
        assert!(depth.unwrap_or(0) >= 50, "cmd sends sampled: {depth:?}");
        assert!(reply_depth.unwrap_or(0) >= 50, "replies sampled");
        assert!(begins >= 1, "fence span expected");
        assert_eq!(begins, ends.len(), "fence spans must pair");
        assert!(ends.iter().all(|&q| q < u64::MAX), "quiesce_us recorded");
    }
}
