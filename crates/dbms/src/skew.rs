//! Skew-driven rebalancing: an E-Store-style planner over virtual slots.
//!
//! P-Store deliberately does not manage skew (§10 lists combining
//! predictive provisioning with E-Store/Clay-style skew management as
//! future work). This module implements that combination's building block:
//! given per-slot access counts (the detailed tier of E-Store's two-tier
//! monitoring, collected by
//! [`Cluster::slot_access_report`](crate::cluster::Cluster::slot_access_report)),
//! it detects load imbalance across nodes and produces a new [`SlotPlan`]
//! that greedily relocates the hottest slots from overloaded nodes onto
//! the least-loaded ones — E-Store's "hot tuples first, then cold chunks"
//! placement at slot granularity. The plan can be executed live with
//! [`Cluster::begin_plan_reconfiguration`](crate::cluster::Cluster::begin_plan_reconfiguration).

//!
//! ```
//! use pstore_dbms::skew::{plan_rebalance, SkewConfig};
//! use pstore_core::partition_plan::SlotPlan;
//! use std::collections::HashMap;
//!
//! let plan = SlotPlan::balanced(3, 30);
//! // Slot 0 is hot; everything else idle.
//! let mut accesses: HashMap<u64, u64> = (0..30).map(|s| (s, 10)).collect();
//! accesses.insert(0, 5_000);
//! let proposal = plan_rebalance(&plan, &accesses, &SkewConfig::default())
//!     .expect("imbalance detected");
//! assert!(!proposal.moves.is_empty());
//! ```

use pstore_core::partition_plan::SlotPlan;
use std::collections::HashMap;

/// Configuration of the skew balancer.
#[derive(Debug, Clone)]
pub struct SkewConfig {
    /// Rebalance only when the hottest node carries more than
    /// `1 + imbalance_threshold` times the mean node load (E-Store used a
    /// high/low CPU watermark; 0.15–0.3 are sensible values here).
    pub imbalance_threshold: f64,
    /// Upper bound on slots moved per rebalance (bounds migration work).
    pub max_slot_moves: usize,
}

impl Default for SkewConfig {
    fn default() -> Self {
        SkewConfig {
            imbalance_threshold: 0.2,
            max_slot_moves: 64,
        }
    }
}

/// A proposed rebalance.
#[derive(Debug, Clone)]
pub struct SkewPlan {
    /// The new slot assignment.
    pub plan: SlotPlan,
    /// `(slot, from, to)` relocations, hottest first.
    pub moves: Vec<(u64, u32, u32)>,
    /// Predicted max-over-mean node load after the rebalance.
    pub predicted_imbalance: f64,
}

/// Per-node load implied by a plan and per-slot access counts.
pub fn node_loads(plan: &SlotPlan, accesses: &HashMap<u64, u64>) -> Vec<f64> {
    let mut loads = vec![0.0f64; plan.machines() as usize];
    for (slot, &owner) in plan.assignments().iter().enumerate() {
        let a = accesses.get(&(slot as u64)).copied().unwrap_or(0);
        loads[owner as usize] += a as f64;
    }
    loads
}

/// Max-over-mean imbalance of a load vector (0 = perfectly balanced).
pub fn imbalance(loads: &[f64]) -> f64 {
    let n = loads.len().max(1) as f64;
    let mean = loads.iter().sum::<f64>() / n;
    if mean <= 0.0 {
        return 0.0;
    }
    let max = loads.iter().copied().fold(0.0, f64::max);
    max / mean - 1.0
}

/// Detects imbalance and proposes a greedy hot-slot relocation plan, or
/// `None` when the load is already within the threshold (or there is
/// nothing to move).
#[allow(clippy::cast_possible_truncation)] // slot ids and node indices fit their targets
pub fn plan_rebalance(
    plan: &SlotPlan,
    accesses: &HashMap<u64, u64>,
    cfg: &SkewConfig,
) -> Option<SkewPlan> {
    assert!(cfg.imbalance_threshold >= 0.0, "threshold must be >= 0");
    if plan.machines() < 2 {
        return None;
    }
    let mut loads = node_loads(plan, accesses);
    if imbalance(&loads) <= cfg.imbalance_threshold {
        return None;
    }
    let mean = loads.iter().sum::<f64>() / loads.len() as f64;

    // Hottest slots first, as E-Store relocates hot tuples first.
    let mut hot_slots: Vec<(u64, u64)> = accesses
        .iter()
        .map(|(&s, &c)| (s, c))
        .filter(|&(_, c)| c > 0)
        .collect();
    hot_slots.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));

    let mut assignment = plan.assignments().to_vec();
    let mut moves = Vec::new();
    for (slot, count) in hot_slots {
        if moves.len() >= cfg.max_slot_moves {
            break;
        }
        let from = assignment[slot as usize];
        // Only shed from nodes above the mean.
        if loads[from as usize] <= mean {
            continue;
        }
        // Coldest destination.
        let Some((to, &to_load)) = loads.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1))
        else {
            break;
        };
        let to = to as u32;
        if to == from {
            continue;
        }
        // Move only if it strictly improves the pair's balance.
        let c = count as f64;
        if to_load + c >= loads[from as usize] {
            continue;
        }
        assignment[slot as usize] = to;
        loads[from as usize] -= c;
        loads[to as usize] += c;
        moves.push((slot, from, to));
        if imbalance(&loads) <= cfg.imbalance_threshold {
            break;
        }
    }
    if moves.is_empty() {
        return None;
    }
    let new_plan = SlotPlan::from_assignments(assignment, plan.machines());
    Some(SkewPlan {
        predicted_imbalance: imbalance(&loads),
        plan: new_plan,
        moves,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests use exact values and tiny ids
    use super::*;

    fn uniform_accesses(num_slots: usize, per_slot: u64) -> HashMap<u64, u64> {
        (0..num_slots as u64).map(|s| (s, per_slot)).collect()
    }

    #[test]
    fn balanced_load_needs_no_rebalance() {
        let plan = SlotPlan::balanced(4, 64);
        let accesses = uniform_accesses(64, 10);
        assert!(plan_rebalance(&plan, &accesses, &SkewConfig::default()).is_none());
    }

    #[test]
    fn hot_slot_is_relocated_off_the_hot_node() {
        let plan = SlotPlan::balanced(4, 64);
        let mut accesses = uniform_accesses(64, 10);
        // Slot 0 (node 0) is scorching: node 0 carries ~4x the mean.
        accesses.insert(0, 2_000);
        let proposal =
            plan_rebalance(&plan, &accesses, &SkewConfig::default()).expect("imbalance detected");
        // With one mega-hot slot, the balancer isolates it: every move
        // drains *other* load off the hot node (moving the hot slot itself
        // would only relocate the hotspot).
        assert!(
            proposal.moves.iter().all(|&(_, from, _)| from == 0),
            "all moves should shed load from the hot node: {:?}",
            proposal.moves
        );
        assert!(!proposal.moves.is_empty());
        let before = imbalance(&node_loads(&plan, &accesses));
        assert!(
            proposal.predicted_imbalance < before,
            "imbalance must improve: {} -> {}",
            before,
            proposal.predicted_imbalance
        );
        assert!(proposal.plan.num_slots() == 64);
    }

    #[test]
    fn respects_move_budget() {
        let plan = SlotPlan::balanced(2, 64);
        let mut accesses = uniform_accesses(64, 1);
        // Many moderately hot slots all on node 0's side.
        for s in (0..64u64).filter(|s| plan.owner(*s as usize) == 0) {
            accesses.insert(s, 100);
        }
        let cfg = SkewConfig {
            imbalance_threshold: 0.01,
            max_slot_moves: 3,
        };
        if let Some(p) = plan_rebalance(&plan, &accesses, &cfg) {
            assert!(p.moves.len() <= 3);
        }
    }

    #[test]
    fn single_node_cluster_never_rebalances() {
        let plan = SlotPlan::balanced(1, 16);
        let mut accesses = HashMap::new();
        accesses.insert(0u64, 1_000u64);
        assert!(plan_rebalance(&plan, &accesses, &SkewConfig::default()).is_none());
    }

    #[test]
    fn imbalance_metric() {
        assert_eq!(imbalance(&[10.0, 10.0]), 0.0);
        assert!((imbalance(&[20.0, 10.0]) - (20.0 / 15.0 - 1.0)).abs() < 1e-12);
        assert_eq!(imbalance(&[]), 0.0);
        assert_eq!(imbalance(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn proposed_plan_executes_on_a_cluster() {
        use crate::catalog::{columns, Catalog, ColumnType, TableSchema};
        use crate::cluster::{Cluster, ClusterConfig};
        use crate::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
        use crate::value::{Key, KeyValue, Row, Value};

        struct Put(String);
        impl Procedure for Put {
            fn name(&self) -> &'static str {
                "Put"
            }
            fn routing_key(&self) -> KeyValue {
                KeyValue::Str(self.0.clone())
            }
            fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
                ctx.put(0, Key::str(self.0.clone()), Row(vec![Value::Int(1)]));
                Ok(TxnOutput::None)
            }
        }

        let mut cat = Catalog::new();
        cat.add_table(TableSchema::new(
            "KV",
            columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
            1,
        ));
        let mut cluster = Cluster::new(
            cat,
            ClusterConfig {
                partitions_per_node: 2,
                num_slots: 64,
            },
            3,
        );
        // Create a hot key: hammer one cart id.
        for i in 0..200 {
            cluster.execute(&Put(format!("key-{i}"))).unwrap();
        }
        for _ in 0..5_000 {
            cluster.execute(&Put("hot-key".into())).unwrap();
        }
        let report = cluster.slot_access_report();
        let proposal = plan_rebalance(
            cluster.current_plan(),
            &report,
            &SkewConfig {
                imbalance_threshold: 0.1,
                max_slot_moves: 8,
            },
        )
        .expect("the hot key should trigger a rebalance");
        let rows = cluster.total_rows();
        cluster
            .begin_plan_reconfiguration(proposal.plan.clone())
            .unwrap();
        cluster.run_reconfiguration_to_completion(8_192).unwrap();
        assert_eq!(cluster.total_rows(), rows);
        assert_eq!(
            cluster.current_plan().assignments(),
            proposal.plan.assignments()
        );
    }
}
