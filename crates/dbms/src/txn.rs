//! Transactions: stored procedures, execution context, errors.
//!
//! As in H-Store, a transaction is an invocation of a pre-declared stored
//! procedure routed by a single partitioning-key value and executed serially
//! on the owning partition. The execution context enforces the
//! single-partition discipline: every key a procedure touches must hash to
//! the same virtual slot as its routing key (multi-partition transactions
//! are rejected, matching the B2W workload's single-key procedures, §7).

use crate::catalog::TableId;
use crate::partition::PartitionStore;
use crate::value::{Key, KeyValue, Row, Value};
use std::collections::HashSet;
use std::fmt;

/// Result payload of a committed transaction.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnOutput {
    /// No payload (pure write).
    None,
    /// A single value (e.g. a stock quantity).
    Value(Value),
    /// A single row.
    Row(Row),
    /// A set of keyed rows (e.g. the lines of a cart).
    Rows(Vec<(Key, Row)>),
    /// A count of affected rows.
    Count(u64),
}

/// A transaction abort.
#[derive(Debug, Clone, PartialEq)]
pub enum TxnError {
    /// A row the procedure requires does not exist.
    NotFound {
        /// Table name.
        table: &'static str,
        /// The missing key.
        key: Key,
    },
    /// A row the procedure would create already exists.
    AlreadyExists {
        /// Table name.
        table: &'static str,
        /// The conflicting key.
        key: Key,
    },
    /// Business-logic abort (e.g. reserving out-of-stock items).
    Aborted(String),
}

impl fmt::Display for TxnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TxnError::NotFound { table, key } => write!(f, "{table}{key} not found"),
            TxnError::AlreadyExists { table, key } => write!(f, "{table}{key} already exists"),
            TxnError::Aborted(msg) => write!(f, "aborted: {msg}"),
        }
    }
}

impl std::error::Error for TxnError {}

/// A stored procedure.
pub trait Procedure {
    /// Procedure name (for statistics and tracing).
    fn name(&self) -> &'static str;

    /// The partitioning-key value this invocation routes on.
    fn routing_key(&self) -> KeyValue;

    /// Executes against the owning partition.
    ///
    /// # Errors
    /// Returns a [`TxnError`] to abort; all context mutations made before an
    /// abort are the procedure's responsibility to avoid (procedures are
    /// written check-then-write, as in H-Store's Java procedures).
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError>;
}

/// Where a key's row currently lives while its slot is mid-migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Source,
    Dest,
}

/// Counts of row accesses made by one transaction, split by migration
/// side — the read/write-set record behind the `txn_rwset` trace event
/// and the TXN-01 invariant. The counters only tick in telemetry builds;
/// without the feature every access point compiles down to the bare
/// store operation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RwSet {
    /// Rows read, both sides (each prefix scan counts as one read).
    pub reads: u64,
    /// Rows written or deleted, both sides.
    pub writes: u64,
    /// Reads served by the migration destination.
    pub dest_reads: u64,
    /// Writes landing at the migration destination.
    pub dest_writes: u64,
}

/// One key-level access record: `(table, key, write-version)`. For a read
/// the version is the key's version *observed* (0 = never written); for a
/// write it is the version *installed* by this transaction. The version
/// counters live in the partition store (see
/// [`PartitionStore::bump_version`]) so histories stay meaningful across
/// shards, migrations, and Squall restarts.
pub type KeyAccess = (TableId, Key, u64);

/// Fault-injection knob for the `ISO-*` seeded-bug twin tests (test
/// builds and the `iso-seeded-bugs` feature only; never compiled into
/// release artifacts otherwise). An armed bug makes *captured reads lie
/// about the version they observed* — the engine still executes
/// correctly, but the recorded history carries the signature of a real
/// isolation anomaly, proving the ISO-01..03 checkers in `pstore-verify`
/// would catch one. Thread-local and off by default, so the hook is
/// inert even in builds that carry it.
#[cfg(any(test, feature = "iso-seeded-bugs"))]
pub mod seeded_bugs {
    use std::cell::Cell;

    /// Which read-capture anomaly to fabricate.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
    pub enum ReadBug {
        /// Record versions faithfully (default).
        #[default]
        None,
        /// Record each read one version *older* than observed — the
        /// stale-read signature behind lost updates and write skew
        /// (ISO-01 cycles).
        StaleRead,
        /// Record each read one version *newer* than observed — a read
        /// from the future (ISO-02).
        FutureRead,
    }

    thread_local! {
        static READ_BUG: Cell<ReadBug> = const { Cell::new(ReadBug::None) };
    }

    /// Arms `bug` for captured reads on this thread until re-armed with
    /// [`ReadBug::None`].
    pub fn arm(bug: ReadBug) {
        READ_BUG.with(|b| b.set(bug));
    }

    /// The currently armed bug.
    pub fn armed() -> ReadBug {
        READ_BUG.with(Cell::get)
    }
}

/// The version a captured read records: the observed version, distorted
/// by the armed seeded bug in test builds.
fn captured_read_version(v: u64) -> u64 {
    #[cfg(any(test, feature = "iso-seeded-bugs"))]
    let v = match seeded_bugs::armed() {
        seeded_bugs::ReadBug::None => v,
        seeded_bugs::ReadBug::StaleRead => v.saturating_sub(1),
        seeded_bugs::ReadBug::FutureRead => v + 1,
    };
    v
}

/// Execution context: a view over the partition(s) holding the routing
/// slot. During live migration of the slot the view spans the source and
/// destination partitions, consulting the migrated-key set per access — the
/// Squall-style key-granularity switchover.
pub struct TxnCtx<'a> {
    slot: u64,
    num_slots: u64,
    source: &'a mut PartitionStore,
    /// Destination store and the set of keys already migrated, when the
    /// routing slot is in flight.
    dest: Option<(&'a mut PartitionStore, &'a HashSet<(TableId, Key)>)>,
    /// Set when any access hit the destination side (lets the engine track
    /// migration-overlap statistics).
    pub touched_dest: bool,
    /// Read/write-set tally of this transaction. Stays all-zero unless
    /// the `telemetry` feature is on (see [`RwSet`]).
    pub rwset: RwSet,
    /// When set, every access also records a key-level [`KeyAccess`]
    /// entry (the sampled serializability history; telemetry builds
    /// only). Off by default: unsampled transactions never clone keys.
    capture: bool,
    /// `(table, key, version-observed)` per read, in program order.
    /// Filled only while [`set_capture`](TxnCtx::set_capture) is on.
    pub key_reads: Vec<KeyAccess>,
    /// `(table, key, version-installed)` per write, in program order.
    /// Filled only while [`set_capture`](TxnCtx::set_capture) is on.
    pub key_writes: Vec<KeyAccess>,
}

impl<'a> TxnCtx<'a> {
    /// Creates a context for a settled slot.
    pub fn settled(slot: u64, num_slots: u64, store: &'a mut PartitionStore) -> Self {
        TxnCtx {
            slot,
            num_slots,
            source: store,
            dest: None,
            touched_dest: false,
            rwset: RwSet::default(),
            capture: false,
            key_reads: Vec::new(),
            key_writes: Vec::new(),
        }
    }

    /// Creates a context for a slot that is mid-migration.
    pub fn migrating(
        slot: u64,
        num_slots: u64,
        source: &'a mut PartitionStore,
        dest: &'a mut PartitionStore,
        moved: &'a HashSet<(TableId, Key)>,
    ) -> Self {
        TxnCtx {
            slot,
            num_slots,
            source,
            dest: Some((dest, moved)),
            touched_dest: false,
            rwset: RwSet::default(),
            capture: false,
            key_reads: Vec::new(),
            key_writes: Vec::new(),
        }
    }

    /// The virtual slot this transaction executes against.
    pub fn slot(&self) -> u64 {
        self.slot
    }

    /// Turns key-level history capture on or off for this transaction
    /// (the sampled ISO-01..03 record; see [`KeyAccess`]).
    pub fn set_capture(&mut self, on: bool) {
        self.capture = on;
    }

    /// Enforces the single-partition discipline: every key a procedure
    /// touches must hash to the transaction's routing slot.
    ///
    /// # Panics
    /// Panics on a cross-partition access — that is a bug in the procedure
    /// (in H-Store such a transaction would have had to be declared
    /// multi-partition, which this engine, like the B2W workload, forbids).
    fn check_slot(&self, key: &Key) {
        // Allocation-free: hashes the routing component from a stack
        // buffer, so per-access slot checks stay off the heap.
        let s = key
            .routing_part()
            .with_hash_bytes(|b| crate::hash::bucket_of(b, self.num_slots));
        assert_eq!(
            s, self.slot,
            "single-partition violation: key {key} hashes to slot {s}, \
             transaction executes on slot {}",
            self.slot
        );
    }

    /// Tallies a read into the read/write set (telemetry builds only).
    #[cfg(feature = "telemetry")]
    fn note_read(&mut self, dest: bool) {
        self.rwset.reads += 1;
        if dest {
            self.rwset.dest_reads += 1;
        }
    }
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    fn note_read(&mut self, _dest: bool) {}

    /// Tallies a write/delete into the read/write set (telemetry builds
    /// only).
    #[cfg(feature = "telemetry")]
    fn note_write(&mut self, dest: bool) {
        self.rwset.writes += 1;
        if dest {
            self.rwset.dest_writes += 1;
        }
    }
    #[cfg(not(feature = "telemetry"))]
    #[inline(always)]
    fn note_write(&mut self, _dest: bool) {}

    fn side_of(&self, table: TableId, key: &Key) -> Side {
        self.check_slot(key);
        match &self.dest {
            Some((_, moved)) if moved.contains(&(table, key.clone())) => Side::Dest,
            _ => Side::Source,
        }
    }

    /// Reads a row.
    pub fn get(&mut self, table: TableId, key: &Key) -> Option<Row> {
        match self.side_of(table, key) {
            Side::Source => {
                self.note_read(false);
                if self.capture {
                    let v = self.source.version_of(self.slot, table, key);
                    self.key_reads
                        .push((table, key.clone(), captured_read_version(v)));
                }
                self.source.get(self.slot, table, key).cloned()
            }
            Side::Dest => {
                self.note_read(true);
                self.touched_dest = true;
                let (row, v) = {
                    let Some((dest, _)) = self.dest.as_ref() else {
                        unreachable!("dest side implies dest view");
                    };
                    (
                        dest.get(self.slot, table, key).cloned(),
                        if self.capture {
                            dest.version_of(self.slot, table, key)
                        } else {
                            0
                        },
                    )
                };
                if self.capture {
                    self.key_reads
                        .push((table, key.clone(), captured_read_version(v)));
                }
                row
            }
        }
    }

    /// Reads a row, aborting with `NotFound` if absent.
    pub fn get_required(
        &mut self,
        table: TableId,
        table_name: &'static str,
        key: &Key,
    ) -> Result<Row, TxnError> {
        self.get(table, key).ok_or(TxnError::NotFound {
            table: table_name,
            key: key.clone(),
        })
    }

    /// Inserts or replaces a row.
    pub fn put(&mut self, table: TableId, key: Key, row: Row) -> Option<Row> {
        match self.side_of(table, &key) {
            Side::Source => {
                self.note_write(false);
                let v = self.source.bump_version(self.slot, table, &key);
                if self.capture {
                    self.key_writes.push((table, key.clone(), v));
                }
                self.source.put(self.slot, table, key, row)
            }
            Side::Dest => {
                self.note_write(true);
                self.touched_dest = true;
                let v = {
                    let Some((dest, _)) = self.dest.as_mut() else {
                        unreachable!("dest side implies dest view");
                    };
                    dest.bump_version(self.slot, table, &key)
                };
                if self.capture {
                    self.key_writes.push((table, key.clone(), v));
                }
                let Some((dest, _)) = self.dest.as_mut() else {
                    unreachable!("dest side implies dest view");
                };
                dest.put(self.slot, table, key, row)
            }
        }
    }

    /// Inserts a new row, aborting with `AlreadyExists` if present.
    pub fn insert_new(
        &mut self,
        table: TableId,
        table_name: &'static str,
        key: Key,
        row: Row,
    ) -> Result<(), TxnError> {
        if self.get(table, &key).is_some() {
            return Err(TxnError::AlreadyExists {
                table: table_name,
                key,
            });
        }
        self.put(table, key, row);
        Ok(())
    }

    /// Deletes a row, returning it if present.
    pub fn delete(&mut self, table: TableId, key: &Key) -> Option<Row> {
        match self.side_of(table, key) {
            Side::Source => {
                self.note_write(false);
                let v = self.source.bump_version(self.slot, table, key);
                if self.capture {
                    self.key_writes.push((table, key.clone(), v));
                }
                self.source.delete(self.slot, table, key)
            }
            Side::Dest => {
                self.note_write(true);
                self.touched_dest = true;
                let v = {
                    let Some((dest, _)) = self.dest.as_mut() else {
                        unreachable!("dest side implies dest view");
                    };
                    dest.bump_version(self.slot, table, key)
                };
                if self.capture {
                    self.key_writes.push((table, key.clone(), v));
                }
                let Some((dest, _)) = self.dest.as_mut() else {
                    unreachable!("dest side implies dest view");
                };
                dest.delete(self.slot, table, key)
            }
        }
    }

    /// All rows with the given key prefix, merged across migration sides.
    pub fn scan_prefix(&mut self, table: TableId, prefix: &Key) -> Vec<(Key, Row)> {
        self.check_slot(prefix);
        let mut rows = self.source.scan_prefix(self.slot, table, prefix);
        let mut hit_dest = false;
        if let Some((dest, _)) = &self.dest {
            let dest_rows = dest.scan_prefix(self.slot, table, prefix);
            if !dest_rows.is_empty() {
                hit_dest = true;
                self.touched_dest = true;
                rows.extend(dest_rows);
                rows.sort_by(|a, b| a.0.cmp(&b.0));
                rows.dedup_by(|a, b| a.0 == b.0);
            }
        }
        self.note_read(hit_dest);
        if self.capture {
            for (k, _) in &rows {
                let v = match &self.dest {
                    Some((dest, moved)) if moved.contains(&(table, k.clone())) => {
                        dest.version_of(self.slot, table, k)
                    }
                    _ => self.source.version_of(self.slot, table, k),
                };
                self.key_reads
                    .push((table, k.clone(), captured_read_version(v)));
            }
        }
        rows
    }

    /// Deletes every row with the given key prefix; returns how many.
    pub fn delete_prefix(&mut self, table: TableId, prefix: &Key) -> u64 {
        let keys: Vec<Key> = self
            .scan_prefix(table, prefix)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut n = 0;
        for k in keys {
            if self.delete(table, &k).is_some() {
                n += 1;
            }
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::bucket_of;

    const SLOTS: u64 = 64;

    fn row(v: i64) -> Row {
        Row(vec![Value::Int(v)])
    }

    /// The slot a key with routing part `root` maps to.
    fn slot_of(root: &str) -> u64 {
        bucket_of(&Key::str(root).routing_bytes(), SLOTS)
    }

    #[test]
    fn settled_context_reads_and_writes_source() {
        let mut store = PartitionStore::new(1);
        let slot = slot_of("a");
        let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
        let k = Key::str("a");
        assert_eq!(ctx.get(0, &k), None);
        ctx.put(0, k.clone(), row(1));
        assert_eq!(ctx.get(0, &k), Some(row(1)));
        assert_eq!(ctx.delete(0, &k), Some(row(1)));
        assert!(!ctx.touched_dest);
    }

    #[test]
    fn migrating_context_routes_by_moved_set() {
        // All keys share the routing part "cart-9" (one logical entity).
        let slot = slot_of("cart-9");
        let moved_key = Key::str_int("cart-9", 1);
        let staying_key = Key::str_int("cart-9", 2);
        let mut src = PartitionStore::new(1);
        let mut dst = PartitionStore::new(1);
        dst.put(slot, 0, moved_key.clone(), row(10));
        src.put(slot, 0, staying_key.clone(), row(20));
        let moved: HashSet<(TableId, Key)> = [(0usize, moved_key.clone())].into();

        let mut ctx = TxnCtx::migrating(slot, SLOTS, &mut src, &mut dst, &moved);
        assert_eq!(ctx.get(0, &moved_key), Some(row(10)));
        assert!(ctx.touched_dest);
        assert_eq!(ctx.get(0, &staying_key), Some(row(20)));

        // Writes follow the same routing: updating the moved key lands at
        // the destination, new keys land at the source.
        ctx.put(0, moved_key.clone(), row(11));
        ctx.put(0, Key::str_int("cart-9", 3), row(30));
        let _ = ctx;
        assert_eq!(dst.get(slot, 0, &moved_key), Some(&row(11)));
        assert_eq!(src.get(slot, 0, &Key::str_int("cart-9", 3)), Some(&row(30)));
    }

    #[test]
    fn scan_merges_both_sides() {
        let slot = slot_of("cart");
        let mut src = PartitionStore::new(1);
        let mut dst = PartitionStore::new(1);
        src.put(slot, 0, Key::str_int("cart", 2), row(2));
        dst.put(slot, 0, Key::str_int("cart", 1), row(1));
        let moved: HashSet<(TableId, Key)> = [(0usize, Key::str_int("cart", 1))].into();
        let mut ctx = TxnCtx::migrating(slot, SLOTS, &mut src, &mut dst, &moved);
        let rows = ctx.scan_prefix(0, &Key::str("cart"));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, Key::str_int("cart", 1)); // sorted merge
    }

    #[test]
    fn insert_new_rejects_duplicates_across_sides() {
        let slot = slot_of("dup");
        let mut src = PartitionStore::new(1);
        let mut dst = PartitionStore::new(1);
        let k = Key::str("dup");
        dst.put(slot, 0, k.clone(), row(1));
        let moved: HashSet<(TableId, Key)> = [(0usize, k.clone())].into();
        let mut ctx = TxnCtx::migrating(slot, SLOTS, &mut src, &mut dst, &moved);
        let err = ctx.insert_new(0, "T", k.clone(), row(2)).unwrap_err();
        assert!(matches!(err, TxnError::AlreadyExists { .. }));
    }

    #[test]
    fn delete_prefix_removes_all_lines() {
        let slot = slot_of("c");
        let mut store = PartitionStore::new(1);
        let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
        for i in 0..4 {
            ctx.put(0, Key::str_int("c", i), row(i));
        }
        assert_eq!(ctx.delete_prefix(0, &Key::str("c")), 4);
        assert_eq!(ctx.scan_prefix(0, &Key::str("c")).len(), 0);
    }

    #[test]
    fn get_required_aborts_cleanly() {
        let slot = slot_of("nope");
        let mut store = PartitionStore::new(1);
        let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
        let err = ctx.get_required(0, "CART", &Key::str("nope")).unwrap_err();
        assert_eq!(
            err,
            TxnError::NotFound {
                table: "CART",
                key: Key::str("nope")
            }
        );
        assert!(err.to_string().contains("CART"));
    }

    #[test]
    #[cfg(feature = "telemetry")]
    fn rwset_tallies_accesses_by_side() {
        let slot = slot_of("cart-9");
        let moved_key = Key::str_int("cart-9", 1);
        let staying_key = Key::str_int("cart-9", 2);
        let mut src = PartitionStore::new(1);
        let mut dst = PartitionStore::new(1);
        dst.put(slot, 0, moved_key.clone(), row(10));
        src.put(slot, 0, staying_key.clone(), row(20));
        let moved: HashSet<(TableId, Key)> = [(0usize, moved_key.clone())].into();
        let mut ctx = TxnCtx::migrating(slot, SLOTS, &mut src, &mut dst, &moved);
        let _ = ctx.get(0, &moved_key); // dest read
        let _ = ctx.get(0, &staying_key); // source read
        ctx.put(0, moved_key.clone(), row(11)); // dest write
        let _ = ctx.scan_prefix(0, &Key::str("cart-9")); // read hitting dest
        let _ = ctx.delete(0, &staying_key); // source write
        assert_eq!(
            ctx.rwset,
            RwSet {
                reads: 3,
                writes: 2,
                dest_reads: 2,
                dest_writes: 1,
            }
        );
    }

    #[test]
    #[cfg(not(feature = "telemetry"))]
    fn rwset_stays_zero_without_telemetry() {
        // The tally methods compile to no-ops without the feature: the
        // record stays at its default regardless of access activity.
        let slot = slot_of("a");
        let mut store = PartitionStore::new(1);
        let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
        ctx.put(0, Key::str("a"), row(1));
        let _ = ctx.get(0, &Key::str("a"));
        let _ = ctx.scan_prefix(0, &Key::str("a"));
        assert_eq!(ctx.rwset, RwSet::default());
    }

    #[test]
    fn key_capture_records_observed_and_installed_versions() {
        let slot = slot_of("cart-9");
        let moved_key = Key::str_int("cart-9", 1);
        let staying_key = Key::str_int("cart-9", 2);
        let mut src = PartitionStore::new(1);
        let mut dst = PartitionStore::new(1);
        src.set_track_versions(true);
        dst.set_track_versions(true);
        dst.put(slot, 0, moved_key.clone(), row(10));
        src.put(slot, 0, staying_key.clone(), row(20));
        let moved: HashSet<(TableId, Key)> = [(0usize, moved_key.clone())].into();
        let mut ctx = TxnCtx::migrating(slot, SLOTS, &mut src, &mut dst, &moved);
        ctx.set_capture(true);
        let _ = ctx.get(0, &staying_key); // never txn-written: observes 0
        ctx.put(0, staying_key.clone(), row(21)); // installs 1
        let _ = ctx.get(0, &staying_key); // observes 1
        ctx.put(0, moved_key.clone(), row(11)); // dest install 1
        let _ = ctx.delete(0, &staying_key); // installs 2 (tombstone)
        assert_eq!(
            ctx.key_reads,
            vec![(0, staying_key.clone(), 0), (0, staying_key.clone(), 1),]
        );
        assert_eq!(
            ctx.key_writes,
            vec![
                (0, staying_key.clone(), 1),
                (0, moved_key.clone(), 1),
                (0, staying_key.clone(), 2),
            ]
        );
    }

    #[test]
    fn key_capture_off_records_nothing_but_versions_still_advance() {
        let slot = slot_of("a");
        let mut store = PartitionStore::new(1);
        store.set_track_versions(true);
        let k = Key::str("a");
        {
            let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
            ctx.put(0, k.clone(), row(1));
            assert!(ctx.key_reads.is_empty() && ctx.key_writes.is_empty());
        }
        // An unsampled transaction's writes still advance the chain a
        // later sampled transaction observes.
        let mut ctx = TxnCtx::settled(slot, SLOTS, &mut store);
        ctx.set_capture(true);
        let _ = ctx.get(0, &k);
        assert_eq!(ctx.key_reads, vec![(0, k, 1)]);
    }

    #[test]
    #[should_panic(expected = "single-partition violation")]
    fn cross_partition_access_panics() {
        // Find two roots mapping to different slots.
        let a = "root-a";
        let mut b = String::new();
        for i in 0..1000 {
            let cand = format!("root-{i}");
            if slot_of(&cand) != slot_of(a) {
                b = cand;
                break;
            }
        }
        let mut store = PartitionStore::new(1);
        let mut ctx = TxnCtx::settled(slot_of(a), SLOTS, &mut store);
        ctx.put(0, Key::str(a), row(1)); // fine
        ctx.put(0, Key::str(b), row(2)); // cross-partition: panics
    }
}
