//! Table schemas and the database catalog.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Column data type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ColumnType {
    /// 64-bit integer.
    Int,
    /// 64-bit float.
    Float,
    /// UTF-8 string.
    Str,
    /// Boolean.
    Bool,
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// Column name.
    pub name: String,
    /// Column type.
    pub ty: ColumnType,
}

/// Identifier of a table in the catalog (dense index).
pub type TableId = usize;

/// A table schema.
///
/// The *primary key* is a tuple of leading key columns; the *partitioning
/// key* is, as in H-Store, a single column whose value routes transactions.
/// For single-partition execution the partitioning column must be the first
/// primary-key component, so all rows of one logical entity co-locate.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableSchema {
    /// Table name (unique in the catalog).
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<Column>,
    /// Number of leading columns forming the primary key.
    pub key_columns: usize,
}

impl TableSchema {
    /// Creates a schema.
    ///
    /// # Panics
    /// Panics if there are no columns, no key columns, or more key columns
    /// than columns.
    pub fn new(name: impl Into<String>, columns: Vec<Column>, key_columns: usize) -> Self {
        let name = name.into();
        assert!(!columns.is_empty(), "table {name} needs columns");
        assert!(
            key_columns >= 1 && key_columns <= columns.len(),
            "table {name}: invalid key column count"
        );
        TableSchema {
            name,
            columns,
            key_columns,
        }
    }

    /// Index of the partitioning column (always the first key column).
    pub fn partition_column(&self) -> usize {
        0
    }

    /// Column index by name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }
}

/// The set of tables in the database.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catalog {
    tables: Vec<TableSchema>,
    by_name: HashMap<String, TableId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Adds a table, returning its id.
    ///
    /// # Panics
    /// Panics if a table with the same name exists.
    pub fn add_table(&mut self, schema: TableSchema) -> TableId {
        assert!(
            !self.by_name.contains_key(&schema.name),
            "duplicate table {}",
            schema.name
        );
        let id = self.tables.len();
        self.by_name.insert(schema.name.clone(), id);
        self.tables.push(schema);
        id
    }

    /// Schema by id.
    pub fn table(&self, id: TableId) -> &TableSchema {
        &self.tables[id]
    }

    /// Id by name.
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.by_name.get(name).copied()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterator over `(id, schema)`.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &TableSchema)> {
        self.tables.iter().enumerate()
    }
}

/// Shorthand for building a column list.
pub fn columns(defs: &[(&str, ColumnType)]) -> Vec<Column> {
    defs.iter()
        .map(|(name, ty)| Column {
            name: (*name).to_string(),
            ty: *ty,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cart_schema() -> TableSchema {
        TableSchema::new(
            "CART",
            columns(&[
                ("cart_id", ColumnType::Str),
                ("customer_id", ColumnType::Str),
                ("total", ColumnType::Float),
            ]),
            1,
        )
    }

    #[test]
    fn catalog_round_trips_tables() {
        let mut cat = Catalog::new();
        let id = cat.add_table(cart_schema());
        assert_eq!(cat.table_id("CART"), Some(id));
        assert_eq!(cat.table(id).name, "CART");
        assert_eq!(cat.table_id("MISSING"), None);
        assert_eq!(cat.len(), 1);
    }

    #[test]
    fn partition_column_is_first_key_column() {
        let s = cart_schema();
        assert_eq!(s.partition_column(), 0);
        assert_eq!(s.column_index("total"), Some(2));
        assert_eq!(s.column_index("nope"), None);
    }

    #[test]
    #[should_panic(expected = "duplicate table")]
    fn duplicate_table_rejected() {
        let mut cat = Catalog::new();
        cat.add_table(cart_schema());
        cat.add_table(cart_schema());
    }

    #[test]
    #[should_panic(expected = "invalid key column count")]
    fn zero_key_columns_rejected() {
        let _ = TableSchema::new("T", columns(&[("a", ColumnType::Int)]), 0);
    }
}
