//! Synchronisation shim for the sharded execution engine.
//!
//! pstore-lint: sync-shim — this module is the crate's single sanctioned
//! gateway to synchronisation primitives (SA-04/SA-07). Under `cfg(loom)`
//! every scheduling-relevant type comes from the vendored loom model
//! checker, so the engine's cross-thread protocols — the bounded SPSC
//! [`crate::mailbox::Mailbox`] handoff (CON-04) and the reconfiguration
//! fence (CON-05) — can be explored exhaustively; under normal builds
//! they are plain `std` types. The two APIs are call-compatible for the
//! subset used here.

#![allow(unexpected_cfgs)]
// `cfg(loom)` is set via RUSTFLAGS by the loom sweep, not by a cargo
// feature, so rustc cannot know it is expected without this allow.

#[cfg(not(loom))]
pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
pub use std::sync::{Arc, Mutex, MutexGuard};
#[cfg(not(loom))]
pub use std::thread;

#[cfg(loom)]
pub use loom::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(loom)]
pub use loom::sync::{Arc, Mutex, MutexGuard};
#[cfg(loom)]
pub use loom::thread;

/// One step of a spin-wait loop: yields the scheduler for the first few
/// spins, then parks the thread for a short interval so an idle executor
/// shard does not burn a core between batches. Under `cfg(loom)` every
/// step is a plain `yield_now` — loom has no time, only schedules.
pub fn backoff(spins: u32) {
    #[cfg(loom)]
    {
        let _ = spins;
        thread::yield_now();
    }
    #[cfg(not(loom))]
    {
        if spins < 64 {
            thread::yield_now();
        } else {
            // Escalate to a real sleep: 10µs keeps handoff latency far
            // below a chunk interval while capping idle CPU burn.
            thread::sleep(std::time::Duration::from_micros(10));
        }
    }
}
