//! Per-partition storage.
//!
//! Each partition owns a set of virtual hash slots; all rows whose routing
//! key hashes to a slot live together, so a slot can be migrated as a unit
//! and prefix scans (all lines of one cart) never cross slots — a routing
//! key's rows always share its slot.

use crate::catalog::TableId;
use crate::value::{Key, Row};
use std::collections::{BTreeMap, HashMap};

/// All rows of one virtual slot, organised per table.
#[derive(Debug, Clone, Default)]
pub struct SlotData {
    /// `tables[table_id]` maps primary key to row.
    tables: Vec<BTreeMap<Key, Row>>,
    /// Estimated resident bytes of this slot.
    bytes: usize,
}

impl SlotData {
    fn with_tables(n: usize) -> Self {
        SlotData {
            tables: vec![BTreeMap::new(); n],
            bytes: 0,
        }
    }

    fn ensure_tables(&mut self, n: usize) {
        if self.tables.len() < n {
            self.tables.resize_with(n, BTreeMap::new);
        }
    }

    /// Estimated resident bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Total rows across tables.
    pub fn rows(&self) -> usize {
        self.tables.iter().map(BTreeMap::len).sum()
    }

    /// Whether the slot holds no rows.
    pub fn is_empty(&self) -> bool {
        self.tables.iter().all(BTreeMap::is_empty)
    }
}

/// The storage engine of one partition.
#[derive(Debug, Default)]
pub struct PartitionStore {
    num_tables: usize,
    slots: HashMap<u64, SlotData>,
    accesses: u64,
    /// Per-slot access counters (the detailed tier of E-Store-style
    /// two-tier monitoring; cheap enough to keep always on at slot
    /// granularity). Dense, indexed by slot id and grown on demand:
    /// incrementing is a bounds check and an add, with no hashing on the
    /// per-transaction path. A reset keeps the allocation.
    slot_accesses: Vec<u64>,
    /// Per-key write-version counters, keyed by slot (so a slot's history
    /// migrates as a unit) then table. Only maintained while
    /// [`track_versions`] is set (the ISO-01..03 serializability sweep);
    /// the default keeps the warm path free of version bookkeeping.
    ///
    /// [`track_versions`]: PartitionStore::set_track_versions
    versions: HashMap<u64, Vec<HashMap<Key, u64>>>,
    track_versions: bool,
}

impl PartitionStore {
    /// Creates a store for a catalog with `num_tables` tables.
    pub fn new(num_tables: usize) -> Self {
        PartitionStore {
            num_tables,
            slots: HashMap::new(),
            accesses: 0,
            slot_accesses: Vec::new(),
            versions: HashMap::new(),
            track_versions: false,
        }
    }

    /// Enables or disables per-key version counting. Disabling clears the
    /// recorded counters, so re-enabling restarts every chain at 0.
    pub fn set_track_versions(&mut self, on: bool) {
        self.track_versions = on;
        if !on {
            self.versions.clear();
        }
    }

    /// Whether per-key version counting is on.
    pub fn track_versions(&self) -> bool {
        self.track_versions
    }

    /// The current write version of a key: the number of installs (puts
    /// and deletes) observed since tracking started. 0 for never-written
    /// keys.
    pub fn version_of(&self, slot: u64, table: TableId, key: &Key) -> u64 {
        self.versions
            .get(&slot)
            .and_then(|tables| tables.get(table))
            .and_then(|m| m.get(key))
            .copied()
            .unwrap_or(0)
    }

    /// Advances a key's write version and returns the new (installed)
    /// version. No-op returning 0 when tracking is off. Called by the
    /// transaction layer only — migration re-installs rows without
    /// bumping, so a key's history survives chunk moves intact.
    pub fn bump_version(&mut self, slot: u64, table: TableId, key: &Key) -> u64 {
        if !self.track_versions {
            return 0;
        }
        let n = self.num_tables.max(table + 1);
        let tables = self.versions.entry(slot).or_default();
        if tables.len() < n {
            tables.resize_with(n, HashMap::new);
        }
        let v = tables[table].entry(key.clone()).or_insert(0);
        *v += 1;
        *v
    }

    /// Removes and returns a key's version counter (migration handoff).
    pub fn take_version(&mut self, slot: u64, table: TableId, key: &Key) -> Option<u64> {
        self.versions.get_mut(&slot)?.get_mut(table)?.remove(key)
    }

    /// Removes and returns every remaining version counter of `slot`
    /// (end-of-slot migration handoff: tombstoned keys have a counter but
    /// no row, so they are not carried by `extract_chunk`).
    pub fn take_slot_versions(&mut self, slot: u64) -> Vec<((TableId, Key), u64)> {
        self.versions
            .remove(&slot)
            .map(|tables| {
                tables
                    .into_iter()
                    .enumerate()
                    .flat_map(|(tid, m)| m.into_iter().map(move |(k, v)| ((tid, k), v)))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Installs version counters delivered by a migration chunk.
    pub fn install_versions(&mut self, slot: u64, entries: Vec<((TableId, Key), u64)>) {
        if entries.is_empty() {
            return;
        }
        let max_table = entries.iter().map(|((t, _), _)| *t + 1).max().unwrap_or(0);
        let n = self.num_tables.max(max_table);
        let tables = self.versions.entry(slot).or_default();
        if tables.len() < n {
            tables.resize_with(n, HashMap::new);
        }
        for ((tid, key), v) in entries {
            tables[tid].insert(key, v);
        }
    }

    fn slot_mut(&mut self, slot: u64) -> &mut SlotData {
        let n = self.num_tables;
        let entry = self
            .slots
            .entry(slot)
            .or_insert_with(|| SlotData::with_tables(n));
        entry.ensure_tables(n);
        entry
    }

    /// Records a logical access (for the §8.1 skew statistics).
    pub fn record_access(&mut self) {
        self.accesses += 1;
    }

    /// Records an access attributed to a specific slot (hot-spot
    /// detection).
    #[allow(clippy::cast_possible_truncation)] // slot ids fit usize on supported targets
    pub fn record_slot_access(&mut self, slot: u64) {
        self.accesses += 1;
        let idx = slot as usize;
        if idx >= self.slot_accesses.len() {
            self.slot_accesses.resize(idx + 1, 0);
        }
        self.slot_accesses[idx] += 1;
    }

    /// Per-slot access counters accumulated so far (non-zero entries only).
    pub fn slot_accesses(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.slot_accesses
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(s, &c)| (s as u64, c))
    }

    /// Resets the per-slot counters (start of a new monitoring window).
    /// Keeps the dense allocation so warm-path recording never reallocates.
    pub fn reset_slot_accesses(&mut self) {
        self.slot_accesses.fill(0);
    }

    /// Logical accesses recorded so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Looks up a row.
    pub fn get(&self, slot: u64, table: TableId, key: &Key) -> Option<&Row> {
        self.slots.get(&slot)?.tables.get(table)?.get(key)
    }

    /// Inserts or replaces a row; returns the previous row if any.
    pub fn put(&mut self, slot: u64, table: TableId, key: Key, row: Row) -> Option<Row> {
        let key_sz = key.size_estimate();
        let row_sz = row.size_estimate();
        let data = self.slot_mut(slot);
        let old = data.tables[table].insert(key, row);
        match &old {
            None => data.bytes += key_sz + row_sz,
            // Replace: the key stays resident, only the row size changes.
            Some(o) => data.bytes = (data.bytes + row_sz).saturating_sub(o.size_estimate()),
        }
        old
    }

    /// Removes a row; returns it if present.
    pub fn delete(&mut self, slot: u64, table: TableId, key: &Key) -> Option<Row> {
        let data = self.slots.get_mut(&slot)?;
        let old = data.tables.get_mut(table)?.remove(key)?;
        data.bytes = data
            .bytes
            .saturating_sub(key.size_estimate() + old.size_estimate());
        Some(old)
    }

    /// All rows in `table` within `slot` whose key starts with `prefix`.
    pub fn scan_prefix(&self, slot: u64, table: TableId, prefix: &Key) -> Vec<(Key, Row)> {
        let Some(data) = self.slots.get(&slot) else {
            return Vec::new();
        };
        let Some(tbl) = data.tables.get(table) else {
            return Vec::new();
        };
        tbl.range(prefix.clone()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect()
    }

    /// Removes and returns up to `budget_bytes` worth of rows from `slot`
    /// (for chunked migration). Returns `(rows, bytes, slot_now_empty)`.
    pub fn extract_chunk(
        &mut self,
        slot: u64,
        budget_bytes: usize,
    ) -> (Vec<(TableId, Key, Row)>, usize, bool) {
        let Some(data) = self.slots.get_mut(&slot) else {
            return (Vec::new(), 0, true);
        };
        let mut out = Vec::new();
        let mut moved = 0usize;
        'outer: for (tid, tbl) in data.tables.iter_mut().enumerate() {
            while let Some((k, _)) = tbl.first_key_value() {
                let k = k.clone();
                let Some(row) = tbl.remove(&k) else {
                    unreachable!("key just observed");
                };
                let sz = k.size_estimate() + row.size_estimate();
                moved += sz;
                data.bytes = data.bytes.saturating_sub(sz);
                out.push((tid, k, row));
                if moved >= budget_bytes {
                    break 'outer;
                }
            }
        }
        let empty = data.is_empty();
        if empty {
            self.slots.remove(&slot);
        }
        (out, moved, empty)
    }

    /// Installs rows delivered by a migration chunk.
    pub fn install_rows(&mut self, slot: u64, rows: Vec<(TableId, Key, Row)>) {
        for (tid, key, row) in rows {
            self.put(slot, tid, key, row);
        }
    }

    /// Removes an entire slot (used when committing a plan switch for an
    /// already-empty slot, or in tests). Drops any version counters still
    /// attributed to the slot — by commit time a migrated slot's history
    /// has already been handed to the destination.
    pub fn take_slot(&mut self, slot: u64) -> Option<SlotData> {
        self.versions.remove(&slot);
        self.slots.remove(&slot)
    }

    /// Estimated bytes held in `slot`.
    pub fn slot_bytes(&self, slot: u64) -> usize {
        self.slots.get(&slot).map_or(0, SlotData::bytes)
    }

    /// Estimated total resident bytes.
    pub fn total_bytes(&self) -> usize {
        self.slots.values().map(SlotData::bytes).sum()
    }

    /// Total rows resident.
    pub fn total_rows(&self) -> usize {
        self.slots.values().map(SlotData::rows).sum()
    }

    /// The slots with resident data.
    pub fn resident_slots(&self) -> impl Iterator<Item = u64> + '_ {
        self.slots.keys().copied()
    }

    /// Clones all rows of `table` within `slot` (warehouse export).
    pub fn export_slot_table(&self, slot: u64, table: TableId) -> Vec<(Key, Row)> {
        self.slots
            .get(&slot)
            .and_then(|d| d.tables.get(table))
            .map(|t| t.iter().map(|(k, r)| (k.clone(), r.clone())).collect())
            .unwrap_or_default()
    }

    /// Recomputes resident bytes from the actual rows (integrity audits).
    pub fn recompute_bytes(&self) -> usize {
        self.slots
            .values()
            .flat_map(|d| d.tables.iter())
            .flat_map(|t| t.iter())
            .map(|(k, r)| k.size_estimate() + r.size_estimate())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn row(v: i64) -> Row {
        Row(vec![Value::Int(v)])
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut p = PartitionStore::new(2);
        let k = Key::str("cart-1");
        assert!(p.put(5, 0, k.clone(), row(1)).is_none());
        assert_eq!(p.get(5, 0, &k), Some(&row(1)));
        // Different table: independent namespace.
        assert_eq!(p.get(5, 1, &k), None);
        assert_eq!(p.delete(5, 0, &k), Some(row(1)));
        assert_eq!(p.get(5, 0, &k), None);
    }

    #[test]
    fn put_replaces_and_returns_old() {
        let mut p = PartitionStore::new(1);
        let k = Key::str("x");
        p.put(0, 0, k.clone(), row(1));
        let old = p.put(0, 0, k.clone(), row(2));
        assert_eq!(old, Some(row(1)));
        assert_eq!(p.get(0, 0, &k), Some(&row(2)));
        assert_eq!(p.total_rows(), 1);
    }

    #[test]
    fn prefix_scan_returns_all_lines() {
        let mut p = PartitionStore::new(1);
        for i in 0..5 {
            p.put(3, 0, Key::str_int("cart-7", i), row(i));
        }
        p.put(3, 0, Key::str_int("cart-8", 0), row(99));
        let lines = p.scan_prefix(3, 0, &Key::str("cart-7"));
        assert_eq!(lines.len(), 5);
        assert!(lines.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn extract_chunk_respects_budget_and_empties_slot() {
        let mut p = PartitionStore::new(1);
        for i in 0..10 {
            p.put(1, 0, Key::int(i), row(i));
        }
        let total = p.slot_bytes(1);
        let (rows, bytes, empty) = p.extract_chunk(1, total / 2);
        assert!(!rows.is_empty());
        assert!(bytes >= total / 2);
        assert!(!empty);
        let (rows2, _, empty2) = p.extract_chunk(1, usize::MAX);
        assert!(empty2);
        assert_eq!(rows.len() + rows2.len(), 10);
        assert_eq!(p.total_rows(), 0);
        assert_eq!(p.slot_bytes(1), 0);
    }

    #[test]
    fn install_rows_restores_data() {
        let mut src = PartitionStore::new(2);
        for i in 0..6 {
            src.put(4, i % 2, Key::int(i as i64), row(i as i64));
        }
        let (rows, bytes, _) = src.extract_chunk(4, usize::MAX);
        let mut dst = PartitionStore::new(2);
        dst.install_rows(4, rows);
        assert_eq!(dst.total_rows(), 6);
        assert_eq!(dst.slot_bytes(4), bytes);
        for i in 0..6 {
            assert_eq!(dst.get(4, i % 2, &Key::int(i as i64)), Some(&row(i as i64)));
        }
    }

    #[test]
    fn byte_accounting_tracks_inserts_and_deletes() {
        let mut p = PartitionStore::new(1);
        assert_eq!(p.total_bytes(), 0);
        let k = Key::str("abcdef");
        p.put(0, 0, k.clone(), row(1));
        let b = p.total_bytes();
        assert!(b > 0);
        p.delete(0, 0, &k);
        assert_eq!(p.total_bytes(), 0);
    }

    #[test]
    fn access_counter() {
        let mut p = PartitionStore::new(1);
        p.record_access();
        p.record_access();
        assert_eq!(p.accesses(), 2);
    }

    #[test]
    fn version_counters_follow_writes_and_survive_handoff() {
        let mut src = PartitionStore::new(1);
        let k = Key::str("cart-1");
        // Off by default: bumping is a no-op (ISO sweep opt-in).
        assert_eq!(src.bump_version(2, 0, &k), 0);
        src.set_track_versions(true);
        assert_eq!(src.version_of(2, 0, &k), 0);
        assert_eq!(src.bump_version(2, 0, &k), 1);
        assert_eq!(src.bump_version(2, 0, &k), 2);
        assert_eq!(src.version_of(2, 0, &k), 2);
        // A tombstoned key keeps its chain alive.
        let dead = Key::str("gone");
        src.put(2, 0, dead.clone(), Row(vec![Value::Int(1)]));
        src.bump_version(2, 0, &dead);
        src.delete(2, 0, &dead);
        src.bump_version(2, 0, &dead);
        assert_eq!(src.version_of(2, 0, &dead), 2);
        // Chunk handoff: per-key transfer, then the slot-tail transfer
        // carries counters with no resident row.
        let mut dst = PartitionStore::new(1);
        dst.set_track_versions(true);
        let v = src.take_version(2, 0, &k).expect("tracked");
        dst.install_versions(2, vec![((0, k.clone()), v)]);
        dst.install_versions(2, src.take_slot_versions(2));
        assert_eq!(dst.version_of(2, 0, &k), 2);
        assert_eq!(dst.version_of(2, 0, &dead), 2);
        assert_eq!(src.version_of(2, 0, &k), 0);
        // Migration re-install must not advance the chain.
        dst.install_rows(2, vec![(0, k.clone(), Row(vec![Value::Int(9)]))]);
        assert_eq!(dst.version_of(2, 0, &k), 2);
        // Disabling clears state.
        dst.set_track_versions(false);
        assert_eq!(dst.version_of(2, 0, &k), 0);
    }
}
