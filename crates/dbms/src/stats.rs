//! Distribution statistics: the §8.1 uniformity analysis.
//!
//! The paper validates the uniform-workload assumption by measuring, over
//! 30 partitions and 24 hours, that the most-accessed partition receives
//! only 10.15% more accesses than average (σ = 2.62%) and the largest
//! partition holds only 0.185% more data than average (σ = 0.099%). These
//! helpers compute the same summary over a cluster's partition report.

/// Summary of how evenly a quantity is spread across partitions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSummary {
    /// Number of partitions measured.
    pub partitions: usize,
    /// Mean of the quantity.
    pub mean: f64,
    /// Maximum observed value.
    pub max: f64,
    /// `(max - mean) / mean`, the paper's "most-X partition receives Y%
    /// more than average" figure.
    pub max_over_mean: f64,
    /// Standard deviation relative to the mean.
    pub stddev_over_mean: f64,
}

impl SkewSummary {
    /// Computes the summary over per-partition values.
    ///
    /// Returns `None` for empty input, a zero-mean distribution (skew
    /// relative to a zero mean is undefined), or any non-finite input —
    /// a `Some` summary never carries NaN/infinite fields.
    pub fn from_values(values: &[f64]) -> Option<SkewSummary> {
        if values.is_empty() || values.iter().any(|v| !v.is_finite()) {
            return None;
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        if mean == 0.0 || !mean.is_finite() {
            return None;
        }
        let max = values.iter().copied().fold(f64::MIN, f64::max);
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Some(SkewSummary {
            partitions: values.len(),
            mean,
            max,
            max_over_mean: (max - mean) / mean,
            stddev_over_mean: var.sqrt() / mean,
        })
    }
}

impl SkewSummary {
    /// Flattens the summary into `(name, value)` gauge entries under
    /// `prefix` (e.g. `skew.access.max_over_mean`) — the wire format the
    /// detailed simulator records into the telemetry metrics registry and
    /// `table0_uniformity` reads back.
    pub fn gauge_entries(&self, prefix: &str) -> Vec<(String, f64)> {
        #[allow(clippy::cast_precision_loss)] // partition counts are tiny
        let partitions = self.partitions as f64;
        vec![
            (format!("{prefix}.partitions"), partitions),
            (format!("{prefix}.mean"), self.mean),
            (format!("{prefix}.max"), self.max),
            (format!("{prefix}.max_over_mean"), self.max_over_mean),
            (format!("{prefix}.stddev_over_mean"), self.stddev_over_mean),
        ]
    }
}

impl std::fmt::Display for SkewSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} partitions: max +{:.3}% over mean, stddev {:.3}% of mean",
            self.partitions,
            self.max_over_mean * 100.0,
            self.stddev_over_mean * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests use exact values and tiny ids
    use super::*;

    #[test]
    fn uniform_distribution_has_zero_skew() {
        let s = SkewSummary::from_values(&[10.0; 8]).unwrap();
        assert_eq!(s.max_over_mean, 0.0);
        assert_eq!(s.stddev_over_mean, 0.0);
        assert_eq!(s.partitions, 8);
    }

    #[test]
    fn skewed_distribution_is_reported() {
        // One partition with double the load of the others.
        let mut v = vec![10.0; 9];
        v.push(20.0);
        let s = SkewSummary::from_values(&v).unwrap();
        assert!((s.mean - 11.0).abs() < 1e-9);
        assert!((s.max_over_mean - 9.0 / 11.0).abs() < 1e-9);
        assert!(s.stddev_over_mean > 0.0);
    }

    #[test]
    fn empty_and_zero_inputs_are_none() {
        assert!(SkewSummary::from_values(&[]).is_none());
        assert!(SkewSummary::from_values(&[0.0, 0.0]).is_none());
        // Mixed-sign inputs that cancel to a zero mean are equally
        // undefined, not a division by zero.
        assert!(SkewSummary::from_values(&[-1.0, 1.0]).is_none());
    }

    #[test]
    fn single_value_input_has_zero_skew() {
        let s = SkewSummary::from_values(&[42.0]).unwrap();
        assert_eq!(s.partitions, 1);
        assert_eq!(s.mean, 42.0);
        assert_eq!(s.max, 42.0);
        assert_eq!(s.max_over_mean, 0.0);
        assert_eq!(s.stddev_over_mean, 0.0);
    }

    #[test]
    fn all_equal_input_has_zero_skew_and_finite_fields() {
        let s = SkewSummary::from_values(&[3.5; 30]).unwrap();
        assert_eq!(s.partitions, 30);
        assert_eq!(s.max_over_mean, 0.0);
        assert_eq!(s.stddev_over_mean, 0.0);
        assert!(s.mean.is_finite() && s.max.is_finite());
    }

    #[test]
    fn non_finite_inputs_are_none_not_nan() {
        // Previously a NaN input slipped past the zero-mean guard and
        // produced a summary whose every field was NaN.
        assert!(SkewSummary::from_values(&[1.0, f64::NAN]).is_none());
        assert!(SkewSummary::from_values(&[f64::INFINITY, 1.0]).is_none());
        assert!(SkewSummary::from_values(&[f64::NEG_INFINITY]).is_none());
    }

    #[test]
    fn gauge_entries_flatten_all_fields() {
        let s = SkewSummary::from_values(&[10.0, 10.0, 20.0]).unwrap();
        let entries = s.gauge_entries("skew.access");
        assert_eq!(entries.len(), 5);
        assert!(entries.iter().all(|(k, _)| k.starts_with("skew.access.")));
        let max = entries
            .iter()
            .find(|(k, _)| k == "skew.access.max")
            .unwrap();
        assert_eq!(max.1, 20.0);
    }

    #[test]
    fn display_is_percentage_based() {
        let s = SkewSummary::from_values(&[1.0, 1.0, 1.1]).unwrap();
        let text = s.to_string();
        assert!(text.contains("3 partitions"));
        assert!(text.contains('%'));
    }
}
