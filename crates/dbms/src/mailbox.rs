//! Bounded single-producer/single-consumer mailboxes.
//!
//! The sharded engine routes every command from the coordinator to an
//! executor shard (and every reply back) through one of these rings —
//! the deterministic message-passing layer of the shard-per-core design.
//! Each mailbox has exactly one producer and one consumer, so the only
//! cross-thread protocol is the head/tail handoff:
//!
//! * the producer writes the payload into its slot, then publishes it by
//!   storing `tail + 1` with `Release`;
//! * the consumer observes the new tail with `Acquire`, which makes the
//!   payload write visible (the CON-04 happens-before edge), takes the
//!   payload, and retires the slot by storing `head + 1` with `Release`;
//! * the producer observes the retired head with `Acquire` before
//!   reusing the slot, so a slot is never written while still occupied.
//!
//! Slots are take-once `Mutex<Option<T>>` cells (the same safe-code
//! idiom as the vendored pool's result slots): under the SPSC discipline
//! the locks are never contended, and every primitive comes from
//! [`crate::sync`], so the whole type swaps to loom under `cfg(loom)`
//! and the handoff is model-checked in `tests/loom_models.rs`.

use crate::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};

/// A bounded SPSC channel of capacity fixed at construction.
#[derive(Debug)]
pub struct Mailbox<T> {
    slots: Box<[Mutex<Option<T>>]>,
    /// Next position to read; written only by the consumer.
    head: AtomicUsize,
    /// Next position to write; written only by the producer.
    tail: AtomicUsize,
    closed: AtomicBool,
}

/// Why a [`Mailbox::try_send`] did not accept the value (returned inside
/// so the caller keeps ownership).
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The ring is at capacity; retry after the consumer drains.
    Full(T),
    /// The mailbox was closed; the value will never be delivered.
    Closed(T),
}

/// Why a [`Mailbox::try_recv`] returned no value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now.
    Empty,
    /// Closed and fully drained: no value will ever arrive again.
    Disconnected,
}

impl<T> Mailbox<T> {
    /// Creates a mailbox holding at most `capacity` in-flight values.
    ///
    /// # Panics
    /// Panics on zero capacity.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "mailbox capacity must be positive");
        Mailbox {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// Maximum number of in-flight values.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Values currently queued (approximate under concurrent use).
    pub fn len(&self) -> usize {
        self.tail
            .load(Ordering::Acquire)
            .wrapping_sub(self.head.load(Ordering::Acquire))
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Records the ring's instantaneous depth (queued values) and
    /// occupancy (depth / capacity) as `<name>.depth` and
    /// `<name>.occupancy` histograms in the calling thread's metrics
    /// registry. Registry-only — no event is emitted — so sampling never
    /// perturbs the JSONL trace. Callers gate on their own runtime-gauge
    /// flag; this method just measures.
    #[cfg(feature = "telemetry")]
    pub fn record_depth(&self, name: &str) {
        let depth = self.len();
        pstore_telemetry::with_registry(|r| {
            r.record_histogram(&format!("{name}.depth"), depth as f64);
            r.record_histogram(
                &format!("{name}.occupancy"),
                depth as f64 / self.capacity() as f64,
            );
        });
    }

    /// Marks the mailbox closed. Queued values remain receivable; new
    /// sends are refused. Idempotent, callable from either side.
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    /// Whether [`close`](Self::close) has been called.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    /// [`TrySendError::Full`] at capacity, [`TrySendError::Closed`] after
    /// close; both hand the value back.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        if self.is_closed() {
            return Err(TrySendError::Closed(value));
        }
        let tail = self.tail.load(Ordering::Relaxed); // producer-owned
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= self.slots.len() {
            return Err(TrySendError::Full(value));
        }
        *lock_slot(&self.slots[tail % self.slots.len()]) = Some(value);
        // Publish: the payload write above happens-before this Release
        // store, and the consumer's Acquire load of `tail` completes the
        // CON-04 handoff edge.
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
        Ok(())
    }

    /// Attempts to dequeue without blocking.
    ///
    /// # Errors
    /// [`TryRecvError::Empty`] when nothing is queued,
    /// [`TryRecvError::Disconnected`] when closed and drained.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let head = self.head.load(Ordering::Relaxed); // consumer-owned
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return if self.is_closed() {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            };
        }
        let value = lock_slot(&self.slots[head % self.slots.len()]).take();
        // Retire the slot before the producer may reuse it.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        match value {
            Some(v) => Ok(v),
            // Unreachable under the SPSC discipline: a published slot is
            // always occupied. Treat as drained rather than panicking.
            None => Err(TryRecvError::Empty),
        }
    }

    /// Blocking send: spins (with escalating backoff) until space frees
    /// up.
    ///
    /// # Errors
    /// Hands the value back if the mailbox closes while waiting. Not for
    /// use inside loom models — the wait loop is unbounded; models use
    /// [`try_send`](Self::try_send) with bounded polls.
    pub fn send(&self, mut value: T) -> Result<(), T> {
        let mut spins = 0u32;
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(v),
                Err(TrySendError::Full(v)) => value = v,
            }
            crate::sync::backoff(spins);
            spins = spins.saturating_add(1);
        }
    }

    /// Blocking receive: spins (with escalating backoff) until a value
    /// arrives; `None` once the mailbox is closed and drained. Not for
    /// use inside loom models — the wait loop is unbounded; models use
    /// [`try_recv`](Self::try_recv) with bounded polls.
    pub fn recv(&self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            match self.try_recv() {
                Ok(v) => return Some(v),
                Err(TryRecvError::Disconnected) => return None,
                Err(TryRecvError::Empty) => {}
            }
            crate::sync::backoff(spins);
            spins = spins.saturating_add(1);
        }
    }
}

/// Locks a slot, riding through poison: a panicking shard is reported
/// via its reply mailbox, and the payload `Option` stays state-coherent
/// regardless (a take-once cell has no partially-updated state).
fn lock_slot<T>(slot: &Mutex<Option<T>>) -> crate::sync::MutexGuard<'_, Option<T>> {
    match slot.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

#[cfg(all(test, not(loom)))]
mod tests {
    use super::*;
    use crate::sync::Arc;

    #[test]
    fn fifo_within_capacity() {
        let mb = Mailbox::new(4);
        for i in 0..4 {
            mb.try_send(i).unwrap();
        }
        assert_eq!(mb.len(), 4);
        assert!(matches!(mb.try_send(9), Err(TrySendError::Full(9))));
        for i in 0..4 {
            assert_eq!(mb.try_recv(), Ok(i));
        }
        assert_eq!(mb.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn close_refuses_sends_but_drains_reads() {
        let mb = Mailbox::new(2);
        mb.try_send(1).unwrap();
        mb.close();
        assert!(matches!(mb.try_send(2), Err(TrySendError::Closed(2))));
        assert_eq!(mb.try_recv(), Ok(1));
        assert_eq!(mb.try_recv(), Err(TryRecvError::Disconnected));
        assert_eq!(mb.recv(), None);
    }

    #[test]
    fn wraparound_reuses_slots() {
        let mb = Mailbox::new(2);
        for round in 0..100 {
            mb.try_send(round).unwrap();
            assert_eq!(mb.try_recv(), Ok(round));
        }
        assert!(mb.is_empty());
    }

    #[test]
    fn cross_thread_handoff_delivers_everything_in_order() {
        let mb = Arc::new(Mailbox::new(8));
        let tx = Arc::clone(&mb);
        let producer = crate::sync::thread::spawn(move || {
            for i in 0..10_000u64 {
                tx.send(i).unwrap();
            }
            tx.close();
        });
        let mut expect = 0u64;
        while let Some(v) = mb.recv() {
            assert_eq!(v, expect);
            expect += 1;
        }
        assert_eq!(expect, 10_000);
        producer.join().unwrap();
    }
}
