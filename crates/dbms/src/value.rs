//! Typed values, rows and keys for the in-memory storage engine.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A typed column value.
#[derive(Debug, Clone, PartialEq, PartialOrd, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float (prices, weights). Not allowed in keys.
    Float(f64),
    /// UTF-8 string (identifiers, SKUs, status fields).
    Str(String),
}

impl Value {
    /// Estimated in-memory size in bytes, used for migration-chunk
    /// accounting and data-distribution statistics.
    pub fn size_estimate(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Str(s) => 24 + s.len(),
        }
    }

    /// Serialises the value into a stable byte form for hashing.
    pub fn hash_bytes(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => out.push(0),
            Value::Bool(b) => out.extend_from_slice(&[1, *b as u8]),
            Value::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            Value::Float(f) => {
                out.push(3);
                out.extend_from_slice(&f.to_bits().to_le_bytes());
            }
            Value::Str(s) => {
                out.push(4);
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// A primary or partitioning key: an ordered tuple of key-safe values.
///
/// Floats are rejected from keys (no total order / hash stability).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Key(Vec<KeyValue>);

/// A value usable inside a key.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KeyValue {
    /// Integer key component.
    Int(i64),
    /// String key component.
    Str(String),
}

impl KeyValue {
    fn hash_bytes(&self, out: &mut Vec<u8>) {
        match self {
            KeyValue::Int(i) => {
                out.push(2);
                out.extend_from_slice(&i.to_le_bytes());
            }
            KeyValue::Str(s) => {
                out.push(4);
                // Keys are tiny; the serialised format caps strings at 4 GiB.
                #[allow(clippy::cast_possible_truncation)]
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
        }
    }

    /// Runs `f` over the stable hash bytes of this component without
    /// heap-allocating for the common case (integer keys and strings up to
    /// 59 bytes fit a stack buffer). Produces exactly the bytes
    /// [`Key::routing_bytes`] would for a single-component key — the
    /// allocation-free routing path of the per-transaction hot loop.
    pub fn with_hash_bytes<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        match self {
            KeyValue::Int(i) => {
                let mut buf = [0u8; 9];
                buf[0] = 2;
                buf[1..9].copy_from_slice(&i.to_le_bytes());
                f(&buf)
            }
            KeyValue::Str(s) if s.len() <= 59 => {
                let mut buf = [0u8; 64];
                buf[0] = 4;
                // Keys are tiny; the serialised format caps strings at 4 GiB.
                #[allow(clippy::cast_possible_truncation)]
                buf[1..5].copy_from_slice(&(s.len() as u32).to_le_bytes());
                buf[5..5 + s.len()].copy_from_slice(s.as_bytes());
                f(&buf[..5 + s.len()])
            }
            KeyValue::Str(_) => {
                let mut out = Vec::new();
                self.hash_bytes(&mut out);
                f(&out)
            }
        }
    }

    /// Estimated in-memory size in bytes.
    pub fn size_estimate(&self) -> usize {
        match self {
            KeyValue::Int(_) => 8,
            KeyValue::Str(s) => 24 + s.len(),
        }
    }

    /// Converts back into a column [`Value`].
    pub fn to_value(&self) -> Value {
        match self {
            KeyValue::Int(i) => Value::Int(*i),
            KeyValue::Str(s) => Value::Str(s.clone()),
        }
    }
}

impl Key {
    /// Builds a key from components.
    ///
    /// # Panics
    /// Panics if `parts` is empty.
    pub fn new(parts: Vec<KeyValue>) -> Self {
        assert!(!parts.is_empty(), "keys must have at least one component");
        Key(parts)
    }

    /// Single-component string key.
    pub fn str(s: impl Into<String>) -> Self {
        Key(vec![KeyValue::Str(s.into())])
    }

    /// Single-component integer key.
    pub fn int(i: i64) -> Self {
        Key(vec![KeyValue::Int(i)])
    }

    /// Composite key of a string and an integer (e.g. `(cart_id, line)`).
    pub fn str_int(s: impl Into<String>, i: i64) -> Self {
        Key(vec![KeyValue::Str(s.into()), KeyValue::Int(i)])
    }

    /// The key components.
    pub fn parts(&self) -> &[KeyValue] {
        &self.0
    }

    /// The first component — by convention the partitioning-key column for
    /// the B2W schema (cart id, checkout id, SKU).
    pub fn routing_part(&self) -> &KeyValue {
        &self.0[0]
    }

    /// Stable bytes of the *first* component, used for partition routing.
    pub fn routing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.0[0].hash_bytes(&mut out);
        out
    }

    /// Whether `self` starts with the components of `prefix`.
    pub fn starts_with(&self, prefix: &Key) -> bool {
        self.0.len() >= prefix.0.len() && self.0[..prefix.0.len()] == prefix.0[..]
    }

    /// Estimated in-memory size in bytes.
    pub fn size_estimate(&self) -> usize {
        self.0.iter().map(KeyValue::size_estimate).sum()
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            match p {
                KeyValue::Int(v) => write!(f, "{v}")?,
                KeyValue::Str(v) => write!(f, "'{v}'")?,
            }
        }
        write!(f, ")")
    }
}

/// A row: a tuple of column values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Estimated in-memory size in bytes.
    pub fn size_estimate(&self) -> usize {
        16 + self.0.iter().map(Value::size_estimate).sum::<usize>()
    }

    /// Column accessor.
    pub fn get(&self, col: usize) -> &Value {
        &self.0[col]
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the row has no columns.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_ordering_supports_prefix_scans() {
        let a = Key::str_int("cart-1", 1);
        let b = Key::str_int("cart-1", 2);
        let c = Key::str_int("cart-2", 1);
        assert!(a < b && b < c);
        let prefix = Key::str("cart-1");
        assert!(a.starts_with(&prefix));
        assert!(b.starts_with(&prefix));
        assert!(!c.starts_with(&prefix));
    }

    #[test]
    fn routing_bytes_depend_only_on_first_component() {
        let a = Key::str_int("cart-1", 1);
        let b = Key::str_int("cart-1", 99);
        assert_eq!(a.routing_bytes(), b.routing_bytes());
        let c = Key::str_int("cart-2", 1);
        assert_ne!(a.routing_bytes(), c.routing_bytes());
    }

    #[test]
    fn value_size_estimates_are_sane() {
        assert_eq!(Value::Int(7).size_estimate(), 8);
        assert!(Value::Str("abcdef".into()).size_estimate() > 6);
        let row = Row(vec![Value::Int(1), Value::Str("x".into())]);
        assert!(row.size_estimate() > 8);
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Str("s".into()).as_str(), Some("s"));
        assert_eq!(Value::Int(5).as_str(), None);
    }

    #[test]
    fn hash_bytes_distinguish_types() {
        let mut a = Vec::new();
        Value::Int(1).hash_bytes(&mut a);
        let mut b = Vec::new();
        Value::Bool(true).hash_bytes(&mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Key::str_int("c", 2).to_string(), "('c', 2)");
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_key_rejected() {
        let _ = Key::new(vec![]);
    }
}
