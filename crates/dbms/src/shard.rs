//! Executor shards: the per-thread state and message protocol of the
//! sharded execution engine.
//!
//! The slot space is partitioned across `S` shards by *local partition
//! index*: shard `s` owns every partition whose local index `l`
//! satisfies `l % S == s`, on every node. Because `local_of_slot` is a
//! pure hash of the slot id — independent of the slot→node assignment —
//! a slot's local index never changes, and a migrating slot's source and
//! destination partitions share it. Consequently settled transactions,
//! migrating transactions (source + destination), and chunk moves are
//! all single-shard operations: no cross-thread locking on the execute
//! path. Only global structural changes (node allocation, plan swap on
//! commit, quiesced snapshot reads) cross shards, and those go through
//! the [`FenceOp`] protocol driven by the coordinator in
//! [`crate::cluster::Cluster`].
//!
//! Everything in this module is pure state manipulation: shard threads
//! emit **no telemetry** (they carry no thread-local sink) and draw no
//! randomness. All observable effects travel back to the coordinator as
//! [`Reply`] values, which is what makes the engine's output
//! byte-identical at every shard count.

use crate::catalog::TableId;
use crate::partition::PartitionStore;
use crate::txn::{KeyAccess, Procedure, RwSet, TxnCtx, TxnError, TxnOutput};
use crate::value::{Key, Row};
use std::collections::{HashMap, HashSet};

/// The outcome of one executed transaction, as recorded by the shard
/// that ran it. Fates flow back to the coordinator in submission order;
/// the coordinator folds them into cluster statistics and (for sampled
/// transactions) telemetry, so the merge is deterministic regardless of
/// shard scheduling.
#[derive(Debug)]
pub struct TxnFate {
    /// The procedure's result.
    pub result: Result<TxnOutput, TxnError>,
    /// Whether any access resolved against the migration destination.
    pub touched_dest: bool,
    /// The recorded read/write set.
    pub rwset: RwSet,
    /// Procedure name (for per-procedure counters).
    pub proc: &'static str,
    /// The routing slot the transaction executed on.
    pub slot: u64,
    /// Whether the slot was in-flight (migrating) at execution time.
    pub migrating: bool,
    /// Key-level `(table, key, version-observed)` reads, in program
    /// order. Empty unless the transaction was captured (sampled with
    /// version tracking on).
    pub key_reads: Vec<KeyAccess>,
    /// Key-level `(table, key, version-installed)` writes, in program
    /// order. Empty unless the transaction was captured.
    pub key_writes: Vec<KeyAccess>,
}

/// A shard panicked while executing a command. Carries the shard index
/// and the panic payload, so sweep-level fault attribution
/// (`Sweep::run_fallible`) can name the culprit exactly like a
/// panicking cell.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPanic {
    /// Index of the shard whose thread panicked.
    pub shard: u32,
    /// Stringified panic payload.
    pub message: String,
}

impl std::fmt::Display for ShardPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "executor shard {} panicked: {}",
            self.shard, self.message
        )
    }
}

impl std::error::Error for ShardPanic {}

/// A global operation executed by every shard at a fence point, while
/// the shard is quiesced (its command queue drained to the fence). The
/// result rides back on the [`Reply::FenceAck`].
#[derive(Debug, Clone)]
pub enum FenceOp {
    /// Grow the per-shard store matrix to `count` nodes.
    EnsureNodes(u32),
    /// Truncate to `keep` nodes (scale-in commit; dropped stores must be
    /// empty).
    DropNodes(u32),
    /// Per-partition report: `(node, local, accesses, bytes, rows)`.
    Report,
    /// Merged per-slot access counters across this shard's partitions.
    SlotAccessCounts,
    /// Reset every per-slot access counter (new monitoring window).
    ResetSlotAccesses,
    /// Resident bytes for each `(slot, node, local)` this shard owns.
    SlotBytes(Vec<(u64, u32, u32)>),
    /// Snapshot of every row of one table held by this shard.
    ExportTable(TableId),
    /// Integrity snapshot: resident slots + byte accounting per store.
    Integrity,
    /// Per-shard execution counters for telemetry attribution.
    ShardReport,
    /// Enable or disable per-key version counting in every store this
    /// shard owns (the ISO-01..03 serializability sweep).
    TrackVersions(bool),
    /// Pure quiescence: drain, acknowledge, hold.
    Noop,
}

/// Data returned from a [`FenceOp`].
#[derive(Debug)]
pub enum FenceData {
    /// No payload.
    None,
    /// `(node, local, accesses, bytes, rows)` per owned partition.
    Report(Vec<(u32, u32, u64, usize, usize)>),
    /// `(slot, count)` access pairs, merged across owned partitions.
    SlotCounts(Vec<(u64, u64)>),
    /// Resident bytes per requested slot, in request order.
    SlotBytes(Vec<usize>),
    /// Exported `(key, row)` pairs (unsorted; the coordinator merges).
    Rows(Vec<(Key, Row)>),
    /// Integrity snapshot per owned store.
    Integrity(Vec<StoreIntegrity>),
    /// Per-shard execution counters.
    ShardReport {
        /// Transactions executed by this shard.
        txns: u64,
        /// Wall-clock microseconds spent applying commands (0 inline).
        busy_us: u64,
    },
}

/// Integrity-audit snapshot of one partition store.
#[derive(Debug)]
pub struct StoreIntegrity {
    /// Owning node.
    pub node: u32,
    /// Local partition index.
    pub local: u32,
    /// Slots with resident data.
    pub resident_slots: Vec<u64>,
    /// Incrementally-maintained byte estimate.
    pub claimed_bytes: usize,
    /// Bytes recomputed from the actual rows.
    pub actual_bytes: usize,
}

/// A command sent from the coordinator to one executor shard.
pub enum Command {
    /// Execute a transaction on this shard's partition of `slot`.
    Execute {
        /// The procedure to run.
        proc: Box<dyn Procedure + Send>,
        /// Resolved routing slot.
        slot: u64,
        /// Node currently serving the slot.
        node: u32,
        /// The slot's local partition index.
        local: u32,
        /// `(from, to)` when the slot is in-flight.
        in_flight: Option<(u32, u32)>,
        /// Record a key-level read/write history for this transaction
        /// (sampled serializability capture).
        capture: bool,
    },
    /// Move up to `budget` bytes of `slot` from `from` to `to`.
    Chunk {
        /// The migrating slot.
        slot: u64,
        /// Sending node.
        from: u32,
        /// Receiving node.
        to: u32,
        /// The slot's local partition index.
        local: u32,
        /// Chunk byte budget.
        budget: usize,
    },
    /// Quiesce, run `op`, acknowledge, and hold until the coordinator
    /// releases `epoch` on the fence gate.
    Fence {
        /// The fence epoch being entered.
        epoch: u64,
        /// The operation to run while quiesced.
        op: FenceOp,
    },
}

impl std::fmt::Debug for Command {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Command::Execute {
                slot, node, local, ..
            } => f
                .debug_struct("Execute")
                .field("slot", slot)
                .field("node", node)
                .field("local", local)
                .finish_non_exhaustive(),
            Command::Chunk { slot, from, to, .. } => f
                .debug_struct("Chunk")
                .field("slot", slot)
                .field("from", from)
                .field("to", to)
                .finish_non_exhaustive(),
            Command::Fence { epoch, .. } => f
                .debug_struct("Fence")
                .field("epoch", epoch)
                .finish_non_exhaustive(),
        }
    }
}

/// A reply from an executor shard to the coordinator. Replies preserve
/// the per-shard FIFO order of their commands.
#[derive(Debug)]
pub enum Reply {
    /// Outcome of an [`Command::Execute`].
    Fate(TxnFate),
    /// Outcome of a [`Command::Chunk`]: `(rows, bytes, emptied)`.
    Chunk {
        /// Rows relocated.
        rows: usize,
        /// Bytes relocated.
        bytes: usize,
        /// Whether the slot is now fully moved.
        emptied: bool,
    },
    /// Fence acknowledged: the shard is quiesced and holding.
    FenceAck {
        /// The acknowledged epoch.
        epoch: u64,
        /// The fence operation's result.
        data: FenceData,
    },
    /// The shard panicked; it has shut down after sending this.
    Panicked {
        /// Stringified panic payload.
        message: String,
    },
}

/// The storage state owned by one executor shard: the partitions with
/// local index `l ≡ shard (mod num_shards)` on every node, plus the
/// moved-key sets of in-flight slots it serves.
#[derive(Debug)]
pub struct ShardState {
    shard: u32,
    num_shards: u32,
    partitions_per_node: u32,
    num_tables: usize,
    num_slots: u64,
    /// `stores[node][k]` is the partition with local index
    /// `k * num_shards + shard` on `node`.
    stores: Vec<Vec<PartitionStore>>,
    /// Moved-key sets for in-flight slots owned by this shard.
    moved: HashMap<u64, HashSet<(TableId, Key)>>,
    /// Transactions executed by this shard (attribution counter).
    txns: u64,
    /// Whether per-key version counting is on (applied to every store,
    /// including ones created by later `EnsureNodes` growth).
    track_versions: bool,
}

impl ShardState {
    /// Creates the state of shard `shard` of `num_shards`, covering
    /// `nodes` initial nodes.
    pub fn new(
        shard: u32,
        num_shards: u32,
        partitions_per_node: u32,
        num_tables: usize,
        num_slots: u64,
        nodes: u32,
    ) -> Self {
        assert!(num_shards > 0 && shard < num_shards);
        let mut state = ShardState {
            shard,
            num_shards,
            partitions_per_node,
            num_tables,
            num_slots,
            stores: Vec::new(),
            moved: HashMap::new(),
            txns: 0,
            track_versions: false,
        };
        state.ensure_nodes(nodes);
        state
    }

    /// Enables or disables per-key version counting across every store
    /// this shard owns (current and future).
    pub fn set_track_versions(&mut self, on: bool) {
        self.track_versions = on;
        for store in self.stores.iter_mut().flatten() {
            store.set_track_versions(on);
        }
    }

    /// Number of local partition indices this shard owns per node.
    fn stores_per_node(&self) -> u32 {
        // Count of l in [0, P) with l % S == shard.
        let p = self.partitions_per_node;
        let s = self.num_shards;
        (p / s) + u32::from(p % s > self.shard)
    }

    /// The store index of local partition `local` (which must belong to
    /// this shard: `local % num_shards == shard`).
    fn store_index(&self, local: u32) -> usize {
        debug_assert_eq!(local % self.num_shards, self.shard);
        (local / self.num_shards) as usize
    }

    /// Mutable access to the store serving `(node, local)`.
    fn store_mut(&mut self, node: u32, local: u32) -> &mut PartitionStore {
        let k = self.store_index(local);
        &mut self.stores[node as usize][k]
    }

    /// Grows the store matrix to `count` nodes.
    pub fn ensure_nodes(&mut self, count: u32) {
        let per_node = self.stores_per_node() as usize;
        while self.stores.len() < count as usize {
            self.stores.push(
                (0..per_node)
                    .map(|_| {
                        let mut store = PartitionStore::new(self.num_tables);
                        store.set_track_versions(self.track_versions);
                        store
                    })
                    .collect(),
            );
        }
    }

    /// Truncates to `keep` nodes; the dropped stores must be empty.
    pub fn drop_nodes(&mut self, keep: u32) {
        if (keep as usize) < self.stores.len() {
            for node in &self.stores[keep as usize..] {
                for store in node {
                    debug_assert_eq!(store.total_rows(), 0, "dropping a non-empty node");
                }
            }
            self.stores.truncate(keep as usize);
        }
    }

    /// Executes one transaction on this shard.
    pub fn execute(
        &mut self,
        proc: &dyn Procedure,
        slot: u64,
        node: u32,
        local: u32,
        in_flight: Option<(u32, u32)>,
        capture: bool,
    ) -> TxnFate {
        self.txns += 1;
        let num_slots = self.num_slots;
        let (result, touched_dest, rwset, key_reads, key_writes) = match in_flight {
            None => {
                let store = self.store_mut(node, local);
                store.record_slot_access(slot);
                let mut ctx = TxnCtx::settled(slot, num_slots, store);
                ctx.set_capture(capture);
                let result = proc.execute(&mut ctx);
                (
                    result,
                    ctx.touched_dest,
                    ctx.rwset,
                    ctx.key_reads,
                    ctx.key_writes,
                )
            }
            Some((from, to)) => {
                debug_assert_ne!(from, to);
                let k = self.store_index(local);
                let (src, dst) = two_nodes(&mut self.stores, from as usize, to as usize);
                let source = &mut src[k];
                source.record_slot_access(slot);
                let dest = &mut dst[k];
                // The moved set may not exist yet if no chunk of this
                // slot has run; an empty set routes everything to the
                // source, exactly like the serial engine. `HashSet::new`
                // does not allocate, so the fallback is free.
                let empty = HashSet::new();
                let moved = self.moved.get(&slot).unwrap_or(&empty);
                let mut ctx = TxnCtx::migrating(slot, num_slots, source, dest, moved);
                ctx.set_capture(capture);
                let result = proc.execute(&mut ctx);
                (
                    result,
                    ctx.touched_dest,
                    ctx.rwset,
                    ctx.key_reads,
                    ctx.key_writes,
                )
            }
        };
        TxnFate {
            result,
            touched_dest,
            rwset,
            proc: proc.name(),
            slot,
            migrating: in_flight.is_some(),
            key_reads,
            key_writes,
        }
    }

    /// Moves up to `budget` bytes of `slot` from `from` to `to`,
    /// maintaining the moved-key set. Returns `(rows, bytes, emptied)`;
    /// on `emptied` the moved set is retired (the coordinator flips
    /// routing).
    pub fn migrate_chunk(
        &mut self,
        slot: u64,
        from: u32,
        to: u32,
        local: u32,
        budget: usize,
    ) -> (usize, usize, bool) {
        let k = self.store_index(local);
        let moved = self.moved.entry(slot).or_default();
        let (src, dst) = two_nodes(&mut self.stores, from as usize, to as usize);
        let (rows, bytes, emptied) = src[k].extract_chunk(slot, budget.max(1));
        for (tid, key, _) in &rows {
            moved.insert((*tid, key.clone()));
        }
        // A moving key's version counter travels with it so the sampled
        // history stays one chain across the migration; when the slot
        // empties, tombstone-only counters follow in one batch.
        if self.track_versions {
            let versions: Vec<((TableId, Key), u64)> = rows
                .iter()
                .filter_map(|(tid, key, _)| {
                    src[k]
                        .take_version(slot, *tid, key)
                        .map(|v| ((*tid, key.clone()), v))
                })
                .collect();
            dst[k].install_versions(slot, versions);
            if emptied {
                let tail = src[k].take_slot_versions(slot);
                dst[k].install_versions(slot, tail);
            }
        }
        let n_rows = rows.len();
        dst[k].install_rows(slot, rows);
        if emptied {
            self.moved.remove(&slot);
        }
        (n_rows, bytes, emptied)
    }

    /// Transactions executed by this shard so far.
    pub fn txns(&self) -> u64 {
        self.txns
    }

    /// Per-partition report: `(node, local, accesses, bytes, rows)` for
    /// every store this shard owns, in (node, store) order.
    #[allow(clippy::cast_possible_truncation)] // node/partition indices fit u32
    pub fn report(&self) -> Vec<(u32, u32, u64, usize, usize)> {
        let mut out = Vec::new();
        for (n, node) in self.stores.iter().enumerate() {
            for (k, store) in node.iter().enumerate() {
                let local = k as u32 * self.num_shards + self.shard;
                out.push((
                    n as u32,
                    local,
                    store.accesses(),
                    store.total_bytes(),
                    store.total_rows(),
                ));
            }
        }
        out
    }

    /// Per-slot access counts merged across this shard's partitions,
    /// sorted by slot id.
    pub fn slot_counts(&self) -> Vec<(u64, u64)> {
        let mut merged: HashMap<u64, u64> = HashMap::new();
        for store in self.stores.iter().flatten() {
            for (slot, count) in store.slot_accesses() {
                *merged.entry(slot).or_default() += count;
            }
        }
        let mut out: Vec<(u64, u64)> = merged.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Resets every per-slot access counter (new monitoring window).
    pub fn reset_slot_accesses(&mut self) {
        for store in self.stores.iter_mut().flatten() {
            store.reset_slot_accesses();
        }
    }

    /// Resident bytes of `slot` on `(node, local)`.
    pub fn slot_bytes_at(&self, slot: u64, node: u32, local: u32) -> usize {
        let k = self.store_index(local);
        self.stores[node as usize][k].slot_bytes(slot)
    }

    /// Clones every row of `table` held by this shard (unsorted).
    pub fn export_table(&self, table: TableId) -> Vec<(Key, Row)> {
        let mut out = Vec::new();
        for store in self.stores.iter().flatten() {
            for slot in store.resident_slots().collect::<Vec<_>>() {
                out.extend(store.export_slot_table(slot, table));
            }
        }
        out
    }

    /// Integrity snapshot for every store this shard owns.
    #[allow(clippy::cast_possible_truncation)] // node/partition indices fit u32
    pub fn integrity(&self) -> Vec<StoreIntegrity> {
        let mut out = Vec::new();
        for (n, node) in self.stores.iter().enumerate() {
            for (k, store) in node.iter().enumerate() {
                let mut resident: Vec<u64> = store.resident_slots().collect();
                resident.sort_unstable();
                out.push(StoreIntegrity {
                    node: n as u32,
                    local: k as u32 * self.num_shards + self.shard,
                    resident_slots: resident,
                    claimed_bytes: store.total_bytes(),
                    actual_bytes: store.recompute_bytes(),
                });
            }
        }
        out
    }

    /// Applies a fence operation against the quiesced state.
    pub fn apply_fence_op(&mut self, op: &FenceOp) -> FenceData {
        match op {
            FenceOp::EnsureNodes(count) => {
                self.ensure_nodes(*count);
                FenceData::None
            }
            FenceOp::DropNodes(keep) => {
                self.drop_nodes(*keep);
                FenceData::None
            }
            FenceOp::Report => FenceData::Report(self.report()),
            FenceOp::SlotAccessCounts => FenceData::SlotCounts(self.slot_counts()),
            FenceOp::ResetSlotAccesses => {
                self.reset_slot_accesses();
                FenceData::None
            }
            FenceOp::SlotBytes(slots) => FenceData::SlotBytes(
                slots
                    .iter()
                    .map(|&(slot, node, local)| self.slot_bytes_at(slot, node, local))
                    .collect(),
            ),
            FenceOp::ExportTable(table) => FenceData::Rows(self.export_table(*table)),
            FenceOp::Integrity => FenceData::Integrity(self.integrity()),
            FenceOp::ShardReport => FenceData::ShardReport {
                txns: self.txns,
                busy_us: 0,
            },
            FenceOp::TrackVersions(on) => {
                self.set_track_versions(*on);
                FenceData::None
            }
            FenceOp::Noop => FenceData::None,
        }
    }

    /// Applies one command, accumulating busy wall time into `busy_us`.
    /// This is the worker thread's sole entry point; the inline backend
    /// bypasses it (and the clock) by calling the operations directly.
    pub fn apply(&mut self, command: Command, busy_us: &mut u64) -> Reply {
        // pstore-lint: allow(SA-03): shard busy time is profiler
        // attribution metadata (surfaced via FenceOp::ShardReport into
        // registry gauges / opt-in spans), never part of a deterministic
        // output or a simulated clock; SIM time is stamped sim-side.
        let start = std::time::Instant::now();
        let reply = match command {
            Command::Execute {
                proc,
                slot,
                node,
                local,
                in_flight,
                capture,
            } => Reply::Fate(self.execute(proc.as_ref(), slot, node, local, in_flight, capture)),
            Command::Chunk {
                slot,
                from,
                to,
                local,
                budget,
            } => {
                let (rows, bytes, emptied) = self.migrate_chunk(slot, from, to, local, budget);
                Reply::Chunk {
                    rows,
                    bytes,
                    emptied,
                }
            }
            Command::Fence { epoch, op } => {
                let data = if matches!(op, FenceOp::ShardReport) {
                    FenceData::ShardReport {
                        txns: self.txns,
                        busy_us: *busy_us,
                    }
                } else {
                    self.apply_fence_op(&op)
                };
                Reply::FenceAck { epoch, data }
            }
        };
        *busy_us =
            busy_us.saturating_add(u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX));
        reply
    }
}

/// The epoch gate of the reconfiguration fence (CON-05). The coordinator
/// bumps an epoch, sends each shard a [`Command::Fence`], and collects
/// every [`Reply::FenceAck`] — at which point all shards are quiesced and
/// holding. Global structural changes happen in that window; releasing
/// the epoch (a `Release` store acquired by each holding shard's poll)
/// lets the shards resume, with the coordinator's writes visible.
#[derive(Debug)]
pub struct FenceGate {
    released: crate::sync::AtomicU64,
}

impl FenceGate {
    /// A gate with no epochs released yet.
    pub fn new() -> Self {
        FenceGate {
            released: crate::sync::AtomicU64::new(0),
        }
    }

    /// Releases `epoch` (and every earlier one).
    pub fn release(&self, epoch: u64) {
        self.released.store(epoch, crate::sync::Ordering::Release);
    }

    /// Whether `epoch` has been released.
    pub fn is_released(&self, epoch: u64) -> bool {
        self.released.load(crate::sync::Ordering::Acquire) >= epoch
    }
}

impl Default for FenceGate {
    fn default() -> Self {
        Self::new()
    }
}

/// Body of one executor-shard thread: apply commands in FIFO order,
/// reply in kind, and hold at fences until the coordinator releases the
/// epoch. A panic inside a command is caught, reported as
/// [`Reply::Panicked`] (so the coordinator can attribute it to this
/// shard exactly like a panicking sweep cell), and shuts the shard down.
pub fn worker_loop(
    mut state: ShardState,
    cmd: &crate::mailbox::Mailbox<Command>,
    reply: &crate::mailbox::Mailbox<Reply>,
    gate: &FenceGate,
) {
    let mut busy_us = 0u64;
    while let Some(command) = cmd.recv() {
        let fence_epoch = match &command {
            Command::Fence { epoch, .. } => Some(*epoch),
            _ => None,
        };
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            state.apply(command, &mut busy_us)
        }));
        match outcome {
            Ok(r) => {
                if reply.send(r).is_err() {
                    return; // coordinator gone
                }
            }
            Err(payload) => {
                // `as_ref` reaches the payload itself; `&payload` would
                // coerce the Box into the `dyn Any` and never downcast.
                let _ = reply.send(Reply::Panicked {
                    message: panic_message(payload.as_ref()),
                });
                return;
            }
        }
        if let Some(epoch) = fence_epoch {
            // Quiesced hold: acknowledged, now parked until the
            // coordinator's global operation completes. A closed command
            // mailbox means shutdown — stop holding so Drop can join.
            let mut spins = 0u32;
            while !gate.is_released(epoch) && !cmd.is_closed() {
                crate::sync::backoff(spins);
                spins = spins.saturating_add(1);
            }
        }
    }
}

/// Renders a panic payload for cross-thread attribution.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Splits two distinct nodes' store rows out of the matrix for
/// simultaneous mutation (migration source and destination).
fn two_nodes<T>(nodes: &mut [T], a: usize, b: usize) -> (&mut T, &mut T) {
    assert_ne!(a, b, "nodes must be distinct");
    if a < b {
        let (lo, hi) = nodes.split_at_mut(b);
        (&mut lo[a], &mut hi[0])
    } else {
        let (lo, hi) = nodes.split_at_mut(a);
        (&mut hi[0], &mut lo[b])
    }
}
