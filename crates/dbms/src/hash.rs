//! MurmurHash 2.0, 64-bit variant (MurmurHash64A).
//!
//! The paper hashes partitioning keys to partitions with MurmurHash 2.0
//! (§8.1, ref 17) and observes near-uniform access and data distribution. We
//! implement the canonical 64-bit variant so routing behaviour is
//! reproducible and key-distribution tests are meaningful.

/// Hashes `key` with MurmurHash64A under the given `seed`.
pub fn murmur64a(key: &[u8], seed: u64) -> u64 {
    const M: u64 = 0xc6a4_a793_5bd1_e995;
    const R: u32 = 47;

    let len = key.len();
    let mut h: u64 = seed ^ (len as u64).wrapping_mul(M);

    let n_blocks = len / 8;
    for i in 0..n_blocks {
        let mut k = u64::from_le_bytes(
            key[i * 8..i * 8 + 8]
                .try_into()
                .unwrap_or_else(|_| unreachable!("an 8-byte slice converts to [u8; 8]")),
        );
        k = k.wrapping_mul(M);
        k ^= k >> R;
        k = k.wrapping_mul(M);
        h ^= k;
        h = h.wrapping_mul(M);
    }

    let tail = &key[n_blocks * 8..];
    if !tail.is_empty() {
        let mut k: u64 = 0;
        for (i, &b) in tail.iter().enumerate() {
            k |= (b as u64) << (8 * i);
        }
        h ^= k;
        h = h.wrapping_mul(M);
    }

    h ^= h >> R;
    h = h.wrapping_mul(M);
    h ^= h >> R;
    h
}

/// Default seed used for routing (fixed so plans are stable across runs).
pub const ROUTING_SEED: u64 = 0x9747_b28c;

/// Hashes a routing key to one of `buckets` buckets.
pub fn bucket_of(key: &[u8], buckets: u64) -> u64 {
    assert!(buckets > 0, "buckets must be positive");
    murmur64a(key, ROUTING_SEED) % buckets
}

#[cfg(test)]
mod tests {
    #![allow(clippy::float_cmp, clippy::cast_possible_truncation)] // tests use exact values and tiny ids
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Vectors cross-checked against an independent re-implementation of
        // the canonical MurmurHash64A reference code (seed 0).
        assert_eq!(murmur64a(b"", 0), 0);
        assert_eq!(murmur64a(b"a", 0), 0x071717d2d36b6b11);
        assert_eq!(murmur64a(b"abc", 0), 0x9cc9c33498a95efb);
        assert_eq!(murmur64a(b"hello world", 0), 0xd3ba2368a832afce);
        assert_eq!(
            murmur64a(b"The quick brown fox jumps over the lazy dog", 0),
            0x5589ca33042a861b
        );
    }

    #[test]
    fn seed_changes_output() {
        assert_ne!(murmur64a(b"key", 1), murmur64a(b"key", 2));
    }

    #[test]
    fn deterministic() {
        assert_eq!(murmur64a(b"cart-12345", 7), murmur64a(b"cart-12345", 7));
    }

    #[test]
    fn handles_all_tail_lengths() {
        // Exercise every tail branch (0..8 trailing bytes).
        let data = b"0123456789abcdef";
        let mut seen = std::collections::HashSet::new();
        for len in 0..=data.len() {
            assert!(
                seen.insert(murmur64a(&data[..len], 0)),
                "collision at {len}"
            );
        }
    }

    #[test]
    fn buckets_are_roughly_uniform() {
        // 30 partitions over 100k random-ish keys: max deviation from the
        // mean should be small — the §8.1 uniformity argument.
        let buckets = 30u64;
        let mut counts = vec![0usize; buckets as usize];
        for i in 0..100_000u64 {
            let key = format!("cart-{i:08x}");
            counts[bucket_of(key.as_bytes(), buckets) as usize] += 1;
        }
        let mean = 100_000.0 / buckets as f64;
        for (b, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - mean).abs() / mean;
            assert!(dev < 0.05, "bucket {b} deviates {:.1}%", dev * 100.0);
        }
    }

    #[test]
    #[should_panic(expected = "buckets must be positive")]
    fn zero_buckets_rejected() {
        let _ = bucket_of(b"x", 0);
    }
}
