//! An H-Store-like partitioned main-memory OLTP engine with Squall-like
//! chunked live migration — the execution substrate of the P-Store
//! reproduction.
//!
//! The engine mirrors the architecture the paper relies on (§2, §6):
//!
//! * **Shared-nothing nodes**, each with `P` serial data partitions.
//! * **Hash partitioning** of routing keys (MurmurHash 2.0, §8.1) onto
//!   virtual slots; a [`SlotPlan`](pstore_core::partition_plan::SlotPlan)
//!   maps slots to nodes.
//! * **Single-partition stored procedures** routed by partitioning key; the
//!   execution context enforces the single-partition discipline.
//! * **Live reconfiguration** in chunks with key-granularity switchover:
//!   transactions keep running against slots whose rows are mid-flight,
//!   exactly the property Squall provides to P-Store.
//!
//! Timing (service times, queueing, chunk pacing) is deliberately *not*
//! modelled here: the engine is purely functional, and the `pstore-sim`
//! crate wraps it in a discrete-event simulation that reproduces the
//! paper's performance behaviour.
//!
//! # Quick example
//!
//! ```
//! use pstore_dbms::catalog::{columns, Catalog, ColumnType, TableSchema};
//! use pstore_dbms::cluster::{Cluster, ClusterConfig};
//! use pstore_dbms::txn::{Procedure, TxnCtx, TxnError, TxnOutput};
//! use pstore_dbms::value::{Key, KeyValue, Row, Value};
//!
//! let mut catalog = Catalog::new();
//! let kv = catalog.add_table(TableSchema::new(
//!     "KV",
//!     columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
//!     1,
//! ));
//!
//! struct Put(String, i64);
//! impl Procedure for Put {
//!     fn name(&self) -> &'static str { "Put" }
//!     fn routing_key(&self) -> KeyValue { KeyValue::Str(self.0.clone()) }
//!     fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
//!         ctx.put(0, Key::str(self.0.clone()), Row(vec![Value::Int(self.1)]));
//!         Ok(TxnOutput::None)
//!     }
//! }
//!
//! let mut cluster = Cluster::new(catalog, ClusterConfig::default(), 2);
//! cluster.execute(&Put("cart-1".into(), 42)).unwrap();
//! // Scale out live; data survives and stays balanced.
//! cluster.begin_reconfiguration(4).unwrap();
//! cluster.run_reconfiguration_to_completion(1_000_000).unwrap();
//! assert_eq!(cluster.active_nodes(), 4);
//! assert_eq!(cluster.total_rows(), 1);
//! # let _ = kv;
//! ```

#![warn(missing_docs)]

pub mod catalog;
pub mod cluster;
pub mod hash;
pub mod mailbox;
pub mod partition;
pub mod shard;
pub mod skew;
pub mod stats;
pub mod sync;
pub mod txn;
pub mod value;

pub use catalog::{Catalog, TableId, TableSchema};
pub use cluster::{ChunkResult, Cluster, ClusterConfig, ReconfigError, ShardReport};
pub use shard::TxnFate;
pub use txn::{Procedure, TxnCtx, TxnError, TxnOutput};
pub use value::{Key, KeyValue, Row, Value};
