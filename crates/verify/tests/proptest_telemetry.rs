//! Property tests for the `TEL-*` telemetry invariants: histogram merging
//! is associative/commutative on arbitrary sample sets (`TEL-03`), and
//! span traces produced through the live API always pair and nest
//! (`TEL-01`/`TEL-02`).

use proptest::prelude::*;
use pstore_verify::telemetry::{check_histogram_merge, check_trace_spans};

/// One sample set: latencies/loads spanning many orders of magnitude,
/// including zero, negatives (clamped by the histogram) and tiny values.
fn sample_set() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0),
            -1e3..1e3f64,
            (-7.0..6.0f64).prop_map(|e| 10f64.powf(e)),
        ],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TEL-03: merging any three histograms is associative and
    /// commutative on bucket contents.
    #[test]
    fn histogram_merge_is_associative(a in sample_set(), b in sample_set(), c in sample_set()) {
        let violations = check_histogram_merge("proptest", &[a, b, c]);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// TEL-01/02: any properly bracketed sequence of begin/end events —
    /// encoded as a balanced depth profile — passes the span checker.
    #[test]
    fn balanced_span_traces_are_clean(profile in prop::collection::vec(any::<bool>(), 0..40)) {
        let mut events = Vec::new();
        let mut stack = Vec::new();
        let mut next_id = 1u64;
        let mut seq = 1u64;
        for open in profile {
            if open || stack.is_empty() {
                let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
                    .with("id", next_id)
                    .with("name", "reconfig");
                e.seq = seq;
                events.push(e);
                stack.push(next_id);
                next_id += 1;
            } else {
                let id = stack.pop().unwrap();
                let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
                    .with("id", id);
                e.seq = seq;
                events.push(e);
            }
            seq += 1;
        }
        while let Some(id) = stack.pop() {
            let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
                .with("id", id);
            e.seq = seq;
            events.push(e);
            seq += 1;
        }
        let violations = check_trace_spans("proptest", &events);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// An unbalanced trace (one dangling begin) is always flagged.
    #[test]
    fn dangling_span_is_always_flagged(extra in 1u64..100) {
        let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
            .with("id", extra)
            .with("name", "reconfig");
        e.seq = 1;
        let violations = check_trace_spans("proptest", &[e]);
        prop_assert_eq!(violations.len(), 1);
    }
}
