//! Property tests for the `TEL-*` telemetry invariants: histogram merging
//! is associative/commutative on arbitrary sample sets (`TEL-03`), span
//! traces produced through the live API always pair and nest
//! (`TEL-01`/`TEL-02`), sim-time-stamped traces are totally ordered
//! (`TEL-04`), and the span profiler conserves time on any balanced
//! trace (`TEL-05`).

use proptest::prelude::*;
use pstore_verify::telemetry::{
    check_histogram_merge, check_profile_conservation, check_trace_order, check_trace_spans,
};

/// Builds a balanced, sim-time-stamped span trace from a depth profile:
/// each step either opens or closes a span (closing falls back to opening
/// when the stack is empty; leftovers are closed at the end) and advances
/// the clock by the paired non-negative increment. Span names vary by
/// depth so the profiler aggregates real multi-level paths.
fn stamped_trace(profile: &[(bool, f64)]) -> Vec<pstore_telemetry::Event> {
    let names = ["outer", "mid", "inner"];
    let mut events = Vec::new();
    let mut stack: Vec<(u64, &str)> = Vec::new();
    let mut next_id = 1u64;
    let mut seq = 1u64;
    let mut t = 0.0f64;
    let push = |e: pstore_telemetry::Event, seq: &mut u64, t: f64| {
        let mut e = e;
        e.seq = *seq;
        e.t = Some(t);
        *seq += 1;
        e
    };
    for &(open, dt) in profile {
        t += dt;
        if open || stack.is_empty() {
            let name = names[stack.len().min(names.len() - 1)];
            let e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
                .with("id", next_id)
                .with("name", name);
            events.push(push(e, &mut seq, t));
            stack.push((next_id, name));
            next_id += 1;
        } else if let Some((id, name)) = stack.pop() {
            let e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
                .with("id", id)
                .with("name", name);
            events.push(push(e, &mut seq, t));
        }
    }
    while let Some((id, name)) = stack.pop() {
        t += 0.5;
        let e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
            .with("id", id)
            .with("name", name);
        events.push(push(e, &mut seq, t));
    }
    events
}

/// One sample set: latencies/loads spanning many orders of magnitude,
/// including zero, negatives (clamped by the histogram) and tiny values.
fn sample_set() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            Just(0.0),
            -1e3..1e3f64,
            (-7.0..6.0f64).prop_map(|e| 10f64.powf(e)),
        ],
        0..64,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// TEL-03: merging any three histograms is associative and
    /// commutative on bucket contents.
    #[test]
    fn histogram_merge_is_associative(a in sample_set(), b in sample_set(), c in sample_set()) {
        let violations = check_histogram_merge("proptest", &[a, b, c]);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// TEL-01/02: any properly bracketed sequence of begin/end events —
    /// encoded as a balanced depth profile — passes the span checker.
    #[test]
    fn balanced_span_traces_are_clean(profile in prop::collection::vec(any::<bool>(), 0..40)) {
        let mut events = Vec::new();
        let mut stack = Vec::new();
        let mut next_id = 1u64;
        let mut seq = 1u64;
        for open in profile {
            if open || stack.is_empty() {
                let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
                    .with("id", next_id)
                    .with("name", "reconfig");
                e.seq = seq;
                events.push(e);
                stack.push(next_id);
                next_id += 1;
            } else {
                let id = stack.pop().unwrap();
                let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
                    .with("id", id);
                e.seq = seq;
                events.push(e);
            }
            seq += 1;
        }
        while let Some(id) = stack.pop() {
            let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
                .with("id", id);
            e.seq = seq;
            events.push(e);
            seq += 1;
        }
        let violations = check_trace_spans("proptest", &events);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// TEL-04 + TEL-05: any balanced span trace stamped with a monotone
    /// sim clock passes the ordering checker, and its span profile
    /// conserves time (parent totals cover child totals; the folded
    /// rendering re-sums to the tree).
    #[test]
    fn stamped_traces_are_ordered_and_profile_conserves(
        profile in prop::collection::vec((any::<bool>(), 0.0..2.0f64), 0..40)
    ) {
        let events = stamped_trace(&profile);
        let violations = check_trace_order("proptest", &events);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
        let violations =
            check_profile_conservation("proptest", &events, pstore_telemetry::ProfileClock::Sim);
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// TEL-04: duplicating any event's seq (or swapping it backwards) is
    /// always flagged as an ordering violation.
    #[test]
    fn seq_regression_is_always_flagged(
        profile in prop::collection::vec((any::<bool>(), 0.0..2.0f64), 2..40),
        pick in 0usize..4096
    ) {
        let mut events = stamped_trace(&profile);
        // Clobber one event's seq (not the first) with the previous seq.
        let i = 1 + pick % (events.len() - 1);
        events[i].seq = events[i - 1].seq;
        let violations = check_trace_order("proptest", &events);
        prop_assert!(!violations.is_empty());
    }

    /// TEL-04: sim time regressing while a span is open is always
    /// flagged, however small the step back.
    #[test]
    fn time_regression_in_open_span_is_flagged(t0 in 1.0..1e6f64, back in 0.001..0.9f64) {
        let mut begin = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
            .with("id", 1u64)
            .with("name", "reconfig");
        begin.seq = 1;
        begin.t = Some(t0);
        let mut end = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_END)
            .with("id", 1u64)
            .with("name", "reconfig");
        end.seq = 2;
        end.t = Some(t0 * (1.0 - back));
        let violations = check_trace_order("proptest", &[begin, end]);
        prop_assert!(!violations.is_empty());
    }

    /// An unbalanced trace (one dangling begin) is always flagged.
    #[test]
    fn dangling_span_is_always_flagged(extra in 1u64..100) {
        let mut e = pstore_telemetry::Event::new(pstore_telemetry::kinds::SPAN_BEGIN)
            .with("id", extra)
            .with("name", "reconfig");
        e.seq = 1;
        let violations = check_trace_spans("proptest", &[e]);
        prop_assert_eq!(violations.len(), 1);
    }
}
