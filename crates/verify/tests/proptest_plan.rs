//! Property tests: every plan the DP produces for a random load curve must
//! have zero invariant violations (`MOV-*`, `PLN-01/02`), and on small
//! horizons must agree with the brute-force optimality oracle (`PLN-03`).

use proptest::prelude::*;
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_verify::plan::{
    brute_force_optimum, check_plan, check_plan_optimality, memoised_optimum,
};

/// A random load curve bounded so the peak can fit the hardware (infeasible
/// instances still occur and must be handled gracefully).
fn load_curve(max_cap: f64, len: usize) -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(0.0..max_cap, len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever plan comes out of a mid-sized random scenario, it tiles the
    /// horizon, starts at n0 and never exceeds effective capacity.
    #[test]
    fn random_plans_have_no_violations(
        seed_load in load_curve(1_200.0, 18),
        n0 in 1u32..=6,
        d in 1u32..=24,
    ) {
        let planner = Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: d as f64 / 2.0,
            partitions_per_node: 2,
            max_machines: 12,
        });
        let violations = check_plan(&planner, &seed_load, n0, "proptest");
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// On small horizons the DP must agree with exhaustive enumeration on
    /// feasibility, final machine count and cost.
    #[test]
    fn small_plans_match_the_oracle(
        seed_load in load_curve(450.0, 6),
        n0 in 1u32..=4,
        d in 1u32..=8,
    ) {
        let planner = Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: d as f64 / 2.0,
            partitions_per_node: 1,
            max_machines: 4,
        });
        let mut violations = check_plan(&planner, &seed_load, n0, "proptest");
        violations.extend(check_plan_optimality(&planner, &seed_load, n0, "proptest"));
        prop_assert!(
            violations.is_empty(),
            "{}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// The memoised `(interval, machines)` value-iteration must agree with
    /// the naive depth-first enumeration — same feasibility verdict, same
    /// fewest-machines endpoint, same optimal cost — on every instance
    /// small enough for the naive oracle to finish.
    #[test]
    fn memoised_oracle_agrees_with_naive_enumeration(
        seed_load in load_curve(450.0, 7),
        n0 in 1u32..=4,
        d in 1u32..=10,
        partitions in 1u32..=2,
    ) {
        let cfg = PlannerConfig {
            q: 100.0,
            d_intervals: d as f64 / 2.0,
            partitions_per_node: partitions,
            max_machines: 4,
        };
        let naive = brute_force_optimum(&cfg, &seed_load, n0);
        let memo = memoised_optimum(&cfg, &seed_load, n0);
        match (naive, memo) {
            (None, None) => {}
            (Some((ne, nc)), Some((me, mc))) => {
                prop_assert_eq!(ne, me, "end machine counts disagree");
                prop_assert!(
                    (nc - mc).abs() <= 1e-6,
                    "naive cost {} vs memoised {}", nc, mc
                );
            }
            other => prop_assert!(false, "feasibility disagreement: {:?}", other),
        }
    }
}
