//! ISO-01/02 seeded-bug twin tests, mirroring the CON-04/05 twin
//! pattern in `crates/dbms/tests/loom_models.rs`: each anomaly has a
//! positive test proving the checker names the violating cycle/edge,
//! and a `#[should_panic(expected = "ISO-xx seeded bug")]` twin that
//! asserts the seeded history is clean — which must fail, proving the
//! discriminating power is intact.
//!
//! The bugs are injected through `pstore_dbms::txn::seeded_bugs` (the
//! `iso-seeded-bugs` feature): an armed bug makes the engine's *capture
//! layer* lie about the version each read observed, so the recorded
//! history carries the exact signature of a lost update (stale read
//! before a blind install), a write skew (two crossed stale reads), or
//! a read from the future — while execution itself stays correct. The
//! workloads below run against the real partition store and execution
//! context with version tracking on, i.e. the same capture path the
//! sharded engine uses for sampled transactions.

use pstore_dbms::partition::PartitionStore;
use pstore_dbms::txn::seeded_bugs::{arm, ReadBug};
use pstore_dbms::txn::TxnCtx;
use pstore_dbms::value::{Key, Row, Value};
use pstore_verify::iso::{
    check_dsg_acyclic, check_key_histories, check_read_commit_order, TxnHistory,
};

/// A one-table, one-slot engine surface: each `txn` call executes a
/// closure against a fresh settled context with key capture on (the
/// sampled path), then folds the captured accesses into a history.
struct MiniEngine {
    store: PartitionStore,
    histories: Vec<TxnHistory>,
}

impl MiniEngine {
    fn new() -> Self {
        let mut store = PartitionStore::new(1);
        store.set_track_versions(true);
        MiniEngine {
            store,
            histories: Vec::new(),
        }
    }

    fn txn(&mut self, f: impl FnOnce(&mut TxnCtx<'_>)) {
        // num_slots = 1: every key hashes to slot 0, so the
        // single-partition discipline is trivially satisfied.
        let mut ctx = TxnCtx::settled(0, 1, &mut self.store);
        ctx.set_capture(true);
        f(&mut ctx);
        let id = self.histories.len() as u64 + 1;
        let mut h = TxnHistory::new(id);
        for (table, key, version) in &ctx.key_reads {
            h = h.read(*table as u64, &key.to_string(), *version);
        }
        for (table, key, version) in &ctx.key_writes {
            h = h.write(*table as u64, &key.to_string(), *version);
        }
        self.histories.push(h);
    }
}

fn row(v: i64) -> Row {
    Row(vec![Value::Int(v)])
}

/// T1 seeds `k`; with the stale-read bug armed, T2 and T3 each
/// read-modify-write `k`. Their recorded reads claim the version *one
/// before* the one they observed — so both appear to have read the same
/// version and blindly installed over each other: the lost update.
fn lost_update_history() -> Vec<TxnHistory> {
    let mut e = MiniEngine::new();
    let k = Key::str("k");
    e.txn(|ctx| {
        ctx.put(0, k.clone(), row(1));
    });
    arm(ReadBug::StaleRead);
    for bump in [2, 3] {
        e.txn(|ctx| {
            let cur = ctx.get(0, &k);
            assert!(cur.is_some());
            ctx.put(0, k.clone(), row(bump));
        });
    }
    arm(ReadBug::None);
    e.histories
}

/// T1 seeds `a` and `b`; T2 reads `a` and writes `b` (faithfully); with
/// the stale bug armed, T3 reads `b` and writes `a` — its recorded read
/// of `b` misses T2's install, crossing two RW anti-dependencies: the
/// write skew.
fn write_skew_history() -> Vec<TxnHistory> {
    let mut e = MiniEngine::new();
    let (a, b) = (Key::str("a"), Key::str("b"));
    e.txn(|ctx| {
        ctx.put(0, a.clone(), row(1));
        ctx.put(0, b.clone(), row(1));
    });
    e.txn(|ctx| {
        ctx.get(0, &a);
        ctx.put(0, b.clone(), row(2));
    });
    arm(ReadBug::StaleRead);
    e.txn(|ctx| {
        ctx.get(0, &b);
        ctx.put(0, a.clone(), row(2));
    });
    arm(ReadBug::None);
    e.histories
}

/// T1 seeds `k`; with the future-read bug armed, T2's recorded read
/// claims the version T3 installs only *later* in the commit order.
fn future_read_history() -> Vec<TxnHistory> {
    let mut e = MiniEngine::new();
    let k = Key::str("k");
    e.txn(|ctx| {
        ctx.put(0, k.clone(), row(1));
    });
    arm(ReadBug::FutureRead);
    e.txn(|ctx| {
        ctx.get(0, &k);
    });
    arm(ReadBug::None);
    e.txn(|ctx| {
        ctx.put(0, k.clone(), row(2));
    });
    e.histories
}

/// Control: the same workloads with no bug armed are clean — the hook
/// is inert by default, and the real capture path is serializable.
#[test]
fn unseeded_workloads_are_clean() {
    let mut e = MiniEngine::new();
    let (k, a, b) = (Key::str("k"), Key::str("a"), Key::str("b"));
    e.txn(|ctx| {
        ctx.put(0, k.clone(), row(1));
        ctx.put(0, a.clone(), row(1));
        ctx.put(0, b.clone(), row(1));
    });
    e.txn(|ctx| {
        ctx.get(0, &k);
        ctx.put(0, k.clone(), row(2));
        ctx.get(0, &a);
        ctx.put(0, b.clone(), row(2));
    });
    e.txn(|ctx| {
        ctx.get(0, &b);
        ctx.put(0, a.clone(), row(2));
        ctx.get(0, &k);
    });
    let violations = check_key_histories("unseeded twin control", &e.histories);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn lost_update_is_flagged_with_a_named_cycle() {
    let violations = check_dsg_acyclic("seeded lost update", &lost_update_history());
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].invariant.code(), "ISO-01");
    let detail = &violations[0].detail;
    // The diagnostic names the cycle: transaction ids, edge kinds
    // (the lost update is a WW/RW loop), and the key.
    assert!(detail.contains("dependency cycle"), "{detail}");
    assert!(detail.contains("RW"), "{detail}");
    assert!(detail.contains("WW"), "{detail}");
    assert!(detail.contains("(t0:('k'))"), "{detail}");
}

/// Negative twin: asserting the seeded history is serializable must
/// panic — ISO-01 catches the lost update.
#[test]
#[should_panic(expected = "ISO-01 seeded bug")]
fn iso_01_seeded_lost_update_is_caught() {
    let violations = check_dsg_acyclic("seeded lost update", &lost_update_history());
    assert!(
        violations.is_empty(),
        "ISO-01 seeded bug: {}",
        violations[0].detail
    );
}

#[test]
fn write_skew_is_flagged_with_crossed_anti_dependencies() {
    let violations = check_dsg_acyclic("seeded write skew", &write_skew_history());
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].invariant.code(), "ISO-01");
    let detail = &violations[0].detail;
    // The canonical write-skew cycle: T2 and T3 joined by two RW
    // anti-dependencies, one per key.
    assert!(detail.contains("T2"), "{detail}");
    assert!(detail.contains("T3"), "{detail}");
    assert_eq!(detail.matches("RW").count(), 2, "{detail}");
    assert!(detail.contains("(t0:('a'))"), "{detail}");
    assert!(detail.contains("(t0:('b'))"), "{detail}");
}

/// Negative twin: asserting the seeded write skew is serializable must
/// panic — ISO-01 catches it.
#[test]
#[should_panic(expected = "ISO-01 seeded bug")]
fn iso_01_seeded_write_skew_is_caught() {
    let violations = check_dsg_acyclic("seeded write skew", &write_skew_history());
    assert!(
        violations.is_empty(),
        "ISO-01 seeded bug: {}",
        violations[0].detail
    );
}

#[test]
fn future_read_is_flagged_with_the_violating_edge() {
    let violations = check_read_commit_order("seeded future read", &future_read_history());
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].invariant.code(), "ISO-02");
    let detail = &violations[0].detail;
    assert!(detail.contains("T2"), "{detail}");
    assert!(detail.contains("T3"), "{detail}");
    assert!(detail.contains("later commit position"), "{detail}");
}

/// Negative twin: asserting the seeded future read observes only
/// committed versions must panic — ISO-02 catches it.
#[test]
#[should_panic(expected = "ISO-02 seeded bug")]
fn iso_02_seeded_future_read_is_caught() {
    let violations = check_read_commit_order("seeded future read", &future_read_history());
    assert!(
        violations.is_empty(),
        "ISO-02 seeded bug: {}",
        violations[0].detail
    );
}
