//! Property tests: every randomly chosen machine-count pair must plan to a
//! schedule with zero invariant violations (`SCH-01..09`).

use proptest::prelude::*;
use pstore_verify::schedule::check_schedule_pair;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Any (from, to) pair up to 48 machines plans cleanly, in both
    /// directions, including the reversal and closed-form cross-checks.
    #[test]
    fn random_pairs_have_no_violations(b in 1u32..=48, a in 1u32..=48) {
        let violations = check_schedule_pair(b, a);
        prop_assert!(
            violations.is_empty(),
            "{b}->{a}: {}",
            pstore_core::invariant::report(&violations)
        );
    }

    /// The degenerate pairs (1 <-> n) exercise case 2 and case 3 edges.
    #[test]
    fn single_machine_pairs_are_clean(n in 1u32..=64) {
        prop_assert!(check_schedule_pair(1, n).is_empty());
    }
}
