//! Workspace-wide invariant checking for the P-Store reproduction.
//!
//! Every artifact family the system produces has a checker module here:
//!
//! * [`schedule`] — migration schedules ([`MigrationSchedule`]): round-count
//!   minimality, matching validity, `1/(A*B)` data conservation, scale-in =
//!   time-reverse of scale-out, and agreement with the closed forms of
//!   Algorithm 4 (average machines) and Equation 2 (peak parallelism).
//! * [`moves`] — move sequences ([`MoveSeq`]): contiguous horizon tiling,
//!   positive durations, single-interval no-ops, machine-count chaining.
//! * [`plan`] — planner output: capacity ≥ predicted load at all times
//!   *including mid-move effective capacity* (Eq 7), correct endpoints, and
//!   optimality against a brute-force oracle on small horizons.
//! * [`forecast`] — load predictions: finite and (on the production path)
//!   non-negative values, SPAR periodicity sanity.
//! * [`telemetry`] — telemetry traces and metrics: span pairing and LIFO
//!   nesting over event streams, histogram-merge associativity
//!   (`TEL-01..03`, see docs/observability.md).
//! * [`concurrency`] — the parallel sweep surface and the sharded
//!   execution engine: fault-injected pools lose no cell and attribute
//!   failures deterministically, the ordered merge observes every
//!   cell's results and telemetry, cells never see another cell's
//!   registry state (`CON-01..03`; exhaustive interleaving layer in
//!   `vendor/rayon/tests/loom_models.rs`), the engine's mailbox routing
//!   delivers every fate exactly once and in order, and its
//!   reconfiguration fence excludes in-flight shard execution
//!   (`CON-04/05`; exhaustive layer in
//!   `crates/dbms/tests/loom_models.rs`).
//! * [`prov`] — the provisioning observatory's `prov_*` event family:
//!   the capacity ledger conserves machine-seconds against the raw
//!   per-interval stream (`PRV-01`), every reconfiguration traces to
//!   exactly one decision and predictive decisions keep their lead
//!   (`PRV-02`), and forecast scoring is exactly-once against real
//!   observations (`PRV-03`).
//! * [`iso`] — serializability of sampled key-level histories
//!   (IsoPredict-style): the direct serialization graph over captured
//!   `(key, version)` read/write sets is acyclic (`ISO-01`), reads
//!   observe versions installed at or before the reader in commit order
//!   (`ISO-02`), and Squall restarts leave no orphan versions — unique
//!   installers, monotone per-key version order, read-your-restart
//!   (`ISO-03`).
//!
//! Each checker returns structured [`Violation`] diagnostics naming the
//! artifact, the invariant id (`SCH-01` ...) and an explanation, so a single
//! run can report every broken invariant at once. The invariant ids and the
//! [`Violation`] type are shared with `pstore-core`, whose producers also
//! self-check under the `check-invariants` feature — the checkers here are
//! the *cross-artifact* layer on top (they compare schedules against their
//! mirrors, plans against oracles, closed forms against constructions).
//!
//! The `pstore-verify` binary sweeps every `(A, B)` pair up to 64 machines
//! plus randomized planner and forecast scenarios and exits non-zero on any
//! violation; `scripts/static_analysis.sh` runs it as part of CI. The full
//! catalogue of invariants lives in `docs/invariants.md`.
//!
//! [`MigrationSchedule`]: pstore_core::schedule::MigrationSchedule
//! [`MoveSeq`]: pstore_core::MoveSeq

#![warn(missing_docs)]

pub mod concurrency;
pub mod forecast;
pub mod iso;
pub mod moves;
pub mod plan;
pub mod prov;
pub mod schedule;
pub mod telemetry;

pub use pstore_core::{InvariantId, Violation};

/// Outcome of one checker sweep: artifacts examined and violations found.
#[derive(Debug, Clone, Default)]
pub struct CheckStats {
    /// Number of artifacts (schedules, plans, curves, ...) examined.
    pub artifacts: usize,
    /// Violations collected across all artifacts.
    pub violations: Vec<Violation>,
}

impl CheckStats {
    /// Folds one artifact's violations into the running stats.
    pub fn absorb(&mut self, violations: Vec<Violation>) {
        self.artifacts += 1;
        self.violations.extend(violations);
    }

    /// Whether the sweep found no violations.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}
