//! Serializability checkers: the `ISO-*` invariant family.
//!
//! The sharded engine samples key-level version histories into widened
//! `txn_rwset` events (`rset` / `wset` fields — see
//! `docs/observability.md`). This module decodes those histories and
//! checks them IsoPredict-style (PAPERS.md): build the direct
//! serialization graph — WR edges from the version each read observed,
//! WW edges from per-key version order, RW anti-dependencies from the
//! version a read *missed* — and verify:
//!
//! - `ISO-01`: the DSG is acyclic (the history is
//!   conflict-serializable), with the violating cycle named
//!   edge-by-edge in the diagnostic;
//! - `ISO-02`: every read observes a version installed at or before the
//!   reader in the commit order (serialization order is equivalent to
//!   the commit order — no read from the future);
//! - `ISO-03`: Squall-style restarts leave no orphan versions — each
//!   `(key, version)` has exactly one installer, per-key versions are
//!   installed in strictly increasing order, and a transaction's reads
//!   are consistent with its own writes even across a mid-migration
//!   restart.
//!
//! Sampling is fine: unsampled transactions still bump the engine's
//! per-key version counters, so the versions sampled transactions
//! observe order correctly against each other even when intermediate
//! writers went unrecorded. Edges are only drawn between sampled
//! transactions, which keeps every edge sound (a missed intermediate
//! writer can only *remove* an edge, never invert one).

use pstore_core::{InvariantId, Violation};
use pstore_telemetry::{kinds, parse_key_versions, Event, Value};
use std::collections::HashMap;

/// One key-level access: `(table, key display, version)`.
pub type KeyVersion = (u64, String, u64);

/// One sampled transaction's key-level history, decoded from a widened
/// `txn_rwset` event. The engine executes procedures directly against
/// the store (no undo), so writes completed before a business abort are
/// real installs — histories therefore track *execution* rather than
/// commit status, and `committed` is informational.
#[derive(Debug, Clone)]
pub struct TxnHistory {
    /// Trace id (the simulator's arrival sequence number).
    pub id: u64,
    /// `(table, key, version-read)` for every read, in program order.
    pub reads: Vec<KeyVersion>,
    /// `(table, key, version-installed)` for every write, in program
    /// order.
    pub writes: Vec<KeyVersion>,
    /// Whether the transaction touched a migration destination (the
    /// Squall restart-on-moved-data path).
    pub restarted: bool,
    /// Whether the transaction committed.
    pub committed: bool,
}

impl TxnHistory {
    /// A history with no accesses (builder root for tests).
    pub fn new(id: u64) -> Self {
        TxnHistory {
            id,
            reads: Vec::new(),
            writes: Vec::new(),
            restarted: false,
            committed: true,
        }
    }

    /// Builder: appends a read of `key@version`.
    #[must_use]
    pub fn read(mut self, table: u64, key: &str, version: u64) -> Self {
        self.reads.push((table, key.to_string(), version));
        self
    }

    /// Builder: appends an install of `key@version`.
    #[must_use]
    pub fn write(mut self, table: u64, key: &str, version: u64) -> Self {
        self.writes.push((table, key.to_string(), version));
        self
    }

    /// Builder: marks the transaction as restarted mid-migration.
    #[must_use]
    pub fn restarted(mut self) -> Self {
        self.restarted = true;
        self
    }
}

/// Decodes the key-level histories out of a trace, in commit (emission)
/// order. `txn_rwset` records without `rset`/`wset` fields — unsampled
/// capture-off records, including all pre-existing golden traces — are
/// skipped.
///
/// # Errors
/// Returns a description of the first undecodable record.
pub fn histories_of(events: &[Event]) -> Result<Vec<TxnHistory>, String> {
    let mut out = Vec::new();
    for ev in events.iter().filter(|e| e.kind == kinds::TXN_RWSET) {
        let Some(rset) = ev.field_str("rset") else {
            continue;
        };
        let wset = ev
            .field_str("wset")
            .ok_or("txn_rwset has rset but no wset")?;
        let id = ev.field_u64("id").ok_or("txn_rwset without id")?;
        let reads = parse_key_versions(rset).map_err(|e| format!("txn {id} rset: {e}"))?;
        let writes = parse_key_versions(wset).map_err(|e| format!("txn {id} wset: {e}"))?;
        out.push(TxnHistory {
            id,
            reads,
            writes,
            restarted: ev
                .field("restarted")
                .and_then(Value::as_bool)
                .unwrap_or(false),
            committed: ev
                .field("committed")
                .and_then(Value::as_bool)
                .unwrap_or(true),
        });
    }
    Ok(out)
}

/// A dependency-edge kind in the direct serialization graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Write-read: the reader observed the version this installer wrote.
    Wr,
    /// Write-write: per-key version order.
    Ww,
    /// Read-write anti-dependency: the installer overwrote the version
    /// this reader observed (the reader "missed" the newer version).
    Rw,
}

impl EdgeKind {
    fn label(self) -> &'static str {
        match self {
            EdgeKind::Wr => "WR",
            EdgeKind::Ww => "WW",
            EdgeKind::Rw => "RW",
        }
    }
}

/// Size summary of a DSG, for sweep reports.
#[derive(Debug, Clone, Copy, Default)]
pub struct DsgStats {
    /// Sampled transactions with captured accesses.
    pub txns: usize,
    /// Distinct `(table, key)` pairs touched.
    pub keys: usize,
    /// Write-read edges.
    pub wr: usize,
    /// Write-write edges.
    pub ww: usize,
    /// Read-write anti-dependency edges.
    pub rw: usize,
}

struct Edge {
    to: usize,
    kind: EdgeKind,
    key: usize,
}

/// The direct serialization graph plus the interning tables needed to
/// name nodes and keys in diagnostics.
struct Dsg {
    /// `adj[i]` = out-edges of the transaction at commit position `i`.
    adj: Vec<Vec<Edge>>,
    /// Interned `(table, key)` pairs; edges refer to these by index.
    keys: Vec<(u64, String)>,
    stats: DsgStats,
}

impl Dsg {
    fn key_label(&self, key: usize) -> String {
        let (table, ref k) = self.keys[key];
        format!("t{table}:{k}")
    }
}

/// Interns a `(table, key)` pair, returning its stable index.
fn intern(
    ids: &mut HashMap<(u64, String), usize>,
    keys: &mut Vec<(u64, String)>,
    table: u64,
    key: &str,
) -> usize {
    use std::collections::hash_map::Entry;
    let next = keys.len();
    match ids.entry((table, key.to_string())) {
        Entry::Occupied(e) => *e.get(),
        Entry::Vacant(e) => {
            keys.push((table, key.to_string()));
            e.insert(next);
            next
        }
    }
}

/// Builds the DSG over histories in commit order. Self-edges (a
/// transaction depending on itself through its own reads/writes) are
/// never emitted.
fn build_dsg(histories: &[TxnHistory]) -> Dsg {
    let mut key_ids: HashMap<(u64, String), usize> = HashMap::new();
    let mut keys: Vec<(u64, String)> = Vec::new();
    // (key id, version) -> commit position of the sampled installer.
    let mut installer: HashMap<(usize, u64), usize> = HashMap::new();
    // key id -> sorted list of (version, installer position).
    let mut chains: HashMap<usize, Vec<(u64, usize)>> = HashMap::new();
    for (i, h) in histories.iter().enumerate() {
        for (table, key, version) in &h.writes {
            let k = intern(&mut key_ids, &mut keys, *table, key);
            installer.entry((k, *version)).or_insert(i);
            chains.entry(k).or_default().push((*version, i));
        }
    }
    for chain in chains.values_mut() {
        chain.sort_unstable();
        chain.dedup();
    }
    let mut adj: Vec<Vec<Edge>> = (0..histories.len()).map(|_| Vec::new()).collect();
    let mut stats = DsgStats {
        txns: histories.len(),
        ..DsgStats::default()
    };
    // WW: consecutive sampled installs per key, in version order.
    for (&k, chain) in &chains {
        for pair in chain.windows(2) {
            let (from, to) = (pair[0].1, pair[1].1);
            if from != to {
                adj[from].push(Edge {
                    to,
                    kind: EdgeKind::Ww,
                    key: k,
                });
                stats.ww += 1;
            }
        }
    }
    for (i, h) in histories.iter().enumerate() {
        for (table, key, version) in &h.reads {
            let k = intern(&mut key_ids, &mut keys, *table, key);
            // WR: the sampled installer of the version this read saw.
            if let Some(&s) = installer.get(&(k, *version)) {
                if s != i {
                    adj[s].push(Edge {
                        to: i,
                        kind: EdgeKind::Wr,
                        key: k,
                    });
                    stats.wr += 1;
                }
            }
            // RW: the sampled installer of the smallest version the read
            // missed. A read observes the key's *current* (maximum)
            // version, so any greater version was installed after it.
            if let Some(chain) = chains.get(&k) {
                let next = chain.partition_point(|&(v, _)| v <= *version);
                if let Some(&(_, u)) = chain.get(next) {
                    if u != i {
                        adj[i].push(Edge {
                            to: u,
                            kind: EdgeKind::Rw,
                            key: k,
                        });
                        stats.rw += 1;
                    }
                }
            }
        }
    }
    stats.keys = keys.len();
    Dsg { adj, keys, stats }
}

/// Sizes the DSG a history set induces (for sweep reports: a clean pass
/// over a graph with zero edges proves nothing).
pub fn dsg_stats(histories: &[TxnHistory]) -> DsgStats {
    build_dsg(histories).stats
}

/// Formats a cycle (as a list of `(from, kind, key, to)` hops) like
/// `T5 -WW(t0:k)-> T7 -RW(t0:j)-> T5`.
fn cycle_label(
    dsg: &Dsg,
    histories: &[TxnHistory],
    hops: &[(usize, EdgeKind, usize, usize)],
) -> String {
    let mut out = String::new();
    for (from, kind, key, to) in hops {
        if out.is_empty() {
            out.push_str(&format!("T{}", histories[*from].id));
        }
        out.push_str(&format!(
            " -{}({})-> T{}",
            kind.label(),
            dsg.key_label(*key),
            histories[*to].id
        ));
    }
    out
}

/// Finds one cycle in the DSG (iterative DFS; histories can hold tens of
/// thousands of transactions, so no recursion). Returns the cycle's hops
/// in order, starting and ending at the same transaction.
fn find_cycle(dsg: &Dsg) -> Option<Vec<(usize, EdgeKind, usize, usize)>> {
    const WHITE: u8 = 0;
    const GRAY: u8 = 1;
    const BLACK: u8 = 2;
    let n = dsg.adj.len();
    let mut color = vec![WHITE; n];
    // Tree edge used to first reach each gray node: (parent, edge index).
    let mut pred: Vec<Option<(usize, usize)>> = vec![None; n];
    for start in 0..n {
        if color[start] != WHITE {
            continue;
        }
        color[start] = GRAY;
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(frame) = stack.last_mut() {
            let u = frame.0;
            if frame.1 < dsg.adj[u].len() {
                let ei = frame.1;
                frame.1 += 1;
                let edge = &dsg.adj[u][ei];
                let v = edge.to;
                if color[v] == WHITE {
                    color[v] = GRAY;
                    pred[v] = Some((u, ei));
                    stack.push((v, 0));
                } else if color[v] == GRAY {
                    // Back edge u -> v closes a cycle v ->* u -> v.
                    let mut hops = vec![(u, edge.kind, edge.key, v)];
                    let mut cur = u;
                    while cur != v {
                        let Some((p, pe)) = pred[cur] else {
                            // Every gray node except the DFS root was
                            // reached through a tree edge, and the walk
                            // stays on the gray path ending at `v`.
                            unreachable!("gray non-root has a tree edge");
                        };
                        let e = &dsg.adj[p][pe];
                        hops.push((p, e.kind, e.key, cur));
                        cur = p;
                    }
                    hops.reverse();
                    return Some(hops);
                }
            } else {
                color[u] = BLACK;
                stack.pop();
            }
        }
    }
    None
}

/// Checks `ISO-01`: the direct serialization graph is acyclic. A
/// violation names the full cycle, edge kinds and keys included.
pub fn check_dsg_acyclic(artifact: &str, histories: &[TxnHistory]) -> Vec<Violation> {
    let dsg = build_dsg(histories);
    match find_cycle(&dsg) {
        None => Vec::new(),
        Some(hops) => vec![Violation::new(
            InvariantId::IsoDsgAcyclic,
            artifact,
            format!("dependency cycle: {}", cycle_label(&dsg, histories, &hops)),
        )],
    }
}

/// Checks `ISO-02`: every read observes a version whose sampled
/// installer sits at or before the reader in the commit order. (Reads of
/// versions whose installer went unsampled are vacuously fine — the
/// version counters still order them.)
pub fn check_read_commit_order(artifact: &str, histories: &[TxnHistory]) -> Vec<Violation> {
    let mut installer: HashMap<(u64, &str, u64), usize> = HashMap::new();
    for (i, h) in histories.iter().enumerate() {
        for (table, key, version) in &h.writes {
            installer.entry((*table, key, *version)).or_insert(i);
        }
    }
    let mut violations = Vec::new();
    for (i, h) in histories.iter().enumerate() {
        for (table, key, version) in &h.reads {
            if let Some(&s) = installer.get(&(*table, key.as_str(), *version)) {
                if s > i {
                    violations.push(Violation::new(
                        InvariantId::IsoReadCommitOrder,
                        artifact,
                        format!(
                            "T{} (commit position {i}) read t{table}:{key}@{version} \
                             installed by T{} at later commit position {s}",
                            h.id, histories[s].id
                        ),
                    ));
                }
            }
        }
    }
    violations
}

/// Checks `ISO-03`: restart/version integrity. Each `(key, version)` has
/// exactly one installer; per-key installed versions strictly increase
/// in commit order; and a transaction's reads of keys it wrote never
/// observe a version newer than its own last install (read-your-restart
/// — a restarted transaction must still see its own writes, not an
/// orphan version left on the migration source).
pub fn check_restart_integrity(artifact: &str, histories: &[TxnHistory]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut installer: HashMap<(u64, &str, u64), usize> = HashMap::new();
    let mut last_version: HashMap<(u64, &str), (u64, usize)> = HashMap::new();
    for (i, h) in histories.iter().enumerate() {
        for (table, key, version) in &h.writes {
            if let Some(&first) = installer.get(&(*table, key.as_str(), *version)) {
                violations.push(Violation::new(
                    InvariantId::IsoRestartIntegrity,
                    artifact,
                    format!(
                        "t{table}:{key}@{version} installed twice: by T{} and T{}",
                        histories[first].id, h.id
                    ),
                ));
                continue;
            }
            installer.insert((*table, key.as_str(), *version), i);
            if let Some(&(prev, at)) = last_version.get(&(*table, key.as_str())) {
                if *version <= prev {
                    violations.push(Violation::new(
                        InvariantId::IsoRestartIntegrity,
                        artifact,
                        format!(
                            "t{table}:{key} version regressed: T{} installed @{version} \
                             after T{} installed @{prev}",
                            h.id, histories[at].id
                        ),
                    ));
                }
            }
            last_version.insert((*table, key.as_str()), (*version, i));
        }
        // Read-your-restart: reads of own-written keys never exceed the
        // transaction's last install of that key.
        let mut own_last: HashMap<(u64, &str), u64> = HashMap::new();
        for (table, key, version) in &h.writes {
            let e = own_last.entry((*table, key.as_str())).or_insert(0);
            *e = (*e).max(*version);
        }
        for (table, key, version) in &h.reads {
            if let Some(&own) = own_last.get(&(*table, key.as_str())) {
                if *version > own {
                    violations.push(Violation::new(
                        InvariantId::IsoRestartIntegrity,
                        artifact,
                        format!(
                            "T{}{} read t{table}:{key}@{version} beyond its own last \
                             install @{own} (orphan version)",
                            h.id,
                            if h.restarted { " (restarted)" } else { "" }
                        ),
                    ));
                }
            }
        }
    }
    violations
}

/// Runs the full `ISO-01..03` battery over decoded histories.
pub fn check_key_histories(artifact: &str, histories: &[TxnHistory]) -> Vec<Violation> {
    let mut violations = check_dsg_acyclic(artifact, histories);
    violations.extend(check_read_commit_order(artifact, histories));
    violations.extend(check_restart_integrity(artifact, histories));
    violations
}

/// Decodes the histories out of a trace and runs `ISO-01..03`. An
/// undecodable record is itself a violation (the checker must never
/// silently pass on evidence it cannot read).
pub fn check_events(artifact: &str, events: &[Event]) -> Vec<Violation> {
    match histories_of(events) {
        Ok(histories) => check_key_histories(artifact, &histories),
        Err(e) => vec![Violation::new(
            InvariantId::IsoDsgAcyclic,
            artifact,
            format!("undecodable key history: {e}"),
        )],
    }
}

/// Lists every DSG edge that points *backward* in the commit order. An
/// empty result means the commit order itself is a valid serial
/// execution of the history — the "serial witness" a shards=1 run must
/// always produce, since the inline engine executes transactions one at
/// a time in exactly that order.
pub fn serial_witness_errors(histories: &[TxnHistory]) -> Vec<String> {
    let dsg = build_dsg(histories);
    let mut errors = Vec::new();
    for (u, edges) in dsg.adj.iter().enumerate() {
        for e in edges {
            if e.to < u {
                errors.push(format!(
                    "backward edge T{} -{}({})-> T{} (commit positions {u} -> {})",
                    histories[u].id,
                    e.kind.label(),
                    dsg.key_label(e.key),
                    histories[e.to].id,
                    e.to
                ));
            }
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.invariant.code()).collect()
    }

    #[test]
    fn clean_serial_history_passes_everything() {
        // T1 installs k@1; T2 reads it and installs k@2; T3 reads k@2.
        let h = vec![
            TxnHistory::new(1).write(0, "k", 1),
            TxnHistory::new(2).read(0, "k", 1).write(0, "k", 2),
            TxnHistory::new(3).read(0, "k", 2),
        ];
        assert!(check_key_histories("t", &h).is_empty());
        assert!(serial_witness_errors(&h).is_empty());
        let stats = dsg_stats(&h);
        assert_eq!((stats.txns, stats.keys), (3, 1));
        // T2's "missed" version of k is its own install — a self-edge,
        // never emitted — so the only RW candidates vanish.
        assert_eq!((stats.wr, stats.ww, stats.rw), (2, 1, 0));
    }

    #[test]
    fn lost_update_cycle_is_named() {
        // Classic lost update: both transactions read k@1, both install —
        // T2's RW edge to T3 and T3's WR/WW ancestry close a cycle.
        let h = vec![
            TxnHistory::new(1).write(0, "k", 1),
            TxnHistory::new(2).read(0, "k", 1).write(0, "k", 2),
            TxnHistory::new(3).read(0, "k", 1).write(0, "k", 3),
        ];
        let violations = check_dsg_acyclic("t", &h);
        assert_eq!(codes(&violations), ["ISO-01"]);
        let detail = &violations[0].detail;
        // The cycle T2 -WW-> T3 -RW-> T2 (or a rotation) is named with
        // both transactions, edge kinds, and the key.
        assert!(detail.contains("T2"), "{detail}");
        assert!(detail.contains("T3"), "{detail}");
        assert!(detail.contains("(t0:k)"), "{detail}");
        assert!(detail.contains("RW"), "{detail}");
    }

    #[test]
    fn write_skew_cycle_is_named() {
        // T2 reads a, writes b; T3 reads b (stale), writes a: two RW
        // anti-dependencies forming a cycle — serializable nowhere.
        let h = vec![
            TxnHistory::new(1).write(0, "a", 1).write(0, "b", 1),
            TxnHistory::new(2).read(0, "a", 1).write(0, "b", 2),
            TxnHistory::new(3).read(0, "b", 1).write(0, "a", 2),
        ];
        let violations = check_dsg_acyclic("t", &h);
        assert_eq!(codes(&violations), ["ISO-01"]);
        let detail = &violations[0].detail;
        assert!(detail.contains("RW"), "{detail}");
        assert!(detail.contains("T2") && detail.contains("T3"), "{detail}");
    }

    #[test]
    fn read_from_the_future_fails_iso02() {
        let h = vec![
            TxnHistory::new(1).read(0, "k", 1),
            TxnHistory::new(2).write(0, "k", 1),
        ];
        let violations = check_read_commit_order("t", &h);
        assert_eq!(codes(&violations), ["ISO-02"]);
        assert!(violations[0].detail.contains("later commit position"));
    }

    #[test]
    fn version_integrity_failures_fail_iso03() {
        // Duplicate installer.
        let dup = vec![
            TxnHistory::new(1).write(0, "k", 1),
            TxnHistory::new(2).write(0, "k", 1),
        ];
        assert_eq!(codes(&check_restart_integrity("t", &dup)), ["ISO-03"]);
        // Version regression in commit order.
        let regress = vec![
            TxnHistory::new(1).write(0, "k", 5),
            TxnHistory::new(2).write(0, "k", 3),
        ];
        assert_eq!(codes(&check_restart_integrity("t", &regress)), ["ISO-03"]);
        // Orphan read beyond own install on a restarted transaction.
        let orphan = vec![TxnHistory::new(1)
            .restarted()
            .write(0, "k", 2)
            .read(0, "k", 7)];
        let violations = check_restart_integrity("t", &orphan);
        assert_eq!(codes(&violations), ["ISO-03"]);
        assert!(violations[0].detail.contains("restarted"));
    }

    #[test]
    fn histories_decode_from_events_and_skip_capture_off_records() {
        let thin = Event::new(kinds::TXN_RWSET).with("id", 1u64);
        let fat = Event::new(kinds::TXN_RWSET)
            .with("id", 2u64)
            .with("restarted", true)
            .with("committed", true)
            .with(
                "rset",
                pstore_telemetry::encode_key_versions(vec![(0, "k".into(), 1)]),
            )
            .with(
                "wset",
                pstore_telemetry::encode_key_versions(vec![(0, "k".into(), 2)]),
            );
        let histories = histories_of(&[thin, fat]).unwrap();
        assert_eq!(histories.len(), 1);
        assert_eq!(histories[0].id, 2);
        assert!(histories[0].restarted);
        assert_eq!(histories[0].reads, vec![(0, "k".to_string(), 1)]);
        assert_eq!(histories[0].writes, vec![(0, "k".to_string(), 2)]);

        let bad = Event::new(kinds::TXN_RWSET)
            .with("id", 3u64)
            .with("rset", "no-grammar")
            .with("wset", "");
        let violations = check_events("t", &[bad]);
        assert_eq!(codes(&violations), ["ISO-01"]);
        assert!(violations[0].detail.contains("undecodable"));
    }

    #[test]
    fn serial_witness_flags_backward_edges() {
        // Commit order T1 then T2, but T1 read the version T2 installed:
        // the WR edge points backward.
        let h = vec![
            TxnHistory::new(1).read(0, "k", 1),
            TxnHistory::new(2).write(0, "k", 1),
        ];
        let errors = serial_witness_errors(&h);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].contains("backward edge T2 -WR(t0:k)-> T1"));
    }
}
