//! Checks for move sequences against a planning horizon (Algorithm 2).
//!
//! The structural checks `MOV-02..04` (durations, no-op length, chaining
//! contiguity) live in [`pstore_core::check_moves`] so the producer can
//! assert them too; this module layers the horizon-tiling check on top: a plan for
//! a horizon of `t_max` intervals must start at interval 0 and end exactly
//! at `t_max`, with no gap before the first move or after the last.

use pstore_core::{check_moves, InvariantId, MoveSeq, Violation};

/// Checks a move sequence's structural invariants plus `MOV-01` horizon
/// tiling: the moves must cover exactly `[0, horizon)`.
///
/// A zero-length horizon (a single-interval plan) must produce an empty
/// sequence; any longer horizon must be tiled completely.
pub fn check_move_seq(seq: &MoveSeq, horizon: usize) -> Vec<Violation> {
    let mut out = check_moves(seq.moves());
    let artifact = format!("plan [{seq}] over {horizon} intervals");
    match (seq.moves().first(), seq.moves().last()) {
        (None, _) | (_, None) => {
            if horizon > 0 {
                out.push(Violation::new(
                    InvariantId::MoveTiling,
                    artifact,
                    format!("empty plan for a {horizon}-interval horizon"),
                ));
            }
        }
        (Some(first), Some(last)) => {
            if horizon == 0 {
                out.push(Violation::new(
                    InvariantId::MoveTiling,
                    artifact,
                    "non-empty plan for a zero-interval horizon".to_string(),
                ));
            } else {
                if first.start != 0 {
                    out.push(Violation::new(
                        InvariantId::MoveTiling,
                        artifact.clone(),
                        format!("first move starts at {} instead of 0", first.start),
                    ));
                }
                if last.end != horizon {
                    out.push(Violation::new(
                        InvariantId::MoveTiling,
                        artifact,
                        format!("last move ends at {} instead of {horizon}", last.end),
                    ));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstore_core::Move;

    #[test]
    fn tiled_sequence_is_clean() {
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 4,
                from: 2,
                to: 5,
            },
        ]);
        assert!(check_move_seq(&seq, 4).is_empty());
    }

    #[test]
    fn short_sequence_is_flagged() {
        let seq = MoveSeq::new(vec![Move {
            start: 0,
            end: 1,
            from: 2,
            to: 2,
        }]);
        let v = check_move_seq(&seq, 3);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantId::MoveTiling);
    }

    #[test]
    fn empty_sequence_needs_empty_horizon() {
        assert!(check_move_seq(&MoveSeq::default(), 0).is_empty());
        assert!(!check_move_seq(&MoveSeq::default(), 2).is_empty());
    }
}
