//! Checks for planner output (Algorithms 1–3).
//!
//! [`check_plan`] validates a plan the DP produced for a load horizon:
//! structure and horizon tiling (via [`crate::moves`]), correct endpoints
//! (`PLN-02`), and — independently of the planner's own bookkeeping —
//! that predicted load never exceeds capacity, *including the effective
//! capacity of Equation 7 while data is in flight* (`PLN-01`).
//!
//! [`check_plan_optimality`] goes further on small instances: it re-solves
//! the planning problem with a brute-force depth-first enumeration of every
//! move sequence and cross-checks feasibility, the final machine count (the
//! DP prefers ending with as few machines as possible) and the optimal cost
//! (`PLN-03`). The oracle deliberately reimplements durations, feasibility
//! and costs from the `cost_model` primitives rather than calling into the
//! planner, so a bug in the DP cannot hide in a shared helper.

use pstore_core::cost_model::{avg_machines_allocated, cap, eff_cap, machines_for_load, move_time};
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_core::{InvariantId, MoveSeq, Violation};

/// Tolerance when comparing the DP's plan cost with the oracle's optimum
/// (both are short sums of rationals from Algorithm 4).
const COST_TOL: f64 = 1e-6;

/// Checks a planner's output for one load scenario: structure, endpoints
/// (`PLN-02`) and independent capacity verification (`PLN-01`).
///
/// Returning `None` from the planner (no feasible plan) is legitimate and
/// produces no violations here; [`check_plan_optimality`] catches wrongly
/// reported infeasibility on small instances.
pub fn check_plan(planner: &Planner, load: &[f64], n0: u32, label: &str) -> Vec<Violation> {
    let Some(seq) = planner.best_moves(load, n0) else {
        return Vec::new();
    };
    check_produced_plan(planner, &seq, load, n0, label)
}

/// Checks an already-produced plan (used by [`check_plan`] and the tests).
pub fn check_produced_plan(
    planner: &Planner,
    seq: &MoveSeq,
    load: &[f64],
    n0: u32,
    label: &str,
) -> Vec<Violation> {
    let t_max = load.len() - 1;
    let artifact = format!("plan for {label} (n0={n0}, horizon={t_max})");
    let mut out = crate::moves::check_move_seq(seq, t_max);

    // PLN-02: the plan starts from the current allocation at t = 0. The
    // start/end interval bounds are already covered by MOV-01 above.
    if let Some(first) = seq.moves().first() {
        if first.from != n0 {
            out.push(Violation::new(
                InvariantId::PlanStart,
                artifact.clone(),
                format!(
                    "plan starts from {} machines instead of n0={n0}",
                    first.from
                ),
            ));
        }
    }

    // PLN-01: independent capacity check. At t = 0 the initial allocation
    // must carry the measured load; during every move, predicted load must
    // stay under the effective capacity of Eq 7 at the migration progress
    // reached by that interval.
    let q = planner.config().q;
    if load[0] > cap(n0, q) {
        out.push(Violation::new(
            InvariantId::PlanCapacity,
            artifact.clone(),
            format!(
                "initial load {:.1} exceeds capacity {:.1} of n0={n0}",
                load[0],
                cap(n0, q)
            ),
        ));
    }
    for m in seq.moves() {
        let dur = m.duration();
        for i in 1..=dur {
            let t = m.start + i;
            if t > t_max {
                // Already reported as a tiling violation.
                continue;
            }
            let capacity = if m.is_noop() {
                cap(m.from, q)
            } else {
                eff_cap(m.from, m.to, i as f64 / dur as f64, q)
            };
            if load[t] > capacity {
                out.push(Violation::new(
                    InvariantId::PlanCapacity,
                    artifact.clone(),
                    format!(
                        "load {:.1} exceeds effective capacity {:.1} at t={t} during {m}",
                        load[t], capacity
                    ),
                ));
            }
        }
    }
    out
}

/// `PLN-03`: cross-checks the DP against a brute-force oracle. Only safe on
/// small instances (the oracle enumerates every move sequence) and only
/// meaningful for planners with the paper-default options.
pub fn check_plan_optimality(
    planner: &Planner,
    load: &[f64],
    n0: u32,
    label: &str,
) -> Vec<Violation> {
    let t_max = load.len() - 1;
    let artifact = format!("plan for {label} (n0={n0}, horizon={t_max})");
    let dp = planner.best_moves(load, n0);
    let oracle = brute_force_optimum(planner.config(), load, n0);
    match (dp, oracle) {
        (None, None) => Vec::new(),
        (None, Some((end, cost))) => vec![Violation::new(
            InvariantId::PlanOptimality,
            artifact,
            format!(
                "planner reported infeasible but a plan ending at {end} machines with cost {cost} exists"
            ),
        )],
        (Some(seq), None) => vec![Violation::new(
            InvariantId::PlanOptimality,
            artifact,
            format!("planner produced [{seq}] but the oracle finds no feasible plan"),
        )],
        (Some(seq), Some((end, cost))) => {
            let mut out = Vec::new();
            let dp_end = seq.final_machines().unwrap_or(n0);
            if dp_end != end {
                out.push(Violation::new(
                    InvariantId::PlanOptimality,
                    artifact.clone(),
                    format!(
                        "plan ends with {dp_end} machines; the fewest feasible is {end}"
                    ),
                ));
            } else {
                let dp_cost = plan_cost(&seq, n0);
                if (dp_cost - cost).abs() > COST_TOL {
                    out.push(Violation::new(
                        InvariantId::PlanOptimality,
                        artifact.clone(),
                        format!("plan costs {dp_cost} machine-intervals, optimum is {cost}"),
                    ));
                }
            }
            out
        }
    }
}

/// The DP's accounting for a produced plan: `n0` machine-intervals for the
/// initial interval plus Algorithm 4's average allocation per move.
fn plan_cost(seq: &MoveSeq, n0: u32) -> f64 {
    let mut cost = n0 as f64;
    for m in seq.moves() {
        cost += if m.is_noop() {
            m.from as f64
        } else {
            avg_machines_allocated(m.from, m.to) * m.duration() as f64
        };
    }
    cost
}

/// Exhaustively enumerates every feasible move sequence over the horizon
/// and returns `(fewest feasible end machines, min cost among plans ending
/// there)`, mirroring the DP's objective; `None` when nothing is feasible.
fn brute_force_optimum(cfg: &PlannerConfig, load: &[f64], n0: u32) -> Option<(u32, f64)> {
    let q = cfg.q;
    if load[0] > cap(n0, q) {
        return None;
    }
    let t_max = load.len() - 1;
    if t_max == 0 {
        return Some((n0, n0 as f64));
    }
    let peak = load.iter().copied().fold(0.0, f64::max);
    let z = machines_for_load(peak, q)
        .max(n0)
        .clamp(1, cfg.max_machines);

    // best[n] = min cost of a feasible sequence ending at (t_max, n).
    let mut best = vec![f64::INFINITY; z as usize + 1];
    let mut stack: Vec<(usize, u32, f64)> = vec![(0, n0, n0 as f64)];
    while let Some((t, b, cost)) = stack.pop() {
        if t == t_max {
            let slot = &mut best[b as usize];
            if cost < *slot {
                *slot = cost;
            }
            continue;
        }
        for a in 1..=z {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // ceil of a non-negative finite move time
            let dur = if a == b {
                1
            } else {
                (move_time(b, a, cfg.partitions_per_node, cfg.d_intervals).ceil() as usize).max(1)
            };
            if t + dur > t_max {
                continue;
            }
            let feasible = (1..=dur).all(|i| {
                let capacity = if a == b {
                    cap(b, q)
                } else {
                    eff_cap(b, a, i as f64 / dur as f64, q)
                };
                load[t + i] <= capacity
            });
            if !feasible {
                continue;
            }
            let step = if a == b {
                b as f64
            } else {
                avg_machines_allocated(b, a) * dur as f64
            };
            stack.push((t + dur, a, cost + step));
        }
    }
    let end = (1..=z).find(|&n| best[n as usize].is_finite())?;
    Some((end, best[end as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstore_core::planner::Planner;

    fn planner(max: u32, d: f64) -> Planner {
        Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: d,
            partitions_per_node: 1,
            max_machines: max,
        })
    }

    #[test]
    fn feasible_plan_is_clean() {
        let p = planner(10, 0.5);
        let load = vec![150.0, 250.0, 350.0, 150.0];
        assert!(check_plan(&p, &load, 2, "test").is_empty());
    }

    #[test]
    fn optimality_agrees_on_small_instances() {
        let p = planner(4, 0.5);
        for load in [
            vec![150.0, 250.0, 350.0, 150.0],
            vec![150.0, 150.0, 380.0, 380.0, 120.0],
            vec![110.0, 310.0, 110.0, 310.0],
        ] {
            let v = check_plan_optimality(&p, &load, 2, "test");
            assert!(v.is_empty(), "{load:?}: {v:?}");
        }
    }

    #[test]
    fn optimality_agrees_with_slow_moves() {
        let p = planner(5, 4.0);
        let mut load = vec![150.0; 7];
        for v in &mut load[4..] {
            *v = 420.0;
        }
        let v = check_plan_optimality(&p, &load, 2, "test");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn infeasible_scenarios_agree() {
        let p = planner(4, 8.0);
        // The jump at t = 1 leaves no time to migrate.
        let load = vec![150.0, 800.0, 800.0];
        assert!(check_plan_optimality(&p, &load, 2, "test").is_empty());
    }

    #[test]
    fn capacity_check_catches_an_overloaded_plan() {
        use pstore_core::Move;
        let p = planner(10, 0.5);
        let load = vec![150.0, 500.0, 150.0];
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 2,
                from: 2,
                to: 2,
            },
        ]);
        let v = check_produced_plan(&p, &seq, &load, 2, "test");
        assert!(v.iter().any(|v| v.invariant == InvariantId::PlanCapacity));
    }
}
