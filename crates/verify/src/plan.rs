//! Checks for planner output (Algorithms 1–3).
//!
//! [`check_plan`] validates a plan the DP produced for a load horizon:
//! structure and horizon tiling (via [`crate::moves`]), correct endpoints
//! (`PLN-02`), and — independently of the planner's own bookkeeping —
//! that predicted load never exceeds capacity, *including the effective
//! capacity of Equation 7 while data is in flight* (`PLN-01`).
//!
//! [`check_plan_optimality`] goes further: it re-solves the planning
//! problem with an independent oracle and cross-checks feasibility, the
//! final machine count (the DP prefers ending with as few machines as
//! possible) and the optimal cost (`PLN-03`). Two oracles exist:
//!
//! * [`brute_force_optimum`] — a naive depth-first enumeration of every
//!   move sequence. Exponential, only tractable on tiny instances, but
//!   trivially auditable; kept as the reference the memoised oracle is
//!   property-tested against.
//! * [`memoised_optimum`] — a forward value-iteration over `(interval,
//!   machine-count)` states with a memoised move-duration table (durations
//!   are symmetric in `(from, to)` because a scale-in schedule is the
//!   time-reverse of the matching scale-out, `SCH-07`). Polynomial, so the
//!   sweep can validate instances an order of magnitude larger.
//!
//! Both oracles deliberately reimplement durations, feasibility and costs
//! from the `cost_model` primitives rather than calling into the planner,
//! so a bug in the DP cannot hide in a shared helper.

use pstore_core::cost_model::{avg_machines_allocated, cap, eff_cap, machines_for_load, move_time};
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_core::{InvariantId, MoveSeq, Violation};

/// Tolerance when comparing the DP's plan cost with the oracle's optimum
/// (both are short sums of rationals from Algorithm 4).
const COST_TOL: f64 = 1e-6;

/// Checks a planner's output for one load scenario: structure, endpoints
/// (`PLN-02`) and independent capacity verification (`PLN-01`).
///
/// Returning `None` from the planner (no feasible plan) is legitimate and
/// produces no violations here; [`check_plan_optimality`] catches wrongly
/// reported infeasibility on small instances.
pub fn check_plan(planner: &Planner, load: &[f64], n0: u32, label: &str) -> Vec<Violation> {
    let Some(seq) = planner.best_moves(load, n0) else {
        return Vec::new();
    };
    check_produced_plan(planner, &seq, load, n0, label)
}

/// Checks an already-produced plan (used by [`check_plan`] and the tests).
pub fn check_produced_plan(
    planner: &Planner,
    seq: &MoveSeq,
    load: &[f64],
    n0: u32,
    label: &str,
) -> Vec<Violation> {
    let t_max = load.len() - 1;
    let artifact = format!("plan for {label} (n0={n0}, horizon={t_max})");
    let mut out = crate::moves::check_move_seq(seq, t_max);

    // PLN-02: the plan starts from the current allocation at t = 0. The
    // start/end interval bounds are already covered by MOV-01 above.
    if let Some(first) = seq.moves().first() {
        if first.from != n0 {
            out.push(Violation::new(
                InvariantId::PlanStart,
                artifact.clone(),
                format!(
                    "plan starts from {} machines instead of n0={n0}",
                    first.from
                ),
            ));
        }
    }

    // PLN-01: independent capacity check. At t = 0 the initial allocation
    // must carry the measured load; during every move, predicted load must
    // stay under the effective capacity of Eq 7 at the migration progress
    // reached by that interval.
    let q = planner.config().q;
    if load[0] > cap(n0, q) {
        out.push(Violation::new(
            InvariantId::PlanCapacity,
            artifact.clone(),
            format!(
                "initial load {:.1} exceeds capacity {:.1} of n0={n0}",
                load[0],
                cap(n0, q)
            ),
        ));
    }
    for m in seq.moves() {
        let dur = m.duration();
        for i in 1..=dur {
            let t = m.start + i;
            if t > t_max {
                // Already reported as a tiling violation.
                continue;
            }
            let capacity = if m.is_noop() {
                cap(m.from, q)
            } else {
                eff_cap(m.from, m.to, i as f64 / dur as f64, q)
            };
            if load[t] > capacity {
                out.push(Violation::new(
                    InvariantId::PlanCapacity,
                    artifact.clone(),
                    format!(
                        "load {:.1} exceeds effective capacity {:.1} at t={t} during {m}",
                        load[t], capacity
                    ),
                ));
            }
        }
    }
    out
}

/// `PLN-03`: cross-checks the DP against the memoised oracle
/// ([`memoised_optimum`]), which is polynomial in `machines × horizon` and
/// therefore safe on instances well beyond what the naive enumeration can
/// handle. Only meaningful for planners with the paper-default options.
pub fn check_plan_optimality(
    planner: &Planner,
    load: &[f64],
    n0: u32,
    label: &str,
) -> Vec<Violation> {
    let t_max = load.len() - 1;
    let artifact = format!("plan for {label} (n0={n0}, horizon={t_max})");
    let dp = planner.best_moves(load, n0);
    let oracle = memoised_optimum(planner.config(), load, n0);
    match (dp, oracle) {
        (None, None) => Vec::new(),
        (None, Some((end, cost))) => vec![Violation::new(
            InvariantId::PlanOptimality,
            artifact,
            format!(
                "planner reported infeasible but a plan ending at {end} machines with cost {cost} exists"
            ),
        )],
        (Some(seq), None) => vec![Violation::new(
            InvariantId::PlanOptimality,
            artifact,
            format!("planner produced [{seq}] but the oracle finds no feasible plan"),
        )],
        (Some(seq), Some((end, cost))) => {
            let mut out = Vec::new();
            let dp_end = seq.final_machines().unwrap_or(n0);
            if dp_end != end {
                out.push(Violation::new(
                    InvariantId::PlanOptimality,
                    artifact.clone(),
                    format!(
                        "plan ends with {dp_end} machines; the fewest feasible is {end}"
                    ),
                ));
            } else {
                let dp_cost = plan_cost(&seq, n0);
                if (dp_cost - cost).abs() > COST_TOL {
                    out.push(Violation::new(
                        InvariantId::PlanOptimality,
                        artifact.clone(),
                        format!("plan costs {dp_cost} machine-intervals, optimum is {cost}"),
                    ));
                }
            }
            out
        }
    }
}

/// The DP's accounting for a produced plan: `n0` machine-intervals for the
/// initial interval plus Algorithm 4's average allocation per move.
fn plan_cost(seq: &MoveSeq, n0: u32) -> f64 {
    let mut cost = n0 as f64;
    for m in seq.moves() {
        cost += if m.is_noop() {
            m.from as f64
        } else {
            avg_machines_allocated(m.from, m.to) * m.duration() as f64
        };
    }
    cost
}

/// Exhaustively enumerates every feasible move sequence over the horizon
/// and returns `(fewest feasible end machines, min cost among plans ending
/// there)`, mirroring the DP's objective; `None` when nothing is feasible.
///
/// Exponential in the horizon (it revisits a `(t, n)` state once per
/// distinct path into it), so only tractable on tiny instances. Kept
/// public as the auditable reference that [`memoised_optimum`] is
/// property-tested against.
pub fn brute_force_optimum(cfg: &PlannerConfig, load: &[f64], n0: u32) -> Option<(u32, f64)> {
    let q = cfg.q;
    if load[0] > cap(n0, q) {
        return None;
    }
    let t_max = load.len() - 1;
    if t_max == 0 {
        return Some((n0, n0 as f64));
    }
    let peak = load.iter().copied().fold(0.0, f64::max);
    let z = machines_for_load(peak, q)
        .max(n0)
        .clamp(1, cfg.max_machines);

    // best[n] = min cost of a feasible sequence ending at (t_max, n).
    let mut best = vec![f64::INFINITY; z as usize + 1];
    let mut stack: Vec<(usize, u32, f64)> = vec![(0, n0, n0 as f64)];
    while let Some((t, b, cost)) = stack.pop() {
        if t == t_max {
            let slot = &mut best[b as usize];
            if cost < *slot {
                *slot = cost;
            }
            continue;
        }
        for a in 1..=z {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // ceil of a non-negative finite move time
            let dur = if a == b {
                1
            } else {
                (move_time(b, a, cfg.partitions_per_node, cfg.d_intervals).ceil() as usize).max(1)
            };
            if t + dur > t_max {
                continue;
            }
            let feasible = (1..=dur).all(|i| {
                let capacity = if a == b {
                    cap(b, q)
                } else {
                    eff_cap(b, a, i as f64 / dur as f64, q)
                };
                load[t + i] <= capacity
            });
            if !feasible {
                continue;
            }
            let step = if a == b {
                b as f64
            } else {
                avg_machines_allocated(b, a) * dur as f64
            };
            stack.push((t + dur, a, cost + step));
        }
    }
    let end = (1..=z).find(|&n| best[n as usize].is_finite())?;
    Some((end, best[end as usize]))
}

/// Memoised optimality oracle: same objective and primitives as
/// [`brute_force_optimum`], but a forward value-iteration over
/// `(interval, machine-count)` states, so each state is expanded once
/// regardless of how many move sequences reach it. Move durations are
/// precomputed once per *unordered* machine pair — `SCH-07` makes the
/// scale-in schedule the time-reverse of the matching scale-out, so
/// `move_time` is symmetric in `(from, to)`.
///
/// The state collapse is sound because the feasibility and cost of any
/// continuation depend only on the current `(interval, machines)` state,
/// never on how it was reached; `O(z² · horizon · max_duration)` overall.
pub fn memoised_optimum(cfg: &PlannerConfig, load: &[f64], n0: u32) -> Option<(u32, f64)> {
    let q = cfg.q;
    if load[0] > cap(n0, q) {
        return None;
    }
    let t_max = load.len() - 1;
    if t_max == 0 {
        return Some((n0, n0 as f64));
    }
    let peak = load.iter().copied().fold(0.0, f64::max);
    let z = machines_for_load(peak, q)
        .max(n0)
        .clamp(1, cfg.max_machines);
    let zu = z as usize;

    // Duration memo, filled once per unordered pair (symmetry pruning);
    // the diagonal stays at the single-interval no-op duration.
    let mut dur = vec![vec![1usize; zu + 1]; zu + 1];
    for b in 1..=z {
        for a in (b + 1)..=z {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            // ceil of a non-negative finite move time
            let d =
                (move_time(b, a, cfg.partitions_per_node, cfg.d_intervals).ceil() as usize).max(1);
            dur[b as usize][a as usize] = d;
            dur[a as usize][b as usize] = d;
        }
    }

    // best[t][n] = min cost of a feasible move sequence reaching
    // (interval t, n machines); the initial interval itself costs n0.
    let mut best = vec![vec![f64::INFINITY; zu + 1]; t_max + 1];
    best[0][n0 as usize] = n0 as f64;
    for t in 0..t_max {
        for b in 1..=z {
            let cost = best[t][b as usize];
            if !cost.is_finite() {
                continue;
            }
            for a in 1..=z {
                let d = dur[b as usize][a as usize];
                if t + d > t_max {
                    continue;
                }
                let feasible = (1..=d).all(|i| {
                    let capacity = if a == b {
                        cap(b, q)
                    } else {
                        eff_cap(b, a, i as f64 / d as f64, q)
                    };
                    load[t + i] <= capacity
                });
                if !feasible {
                    continue;
                }
                let step = if a == b {
                    b as f64
                } else {
                    avg_machines_allocated(b, a) * d as f64
                };
                let slot = &mut best[t + d][a as usize];
                if cost + step < *slot {
                    *slot = cost + step;
                }
            }
        }
    }
    let end = (1..=z).find(|&n| best[t_max][n as usize].is_finite())?;
    Some((end, best[t_max][end as usize]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstore_core::planner::Planner;

    fn planner(max: u32, d: f64) -> Planner {
        Planner::new(PlannerConfig {
            q: 100.0,
            d_intervals: d,
            partitions_per_node: 1,
            max_machines: max,
        })
    }

    #[test]
    fn feasible_plan_is_clean() {
        let p = planner(10, 0.5);
        let load = vec![150.0, 250.0, 350.0, 150.0];
        assert!(check_plan(&p, &load, 2, "test").is_empty());
    }

    #[test]
    fn plan_starting_off_n0_violates_plan_start() {
        // PLN-02: a plan must depart from the current allocation. Feed a
        // hand-built sequence that starts from 4 machines when n0 = 2.
        let p = planner(10, 0.5);
        let load = vec![150.0, 250.0, 150.0];
        let seq = MoveSeq::new(vec![
            pstore_core::Move {
                start: 0,
                end: 1,
                from: 4,
                to: 4,
            },
            pstore_core::Move {
                start: 1,
                end: 2,
                from: 4,
                to: 4,
            },
        ]);
        let v = check_produced_plan(&p, &seq, &load, 2, "test");
        assert!(
            v.iter().any(|v| v.invariant == InvariantId::PlanStart),
            "expected a PLN-02 violation, got {v:?}"
        );
    }

    #[test]
    fn optimality_agrees_on_small_instances() {
        let p = planner(4, 0.5);
        for load in [
            vec![150.0, 250.0, 350.0, 150.0],
            vec![150.0, 150.0, 380.0, 380.0, 120.0],
            vec![110.0, 310.0, 110.0, 310.0],
        ] {
            let v = check_plan_optimality(&p, &load, 2, "test");
            assert!(v.is_empty(), "{load:?}: {v:?}");
        }
    }

    #[test]
    fn optimality_agrees_with_slow_moves() {
        let p = planner(5, 4.0);
        let mut load = vec![150.0; 7];
        for v in &mut load[4..] {
            *v = 420.0;
        }
        let v = check_plan_optimality(&p, &load, 2, "test");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn infeasible_scenarios_agree() {
        let p = planner(4, 8.0);
        // The jump at t = 1 leaves no time to migrate.
        let load = vec![150.0, 800.0, 800.0];
        assert!(check_plan_optimality(&p, &load, 2, "test").is_empty());
    }

    #[test]
    fn memoised_oracle_agrees_with_naive_enumeration() {
        for (max, d, n0, load) in [
            (4, 0.5, 2, vec![150.0, 250.0, 350.0, 150.0]),
            (4, 0.5, 2, vec![150.0, 150.0, 380.0, 380.0, 120.0]),
            (
                5,
                4.0,
                1,
                vec![90.0, 90.0, 200.0, 420.0, 420.0, 150.0, 90.0],
            ),
            (4, 8.0, 2, vec![150.0, 800.0, 800.0]),
            (3, 1.5, 3, vec![250.0, 120.0, 120.0, 120.0, 120.0]),
        ] {
            let p = planner(max, d);
            let naive = brute_force_optimum(p.config(), &load, n0);
            let memo = memoised_optimum(p.config(), &load, n0);
            match (naive, memo) {
                (None, None) => {}
                (Some((ne, nc)), Some((me, mc))) => {
                    assert_eq!(ne, me, "{load:?}: end machines disagree");
                    assert!(
                        (nc - mc).abs() <= COST_TOL,
                        "{load:?}: naive cost {nc} vs memoised {mc}"
                    );
                }
                other => panic!("{load:?}: feasibility disagreement {other:?}"),
            }
        }
    }

    #[test]
    fn optimality_holds_on_widened_instances() {
        // 12 machines × 16-interval horizon: nodes × horizon = 192, well
        // past where the naive enumeration is tractable, but the memoised
        // oracle cross-checks the DP in well under a second.
        let p = planner(12, 3.0);
        let load: Vec<f64> = (0..=16)
            .map(|t| {
                let x = t as f64 / 16.0;
                180.0 + 900.0 * (std::f64::consts::PI * x).sin().max(0.0)
            })
            .collect();
        let v = check_plan_optimality(&p, &load, 2, "widened");
        assert!(v.is_empty(), "{v:?}");

        // And a step curve that forces both scale-out and scale-in.
        let mut step = vec![160.0; 17];
        for v in &mut step[5..11] {
            *v = 1_050.0;
        }
        let v = check_plan_optimality(&p, &step, 2, "widened-step");
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn capacity_check_catches_an_overloaded_plan() {
        use pstore_core::Move;
        let p = planner(10, 0.5);
        let load = vec![150.0, 500.0, 150.0];
        let seq = MoveSeq::new(vec![
            Move {
                start: 0,
                end: 1,
                from: 2,
                to: 2,
            },
            Move {
                start: 1,
                end: 2,
                from: 2,
                to: 2,
            },
        ]);
        let v = check_produced_plan(&p, &seq, &load, 2, "test");
        assert!(v.iter().any(|v| v.invariant == InvariantId::PlanCapacity));
    }
}
