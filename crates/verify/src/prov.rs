//! Provisioning-observatory checkers: the `PRV-*` invariant family.
//!
//! The control loop narrates itself through `prov_*` events (see
//! docs/observability.md): one `prov_run` header per simulated run, a
//! `prov_interval` per monitor tick, a `prov_forecast` per scored
//! (model, horizon, target-interval) triple, a `prov_decision` per
//! controller decision and a `prov_reconfig` (plus `prov_chunk`s) per
//! completed migration. This module re-parses those events *raw* —
//! independently of the production analyzer in
//! [`pstore_telemetry::prov`] — and cross-checks the two:
//!
//! - `PRV-01` (ledger conservation): the capacity ledger's provisioned
//!   machine-seconds equal the integral of the per-interval machine
//!   counts, `provisioned - ideal == over - under` holds exactly, every
//!   interval is recorded once, an attributed reconfiguration's
//!   `from`/`to` machine counts reconcile with its decision's
//!   `machines`/`target`, and per-move chunk bytes/counts sum to the
//!   move's ledger row;
//! - `PRV-02` (decision causality): decision ids are unique and
//!   positive, every reconfiguration traces to exactly one decision, no
//!   decision drives two moves, no move starts before its decision, and
//!   a predictive decision with lead `L` starts its migration at least
//!   `L - 1` intervals before the demand rise it targets;
//! - `PRV-03` (forecast bookkeeping): every scored (model, horizon,
//!   target-interval) triple appears exactly once, and each score's
//!   `observed` matches the demand the monitor recorded for that
//!   interval.
//!
//! The `pstore-verify` binary replays fixed-seed reactive and
//! predictive runs at shard counts {1, 4} through these checkers (the
//! `prov` sweep in `main.rs`).

use pstore_core::{InvariantId, Violation};
use pstore_telemetry::{kinds, prov, Event};
use std::collections::BTreeMap;

/// Relative tolerance for machine-second and load comparisons (the
/// quantities are sums of well-conditioned products, so anything beyond
/// accumulated rounding is a real bookkeeping error).
const REL_TOL: f64 = 1e-6;

/// Whether two floats agree to within [`REL_TOL`] (relative, with an
/// absolute floor of `REL_TOL` near zero).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= REL_TOL * a.abs().max(b.abs()).max(1.0)
}

/// One `prov_decision` event, raw.
#[derive(Debug, Clone)]
pub struct RawDecision {
    /// Per-controller decision id (1-based; 0 = unattributed).
    pub id: u64,
    /// Monitoring interval the decision was taken in.
    pub interval: u64,
    /// Machines active when the decision was taken.
    pub machines: u64,
    /// Machines the decision moves to.
    pub target: u64,
    /// Lead in monitoring intervals (0 = reactive / emergency).
    pub lead: u64,
    /// Simulated decision time in seconds.
    pub t: f64,
}

/// One `prov_reconfig` event, raw.
#[derive(Debug, Clone)]
pub struct RawReconfig {
    /// Decision id the move is attributed to (0 = unattributed).
    pub id: u64,
    /// Machine count the move started from.
    pub from: u64,
    /// Machine count the move ended at.
    pub to: u64,
    /// Simulated start time in seconds.
    pub start: f64,
    /// Chunks the move transferred.
    pub chunks: u64,
    /// Bytes the move transferred.
    pub bytes: u64,
}

/// One `prov_forecast` event, raw.
#[derive(Debug, Clone)]
pub struct RawScore {
    /// Forecast model name.
    pub model: String,
    /// Horizon in intervals the prediction was made at.
    pub horizon: u64,
    /// Target interval the prediction was scored against.
    pub interval: u64,
    /// Measured load of the target interval, as the score recorded it.
    pub observed: f64,
}

/// One run's provisioning events, re-parsed independently of
/// [`pstore_telemetry::prov::analyze`]. Runs are segmented on
/// `prov_run` headers; prov events before the first header form an
/// implicit run with default units.
#[derive(Debug, Clone)]
pub struct RawRun {
    /// Display label (`run{i}`).
    pub label: String,
    /// Per-machine capacity `Q` from the run header (0 when absent).
    pub q: f64,
    /// Monitoring interval length in seconds (1 when absent).
    pub interval_s: f64,
    /// `(interval, machines, observed load)` per monitor tick.
    pub intervals: Vec<(u64, u64, f64)>,
    /// Controller decisions in emission order.
    pub decisions: Vec<RawDecision>,
    /// Completed reconfigurations in emission order.
    pub reconfigs: Vec<RawReconfig>,
    /// Forecast scores in emission order.
    pub scores: Vec<RawScore>,
    /// `(decision id, bytes)` per migrated chunk.
    pub chunks: Vec<(u64, u64)>,
}

impl RawRun {
    fn new(label: String) -> Self {
        RawRun {
            label,
            q: 0.0,
            interval_s: 1.0,
            intervals: Vec::new(),
            decisions: Vec::new(),
            reconfigs: Vec::new(),
            scores: Vec::new(),
            chunks: Vec::new(),
        }
    }

    /// Whether the run carries any provisioning evidence at all.
    pub fn is_empty(&self) -> bool {
        self.intervals.is_empty()
            && self.decisions.is_empty()
            && self.reconfigs.is_empty()
            && self.scores.is_empty()
            && self.chunks.is_empty()
    }
}

/// Splits a trace into runs on `prov_run` headers and decodes the raw
/// provisioning events of each. Non-prov events are ignored, so this
/// segmentation is independent of the span-based one in
/// [`pstore_telemetry::prov::analyze`] — two differently-derived views
/// of the same trace for the checkers to reconcile.
pub fn raw_runs(events: &[Event]) -> Vec<RawRun> {
    let mut runs: Vec<RawRun> = Vec::new();
    let mut current: Option<RawRun> = None;
    for ev in events {
        if ev.kind == kinds::PROV_RUN {
            if let Some(run) = current.take() {
                runs.push(run);
            }
            let mut run = RawRun::new(format!("run{}", runs.len()));
            run.q = ev.field_f64("q").unwrap_or(0.0);
            run.interval_s = ev.field_f64("interval_s").unwrap_or(1.0);
            current = Some(run);
            continue;
        }
        let decodes = matches!(
            ev.kind.as_str(),
            kinds::PROV_INTERVAL
                | kinds::PROV_FORECAST
                | kinds::PROV_DECISION
                | kinds::PROV_RECONFIG
                | kinds::PROV_CHUNK
        );
        if !decodes {
            continue;
        }
        let run = current.get_or_insert_with(|| RawRun::new(format!("run{}", runs.len())));
        match ev.kind.as_str() {
            kinds::PROV_INTERVAL => run.intervals.push((
                ev.field_u64("interval").unwrap_or(0),
                ev.field_u64("machines").unwrap_or(0),
                ev.field_f64("observed").unwrap_or(0.0),
            )),
            kinds::PROV_FORECAST => run.scores.push(RawScore {
                model: ev.field_str("model").unwrap_or("?").to_string(),
                horizon: ev.field_u64("horizon").unwrap_or(0),
                interval: ev.field_u64("interval").unwrap_or(0),
                observed: ev.field_f64("observed").unwrap_or(0.0),
            }),
            kinds::PROV_DECISION => run.decisions.push(RawDecision {
                id: ev.field_u64("id").unwrap_or(0),
                interval: ev.field_u64("interval").unwrap_or(0),
                machines: ev.field_u64("machines").unwrap_or(0),
                target: ev.field_u64("target").unwrap_or(0),
                lead: ev.field_u64("lead").unwrap_or(0),
                t: ev.t.unwrap_or(0.0),
            }),
            kinds::PROV_RECONFIG => run.reconfigs.push(RawReconfig {
                id: ev.field_u64("id").unwrap_or(0),
                from: ev.field_u64("from").unwrap_or(0),
                to: ev.field_u64("to").unwrap_or(0),
                start: ev.field_f64("start").unwrap_or(0.0),
                chunks: ev.field_u64("chunks").unwrap_or(0),
                bytes: ev.field_u64("bytes").unwrap_or(0),
            }),
            kinds::PROV_CHUNK => run.chunks.push((
                ev.field_u64("id").unwrap_or(0),
                ev.field_u64("bytes").unwrap_or(0),
            )),
            _ => unreachable!("filtered above"),
        }
    }
    if let Some(run) = current.take() {
        runs.push(run);
    }
    runs.retain(|r| !r.is_empty());
    runs
}

/// Joins each attributed reconfiguration to its decision (`id > 0` and
/// the id exists). Attribution *failures* are PRV-02's business; the
/// joined pairs feed both PRV-01 (machine-count reconciliation) and
/// PRV-02 (ordering).
fn joined(run: &RawRun) -> Vec<(&RawReconfig, &RawDecision)> {
    run.reconfigs
        .iter()
        .filter_map(|r| {
            run.decisions
                .iter()
                .find(|d| d.id == r.id && r.id > 0)
                .map(|d| (r, d))
        })
        .collect()
}

/// `PRV-01`: the capacity ledger conserves machine-seconds.
///
/// Re-derives the provisioned/ideal integrals from the raw
/// `prov_interval` stream and requires the production ledger
/// ([`pstore_telemetry::prov::ledger_areas`]) to match them, requires
/// the ledger's own conservation identity
/// `provisioned - ideal == over - under`, requires every interval to be
/// recorded exactly once, reconciles each attributed move's `from`/`to`
/// with its decision's `machines`/`target`, and (when the trace carries
/// `prov_chunk` events) sums per-move chunk bytes and counts against
/// the move's ledger row.
pub fn check_prov_ledger(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for run in raw_runs(events) {
        let v = |detail: String| {
            Violation::new(
                InvariantId::ProvLedgerConservation,
                format!("{artifact}/{}", run.label),
                detail,
            )
        };

        // Every interval recorded exactly once — the integral below is
        // meaningless over a stuttering or duplicated tick stream.
        let mut seen: BTreeMap<u64, u64> = BTreeMap::new();
        for &(interval, _, _) in &run.intervals {
            *seen.entry(interval).or_insert(0) += 1;
        }
        for (interval, count) in seen.iter().filter(|&(_, &c)| c > 1) {
            violations.push(v(format!(
                "interval {interval} recorded {count} times in the prov_interval stream"
            )));
        }

        if !run.intervals.is_empty() && run.q > 0.0 {
            // Independent integrals of the raw per-interval stream.
            #[allow(clippy::cast_precision_loss)] // machine counts far below 2^53
            let (mut provisioned, mut ideal, mut over, mut under) = (0.0f64, 0.0f64, 0.0, 0.0);
            for &(_, machines, observed) in &run.intervals {
                let need = (observed / run.q).ceil().max(1.0);
                #[allow(clippy::cast_precision_loss)] // machine counts far below 2^53
                let have = machines as f64;
                provisioned += have * run.interval_s;
                ideal += need * run.interval_s;
                over += (have - need).max(0.0) * run.interval_s;
                under += (need - have).max(0.0) * run.interval_s;
            }
            let samples: Vec<(u64, f64)> = run
                .intervals
                .iter()
                .map(|&(_, machines, observed)| (machines, observed))
                .collect();
            let ledger = prov::ledger_areas(&samples, run.q, run.interval_s);
            for (name, got, want) in [
                ("provisioned", ledger.provisioned, provisioned),
                ("ideal", ledger.ideal, ideal),
                ("over", ledger.over, over),
                ("under", ledger.under, under),
            ] {
                if !close(got, want) {
                    violations.push(v(format!(
                        "ledger {name} machine-seconds = {got}, but the integral of the \
                         raw prov_interval stream is {want}"
                    )));
                }
            }
            if !close(
                ledger.provisioned - ledger.ideal,
                ledger.over - ledger.under,
            ) {
                violations.push(v(format!(
                    "conservation identity broken: provisioned - ideal = {} but \
                     over - under = {}",
                    ledger.provisioned - ledger.ideal,
                    ledger.over - ledger.under
                )));
            }
        }

        // An attributed move must execute exactly the machine delta its
        // decision recorded.
        for (r, d) in joined(&run) {
            if r.from != d.machines || r.to != d.target {
                violations.push(v(format!(
                    "reconfig (decision {}) moved {} -> {} machines, but the decision \
                     recorded {} -> {}",
                    r.id, r.from, r.to, d.machines, d.target
                )));
            }
        }

        // Chunk-level byte conservation, when the trace has chunk events
        // at all (the fast simulator's moves are not chunked).
        if !run.chunks.is_empty() {
            let mut per_move: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
            for &(id, bytes) in &run.chunks {
                let cell = per_move.entry(id).or_insert((0, 0));
                cell.0 += 1;
                cell.1 += bytes;
            }
            for r in &run.reconfigs {
                let (chunks, bytes) = per_move.get(&r.id).copied().unwrap_or((0, 0));
                if chunks != r.chunks || bytes != r.bytes {
                    violations.push(v(format!(
                        "reconfig (decision {}) claims {} chunks / {} bytes, but its \
                         prov_chunk events sum to {} chunks / {} bytes",
                        r.id, r.chunks, r.bytes, chunks, bytes
                    )));
                }
            }
        }
    }
    violations
}

/// `PRV-02`: every reconfiguration traces to exactly one decision.
///
/// Decision ids must be positive and unique, each move's id must name
/// an existing decision, no decision may drive two moves, no move may
/// start before its decision was taken, and a predictive decision with
/// lead `L >= 1` must start its migration at least `L - 1` intervals
/// before the target interval it provisioned for (one interval of slack
/// absorbs tick alignment).
pub fn check_prov_causality(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for run in raw_runs(events) {
        let v = |detail: String| {
            Violation::new(
                InvariantId::ProvDecisionCausality,
                format!("{artifact}/{}", run.label),
                detail,
            )
        };

        let mut ids: BTreeMap<u64, u64> = BTreeMap::new();
        for d in &run.decisions {
            if d.id == 0 {
                violations.push(v(format!(
                    "decision at interval {} has id 0 (ids are 1-based)",
                    d.interval
                )));
            }
            *ids.entry(d.id).or_insert(0) += 1;
        }
        for (id, count) in ids.iter().filter(|&(_, &c)| c > 1) {
            violations.push(v(format!("decision id {id} emitted {count} times")));
        }

        let mut moves_per_decision: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &run.reconfigs {
            if r.id == 0 || !ids.contains_key(&r.id) {
                violations.push(v(format!(
                    "reconfig starting at t={} ({} -> {} machines) is not attributed \
                     to any decision (id {})",
                    r.start, r.from, r.to, r.id
                )));
                continue;
            }
            *moves_per_decision.entry(r.id).or_insert(0) += 1;
        }
        for (id, count) in moves_per_decision.iter().filter(|&(_, &c)| c > 1) {
            violations.push(v(format!("decision {id} drove {count} reconfigurations")));
        }

        for (r, d) in joined(&run) {
            if r.start < d.t - REL_TOL {
                violations.push(v(format!(
                    "reconfig (decision {}) started at t={} before its decision at t={}",
                    r.id, r.start, d.t
                )));
            }
            if d.lead >= 1 {
                // The decision provisioned for demand at
                // `interval + lead`; starting any later than one interval
                // after the decision tick forfeits the predicted lead.
                #[allow(clippy::cast_precision_loss)] // interval indices far below 2^53
                let latest = (d.interval + 1) as f64 * run.interval_s;
                if r.start > latest + REL_TOL {
                    violations.push(v(format!(
                        "predictive decision {} (lead {} intervals, taken at interval {}) \
                         started its migration at t={}, after the latest lead-preserving \
                         start t={latest}",
                        r.id, d.lead, d.interval, r.start
                    )));
                }
            }
        }
    }
    violations
}

/// `PRV-03`: forecast scoring is exactly-once and joins real
/// observations.
///
/// Every scored (model, horizon, target-interval) triple must appear
/// exactly once, and each score's `observed` must equal the demand the
/// monitor recorded for that interval in the `prov_interval` stream.
pub fn check_prov_forecast_bookkeeping(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = Vec::new();
    for run in raw_runs(events) {
        let v = |detail: String| {
            Violation::new(
                InvariantId::ProvForecastBookkeeping,
                format!("{artifact}/{}", run.label),
                detail,
            )
        };

        let mut triples: BTreeMap<(String, u64, u64), u64> = BTreeMap::new();
        for s in &run.scores {
            *triples
                .entry((s.model.clone(), s.horizon, s.interval))
                .or_insert(0) += 1;
        }
        for ((model, horizon, interval), count) in triples.iter().filter(|&(_, &c)| c > 1) {
            violations.push(v(format!(
                "({model}, horizon {horizon}, interval {interval}) scored {count} times"
            )));
        }

        let observed: BTreeMap<u64, f64> = run
            .intervals
            .iter()
            .map(|&(interval, _, load)| (interval, load))
            .collect();
        for s in &run.scores {
            match observed.get(&s.interval) {
                None => violations.push(v(format!(
                    "score for ({}, horizon {}) targets interval {} which has no \
                     prov_interval observation",
                    s.model, s.horizon, s.interval
                ))),
                Some(&load) if !close(load, s.observed) => violations.push(v(format!(
                    "score for ({}, horizon {}, interval {}) recorded observed = {}, \
                     but the monitor measured {load}",
                    s.model, s.horizon, s.interval, s.observed
                ))),
                Some(_) => {}
            }
        }
    }
    violations
}

/// Runs the whole `PRV-01..03` family over one trace.
pub fn check_events(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = check_prov_ledger(artifact, events);
    violations.extend(check_prov_causality(artifact, events));
    violations.extend(check_prov_forecast_bookkeeping(artifact, events));
    violations
}

/// One fixed-seed detailed run with provisioning events on, under a
/// capturing sink: the reactive ramp shared with the iso sweep, or (for
/// `predictive`) a flat-then-step load under the P-Store controller with
/// an oracle forecaster, so the trace contains planned decisions with a
/// real lead. Shared with the prov sweep in `main.rs`.
#[cfg(feature = "telemetry")]
pub fn captured_prov_run(
    shards: u32,
    predictive: bool,
) -> (pstore_sim::detailed::DetailedSimResult, Vec<Event>) {
    use pstore_core::controller::forecaster::OracleForecaster;
    use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
    use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
    use pstore_core::controller::Strategy;
    use pstore_core::planner::{Planner, PlannerConfig};
    use pstore_sim::detailed::{per_interval_load, run_detailed, DetailedSimConfig};

    let load: Vec<f64> = if predictive {
        // Flat 250 txn/s, then a step to 800: the oracle sees the step a
        // full horizon ahead, so the planner issues lead >= 1 decisions.
        let mut l = vec![250.0; 120];
        l.extend(vec![800.0; 120]);
        l
    } else {
        // The iso sweep's ramp: 300 -> 700 over 60 s, then steady.
        let mut l: Vec<f64> = (0..60)
            .map(|s| 300.0 + 400.0 * f64::from(s) / 60.0)
            .collect();
        l.extend(vec![700.0; 120]);
        l
    };
    let mut cfg = DetailedSimConfig::paper_defaults(load, 0xBEEF);
    cfg.params.interval = std::time::Duration::from_secs(30);
    cfg.params.d = std::time::Duration::from_secs(300);
    cfg.workload.num_skus = 2_000;
    cfg.workload.initial_carts = 600;
    cfg.num_slots = 360;
    cfg.warmup_txns = 20_000;
    cfg.shards = shards; // paper_defaults reads PSTORE_SHARDS; pin it
    cfg.prov_events = true;

    let mut reactive;
    let mut pstore;
    let strategy: &mut dyn Strategy = if predictive {
        let per_interval = per_interval_load(&cfg.load, cfg.monitor_interval_s);
        pstore = PStoreController::new(
            Planner::new(PlannerConfig {
                q: 285.0,
                d_intervals: 300.0 / 30.0,
                partitions_per_node: 6,
                max_machines: 10,
            }),
            OracleForecaster::new(per_interval),
            PStoreConfig {
                horizon: 10,
                prediction_inflation: 1.0,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: 1.0,
                initial_machines: 1,
            },
        );
        &mut pstore
    } else {
        reactive = ReactiveController::new(ReactiveConfig {
            q: 285.0,
            q_hat: 350.0,
            trigger_fraction: 0.9,
            headroom: 0.2,
            smoothing_window: 2,
            scale_in_patience: 10,
            max_machines: 10,
            initial_machines: 2,
        });
        &mut reactive
    };
    let (sink, handle) = pstore_telemetry::MemorySink::new();
    let guard = pstore_telemetry::install(std::rc::Rc::new(sink));
    let result = run_detailed(&cfg, strategy);
    drop(guard);
    (result, handle.events())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.invariant.code()).collect()
    }

    fn ev(kind: &str) -> Event {
        Event::new(kind)
    }

    fn header(q: f64, interval_s: f64) -> Event {
        ev(kinds::PROV_RUN)
            .with("q", q)
            .with("d_s", 300.0)
            .with("interval_s", interval_s)
            .with("policy", "test")
    }

    fn interval(k: u64, machines: u64, observed: f64) -> Event {
        ev(kinds::PROV_INTERVAL)
            .with("interval", k)
            .with("machines", machines)
            .with("observed", observed)
    }

    fn decision(id: u64, interval: u64, machines: u64, target: u64, lead: u64, t: f64) -> Event {
        let mut e = ev(kinds::PROV_DECISION)
            .with("id", id)
            .with("interval", interval)
            .with("machines", machines)
            .with("target", target)
            .with("reason", if lead > 0 { "planned" } else { "reactive" })
            .with("lead", lead);
        e.t = Some(t);
        e
    }

    fn reconfig(id: u64, from: u64, to: u64, start: f64, chunks: u64, bytes: u64) -> Event {
        ev(kinds::PROV_RECONFIG)
            .with("id", id)
            .with("from", from)
            .with("to", to)
            .with("start", start)
            .with("duration_s", 25.0)
            .with("chunks", chunks)
            .with("rows", chunks * 10)
            .with("bytes", bytes)
            .with("fences", 2u64)
    }

    fn score(model: &str, horizon: u64, interval: u64, observed: f64) -> Event {
        ev(kinds::PROV_FORECAST)
            .with("model", model)
            .with("horizon", horizon)
            .with("interval", interval)
            .with("predicted", observed * 1.1)
            .with("observed", observed)
    }

    fn chunk(id: u64, bytes: u64) -> Event {
        ev(kinds::PROV_CHUNK)
            .with("id", id)
            .with("from", 1u64)
            .with("to", 2u64)
            .with("bytes", bytes)
    }

    /// A coherent little trace: 3 intervals, one lead-1 decision whose
    /// move starts at the decision tick and whose chunks sum correctly,
    /// one scored forecast joining interval 1's observation.
    fn clean_trace() -> Vec<Event> {
        vec![
            header(100.0, 30.0),
            interval(0, 1, 90.0),
            decision(1, 0, 1, 2, 1, 0.0),
            chunk(1, 700),
            chunk(1, 300),
            reconfig(1, 1, 2, 0.0, 2, 1000),
            interval(1, 2, 150.0),
            score("m", 1, 1, 150.0),
            interval(2, 2, 160.0),
        ]
    }

    #[test]
    fn clean_trace_passes_every_checker() {
        let events = clean_trace();
        assert_eq!(check_events("t", &events), vec![]);
    }

    #[test]
    fn traces_without_prov_events_are_vacuously_clean() {
        let events = vec![ev(kinds::SECOND).with("p99", 0.01)];
        assert!(raw_runs(&events).is_empty());
        assert_eq!(check_events("t", &events), vec![]);
    }

    #[test]
    fn duplicated_interval_fails_prv01() {
        let mut events = clean_trace();
        events.push(interval(2, 2, 160.0));
        assert!(codes(&check_prov_ledger("t", &events)).contains(&"PRV-01"));
    }

    #[test]
    fn reconfig_machine_mismatch_fails_prv01() {
        let mut events = clean_trace();
        // The move claims it went to 3 machines; the decision said 2.
        events.retain(|e| e.kind != kinds::PROV_RECONFIG);
        events.push(reconfig(1, 1, 3, 0.0, 2, 1000));
        let violations = check_prov_ledger("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-01"]);
        assert!(violations[0].detail.contains("decision recorded 1 -> 2"));
    }

    #[test]
    fn chunk_byte_shortfall_fails_prv01() {
        let mut events = clean_trace();
        events.retain(|e| e.kind != kinds::PROV_CHUNK);
        events.push(chunk(1, 700)); // 300 bytes vanish
        let violations = check_prov_ledger("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-01"]);
        assert!(violations[0].detail.contains("1 chunks / 700 bytes"));
    }

    #[test]
    fn unattributed_reconfig_fails_prv02() {
        let mut events = clean_trace();
        events.push(reconfig(9, 2, 3, 60.0, 1, 10));
        let violations = check_prov_causality("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-02"]);
        assert!(violations[0].detail.contains("not attributed"));
    }

    #[test]
    fn duplicate_decision_ids_and_double_driven_moves_fail_prv02() {
        let mut events = clean_trace();
        events.push(decision(1, 2, 2, 3, 0, 60.0));
        events.push(reconfig(1, 2, 3, 60.0, 1, 10));
        let violations = check_prov_causality("t", &events);
        let found = codes(&violations);
        assert!(found.iter().all(|&c| c == "PRV-02"));
        assert!(violations
            .iter()
            .any(|v| v.detail.contains("emitted 2 times")));
        assert!(violations
            .iter()
            .any(|v| v.detail.contains("drove 2 reconfigurations")));
    }

    #[test]
    fn move_before_its_decision_fails_prv02() {
        let mut events = clean_trace();
        events.retain(|e| e.kind != kinds::PROV_RECONFIG);
        events.push(reconfig(1, 1, 2, -5.0, 2, 1000));
        let violations = check_prov_causality("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-02"]);
        assert!(violations[0].detail.contains("before its decision"));
    }

    #[test]
    fn late_start_forfeiting_the_lead_fails_prv02() {
        let mut events = clean_trace();
        events.retain(|e| e.kind != kinds::PROV_RECONFIG);
        // Lead-1 decision at interval 0 (30 s intervals): any start after
        // t = 30 gives up the lead entirely.
        events.push(reconfig(1, 1, 2, 45.0, 2, 1000));
        let violations = check_prov_causality("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-02"]);
        assert!(violations[0].detail.contains("lead-preserving"));
    }

    #[test]
    fn double_scored_triple_fails_prv03() {
        let mut events = clean_trace();
        events.push(score("m", 1, 1, 150.0));
        let violations = check_prov_forecast_bookkeeping("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-03"]);
        assert!(violations[0].detail.contains("scored 2 times"));
    }

    #[test]
    fn score_without_observation_or_with_wrong_observation_fails_prv03() {
        let mut events = clean_trace();
        events.push(score("m", 2, 7, 100.0)); // interval 7 never observed
        events.push(score("n", 1, 2, 400.0)); // monitor measured 160
        let violations = check_prov_forecast_bookkeeping("t", &events);
        assert_eq!(codes(&violations), vec!["PRV-03", "PRV-03"]);
        assert!(violations
            .iter()
            .any(|v| v.detail.contains("has no") && v.detail.contains("observation")));
        assert!(violations
            .iter()
            .any(|v| v.detail.contains("the monitor measured 160")));
    }

    #[test]
    fn runs_segment_on_prov_run_headers() {
        let mut events = clean_trace();
        events.extend(clean_trace());
        let runs = raw_runs(&events);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].label, "run0");
        assert_eq!(runs[1].label, "run1");
        assert_eq!(check_events("t", &events), vec![]);
    }
}
