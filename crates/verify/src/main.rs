//! The `pstore-verify` sweep: checks every invariant the workspace's
//! artifact producers are supposed to uphold, across an exhaustive
//! machine-count grid and randomized planner / forecast scenarios, and
//! exits non-zero if anything is violated.
//!
//! Run with `cargo run -p pstore-verify [--release]`. The sweep covers:
//!
//! 1. every migration-schedule pair `(A, B)` with `A, B <= 64` (`SCH-*`),
//! 2. randomized planner scenarios over mixed load shapes (`MOV-*`,
//!    `PLN-01/02`),
//! 3. small randomized instances cross-checked against a brute-force
//!    optimality oracle (`PLN-03`),
//! 4. forecaster output on periodic and noisy series (`FOR-*`),
//! 5. telemetry span traces generated through the live span API plus
//!    randomized histogram merges (`TEL-*`),
//! 6. with the `telemetry` feature: serializability of the sampled
//!    key-level version histories from fixed-seed detailed-sim runs at
//!    shards {1, 2, 4} with reconfiguration traffic (`ISO-01..03`) —
//!    set `PSTORE_ISO_REPORT=<path>` to also write a JSON report of the
//!    checked histories (CI uploads it as an artifact),
//! 7. with the `telemetry` feature: the provisioning observatory's
//!    `prov_*` event family from fixed-seed reactive *and* predictive
//!    runs at shards {1, 4} (`PRV-01..03`): ledger conservation,
//!    decision→reconfiguration causality, forecast bookkeeping — set
//!    `PSTORE_PROV_REPORT=<path>` to also write a JSON report.

use pstore_core::planner::{Planner, PlannerConfig};
use pstore_forecast::{
    ArConfig, ArModel, ArmaConfig, ArmaModel, HoltWintersConfig, HoltWintersModel, LoadPredictor,
    OnlinePredictor, SparConfig, SparModel,
};
use pstore_verify::{concurrency, forecast, plan, schedule, telemetry, CheckStats, Violation};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Largest machine count in the exhaustive schedule sweep.
const MAX_MACHINES: u32 = 64;
/// Randomized end-to-end planner scenarios (the acceptance bar is >= 100).
const PLANNER_SCENARIOS: usize = 128;
/// Randomized instances (up to 12 machines × 16 intervals) cross-checked
/// against the memoised optimality oracle.
const ORACLE_SCENARIOS: usize = 100;
/// Randomized forecast series per model family.
const FORECAST_SERIES: usize = 16;
/// Randomized telemetry span-trace / histogram-merge scenarios.
const TELEMETRY_SCENARIOS: usize = 64;
/// Parallel thread count for the concurrency sweep (each checker also
/// runs at 1 thread, the forced worker-reuse case).
const CONCURRENCY_THREADS: usize = 4;
/// Executor shard counts for the sharded-engine sweep: the serial
/// inline backend and the threaded backend.
const SHARD_COUNTS: [u32; 2] = [1, 4];
/// Executor shard counts for the serializability (iso) sweep: serial
/// witness, plus two threaded widths so shard routing is exercised.
#[cfg(feature = "telemetry")]
const ISO_SHARD_COUNTS: [u32; 3] = [1, 2, 4];
/// Executor shard counts for the provisioning-observatory (prov) sweep:
/// the serial inline backend and the threaded backend.
#[cfg(feature = "telemetry")]
const PROV_SHARD_COUNTS: [u32; 2] = [1, 4];

fn main() {
    let mut all = Vec::new();

    let stats = schedule_sweep();
    report_phase(
        &format!("schedule sweep: all (A,B) pairs with A,B <= {MAX_MACHINES}"),
        &stats,
    );
    all.extend(stats.violations);

    let (stats, planned) = planner_sweep();
    report_phase(
        &format!("planner sweep: {PLANNER_SCENARIOS} randomized scenarios ({planned} feasible)"),
        &stats,
    );
    all.extend(stats.violations);

    let (stats, planned) = oracle_sweep();
    report_phase(
        &format!(
            "optimality oracle: {ORACLE_SCENARIOS} instances up to 12 machines x 16 intervals vs memoised oracle ({planned} feasible)"
        ),
        &stats,
    );
    all.extend(stats.violations);

    let stats = forecast_sweep();
    report_phase("forecast sweep: periodicity + randomized series", &stats);
    all.extend(stats.violations);

    let stats = telemetry_sweep();
    report_phase(
        &format!(
            "telemetry sweep: {TELEMETRY_SCENARIOS} span traces (pairing, ordering, profile conservation, txn lifecycles, rwsets) + histogram merges"
        ),
        &stats,
    );
    all.extend(stats.violations);

    let stats = concurrency_sweep();
    report_phase(
        &format!(
            "concurrency sweep: fault-injected pool + merge + isolation at threads 1 and {CONCURRENCY_THREADS}"
        ),
        &stats,
    );
    all.extend(stats.violations);

    let stats = sharded_engine_sweep();
    report_phase(
        &format!(
            "sharded engine sweep: mailbox handoff + reconfig fence at shards {} and {}, plus a detailed sim run on both backends",
            SHARD_COUNTS[0], SHARD_COUNTS[1]
        ),
        &stats,
    );
    all.extend(stats.violations);

    #[cfg(feature = "telemetry")]
    {
        let stats = iso_sweep();
        report_phase(
            &format!(
                "iso sweep: serializability of sampled key histories at shards {ISO_SHARD_COUNTS:?} with migrations"
            ),
            &stats,
        );
        all.extend(stats.violations);

        let stats = prov_sweep();
        report_phase(
            &format!(
                "prov sweep: provisioning ledger, decision causality, forecast bookkeeping at shards {PROV_SHARD_COUNTS:?}, reactive and predictive"
            ),
            &stats,
        );
        all.extend(stats.violations);
    }

    if all.is_empty() {
        println!("pstore-verify: all invariants hold");
    } else {
        eprintln!("pstore-verify: {} violation(s)\n", all.len());
        eprintln!("{}", pstore_core::invariant::report(&all));
        std::process::exit(1);
    }
}

fn report_phase(title: &str, stats: &CheckStats) {
    println!(
        "[{}] {title}: {} artifacts checked, {} violation(s)",
        if stats.is_clean() { "ok" } else { "FAIL" },
        stats.artifacts,
        stats.violations.len()
    );
}

/// Phase 1: every unordered pair covers both the scale-out and scale-in
/// schedule, so this examines all 64 x 64 ordered schedules.
fn schedule_sweep() -> CheckStats {
    let mut stats = CheckStats::default();
    for b in 1..=MAX_MACHINES {
        for a in b..=MAX_MACHINES {
            stats.absorb(schedule::check_schedule_pair(b, a));
        }
    }
    stats
}

/// Phase 2: randomized planner configurations and load shapes; every plan
/// produced is structurally validated and independently capacity-checked.
fn planner_sweep() -> (CheckStats, usize) {
    let mut rng = StdRng::seed_from_u64(0x5EED_0001);
    let mut stats = CheckStats::default();
    let mut planned = 0usize;
    for case in 0..PLANNER_SCENARIOS {
        let q = rng.random_range(50.0..400.0);
        let max_machines = rng.random_range(4u32..=64);
        let cfg = PlannerConfig {
            q,
            d_intervals: rng.random_range(0.5..30.0),
            partitions_per_node: rng.random_range(1u32..=8),
            max_machines,
        };
        let n0 = rng.random_range(1u32..=max_machines.div_ceil(2));
        let horizon = rng.random_range(6usize..=48);
        let load = random_load(&mut rng, horizon, q, n0, max_machines);
        let planner = Planner::new(cfg);
        let label = format!("random scenario {case}");
        if planner.best_moves(&load, n0).is_some() {
            planned += 1;
        }
        stats.absorb(plan::check_plan(&planner, &load, n0, &label));
    }
    (stats, planned)
}

/// A random load curve: flat, ramp, step, sine or a bounded random walk,
/// scaled so `n0` usually carries the start and the peak usually fits the
/// hardware (some scenarios are deliberately infeasible).
fn random_load(rng: &mut StdRng, horizon: usize, q: f64, n0: u32, max_machines: u32) -> Vec<f64> {
    let base = q * n0 as f64 * rng.random_range(0.2..0.95);
    let peak = (q * max_machines as f64 * rng.random_range(0.2..1.05)).max(base);
    let n = horizon + 1;
    let shape = rng.random_range(0u32..5);
    (0..n)
        .map(|t| {
            let x = t as f64 / horizon.max(1) as f64;
            let v = match shape {
                0 => base,
                1 => base + (peak - base) * x,
                2 => {
                    if t >= n / 2 {
                        peak
                    } else {
                        base
                    }
                }
                3 => base + (peak - base) * (std::f64::consts::PI * x).sin().max(0.0),
                _ => base + (peak - base) * rng.random_range(0.0..1.0) * x,
            };
            (v * rng.random_range(0.95..1.05)).max(0.0)
        })
        .collect()
}

/// Phase 3: randomized instances cross-checked against the memoised
/// optimality oracle. The memoised `(interval, machines)` value-iteration
/// is polynomial, so the sweep covers instances up to 12 machines × 16
/// intervals — well past what the naive enumeration (kept as the oracle's
/// own reference, see `proptest_plan.rs`) could handle.
fn oracle_sweep() -> (CheckStats, usize) {
    let mut rng = StdRng::seed_from_u64(0x5EED_0002);
    let mut stats = CheckStats::default();
    let mut planned = 0usize;
    for case in 0..ORACLE_SCENARIOS {
        let max_machines = rng.random_range(2u32..=12);
        let cfg = PlannerConfig {
            q: 100.0,
            d_intervals: rng.random_range(0.3..6.0),
            partitions_per_node: rng.random_range(1u32..=2),
            max_machines,
        };
        let n0 = rng.random_range(1u32..=max_machines);
        let horizon = rng.random_range(6usize..=16);
        let load = random_load(&mut rng, horizon, cfg.q, n0, max_machines);
        let planner = Planner::new(cfg);
        let label = format!("oracle scenario {case}");
        if planner.best_moves(&load, n0).is_some() {
            planned += 1;
        }
        stats.absorb(plan::check_plan(&planner, &load, n0, &label));
        stats.absorb(plan::check_plan_optimality(&planner, &load, n0, &label));
    }
    (stats, planned)
}

/// Phase 4: SPAR periodicity, raw-model finiteness on noisy series, and
/// the clamped production path of `OnlinePredictor`.
fn forecast_sweep() -> CheckStats {
    let mut stats = CheckStats::default();
    stats.absorb(forecast::check_spar_periodicity(1.0));

    let mut rng = StdRng::seed_from_u64(0x5EED_0003);
    let period = 48;
    for series_idx in 0..FORECAST_SERIES {
        let series = noisy_periodic_series(&mut rng, period, period * 8);
        let horizon = period;

        let spar_cfg = SparConfig {
            period,
            n_periods: 3,
            m_recent: 8,
            taus: vec![1],
            ridge_lambda: 1e-4,
            max_rows: 20_000,
        };
        let fits: Vec<(String, Option<Box<dyn LoadPredictor>>)> = vec![
            (
                format!("SPAR on noisy series {series_idx}"),
                SparModel::fit(&series, &spar_cfg)
                    .ok()
                    .map(|m| Box::new(m) as Box<dyn LoadPredictor>),
            ),
            (
                format!("AR on noisy series {series_idx}"),
                ArModel::fit(
                    &series,
                    &ArConfig {
                        order: 8,
                        ridge_lambda: 1e-4,
                        stride: 1,
                    },
                )
                .ok()
                .map(|m| Box::new(m) as Box<dyn LoadPredictor>),
            ),
            (
                format!("ARMA on noisy series {series_idx}"),
                ArmaModel::fit(
                    &series,
                    &ArmaConfig {
                        p: 4,
                        q: 2,
                        long_ar_order: None,
                        ridge_lambda: 1e-4,
                        stride: 1,
                    },
                )
                .ok()
                .map(|m| Box::new(m) as Box<dyn LoadPredictor>),
            ),
            (
                format!("Holt-Winters on noisy series {series_idx}"),
                HoltWintersModel::fit(
                    &series,
                    &HoltWintersConfig {
                        period,
                        alpha: 0.3,
                        beta: 0.05,
                        gamma: 0.2,
                    },
                )
                .ok()
                .map(|m| Box::new(m) as Box<dyn LoadPredictor>),
            ),
        ];
        for (artifact, model) in fits {
            match model {
                Some(m) => {
                    let preds = m.predict_horizon(&series, horizon);
                    stats.absorb(forecast::check_curve_finite(&artifact, &preds));
                }
                None => stats.absorb(vec![Violation::new(
                    pstore_core::InvariantId::ForecastFinite,
                    artifact,
                    "model failed to fit a well-conditioned series".to_string(),
                )]),
            }
        }

        // The production path: OnlinePredictor's forecasts must additionally
        // be non-negative (FOR-01 in full).
        let cfg = spar_cfg.clone();
        let mut online = OnlinePredictor::new(
            Box::new(move |hist: &[f64]| {
                SparModel::fit(hist, &cfg).map(|m| Box::new(m) as Box<dyn LoadPredictor>)
            }),
            cfg_min_history(&spar_cfg),
            period,
            period * 16,
        );
        online.seed(&series);
        match online.forecast(horizon) {
            Some(curve) => stats.absorb(forecast::check_curve(
                &format!("OnlinePredictor forecast on noisy series {series_idx}"),
                &curve,
            )),
            None => stats.absorb(vec![Violation::new(
                pstore_core::InvariantId::ForecastFinite,
                format!("OnlinePredictor forecast on noisy series {series_idx}"),
                "predictor not ready despite sufficient seed data".to_string(),
            )]),
        }
    }
    stats
}

fn cfg_min_history(cfg: &SparConfig) -> usize {
    cfg.min_history()
}

/// Phase 5: every trace produced through the live span API must satisfy
/// `TEL-01`/`TEL-02` (pairing/nesting), `TEL-04` (total event ordering
/// under a monotone sim clock) and `TEL-05` (profile-tree time
/// conservation), and randomized histogram merges must satisfy `TEL-03`
/// regardless of sample values or grouping. Each trace also carries
/// randomized per-transaction lifecycle traffic, which must satisfy
/// `TEL-06` (well-formed lifecycles, attribution summing) and `TXN-01`
/// (read/write sets consistent with declared partition access).
fn telemetry_sweep() -> CheckStats {
    let mut rng = StdRng::seed_from_u64(0x5EED_0004);
    let mut stats = CheckStats::default();
    for case in 0..TELEMETRY_SCENARIOS {
        // Generate a well-formed randomized span tree through the real
        // begin/end API — sim-time-stamped so the profiler has real
        // durations to aggregate — captured by an in-memory sink.
        let (sink, handle) = pstore_telemetry::MemorySink::new();
        let guard = pstore_telemetry::install(std::rc::Rc::new(sink));
        let depth = rng.random_range(1usize..=4);
        let width = rng.random_range(1usize..=4);
        let mut now = 0.0;
        emit_span_tree(&mut rng, depth, width, &mut now);
        emit_txn_traffic(&mut rng, &mut now);
        pstore_telemetry::clear_time();
        drop(guard);
        let events = handle.events();
        let artifact = format!("span trace {case}");
        stats.absorb(telemetry::check_trace_spans(&artifact, &events));
        stats.absorb(telemetry::check_trace_order(&artifact, &events));
        stats.absorb(telemetry::check_profile_conservation(
            &artifact,
            &events,
            pstore_telemetry::ProfileClock::Sim,
        ));
        stats.absorb(telemetry::check_txn_lifecycle(&artifact, &events));
        stats.absorb(telemetry::check_txn_rwsets(&artifact, &events));

        // Random sample sets, including empties and extreme magnitudes.
        let mut set = || -> Vec<f64> {
            let n = rng.random_range(0usize..200);
            (0..n)
                .map(|_| {
                    let exp = rng.random_range(-7.0..6.0f64);
                    10f64.powf(exp)
                })
                .collect()
        };
        let sets = [set(), set(), set()];
        stats.absorb(telemetry::check_histogram_merge(
            &format!("histogram merge {case}"),
            &sets,
        ));
    }
    stats
}

/// Phase 6: the `CON-*` runtime checks — fault-injected sweeps, the
/// merge happens-before edge and registry isolation, each at 1 thread
/// (forced worker reuse) and at [`CONCURRENCY_THREADS`]. The exhaustive
/// interleaving exploration of the same invariants runs separately as
/// `RUSTFLAGS="--cfg loom" cargo test -p rayon --release`.
fn concurrency_sweep() -> CheckStats {
    let mut stats = CheckStats::default();
    for threads in [1, CONCURRENCY_THREADS] {
        stats.absorb(concurrency::check_queue_integrity(threads));
        stats.absorb(concurrency::check_merge_barrier(threads));
        stats.absorb(concurrency::check_registry_isolation(threads));
    }
    stats
}

/// Phase 7: the sharded execution engine (`CON-04`/`CON-05`) — mailbox
/// routing and the reconfiguration fence on the *production* threaded
/// `Cluster` at every shard count in [`SHARD_COUNTS`], then one detailed
/// simulation run on the serial and the 4-shard backend, which must be
/// bit-identical (and, with the `telemetry` feature, whose sampled
/// traces must pass the full TEL/TXN battery). The exhaustive
/// interleaving layer runs separately as `RUSTFLAGS="--cfg loom" cargo
/// test -p pstore-dbms --release --test loom_models`.
fn sharded_engine_sweep() -> CheckStats {
    let mut stats = CheckStats::default();
    for shards in SHARD_COUNTS {
        stats.absorb(concurrency::check_mailbox_handoff(shards));
        stats.absorb(concurrency::check_reconfig_fence(shards));
    }
    stats.absorb(concurrency::check_sharded_sim());
    stats
}

/// Phase 8 (telemetry builds only): the `ISO-01..03` serializability
/// sweep. Replays the sharded-engine ramp scenario — fixed seed,
/// reactive scale-out, live chunk migrations — at every shard count in
/// [`ISO_SHARD_COUNTS`], decodes the sampled key-level version
/// histories out of the captured trace, and checks DSG acyclicity,
/// commit-order equivalence, and restart/version integrity. The
/// shards=1 run must additionally be a *serial witness*: every
/// dependency edge points forward in commit order, because the inline
/// engine executes transactions one at a time in exactly that order.
/// A run that captures no histories (or induces no edges) fails — a
/// vacuous pass proves nothing.
///
/// When `PSTORE_ISO_REPORT` names a path, a JSON summary of each
/// checked history (transaction/key/edge counts, violations) is written
/// there for CI to upload.
#[cfg(feature = "telemetry")]
fn iso_sweep() -> CheckStats {
    use pstore_core::InvariantId;
    use pstore_verify::iso;

    let mut stats = CheckStats::default();
    let mut report_lines: Vec<String> = Vec::new();
    for shards in ISO_SHARD_COUNTS {
        let artifact = format!("detailed sim key history shards={shards}");
        let (_result, events) = concurrency::captured_sim_run(shards);
        let histories = match iso::histories_of(&events) {
            Ok(h) => h,
            Err(e) => {
                stats.absorb(vec![Violation::new(
                    InvariantId::IsoDsgAcyclic,
                    artifact,
                    format!("undecodable key history: {e}"),
                )]);
                continue;
            }
        };
        let d = iso::dsg_stats(&histories);
        let mut violations = iso::check_key_histories(&artifact, &histories);
        if d.txns == 0 || d.wr + d.ww + d.rw == 0 {
            violations.push(Violation::new(
                InvariantId::IsoDsgAcyclic,
                artifact.clone(),
                format!(
                    "vacuous history: {} sampled txns, {} dependency edges — nothing was checked",
                    d.txns,
                    d.wr + d.ww + d.rw
                ),
            ));
        }
        if shards == 1 {
            for err in iso::serial_witness_errors(&histories) {
                violations.push(Violation::new(
                    InvariantId::IsoReadCommitOrder,
                    artifact.clone(),
                    format!("shards=1 commit order is not a serial witness: {err}"),
                ));
            }
        }
        report_lines.push(format!(
            "{{\"shards\":{shards},\"txns\":{},\"keys\":{},\"wr\":{},\"ww\":{},\"rw\":{},\"violations\":{}}}",
            d.txns,
            d.keys,
            d.wr,
            d.ww,
            d.rw,
            violations.len()
        ));
        stats.absorb(violations);
    }
    if let Ok(path) = std::env::var("PSTORE_ISO_REPORT") {
        let body = format!(
            "{{\"ok\":{},\"phases\":[{}]}}\n",
            stats.is_clean(),
            report_lines.join(",")
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("pstore-verify: could not write iso report to {path}: {e}");
        }
    }
    stats
}

/// Phase 9 (telemetry builds only): the `PRV-01..03` provisioning
/// sweep. Replays fixed-seed detailed runs with provenance events on —
/// the reactive ramp and a predictive flat-then-step scenario under the
/// P-Store controller with an oracle forecaster — at every shard count
/// in [`PROV_SHARD_COUNTS`], and checks the captured `prov_*` stream:
/// ledger conservation against the raw per-interval integral (PRV-01),
/// decision→reconfiguration causality and lead preservation (PRV-02),
/// and exactly-once forecast scoring against real observations
/// (PRV-03). A trace with no decisions, no reconfigurations or (for
/// the reactive run) no forecast scores fails — a vacuous pass proves
/// nothing — and the predictive run must contain at least one planned
/// decision with a real lead, or the lead-preservation check never
/// fired.
///
/// When `PSTORE_PROV_REPORT` names a path, a JSON summary of each
/// checked trace (decision/reconfig/score counts, violations) is
/// written there for CI to upload.
#[cfg(feature = "telemetry")]
fn prov_sweep() -> CheckStats {
    use pstore_core::InvariantId;
    use pstore_verify::prov;

    let mut stats = CheckStats::default();
    let mut report_lines: Vec<String> = Vec::new();
    for shards in PROV_SHARD_COUNTS {
        for predictive in [false, true] {
            let policy = if predictive { "predictive" } else { "reactive" };
            let artifact = format!("detailed sim prov trace policy={policy} shards={shards}");
            let (_result, events) = prov::captured_prov_run(shards, predictive);
            let runs = prov::raw_runs(&events);
            let decisions: usize = runs.iter().map(|r| r.decisions.len()).sum();
            let reconfigs: usize = runs.iter().map(|r| r.reconfigs.len()).sum();
            let scores: usize = runs.iter().map(|r| r.scores.len()).sum();
            let leads: usize = runs
                .iter()
                .flat_map(|r| &r.decisions)
                .filter(|d| d.lead >= 1)
                .count();
            let mut violations = prov::check_events(&artifact, &events);
            if decisions == 0 || reconfigs == 0 || scores == 0 {
                violations.push(Violation::new(
                    InvariantId::ProvDecisionCausality,
                    artifact.clone(),
                    format!(
                        "vacuous trace: {decisions} decisions, {reconfigs} reconfigs, \
                         {scores} forecast scores — nothing was checked"
                    ),
                ));
            }
            if predictive && leads == 0 {
                violations.push(Violation::new(
                    InvariantId::ProvDecisionCausality,
                    artifact.clone(),
                    "predictive run issued no decision with lead >= 1 — the \
                     lead-preservation check never fired"
                        .to_string(),
                ));
            }
            report_lines.push(format!(
                "{{\"policy\":\"{policy}\",\"shards\":{shards},\"decisions\":{decisions},\"reconfigs\":{reconfigs},\"scores\":{scores},\"lead_decisions\":{leads},\"violations\":{}}}",
                violations.len()
            ));
            stats.absorb(violations);
        }
    }
    if let Ok(path) = std::env::var("PSTORE_PROV_REPORT") {
        let body = format!(
            "{{\"ok\":{},\"phases\":[{}]}}\n",
            stats.is_clean(),
            report_lines.join(",")
        );
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("pstore-verify: could not write prov report to {path}: {e}");
        }
    }
    stats
}

/// Emits a random tree of nested spans (interleaved with plain events)
/// through the live telemetry API. `now` is the sim clock, advanced by a
/// random positive step around every event so traces are totally ordered
/// (`TEL-04`) and spans have real durations for the profiler (`TEL-05`).
fn emit_span_tree(rng: &mut StdRng, depth: usize, width: usize, now: &mut f64) {
    for _ in 0..width {
        pstore_telemetry::set_time(*now);
        let id = pstore_telemetry::begin_span("reconfig", &[]);
        *now += rng.random_range(0.0..2.0);
        pstore_telemetry::set_time(*now);
        pstore_telemetry::emit(pstore_telemetry::Event::new("chunk_move").with("bytes", 1000u64));
        if depth > 1 && rng.random_range(0u32..2) == 0 {
            let child_width = rng.random_range(1usize..=width);
            emit_span_tree(rng, depth - 1, child_width, now);
        }
        *now += rng.random_range(0.0..2.0);
        pstore_telemetry::set_time(*now);
        pstore_telemetry::end_span("reconfig", id, &[]);
    }
}

/// Emits randomized per-transaction lifecycle traffic through the live
/// telemetry API, mirroring what the detailed simulator samples: arrive,
/// queue (with optional migration stall), execute or timeout-drop, a
/// read/write-set record, and a terminal commit/abort whose attribution
/// components sum to the end-to-end latency (`TEL-06`/`TXN-01` fodder).
fn emit_txn_traffic(rng: &mut StdRng, now: &mut f64) {
    use pstore_telemetry::{kinds, Event};
    let txns = rng.random_range(2u64..24);
    for id in 1..=txns {
        *now += rng.random_range(0.0..0.5);
        pstore_telemetry::set_time(*now);
        let slot = rng.random_range(0u64..64);
        let migrating = rng.random_range(0u32..4) == 0;
        pstore_telemetry::emit(
            Event::new(kinds::TXN_ARRIVE)
                .with("id", id)
                .with("slot", slot),
        );
        let stall = if migrating {
            rng.random_range(0.0..0.3)
        } else {
            0.0
        };
        let queue = rng.random_range(0.0..0.2);
        pstore_telemetry::emit(
            Event::new(kinds::TXN_QUEUE)
                .with("id", id)
                .with("wait", queue + stall)
                .with("stall", stall),
        );
        if stall > 0.0 {
            pstore_telemetry::emit(
                Event::new(kinds::TXN_STALL)
                    .with("id", id)
                    .with("stall", stall),
            );
        }
        let exec = rng.random_range(0.001..0.05);
        let dropped = rng.random_range(0u32..8) == 0;
        if !dropped {
            pstore_telemetry::emit(
                Event::new(kinds::TXN_EXECUTE)
                    .with("id", id)
                    .with("service", exec),
            );
            if migrating && rng.random_range(0u32..2) == 0 {
                pstore_telemetry::emit(
                    Event::new(kinds::TXN_RESTART)
                        .with("id", id)
                        .with("slot", slot),
                );
            }
            let reads = rng.random_range(1u64..6);
            let writes = rng.random_range(0u64..3);
            pstore_telemetry::emit(
                Event::new(kinds::TXN_RWSET)
                    .with("id", id)
                    .with("slot", slot)
                    .with("proc", "ycsb")
                    .with("reads", reads)
                    .with("writes", writes)
                    .with("dest_reads", if migrating { reads.min(1) } else { 0 })
                    .with("dest_writes", if migrating { writes.min(1) } else { 0 })
                    .with("migrating", migrating)
                    .with("restarted", false)
                    .with("committed", true),
            );
        }
        let kind = if dropped {
            kinds::TXN_ABORT
        } else {
            kinds::TXN_COMMIT
        };
        let mut terminal = Event::new(kind)
            .with("id", id)
            .with("queue", queue)
            .with("exec", exec)
            .with("stall", stall)
            .with("total", queue + exec + stall)
            .with("end", *now + queue + stall + exec);
        if dropped {
            terminal = terminal.with("reason", "timeout");
        }
        pstore_telemetry::emit(terminal);
    }
}

/// A positive, roughly periodic series with multiplicative noise — the
/// kind of signal every model family should fit without blowing up.
fn noisy_periodic_series(rng: &mut StdRng, period: usize, len: usize) -> Vec<f64> {
    use std::f64::consts::PI;
    let base = rng.random_range(200.0..2_000.0);
    let amp = base * rng.random_range(0.2..0.6);
    (0..len)
        .map(|t| {
            let phase = 2.0 * PI * (t % period) as f64 / period as f64;
            let noise = 1.0 + 0.05 * (rng.random_range(0.0..1.0) - 0.5);
            ((base + amp * phase.sin()) * noise).max(1.0)
        })
        .collect()
}
