//! Concurrency checkers for the sweep surface (`CON-01..CON-03`) and
//! the sharded execution engine (`CON-04`/`CON-05`).
//!
//! Two complementary layers enforce these invariants:
//!
//! * **Model checking** — `vendor/rayon/tests/loom_models.rs` explores
//!   *every* interleaving of the pool's claim/execute/store protocol,
//!   the merge happens-before edge and the registry-isolation
//!   discipline under `RUSTFLAGS="--cfg loom"` (the pool's primitives
//!   swap to `loom` types there), and
//!   `crates/dbms/tests/loom_models.rs` does the same for the engine's
//!   mailbox handoff and reconfig fence. That layer proves the
//!   protocols.
//! * **Runtime checking (this module)** — drives the *production*
//!   [`Sweep`] runner and the *production* sharded
//!   [`Cluster`](pstore_dbms::Cluster) on real threads: no cell is lost
//!   or mis-attributed (CON-01), the ordered merge observes every
//!   cell's results and telemetry exactly as a serial run does
//!   (CON-02), no cell sees another cell's registry state (CON-03), the
//!   engine's mailbox routing delivers every transaction's fate exactly
//!   once, in submission order, bit-identical to the serial engine
//!   (CON-04 — [`check_mailbox_handoff`]), and reconfiguration under
//!   concurrent traffic fences in-flight shard execution so chunk moves
//!   never observe or lose mid-flight work (CON-05 —
//!   [`check_reconfig_fence`]).
//!
//! The runtime layer cannot enumerate schedules, but it covers what the
//! models abstract away: the real telemetry machinery, panicking and
//! stalling cells, the full result path of `pstore-bench`, and the full
//! routing/migration state machine of `pstore-dbms`.

use std::rc::Rc;

use pstore_bench::sweep::{Cell, CellFailure, Sweep};
use pstore_core::{InvariantId, Violation};
use pstore_dbms::catalog::{columns, ColumnType, TableSchema};
use pstore_dbms::{
    Catalog, Cluster, ClusterConfig, Key, KeyValue, Procedure, Row, TxnCtx, TxnError, TxnFate,
    TxnOutput, Value,
};
use pstore_telemetry as tel;

/// Cells in the fault-injection grid (indices 2 and 4 fail, index 5
/// stalls; the rest return `index * 100`).
const FAULT_GRID: u64 = 6;
/// Instrumented cells in the merge-barrier comparison.
const MERGE_CELLS: u64 = 6;
/// Probe cells in the registry-isolation check.
const PROBE_CELLS: usize = 8;

/// CON-01: a fault-injected sweep at `threads` must return one entry
/// per cell, in cell order, with failures attributed to the right cell
/// — identically to the serial run.
pub fn check_queue_integrity(threads: usize) -> Vec<Violation> {
    let artifact = format!("fault-injected sweep threads={threads}");
    let mut violations = Vec::new();

    // Injected panics are expected; keep them off the report output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = Sweep::new(threads).run_fallible(fault_grid());
    let serial = Sweep::new(1).run_fallible(fault_grid());
    std::panic::set_hook(prev_hook);

    let expected = expected_fault_outcomes();
    if results.len() != expected.len() {
        violations.push(Violation::new(
            InvariantId::ConcurrencyQueueIntegrity,
            artifact.clone(),
            format!("{} cells in, {} results out", expected.len(), results.len()),
        ));
        return violations;
    }
    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        if got != want {
            violations.push(Violation::new(
                InvariantId::ConcurrencyQueueIntegrity,
                artifact.clone(),
                format!("cell {i}: expected {want:?}, got {got:?}"),
            ));
        }
    }
    if results != serial {
        violations.push(Violation::new(
            InvariantId::ConcurrencyQueueIntegrity,
            artifact,
            "failure reporting differs from the serial run".to_string(),
        ));
    }
    violations
}

/// CON-02: after a capturing sweep at `threads`, the merged telemetry
/// (events, counters, gauges, histograms) and the results must be
/// indistinguishable from the serial run — evidence that the merge only
/// starts once every cell's writes are visible.
pub fn check_merge_barrier(threads: usize) -> Vec<Violation> {
    let artifact = format!("capturing sweep threads={threads} vs serial");
    let mut violations = Vec::new();
    let (r_ser, e_ser, m_ser) = capture_run(1);
    let (r_par, e_par, m_par) = capture_run(threads);

    if r_par != r_ser {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            "cell results differ from the serial run".to_string(),
        ));
    }
    if normalised(&e_par) != normalised(&e_ser) {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            format!(
                "forwarded event streams differ ({} serial vs {} parallel events)",
                e_ser.len(),
                e_par.len()
            ),
        ));
    }
    if m_par.counter("con_ticks") != m_ser.counter("con_ticks") {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            format!(
                "merged counter differs: serial {} vs parallel {}",
                m_ser.counter("con_ticks"),
                m_par.counter("con_ticks")
            ),
        ));
    }
    if m_par.gauge("con_last_seed").map(f64::to_bits)
        != m_ser.gauge("con_last_seed").map(f64::to_bits)
    {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            "merged gauge differs from the serial run (ordered merge broken)".to_string(),
        ));
    }
    let histograms_match = match (m_ser.histogram("con_lat"), m_par.histogram("con_lat")) {
        (Some(s), Some(p)) => s.content_eq(p),
        (None, None) => true,
        _ => false,
    };
    if !histograms_match {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact,
            "merged histogram differs from the serial run".to_string(),
        ));
    }
    violations
}

/// CON-03: probe cells that read the registry before touching it must
/// all observe a clean state, including cells run back-to-back on a
/// reused worker (`threads == 1` forces maximal reuse).
pub fn check_registry_isolation(threads: usize) -> Vec<Violation> {
    let artifact = format!("registry probe sweep threads={threads}");
    let (sink, _handle) = tel::MemorySink::new();
    tel::reset_registry();
    let guard = tel::install(Rc::new(sink));
    let cells: Vec<Cell<u64>> = (0..PROBE_CELLS)
        .map(|_| {
            Cell::new("probe", || {
                let before = tel::with_registry(|r| r.counter("con_probe"));
                tel::with_registry(|r| r.inc_counter("con_probe", 1));
                before
            })
        })
        .collect();
    let observed = Sweep::new(threads).run(cells);
    drop(guard);
    tel::reset_registry();

    let mut violations = Vec::new();
    for (i, before) in observed.iter().enumerate() {
        if *before != 0 {
            violations.push(Violation::new(
                InvariantId::ConcurrencyRegistryIsolation,
                artifact.clone(),
                format!("cell {i} observed {before} leaked probe increment(s)"),
            ));
        }
    }
    if observed.len() != PROBE_CELLS {
        violations.push(Violation::new(
            InvariantId::ConcurrencyRegistryIsolation,
            artifact,
            format!("{PROBE_CELLS} probes in, {} results out", observed.len()),
        ));
    }
    violations
}

/// CON-04: the same mixed workload (upserts, reads, business aborts)
/// driven through the threaded engine at `shards` must produce the same
/// fate stream — count, order, results, read/write sets — and the same
/// post-state (stats, table contents, slot access counters) as the
/// serial inline engine. Any loss, duplication or reordering in the
/// mailbox routing shows up as a diff.
pub fn check_mailbox_handoff(shards: u32) -> Vec<Violation> {
    let artifact = format!("sharded engine mixed workload shards={shards}");
    let mut violations = Vec::new();
    let mut inline = kv_cluster(1);
    let mut sharded = kv_cluster(shards);
    let a = drive_mixed(&mut inline);
    let b = drive_mixed(&mut sharded);
    violations.extend(compare_fates(
        InvariantId::ConcurrencyMailboxHandoff,
        &artifact,
        &a,
        &b,
    ));
    if inline.stats() != sharded.stats() {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMailboxHandoff,
            artifact.clone(),
            format!(
                "engine stats diverged: serial {:?} vs sharded {:?}",
                inline.stats(),
                sharded.stats()
            ),
        ));
    }
    if inline.export_table(0) != sharded.export_table(0) {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMailboxHandoff,
            artifact.clone(),
            "table contents diverged from the serial engine".to_string(),
        ));
    }
    if inline.slot_access_report() != sharded.slot_access_report() {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMailboxHandoff,
            artifact,
            "slot access counters diverged from the serial engine".to_string(),
        ));
    }
    violations
}

/// CON-05: a live scale-out (2 → 5 nodes) with transactions submitted
/// against mid-flight slots between every chunk move must, at any shard
/// count, (a) match the serial engine's fate stream and post-state
/// bit-for-bit, (b) pass the engine's own integrity audit, and (c) keep
/// the incremental per-shard slot-access counters in agreement with the
/// fenced [`Cluster::rebuild_slot_access_report`] recount — the audit
/// oracle that a fence observing in-flight work would break.
pub fn check_reconfig_fence(shards: u32) -> Vec<Violation> {
    let artifact = format!("sharded engine live reconfiguration shards={shards}");
    let mut violations = Vec::new();
    let mut inline = kv_cluster(1);
    let mut sharded = kv_cluster(shards);
    let a = drive_reconfig(&mut inline, &artifact, &mut violations);
    let b = drive_reconfig(&mut sharded, &artifact, &mut violations);
    violations.extend(compare_fates(
        InvariantId::ConcurrencyReconfigFence,
        &artifact,
        &a,
        &b,
    ));
    for (name, c) in [("serial", &inline), ("sharded", &sharded)] {
        if let Err(err) = c.verify_integrity() {
            violations.push(Violation::new(
                InvariantId::ConcurrencyReconfigFence,
                artifact.clone(),
                format!("{name} engine failed its integrity audit: {err}"),
            ));
        }
        if c.rebuild_slot_access_report() != c.slot_access_report() {
            violations.push(Violation::new(
                InvariantId::ConcurrencyReconfigFence,
                artifact.clone(),
                format!(
                    "{name} engine: fenced slot-access recount disagrees with the \
                     incremental per-shard counters"
                ),
            ));
        }
    }
    if inline.stats() != sharded.stats()
        || inline.export_table(0) != sharded.export_table(0)
        || inline.partition_report() != sharded.partition_report()
    {
        violations.push(Violation::new(
            InvariantId::ConcurrencyReconfigFence,
            artifact.clone(),
            "post-reconfiguration state diverged from the serial engine".to_string(),
        ));
    }
    let shard_txns: u64 = sharded.shard_reports().iter().map(|r| r.txns).sum();
    let serial_txns: u64 = inline.shard_reports().iter().map(|r| r.txns).sum();
    if shard_txns != serial_txns {
        violations.push(Violation::new(
            InvariantId::ConcurrencyReconfigFence,
            artifact,
            format!("per-shard txn counts sum to {shard_txns}, serial engine ran {serial_txns}"),
        ));
    }
    violations
}

/// CON-04/05 at simulator granularity: one detailed-simulation run — a
/// load ramp that forces the reactive controller into a live scale-out
/// — executed on the serial engine and on four shards must agree on
/// every observable (the result struct's `Debug` rendering covers every
/// per-second metric, violation counter and reconfiguration span).
/// Under the `telemetry` feature both runs are captured and the sampled
/// transaction traces additionally (a) pass the full TEL-01/02/04,
/// TEL-06 and TXN-01 battery and (b) are identical between shard
/// counts.
pub fn check_sharded_sim() -> Vec<Violation> {
    let artifact = "detailed sim on the sharded engine (shards 1 vs 4)";
    let mut violations = Vec::new();

    #[cfg(feature = "telemetry")]
    let ((serial, serial_events), (sharded, sharded_events)) =
        (captured_sim_run(1), captured_sim_run(4));
    #[cfg(not(feature = "telemetry"))]
    let (serial, sharded) = (sharded_sim_run(1), sharded_sim_run(4));

    if serial.reconfig_spans.is_empty() {
        violations.push(Violation::new(
            InvariantId::ConcurrencyReconfigFence,
            artifact.to_string(),
            "scenario never migrated — the reconfig fence was not exercised".to_string(),
        ));
    }
    if format!("{serial:?}") != format!("{sharded:?}") {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMailboxHandoff,
            artifact.to_string(),
            "sharded run is not bit-identical to the serial run".to_string(),
        ));
    }

    #[cfg(feature = "telemetry")]
    {
        for (label, events) in [("shards=1", &serial_events), ("shards=4", &sharded_events)] {
            let a = format!("{artifact} {label}");
            violations.extend(crate::telemetry::check_trace_spans(&a, events));
            violations.extend(crate::telemetry::check_trace_order(&a, events));
            violations.extend(crate::telemetry::check_txn_lifecycle(&a, events));
            violations.extend(crate::telemetry::check_txn_rwsets(&a, events));
        }
        if renumbered(&serial_events) != renumbered(&sharded_events) {
            violations.push(Violation::new(
                InvariantId::ConcurrencyMailboxHandoff,
                artifact.to_string(),
                "sampled telemetry streams differ between shard counts".to_string(),
            ));
        }
    }
    violations
}

/// One detailed run of the ramp scenario at `shards` executor shards.
fn sharded_sim_run(shards: u32) -> pstore_sim::detailed::DetailedSimResult {
    use pstore_core::controller::reactive::{ReactiveConfig, ReactiveController};
    use pstore_sim::detailed::{run_detailed, DetailedSimConfig};

    let mut load: Vec<f64> = (0..60)
        .map(|s| 300.0 + 400.0 * f64::from(s) / 60.0)
        .collect();
    load.extend(vec![700.0; 120]);
    let mut cfg = DetailedSimConfig::paper_defaults(load, 0xBEEF);
    // The paper's 300 s decision interval would outlast this 180 s ramp;
    // tighten it so the reactive controller actually scales out mid-run.
    cfg.params.interval = std::time::Duration::from_secs(30);
    cfg.params.d = std::time::Duration::from_secs(300);
    cfg.workload.num_skus = 2_000;
    cfg.workload.initial_carts = 600;
    cfg.num_slots = 360;
    cfg.warmup_txns = 20_000;
    cfg.txn_sample_every = 7;
    cfg.shards = shards; // paper_defaults reads PSTORE_SHARDS; pin it
    let mut strat = ReactiveController::new(ReactiveConfig {
        q: 285.0,
        q_hat: 350.0,
        trigger_fraction: 0.9,
        headroom: 0.2,
        smoothing_window: 2,
        scale_in_patience: 10,
        max_machines: 10,
        initial_machines: 2,
    });
    run_detailed(&cfg, &mut strat)
}

/// [`sharded_sim_run`] under a capturing sink. Shared with the iso sweep
/// (`ISO-01..03` in `main.rs`), which replays the same fixed-seed ramp
/// at shards {1, 2, 4} and checks the sampled key-level histories.
#[cfg(feature = "telemetry")]
pub fn captured_sim_run(shards: u32) -> (pstore_sim::detailed::DetailedSimResult, Vec<tel::Event>) {
    let (sink, handle) = tel::MemorySink::new();
    let guard = tel::install(Rc::new(sink));
    let result = sharded_sim_run(shards);
    drop(guard);
    (result, handle.events())
}

/// [`normalised`], plus deterministic span-id renumbering: span ids come
/// from a process-global counter, so two runs in one process allocate
/// different raw ids. Renumbering each stream's span ids in first-seen
/// order makes structurally identical traces compare equal.
#[cfg(feature = "telemetry")]
fn renumbered(events: &[tel::Event]) -> Vec<EventKey> {
    use std::collections::HashMap;
    let mut dense: HashMap<u64, u64> = HashMap::new();
    events
        .iter()
        .map(|e| {
            let is_span = e.kind == tel::kinds::SPAN_BEGIN || e.kind == tel::kinds::SPAN_END;
            let fields = e
                .fields
                .iter()
                .map(|(k, v)| {
                    if is_span && k == "id" {
                        if let tel::Value::U64(raw) = v {
                            let next = dense.len() as u64 + 1;
                            return (
                                k.clone(),
                                tel::Value::U64(*dense.entry(*raw).or_insert(next)),
                            );
                        }
                    }
                    (k.clone(), v.clone())
                })
                .collect();
            (e.kind.clone(), e.t.map(f64::to_bits), fields)
        })
        .collect()
}

/// A two-node KV cluster on the real engine (threaded backend when
/// `shards > 1`), mirroring the catalog of the engine's own tests.
fn kv_cluster(shards: u32) -> Cluster {
    let mut cat = Catalog::new();
    cat.add_table(TableSchema::new(
        "KV",
        columns(&[("k", ColumnType::Str), ("v", ColumnType::Int)]),
        1,
    ));
    Cluster::with_shards(
        cat,
        ClusterConfig {
            partitions_per_node: 4,
            num_slots: 64,
        },
        2,
        shards,
    )
}

/// Keys loaded (and re-read) by the engine drivers.
const ENGINE_KEYS: i64 = 300;

/// A trivial KV upsert routed by its key.
struct EnginePut {
    key: String,
    value: i64,
}

impl Procedure for EnginePut {
    fn name(&self) -> &'static str {
        "EnginePut"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.key.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        ctx.put(
            0,
            Key::str(self.key.clone()),
            Row(vec![Value::Int(self.value)]),
        );
        Ok(TxnOutput::None)
    }
}

/// A KV point read; aborts (business abort) on a missing key.
struct EngineGet {
    key: String,
}

impl Procedure for EngineGet {
    fn name(&self) -> &'static str {
        "EngineGet"
    }
    fn routing_key(&self) -> KeyValue {
        KeyValue::Str(self.key.clone())
    }
    fn execute(&self, ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
        let row = ctx.get_required(0, "KV", &Key::str(self.key.clone()))?;
        Ok(TxnOutput::Row(row))
    }
}

/// Submits a put through the pipelined API, routed like production
/// traffic.
fn submit_put(c: &mut Cluster, i: i64) {
    let put = EnginePut {
        key: format!("key-{i}"),
        value: i,
    };
    let slot = c.slot_of_routing(&put.routing_key());
    c.submit(put, slot);
}

/// Submits a get through the pipelined API (missing keys abort).
fn submit_get(c: &mut Cluster, i: i64) {
    let get = EngineGet {
        key: format!("key-{i}"),
    };
    let slot = c.slot_of_routing(&get.routing_key());
    c.submit(get, slot);
}

/// Mixed workload: upserts, successful reads, and reads of missing keys
/// (business aborts), interleaved so fates of different kinds race
/// through the mailboxes together.
fn drive_mixed(c: &mut Cluster) -> Vec<TxnFate> {
    let mut fates = Vec::new();
    for i in 0..ENGINE_KEYS {
        submit_put(c, i);
        if i % 3 == 0 {
            submit_get(c, i / 2); // written earlier -> commits
        }
        if i % 17 == 0 {
            submit_get(c, ENGINE_KEYS + i); // never written -> aborts
        }
    }
    c.drain_fates_into(&mut fates);
    fates
}

/// Loads the table, then scales 2 → 5 nodes chunk by chunk with reads
/// submitted against in-flight slots between moves — the fence-critical
/// interleaving.
fn drive_reconfig(
    c: &mut Cluster,
    artifact: &str,
    violations: &mut Vec<Violation>,
) -> Vec<TxnFate> {
    let mut fates = Vec::new();
    for i in 0..ENGINE_KEYS {
        submit_put(c, i);
    }
    c.drain_fates_into(&mut fates);
    if let Err(err) = c.begin_reconfiguration(5) {
        violations.push(Violation::new(
            InvariantId::ConcurrencyReconfigFence,
            artifact.to_string(),
            format!("begin_reconfiguration failed: {err}"),
        ));
        return fates;
    }
    while c.reconfiguring() {
        for pair in 0..c.pair_transfers().len() {
            if !c.reconfiguring() {
                break;
            }
            if let Err(err) = c.migrate_chunk(pair, 700) {
                violations.push(Violation::new(
                    InvariantId::ConcurrencyReconfigFence,
                    artifact.to_string(),
                    format!("migrate_chunk failed mid-reconfiguration: {err}"),
                ));
                return fates;
            }
        }
        for i in 0..40 {
            submit_get(c, i);
        }
        c.drain_fates_into(&mut fates);
    }
    fates
}

/// Compares two fate streams element-wise; at most three diverging
/// entries are reported before the count summary.
fn compare_fates(
    id: InvariantId,
    artifact: &str,
    serial: &[TxnFate],
    sharded: &[TxnFate],
) -> Vec<Violation> {
    let mut violations = Vec::new();
    if serial.len() != sharded.len() {
        violations.push(Violation::new(
            id,
            artifact.to_string(),
            format!(
                "{} fates from the serial engine, {} from the sharded engine",
                serial.len(),
                sharded.len()
            ),
        ));
        return violations;
    }
    let mut diverged = 0usize;
    for (i, (a, b)) in serial.iter().zip(sharded).enumerate() {
        if a.result != b.result
            || a.slot != b.slot
            || a.rwset != b.rwset
            || a.touched_dest != b.touched_dest
            || a.key_reads != b.key_reads
            || a.key_writes != b.key_writes
        {
            diverged += 1;
            if diverged <= 3 {
                violations.push(Violation::new(
                    id,
                    artifact.to_string(),
                    format!("fate {i} diverged from the serial engine"),
                ));
            }
        }
    }
    if diverged > 3 {
        violations.push(Violation::new(
            id,
            artifact.to_string(),
            format!("{diverged} of {} fates diverged in total", serial.len()),
        ));
    }
    violations
}

/// The fault-injection grid: healthy, panicking (str and `String`
/// payloads) and stalling cells.
fn fault_grid() -> Vec<Cell<u64>> {
    (0..FAULT_GRID)
        .map(|i| {
            Cell::new(format!("fault-cell-{i}"), move || match i {
                2 => panic!("injected fault in cell 2"),
                4 => std::panic::panic_any(format!("injected String fault in cell {i}")),
                5 => {
                    // Stalling cell: completes well after its neighbours.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    i * 100
                }
                _ => i * 100,
            })
        })
        .collect()
}

/// What [`fault_grid`] must deterministically produce.
fn expected_fault_outcomes() -> Vec<Result<u64, CellFailure>> {
    (0..FAULT_GRID)
        .map(|i| match i {
            2 => Err(CellFailure {
                index: 2,
                label: "fault-cell-2".to_string(),
                message: "injected fault in cell 2".to_string(),
            }),
            4 => Err(CellFailure {
                index: 4,
                label: "fault-cell-4".to_string(),
                message: "injected String fault in cell 4".to_string(),
            }),
            _ => Ok(i * 100),
        })
        .collect()
}

/// An instrumented cell: a span, per-tick events, and counter /
/// histogram / gauge traffic derived from the seed.
fn instrumented_cell(seed: u64) -> Cell<u64> {
    Cell::new(format!("con-cell-{seed}"), move || {
        let span = tel::begin_span("con_work", &[("seed", tel::Value::U64(seed))]);
        for i in 0..4u64 {
            tel::emit(tel::Event::new("con_tick").with("i", i).with("seed", seed));
            tel::with_registry(|r| {
                r.inc_counter("con_ticks", 1);
                #[allow(clippy::cast_precision_loss)] // tiny probe values
                r.record_histogram("con_lat", 1e-3 * (seed + 1) as f64 * (i + 1) as f64);
            });
        }
        #[allow(clippy::cast_precision_loss)] // tiny probe values
        tel::with_registry(|r| r.set_gauge("con_last_seed", seed as f64));
        tel::end_span("con_work", span, &[]);
        seed * 7
    })
}

/// Runs the instrumented grid under a fresh sink/registry and returns
/// (results, forwarded events, merged registry).
fn capture_run(threads: usize) -> (Vec<u64>, Vec<tel::Event>, tel::MetricsRegistry) {
    let (sink, handle) = tel::MemorySink::new();
    tel::reset_registry();
    let guard = tel::install(Rc::new(sink));
    let cells: Vec<Cell<u64>> = (0..MERGE_CELLS).map(instrumented_cell).collect();
    let results = Sweep::new(threads).run(cells);
    drop(guard);
    let registry = tel::with_registry(|r| r.clone());
    tel::reset_registry();
    (results, handle.events(), registry)
}

/// An event's deterministic content: kind, timestamp (bit pattern) and
/// payload fields, with the process-global `seq` dropped.
type EventKey = (String, Option<u64>, Vec<(String, tel::Value)>);

/// Projects events onto their deterministic content.
fn normalised(events: &[tel::Event]) -> Vec<EventKey> {
    events
        .iter()
        .map(|e| (e.kind.clone(), e.t.map(f64::to_bits), e.fields.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Both runtime checkers spawn real OS threads and drive full sweep /
    // simulator runs — far beyond what miri can execute in reasonable
    // time (the pure ISO/TEL/TXN checker logic has its own miri-clean
    // unit tests).
    #[test]
    #[cfg_attr(miri, ignore)]
    fn all_three_checkers_are_clean_at_one_and_four_threads() {
        for threads in [1, 4] {
            assert_eq!(check_queue_integrity(threads), Vec::new());
            assert_eq!(check_merge_barrier(threads), Vec::new());
            assert_eq!(check_registry_isolation(threads), Vec::new());
        }
    }

    #[test]
    #[cfg_attr(miri, ignore)]
    fn engine_checkers_are_clean_at_one_and_four_shards() {
        for shards in [1, 4] {
            assert_eq!(check_mailbox_handoff(shards), Vec::new());
            assert_eq!(check_reconfig_fence(shards), Vec::new());
        }
    }
}
