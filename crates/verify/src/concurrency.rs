//! Concurrency checkers for the sweep surface (`CON-01..CON-03`).
//!
//! Two complementary layers enforce these invariants:
//!
//! * **Model checking** — `vendor/rayon/tests/loom_models.rs` explores
//!   *every* interleaving of the pool's claim/execute/store protocol,
//!   the merge happens-before edge and the registry-isolation
//!   discipline under `RUSTFLAGS="--cfg loom"` (the pool's primitives
//!   swap to `loom` types there). That layer proves the protocols.
//! * **Runtime checking (this module)** — drives the *production*
//!   [`Sweep`] runner, fault injection included, and verifies the same
//!   three invariants end-to-end on real threads: no cell is lost or
//!   mis-attributed (CON-01), the ordered merge observes every cell's
//!   results and telemetry exactly as a serial run does (CON-02), and
//!   no cell sees another cell's registry state (CON-03).
//!
//! The runtime layer cannot enumerate schedules, but it covers what the
//! models abstract away: the real telemetry machinery, panicking and
//! stalling cells, and the full result path of `pstore-bench`.

use std::rc::Rc;

use pstore_bench::sweep::{Cell, CellFailure, Sweep};
use pstore_core::{InvariantId, Violation};
use pstore_telemetry as tel;

/// Cells in the fault-injection grid (indices 2 and 4 fail, index 5
/// stalls; the rest return `index * 100`).
const FAULT_GRID: u64 = 6;
/// Instrumented cells in the merge-barrier comparison.
const MERGE_CELLS: u64 = 6;
/// Probe cells in the registry-isolation check.
const PROBE_CELLS: usize = 8;

/// CON-01: a fault-injected sweep at `threads` must return one entry
/// per cell, in cell order, with failures attributed to the right cell
/// — identically to the serial run.
pub fn check_queue_integrity(threads: usize) -> Vec<Violation> {
    let artifact = format!("fault-injected sweep threads={threads}");
    let mut violations = Vec::new();

    // Injected panics are expected; keep them off the report output.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let results = Sweep::new(threads).run_fallible(fault_grid());
    let serial = Sweep::new(1).run_fallible(fault_grid());
    std::panic::set_hook(prev_hook);

    let expected = expected_fault_outcomes();
    if results.len() != expected.len() {
        violations.push(Violation::new(
            InvariantId::ConcurrencyQueueIntegrity,
            artifact.clone(),
            format!("{} cells in, {} results out", expected.len(), results.len()),
        ));
        return violations;
    }
    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        if got != want {
            violations.push(Violation::new(
                InvariantId::ConcurrencyQueueIntegrity,
                artifact.clone(),
                format!("cell {i}: expected {want:?}, got {got:?}"),
            ));
        }
    }
    if results != serial {
        violations.push(Violation::new(
            InvariantId::ConcurrencyQueueIntegrity,
            artifact,
            "failure reporting differs from the serial run".to_string(),
        ));
    }
    violations
}

/// CON-02: after a capturing sweep at `threads`, the merged telemetry
/// (events, counters, gauges, histograms) and the results must be
/// indistinguishable from the serial run — evidence that the merge only
/// starts once every cell's writes are visible.
pub fn check_merge_barrier(threads: usize) -> Vec<Violation> {
    let artifact = format!("capturing sweep threads={threads} vs serial");
    let mut violations = Vec::new();
    let (r_ser, e_ser, m_ser) = capture_run(1);
    let (r_par, e_par, m_par) = capture_run(threads);

    if r_par != r_ser {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            "cell results differ from the serial run".to_string(),
        ));
    }
    if normalised(&e_par) != normalised(&e_ser) {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            format!(
                "forwarded event streams differ ({} serial vs {} parallel events)",
                e_ser.len(),
                e_par.len()
            ),
        ));
    }
    if m_par.counter("con_ticks") != m_ser.counter("con_ticks") {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            format!(
                "merged counter differs: serial {} vs parallel {}",
                m_ser.counter("con_ticks"),
                m_par.counter("con_ticks")
            ),
        ));
    }
    if m_par.gauge("con_last_seed").map(f64::to_bits)
        != m_ser.gauge("con_last_seed").map(f64::to_bits)
    {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact.clone(),
            "merged gauge differs from the serial run (ordered merge broken)".to_string(),
        ));
    }
    let histograms_match = match (m_ser.histogram("con_lat"), m_par.histogram("con_lat")) {
        (Some(s), Some(p)) => s.content_eq(p),
        (None, None) => true,
        _ => false,
    };
    if !histograms_match {
        violations.push(Violation::new(
            InvariantId::ConcurrencyMergeBarrier,
            artifact,
            "merged histogram differs from the serial run".to_string(),
        ));
    }
    violations
}

/// CON-03: probe cells that read the registry before touching it must
/// all observe a clean state, including cells run back-to-back on a
/// reused worker (`threads == 1` forces maximal reuse).
pub fn check_registry_isolation(threads: usize) -> Vec<Violation> {
    let artifact = format!("registry probe sweep threads={threads}");
    let (sink, _handle) = tel::MemorySink::new();
    tel::reset_registry();
    let guard = tel::install(Rc::new(sink));
    let cells: Vec<Cell<u64>> = (0..PROBE_CELLS)
        .map(|_| {
            Cell::new("probe", || {
                let before = tel::with_registry(|r| r.counter("con_probe"));
                tel::with_registry(|r| r.inc_counter("con_probe", 1));
                before
            })
        })
        .collect();
    let observed = Sweep::new(threads).run(cells);
    drop(guard);
    tel::reset_registry();

    let mut violations = Vec::new();
    for (i, before) in observed.iter().enumerate() {
        if *before != 0 {
            violations.push(Violation::new(
                InvariantId::ConcurrencyRegistryIsolation,
                artifact.clone(),
                format!("cell {i} observed {before} leaked probe increment(s)"),
            ));
        }
    }
    if observed.len() != PROBE_CELLS {
        violations.push(Violation::new(
            InvariantId::ConcurrencyRegistryIsolation,
            artifact,
            format!("{PROBE_CELLS} probes in, {} results out", observed.len()),
        ));
    }
    violations
}

/// The fault-injection grid: healthy, panicking (str and `String`
/// payloads) and stalling cells.
fn fault_grid() -> Vec<Cell<u64>> {
    (0..FAULT_GRID)
        .map(|i| {
            Cell::new(format!("fault-cell-{i}"), move || match i {
                2 => panic!("injected fault in cell 2"),
                4 => std::panic::panic_any(format!("injected String fault in cell {i}")),
                5 => {
                    // Stalling cell: completes well after its neighbours.
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    i * 100
                }
                _ => i * 100,
            })
        })
        .collect()
}

/// What [`fault_grid`] must deterministically produce.
fn expected_fault_outcomes() -> Vec<Result<u64, CellFailure>> {
    (0..FAULT_GRID)
        .map(|i| match i {
            2 => Err(CellFailure {
                index: 2,
                label: "fault-cell-2".to_string(),
                message: "injected fault in cell 2".to_string(),
            }),
            4 => Err(CellFailure {
                index: 4,
                label: "fault-cell-4".to_string(),
                message: "injected String fault in cell 4".to_string(),
            }),
            _ => Ok(i * 100),
        })
        .collect()
}

/// An instrumented cell: a span, per-tick events, and counter /
/// histogram / gauge traffic derived from the seed.
fn instrumented_cell(seed: u64) -> Cell<u64> {
    Cell::new(format!("con-cell-{seed}"), move || {
        let span = tel::begin_span("con_work", &[("seed", tel::Value::U64(seed))]);
        for i in 0..4u64 {
            tel::emit(tel::Event::new("con_tick").with("i", i).with("seed", seed));
            tel::with_registry(|r| {
                r.inc_counter("con_ticks", 1);
                #[allow(clippy::cast_precision_loss)] // tiny probe values
                r.record_histogram("con_lat", 1e-3 * (seed + 1) as f64 * (i + 1) as f64);
            });
        }
        #[allow(clippy::cast_precision_loss)] // tiny probe values
        tel::with_registry(|r| r.set_gauge("con_last_seed", seed as f64));
        tel::end_span("con_work", span, &[]);
        seed * 7
    })
}

/// Runs the instrumented grid under a fresh sink/registry and returns
/// (results, forwarded events, merged registry).
fn capture_run(threads: usize) -> (Vec<u64>, Vec<tel::Event>, tel::MetricsRegistry) {
    let (sink, handle) = tel::MemorySink::new();
    tel::reset_registry();
    let guard = tel::install(Rc::new(sink));
    let cells: Vec<Cell<u64>> = (0..MERGE_CELLS).map(instrumented_cell).collect();
    let results = Sweep::new(threads).run(cells);
    drop(guard);
    let registry = tel::with_registry(|r| r.clone());
    tel::reset_registry();
    (results, handle.events(), registry)
}

/// An event's deterministic content: kind, timestamp (bit pattern) and
/// payload fields, with the process-global `seq` dropped.
type EventKey = (String, Option<u64>, Vec<(String, tel::Value)>);

/// Projects events onto their deterministic content.
fn normalised(events: &[tel::Event]) -> Vec<EventKey> {
    events
        .iter()
        .map(|e| (e.kind.clone(), e.t.map(f64::to_bits), e.fields.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_three_checkers_are_clean_at_one_and_four_threads() {
        for threads in [1, 4] {
            assert_eq!(check_queue_integrity(threads), Vec::new());
            assert_eq!(check_merge_barrier(threads), Vec::new());
            assert_eq!(check_registry_isolation(threads), Vec::new());
        }
    }
}
