//! Telemetry-trace checkers: the `TEL-*` invariant family.
//!
//! `TEL-01` (reconfiguration/span pairing) and `TEL-02` (LIFO span
//! nesting) reuse [`pstore_telemetry::trace::span_errors`] — the same
//! implementation the `pstore-trace` binary runs over JSONL files — and
//! translate each structural error into a [`Violation`]. `TEL-03` checks
//! that merging latency histograms is associative and commutative on
//! bucket contents, so per-phase histograms can be combined in any order
//! without changing percentile readouts. `TEL-04` (total event ordering)
//! reuses [`pstore_telemetry::trace::order_errors`], and `TEL-05`
//! (profile-tree time conservation) checks the span profiler's
//! aggregation and folded rendering against each other.

use pstore_core::{InvariantId, Violation};
use pstore_telemetry::trace::{order_errors, span_errors, SpanError};
use pstore_telemetry::{Event, Histogram, Profile, ProfileClock};

/// Checks span pairing (`TEL-01`) and nesting (`TEL-02`) over a trace.
///
/// Pairing violations are ends without a begin and spans left open at end
/// of trace; nesting violations are duplicate open ids, out-of-LIFO-order
/// closes, and span events missing their id.
pub fn check_trace_spans(artifact: &str, events: &[Event]) -> Vec<Violation> {
    span_errors(events)
        .into_iter()
        .map(|err| {
            let invariant = match err {
                SpanError::EndWithoutBegin { .. } | SpanError::Unclosed { .. } => {
                    InvariantId::TelemetryReconfigPairing
                }
                SpanError::DuplicateBegin { .. }
                | SpanError::BadNesting { .. }
                | SpanError::MissingId { .. } => InvariantId::TelemetrySpanNesting,
            };
            Violation::new(invariant, artifact, err.to_string())
        })
        .collect()
}

/// Checks total event ordering (`TEL-04`) over a trace: `seq` strictly
/// increases and sim-time `t` never regresses while a span is open.
pub fn check_trace_order(artifact: &str, events: &[Event]) -> Vec<Violation> {
    order_errors(events)
        .into_iter()
        .map(|err| Violation::new(InvariantId::TelemetryOrdering, artifact, err.to_string()))
        .collect()
}

/// Checks profile-tree time conservation (`TEL-05`): builds the span
/// profile of a trace under `clock`, then verifies that every parent's
/// total time covers the sum of its children's totals and that the
/// flamegraph-folded rendering re-sums to the same tree.
pub fn check_profile_conservation(
    artifact: &str,
    events: &[Event],
    clock: ProfileClock,
) -> Vec<Violation> {
    let profile = Profile::from_events(events, clock);
    let mut violations: Vec<Violation> = profile
        .conservation_errors()
        .into_iter()
        .map(|msg| Violation::new(InvariantId::TelemetryProfileConservation, artifact, msg))
        .collect();
    violations.extend(
        profile
            .folded_resum_errors(&profile.folded())
            .into_iter()
            .map(|msg| {
                Violation::new(
                    InvariantId::TelemetryProfileConservation,
                    artifact,
                    format!("folded output diverges from tree: {msg}"),
                )
            }),
    );
    violations
}

/// Builds a histogram over one sample set.
fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Checks that histogram merging is associative and commutative on bucket
/// contents (`TEL-03`): `(a + b) + c` must equal `a + (b + c)` and
/// `a + b` must equal `b + a`, up to floating-point reassociation of the
/// running sum (see [`Histogram::content_eq`]).
pub fn check_histogram_merge(artifact: &str, sets: &[Vec<f64>; 3]) -> Vec<Violation> {
    let [a, b, c] = sets;
    let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
    let mut violations = Vec::new();

    let mut left = ha.clone();
    left.merge(&hb);
    left.merge(&hc);
    let mut right_tail = hb.clone();
    right_tail.merge(&hc);
    let mut right = ha.clone();
    right.merge(&right_tail);
    if !left.content_eq(&right) {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            format!(
                "(a+b)+c != a+(b+c): counts {} vs {}, p99 {} vs {}",
                left.count(),
                right.count(),
                left.quantile(0.99),
                right.quantile(0.99)
            ),
        ));
    }

    let mut ab = ha.clone();
    ab.merge(&hb);
    let mut ba = hb.clone();
    ba.merge(&ha);
    if !ab.content_eq(&ba) {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            "a+b != b+a: merge is not commutative on bucket contents".to_string(),
        ));
    }

    // Merging must preserve the total sample count exactly.
    let expected = a.len() + b.len() + c.len();
    if left.count() != expected as u64 {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            format!("merged count {} != total samples {expected}", left.count()),
        ));
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstore_telemetry::kinds;

    fn begin(seq: u64, id: u64) -> Event {
        let mut e = Event::new(kinds::SPAN_BEGIN)
            .with("id", id)
            .with("name", "reconfig");
        e.seq = seq;
        e
    }

    fn end(seq: u64, id: u64) -> Event {
        let mut e = Event::new(kinds::SPAN_END).with("id", id);
        e.seq = seq;
        e
    }

    #[test]
    fn well_formed_nested_spans_are_clean() {
        let trace = vec![begin(1, 10), begin(2, 11), end(3, 11), end(4, 10)];
        assert!(check_trace_spans("t", &trace).is_empty());
    }

    #[test]
    fn dangling_span_is_a_pairing_violation() {
        let trace = vec![begin(1, 10)];
        let v = check_trace_spans("t", &trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantId::TelemetryReconfigPairing);
    }

    #[test]
    fn out_of_order_close_is_a_nesting_violation() {
        let trace = vec![begin(1, 10), begin(2, 11), end(3, 10), end(4, 11)];
        let v = check_trace_spans("t", &trace);
        assert!(v
            .iter()
            .any(|x| x.invariant == InvariantId::TelemetrySpanNesting));
    }

    fn stamped(mut e: Event, t: f64) -> Event {
        e.t = Some(t);
        e
    }

    #[test]
    fn ordered_trace_passes_tel04() {
        let trace = vec![
            stamped(begin(1, 10), 0.0),
            stamped(begin(2, 11), 1.0),
            stamped(end(3, 11), 2.0),
            stamped(end(4, 10), 3.0),
        ];
        assert!(check_trace_order("t", &trace).is_empty());
    }

    #[test]
    fn seq_and_time_regressions_violate_tel04() {
        // seq goes backwards.
        let trace = vec![stamped(begin(2, 10), 0.0), stamped(end(1, 10), 1.0)];
        let v = check_trace_order("t", &trace);
        assert!(!v.is_empty());
        assert!(v
            .iter()
            .all(|x| x.invariant == InvariantId::TelemetryOrdering));

        // t regresses while span 10 is still open.
        let trace = vec![stamped(begin(1, 10), 5.0), stamped(end(2, 10), 2.0)];
        assert!(!check_trace_order("t", &trace).is_empty());

        // ... but a reset at an empty span stack is a legal run boundary.
        let trace = vec![
            stamped(begin(1, 10), 5.0),
            stamped(end(2, 10), 6.0),
            stamped(begin(3, 11), 0.0),
            stamped(end(4, 11), 1.0),
        ];
        assert!(check_trace_order("t", &trace).is_empty());
    }

    #[test]
    fn nested_span_profile_conserves_time() {
        let trace = vec![
            stamped(begin(1, 10), 0.0),
            stamped(begin(2, 11), 1.0),
            stamped(end(3, 11), 2.0),
            stamped(begin(4, 12), 2.5),
            stamped(end(5, 12), 3.5),
            stamped(end(6, 10), 4.0),
        ];
        assert!(check_profile_conservation("t", &trace, ProfileClock::Sim).is_empty());
    }

    #[test]
    fn histogram_merge_is_associative_on_simple_sets() {
        let sets = [
            vec![0.001, 0.01, 0.5],
            vec![0.2, 0.2, 3.0],
            vec![0.0004, 10.0],
        ];
        assert!(check_histogram_merge("t", &sets).is_empty());
    }
}
