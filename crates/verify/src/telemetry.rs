//! Telemetry-trace checkers: the `TEL-*` invariant family.
//!
//! `TEL-01` (reconfiguration/span pairing) and `TEL-02` (LIFO span
//! nesting) reuse [`pstore_telemetry::trace::span_errors`] — the same
//! implementation the `pstore-trace` binary runs over JSONL files — and
//! translate each structural error into a [`Violation`]. `TEL-03` checks
//! that merging latency histograms is associative and commutative on
//! bucket contents, so per-phase histograms can be combined in any order
//! without changing percentile readouts. `TEL-04` (total event ordering)
//! reuses [`pstore_telemetry::trace::order_errors`], and `TEL-05`
//! (profile-tree time conservation) checks the span profiler's
//! aggregation and folded rendering against each other.
//!
//! The per-transaction family rides the same traces: `TEL-06` checks
//! txn-lifecycle well-formedness (every `txn_arrive` terminally resolved
//! exactly once, no event for an unopened id, and the terminal latency
//! attribution summing `queue + exec + stall == total`), and `TXN-01`
//! checks that recorded read/write sets are consistent with declared
//! partition access (destination-side accesses and restarts only while
//! migrating, rwset slot matching the arrival slot).

use pstore_core::{InvariantId, Violation};
use pstore_telemetry::trace::{order_errors, span_errors, SpanError};
use pstore_telemetry::{kinds, Event, Histogram, Profile, ProfileClock};
use std::collections::BTreeMap;

/// Checks span pairing (`TEL-01`) and nesting (`TEL-02`) over a trace.
///
/// Pairing violations are ends without a begin and spans left open at end
/// of trace; nesting violations are duplicate open ids, out-of-LIFO-order
/// closes, and span events missing their id.
pub fn check_trace_spans(artifact: &str, events: &[Event]) -> Vec<Violation> {
    span_errors(events)
        .into_iter()
        .map(|err| {
            let invariant = match err {
                SpanError::EndWithoutBegin { .. } | SpanError::Unclosed { .. } => {
                    InvariantId::TelemetryReconfigPairing
                }
                SpanError::DuplicateBegin { .. }
                | SpanError::BadNesting { .. }
                | SpanError::MissingId { .. } => InvariantId::TelemetrySpanNesting,
            };
            Violation::new(invariant, artifact, err.to_string())
        })
        .collect()
}

/// Checks total event ordering (`TEL-04`) over a trace: `seq` strictly
/// increases and sim-time `t` never regresses while a span is open.
pub fn check_trace_order(artifact: &str, events: &[Event]) -> Vec<Violation> {
    order_errors(events)
        .into_iter()
        .map(|err| Violation::new(InvariantId::TelemetryOrdering, artifact, err.to_string()))
        .collect()
}

/// Checks profile-tree time conservation (`TEL-05`): builds the span
/// profile of a trace under `clock`, then verifies that every parent's
/// total time covers the sum of its children's totals and that the
/// flamegraph-folded rendering re-sums to the same tree.
pub fn check_profile_conservation(
    artifact: &str,
    events: &[Event],
    clock: ProfileClock,
) -> Vec<Violation> {
    let profile = Profile::from_events(events, clock);
    let mut violations: Vec<Violation> = profile
        .conservation_errors()
        .into_iter()
        .map(|msg| Violation::new(InvariantId::TelemetryProfileConservation, artifact, msg))
        .collect();
    violations.extend(
        profile
            .folded_resum_errors(&profile.folded())
            .into_iter()
            .map(|msg| {
                Violation::new(
                    InvariantId::TelemetryProfileConservation,
                    artifact,
                    format!("folded output diverges from tree: {msg}"),
                )
            }),
    );
    violations
}

/// Builds a histogram over one sample set.
fn hist_of(samples: &[f64]) -> Histogram {
    let mut h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

/// Checks that histogram merging is associative and commutative on bucket
/// contents (`TEL-03`): `(a + b) + c` must equal `a + (b + c)` and
/// `a + b` must equal `b + a`, up to floating-point reassociation of the
/// running sum (see [`Histogram::content_eq`]).
pub fn check_histogram_merge(artifact: &str, sets: &[Vec<f64>; 3]) -> Vec<Violation> {
    let [a, b, c] = sets;
    let (ha, hb, hc) = (hist_of(a), hist_of(b), hist_of(c));
    let mut violations = Vec::new();

    let mut left = ha.clone();
    left.merge(&hb);
    left.merge(&hc);
    let mut right_tail = hb.clone();
    right_tail.merge(&hc);
    let mut right = ha.clone();
    right.merge(&right_tail);
    if !left.content_eq(&right) {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            format!(
                "(a+b)+c != a+(b+c): counts {} vs {}, p99 {} vs {}",
                left.count(),
                right.count(),
                left.quantile(0.99),
                right.quantile(0.99)
            ),
        ));
    }

    let mut ab = ha.clone();
    ab.merge(&hb);
    let mut ba = hb.clone();
    ba.merge(&ha);
    if !ab.content_eq(&ba) {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            "a+b != b+a: merge is not commutative on bucket contents".to_string(),
        ));
    }

    // Merging must preserve the total sample count exactly.
    let expected = a.len() + b.len() + c.len();
    if left.count() != expected as u64 {
        violations.push(Violation::new(
            InvariantId::TelemetryHistogramMerge,
            artifact,
            format!("merged count {} != total samples {expected}", left.count()),
        ));
    }
    violations
}

/// Tolerance for the TEL-06 attribution identity. The recorder computes
/// `total` as the literal f64 sum `queue + exec + stall`, so only JSON
/// round-trip noise can separate them.
const ATTR_SUM_TOL: f64 = 1e-6;

/// True for terminal txn-lifecycle kinds.
fn is_terminal(kind: &str) -> bool {
    kind == kinds::TXN_COMMIT || kind == kinds::TXN_ABORT
}

/// True for non-terminal txn-lifecycle kinds that must reference an open
/// transaction.
fn is_mid_lifecycle(kind: &str) -> bool {
    matches!(
        kind,
        kinds::TXN_QUEUE
            | kinds::TXN_STALL
            | kinds::TXN_EXECUTE
            | kinds::TXN_RESTART
            | kinds::TXN_RWSET
    )
}

/// Checks txn-lifecycle well-formedness (`TEL-06`) over a trace:
///
/// - a `txn_arrive` id stays unique until terminally resolved (resolved
///   ids may be reused by later transactions);
/// - every lifecycle event references a currently open transaction;
/// - every open transaction is resolved by exactly one
///   `txn_commit`/`txn_abort` before end of trace;
/// - the terminal event's attribution satisfies
///   `queue + exec + stall == total` within [`ATTR_SUM_TOL`].
///
/// Traces with no txn events (sampling off) are trivially clean.
pub fn check_txn_lifecycle(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut open: BTreeMap<u64, u64> = BTreeMap::new(); // id -> arrive slot
    let mut push = |detail: String| {
        violations.push(Violation::new(
            InvariantId::TelemetryTxnLifecycle,
            artifact,
            detail,
        ));
    };
    for ev in events {
        let kind = ev.kind.as_str();
        if kind == kinds::TXN_ARRIVE {
            let Some(id) = ev.field_u64("id") else {
                push(format!("seq {}: txn_arrive without an id", ev.seq));
                continue;
            };
            let slot = ev.field_u64("slot").unwrap_or(0);
            if open.insert(id, slot).is_some() {
                push(format!(
                    "txn {id}: re-arrived while still open (seq {})",
                    ev.seq
                ));
            }
        } else if is_mid_lifecycle(kind) || is_terminal(kind) {
            let Some(id) = ev.field_u64("id") else {
                push(format!("seq {}: {kind} without an id", ev.seq));
                continue;
            };
            if !open.contains_key(&id) {
                push(format!(
                    "txn {id}: {kind} for a transaction that is not open (seq {})",
                    ev.seq
                ));
                continue;
            }
            if is_terminal(kind) {
                open.remove(&id);
                let total = ev.field_f64("total").unwrap_or(f64::NAN);
                let parts = ev.field_f64("queue").unwrap_or(f64::NAN)
                    + ev.field_f64("exec").unwrap_or(f64::NAN)
                    + ev.field_f64("stall").unwrap_or(f64::NAN);
                let tol = ATTR_SUM_TOL * total.abs().max(1.0);
                let gap = (parts - total).abs();
                // A NaN gap (missing field) must also count as a violation.
                if gap.is_nan() || gap > tol {
                    push(format!(
                        "txn {id}: attribution {parts} != total {total} at {kind} (seq {})",
                        ev.seq
                    ));
                }
            }
        }
    }
    for (&id, _) in open.iter().take(10) {
        push(format!("txn {id}: arrived but never committed or aborted"));
    }
    if open.len() > 10 {
        push(format!("... and {} more unresolved txns", open.len() - 10));
    }
    violations
}

/// Checks read/write-set consistency (`TXN-01`) over a trace:
///
/// - `txn_rwset` destination-side counts (`dest_reads`/`dest_writes`)
///   are only non-zero when the record says the slot was `migrating`;
/// - a `restarted` rwset (Squall-style reroute) implies `migrating`;
/// - destination counts never exceed the totals they are part of;
/// - the rwset's `slot` (and any `txn_restart` slot) matches the slot
///   the transaction arrived on.
pub fn check_txn_rwsets(artifact: &str, events: &[Event]) -> Vec<Violation> {
    let mut violations = Vec::new();
    let mut arrive_slot: BTreeMap<u64, u64> = BTreeMap::new();
    let mut push = |detail: String| {
        violations.push(Violation::new(
            InvariantId::TxnReadWriteSets,
            artifact,
            detail,
        ));
    };
    for ev in events {
        match ev.kind.as_str() {
            kinds::TXN_ARRIVE => {
                if let (Some(id), Some(slot)) = (ev.field_u64("id"), ev.field_u64("slot")) {
                    arrive_slot.insert(id, slot);
                }
            }
            kinds::TXN_COMMIT | kinds::TXN_ABORT => {
                if let Some(id) = ev.field_u64("id") {
                    arrive_slot.remove(&id);
                }
            }
            kinds::TXN_RESTART => {
                if let (Some(id), Some(slot)) = (ev.field_u64("id"), ev.field_u64("slot")) {
                    if let Some(&declared) = arrive_slot.get(&id) {
                        if declared != slot {
                            push(format!(
                                "txn {id}: restart on slot {slot} but arrived on slot {declared}"
                            ));
                        }
                    }
                }
            }
            kinds::TXN_RWSET => {
                let Some(id) = ev.field_u64("id") else {
                    push(format!("seq {}: txn_rwset without an id", ev.seq));
                    continue;
                };
                let migrating = ev.field("migrating").and_then(|v| v.as_bool()) == Some(true);
                let restarted = ev.field("restarted").and_then(|v| v.as_bool()) == Some(true);
                let reads = ev.field_u64("reads").unwrap_or(0);
                let writes = ev.field_u64("writes").unwrap_or(0);
                let dest_reads = ev.field_u64("dest_reads").unwrap_or(0);
                let dest_writes = ev.field_u64("dest_writes").unwrap_or(0);
                if !migrating && (dest_reads > 0 || dest_writes > 0) {
                    push(format!(
                        "txn {id}: destination accesses ({dest_reads}r/{dest_writes}w) while slot not migrating"
                    ));
                }
                if restarted && !migrating {
                    push(format!("txn {id}: restarted outside a migration"));
                }
                if dest_reads > reads || dest_writes > writes {
                    push(format!(
                        "txn {id}: destination counts {dest_reads}r/{dest_writes}w exceed totals {reads}r/{writes}w"
                    ));
                }
                if let (Some(slot), Some(&declared)) = (ev.field_u64("slot"), arrive_slot.get(&id))
                {
                    if slot != declared {
                        push(format!(
                            "txn {id}: rwset on slot {slot} but arrived on slot {declared}"
                        ));
                    }
                }
            }
            _ => {}
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use pstore_telemetry::kinds;

    fn begin(seq: u64, id: u64) -> Event {
        let mut e = Event::new(kinds::SPAN_BEGIN)
            .with("id", id)
            .with("name", "reconfig");
        e.seq = seq;
        e
    }

    fn end(seq: u64, id: u64) -> Event {
        let mut e = Event::new(kinds::SPAN_END).with("id", id);
        e.seq = seq;
        e
    }

    #[test]
    fn well_formed_nested_spans_are_clean() {
        let trace = vec![begin(1, 10), begin(2, 11), end(3, 11), end(4, 10)];
        assert!(check_trace_spans("t", &trace).is_empty());
    }

    #[test]
    fn dangling_span_is_a_pairing_violation() {
        let trace = vec![begin(1, 10)];
        let v = check_trace_spans("t", &trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant, InvariantId::TelemetryReconfigPairing);
    }

    #[test]
    fn out_of_order_close_is_a_nesting_violation() {
        let trace = vec![begin(1, 10), begin(2, 11), end(3, 10), end(4, 11)];
        let v = check_trace_spans("t", &trace);
        assert!(v
            .iter()
            .any(|x| x.invariant == InvariantId::TelemetrySpanNesting));
    }

    fn stamped(mut e: Event, t: f64) -> Event {
        e.t = Some(t);
        e
    }

    #[test]
    fn ordered_trace_passes_tel04() {
        let trace = vec![
            stamped(begin(1, 10), 0.0),
            stamped(begin(2, 11), 1.0),
            stamped(end(3, 11), 2.0),
            stamped(end(4, 10), 3.0),
        ];
        assert!(check_trace_order("t", &trace).is_empty());
    }

    #[test]
    fn seq_and_time_regressions_violate_tel04() {
        // seq goes backwards.
        let trace = vec![stamped(begin(2, 10), 0.0), stamped(end(1, 10), 1.0)];
        let v = check_trace_order("t", &trace);
        assert!(!v.is_empty());
        assert!(v
            .iter()
            .all(|x| x.invariant == InvariantId::TelemetryOrdering));

        // t regresses while span 10 is still open.
        let trace = vec![stamped(begin(1, 10), 5.0), stamped(end(2, 10), 2.0)];
        assert!(!check_trace_order("t", &trace).is_empty());

        // ... but a reset at an empty span stack is a legal run boundary.
        let trace = vec![
            stamped(begin(1, 10), 5.0),
            stamped(end(2, 10), 6.0),
            stamped(begin(3, 11), 0.0),
            stamped(end(4, 11), 1.0),
        ];
        assert!(check_trace_order("t", &trace).is_empty());
    }

    #[test]
    fn nested_span_profile_conserves_time() {
        let trace = vec![
            stamped(begin(1, 10), 0.0),
            stamped(begin(2, 11), 1.0),
            stamped(end(3, 11), 2.0),
            stamped(begin(4, 12), 2.5),
            stamped(end(5, 12), 3.5),
            stamped(end(6, 10), 4.0),
        ];
        assert!(check_profile_conservation("t", &trace, ProfileClock::Sim).is_empty());
    }

    #[test]
    fn histogram_merge_is_associative_on_simple_sets() {
        let sets = [
            vec![0.001, 0.01, 0.5],
            vec![0.2, 0.2, 3.0],
            vec![0.0004, 10.0],
        ];
        assert!(check_histogram_merge("t", &sets).is_empty());
    }

    fn txn(seq: u64, kind: &str, id: u64) -> Event {
        let mut e = Event::new(kind).with("id", id);
        e.seq = seq;
        e
    }

    fn commit(seq: u64, id: u64, queue: f64, exec: f64, stall: f64) -> Event {
        txn(seq, kinds::TXN_COMMIT, id)
            .with("queue", queue)
            .with("exec", exec)
            .with("stall", stall)
            .with("total", queue + exec + stall)
    }

    #[test]
    fn well_formed_txn_lifecycle_is_clean_and_ids_are_reusable() {
        let trace = vec![
            txn(1, kinds::TXN_ARRIVE, 7).with("slot", 3u64),
            txn(2, kinds::TXN_QUEUE, 7)
                .with("wait", 0.1)
                .with("stall", 0.0),
            txn(3, kinds::TXN_EXECUTE, 7).with("service", 0.01),
            commit(4, 7, 0.1, 0.01, 0.0),
            // Resolved ids may be reused by a later transaction.
            txn(5, kinds::TXN_ARRIVE, 7).with("slot", 4u64),
            txn(6, kinds::TXN_ABORT, 7)
                .with("reason", "timeout")
                .with("queue", 1.0)
                .with("exec", 0.0)
                .with("stall", 0.5)
                .with("total", 1.5),
        ];
        assert!(check_txn_lifecycle("t", &trace).is_empty());
        // An empty trace (sampling off) is trivially clean.
        assert!(check_txn_lifecycle("t", &[]).is_empty());
    }

    #[test]
    fn unresolved_unopened_and_duplicate_txns_violate_tel06() {
        let never_resolved = vec![txn(1, kinds::TXN_ARRIVE, 1).with("slot", 0u64)];
        let v = check_txn_lifecycle("t", &never_resolved);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant.code(), "TEL-06");
        assert!(v[0].detail.contains("never committed"));

        let unopened = vec![commit(1, 9, 0.0, 0.01, 0.0)];
        assert!(check_txn_lifecycle("t", &unopened)[0]
            .detail
            .contains("not open"));

        let duplicate = vec![
            txn(1, kinds::TXN_ARRIVE, 2).with("slot", 0u64),
            txn(2, kinds::TXN_ARRIVE, 2).with("slot", 0u64),
            commit(3, 2, 0.0, 0.01, 0.0),
        ];
        assert!(check_txn_lifecycle("t", &duplicate)
            .iter()
            .any(|x| x.detail.contains("re-arrived")));
    }

    #[test]
    fn attribution_that_does_not_sum_violates_tel06() {
        let trace = vec![
            txn(1, kinds::TXN_ARRIVE, 3).with("slot", 0u64),
            txn(2, kinds::TXN_COMMIT, 3)
                .with("queue", 0.5)
                .with("exec", 0.1)
                .with("stall", 0.0)
                .with("total", 1.0),
        ];
        let v = check_txn_lifecycle("t", &trace);
        assert_eq!(v.len(), 1);
        assert!(v[0].detail.contains("attribution"));
    }

    /// An rwset record with 2 reads / 1 write and the given destination
    /// counts and flags. (Field lookup is first-match, so overrides via
    /// `.with` would be ignored — parameters it is.)
    fn rwset(
        seq: u64,
        id: u64,
        slot: u64,
        dest: (u64, u64),
        migrating: bool,
        restarted: bool,
    ) -> Event {
        txn(seq, kinds::TXN_RWSET, id)
            .with("slot", slot)
            .with("reads", 2u64)
            .with("writes", 1u64)
            .with("dest_reads", dest.0)
            .with("dest_writes", dest.1)
            .with("migrating", migrating)
            .with("restarted", restarted)
            .with("committed", true)
    }

    #[test]
    fn consistent_rwsets_are_clean() {
        let trace = vec![
            txn(1, kinds::TXN_ARRIVE, 5).with("slot", 9u64),
            rwset(2, 5, 9, (0, 0), false, false),
            commit(3, 5, 0.0, 0.01, 0.0),
            // Migrating txns may touch the destination and restart.
            txn(4, kinds::TXN_ARRIVE, 6).with("slot", 1u64),
            txn(5, kinds::TXN_RESTART, 6).with("slot", 1u64),
            rwset(6, 6, 1, (1, 0), true, true),
            commit(7, 6, 0.0, 0.01, 0.0),
        ];
        assert!(check_txn_rwsets("t", &trace).is_empty());
    }

    #[test]
    fn dest_access_outside_migration_violates_txn01() {
        let trace = vec![
            txn(1, kinds::TXN_ARRIVE, 5).with("slot", 9u64),
            rwset(2, 5, 9, (0, 1), false, false),
        ];
        let v = check_txn_rwsets("t", &trace);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].invariant.code(), "TXN-01");
        assert!(v[0].detail.contains("not migrating"));

        let restarted = vec![
            txn(1, kinds::TXN_ARRIVE, 5).with("slot", 9u64),
            rwset(2, 5, 9, (0, 0), false, true),
        ];
        assert!(check_txn_rwsets("t", &restarted)[0]
            .detail
            .contains("outside a migration"));
    }

    #[test]
    fn slot_mismatch_and_overflow_violate_txn01() {
        let trace = vec![
            txn(1, kinds::TXN_ARRIVE, 5).with("slot", 9u64),
            rwset(2, 5, 8, (0, 0), false, false),
        ];
        assert!(check_txn_rwsets("t", &trace)[0]
            .detail
            .contains("arrived on slot 9"));

        let overflow = vec![
            txn(1, kinds::TXN_ARRIVE, 5).with("slot", 9u64),
            rwset(2, 5, 9, (5, 0), true, false),
        ];
        assert!(check_txn_rwsets("t", &overflow)[0]
            .detail
            .contains("exceed totals"));
    }
}
