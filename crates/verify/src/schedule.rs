//! Cross-checks for migration schedules (§4.4.1, Table 1, Fig 4).
//!
//! [`check_schedule_pair`] plans the scale-out and scale-in schedules for a
//! machine-count pair and validates, on top of the structural `SCH-01..06`
//! checks that live in `pstore-core`:
//!
//! * `SCH-07` — the scale-in schedule is the exact time-reverse of the
//!   scale-out schedule with every transfer flipped (§4.4.1).
//! * `SCH-08` — the schedule's average machine allocation agrees with
//!   Algorithm 4's closed form.
//! * `SCH-09` — the schedule's peak per-round parallelism agrees with
//!   Equation 2.

use pstore_core::cost_model::{avg_machines_allocated, max_parallel_transfers};
use pstore_core::schedule::{peak_parallelism, MigrationSchedule};
use pstore_core::{InvariantId, Violation};

/// Tolerance for comparing the schedule's measured average allocation with
/// Algorithm 4's closed form: both are short sums of small rationals, so
/// they agree to round-off.
const AVG_MACHINES_TOL: f64 = 1e-9;

/// Checks every schedule invariant for the unordered machine-count pair
/// `{b, a}`: structural checks on both directions, closed-form agreement
/// (`SCH-08`, `SCH-09`), and reversal symmetry (`SCH-07`).
pub fn check_schedule_pair(b: u32, a: u32) -> Vec<Violation> {
    let out_sched = MigrationSchedule::plan(b, a);
    let mut violations = check_one_schedule(&out_sched);
    if b != a {
        let in_sched = MigrationSchedule::plan(a, b);
        violations.extend(check_one_schedule(&in_sched));
        violations.extend(check_reversal(&out_sched, &in_sched));
    }
    violations
}

/// Structural checks plus closed-form agreement for a single schedule.
pub fn check_one_schedule(s: &MigrationSchedule) -> Vec<Violation> {
    let mut out = s.check_violations();
    let artifact = format!("schedule {}->{}", s.before(), s.after());

    // SCH-08: measured mean allocation over rounds == Algorithm 4.
    let closed_form = avg_machines_allocated(s.before(), s.after());
    let measured = s.avg_machines();
    if (measured - closed_form).abs() > AVG_MACHINES_TOL {
        out.push(Violation::new(
            InvariantId::ScheduleAvgMachines,
            artifact.clone(),
            format!("avg machines over rounds is {measured}, Algorithm 4 gives {closed_form}"),
        ));
    }

    // SCH-09: the widest round uses exactly Eq 2's parallelism (machine-pair
    // granularity, i.e. P = 1).
    let expected = max_parallel_transfers_or_zero(s.before(), s.after());
    let peak = peak_parallelism(s);
    if peak != expected {
        out.push(Violation::new(
            InvariantId::SchedulePeakParallelism,
            artifact,
            format!("peak round has {peak} transfers, Equation 2 gives {expected}"),
        ));
    }
    out
}

fn max_parallel_transfers_or_zero(b: u32, a: u32) -> usize {
    if b == a {
        0
    } else {
        max_parallel_transfers(b, a, 1) as usize
    }
}

/// `SCH-07`: scale-in must be the time-reverse of scale-out with every
/// transfer's direction flipped. Transfers within a round are compared as
/// sets — ordering inside a round carries no meaning.
pub fn check_reversal(
    out_sched: &MigrationSchedule,
    in_sched: &MigrationSchedule,
) -> Vec<Violation> {
    let artifact = format!(
        "schedule pair {}->{} / {}->{}",
        out_sched.before(),
        out_sched.after(),
        in_sched.before(),
        in_sched.after()
    );
    let mut violations = Vec::new();
    if out_sched.before() != in_sched.after() || out_sched.after() != in_sched.before() {
        violations.push(Violation::new(
            InvariantId::ScheduleReversal,
            artifact,
            "schedules are not mirrors of each other".to_string(),
        ));
        return violations;
    }
    if out_sched.total_rounds() != in_sched.total_rounds() {
        violations.push(Violation::new(
            InvariantId::ScheduleReversal,
            artifact,
            format!(
                "round counts differ: {} out vs {} in",
                out_sched.total_rounds(),
                in_sched.total_rounds()
            ),
        ));
        return violations;
    }
    let n = out_sched.total_rounds();
    for i in 0..n {
        let mut fwd: Vec<(u32, u32)> = out_sched.rounds()[i]
            .transfers
            .iter()
            .map(|t| (t.from, t.to))
            .collect();
        // The mirrored round, with each transfer flipped back to the
        // scale-out direction for comparison.
        let mut rev: Vec<(u32, u32)> = in_sched.rounds()[n - 1 - i]
            .transfers
            .iter()
            .map(|t| (t.to, t.from))
            .collect();
        fwd.sort_unstable();
        rev.sort_unstable();
        if fwd != rev {
            violations.push(Violation::new(
                InvariantId::ScheduleReversal,
                artifact.clone(),
                format!(
                    "round {i} of scale-out is not the mirror of round {} of scale-in",
                    n - 1 - i
                ),
            ));
        }
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_1_example_is_clean() {
        assert!(check_schedule_pair(3, 14).is_empty());
    }

    #[test]
    fn noop_pair_is_clean() {
        assert!(check_schedule_pair(5, 5).is_empty());
    }

    #[test]
    fn all_three_cases_are_clean() {
        // Case 1 (Δ <= s), case 2 (Δ = k*s), case 3 (otherwise).
        for (b, a) in [(4, 6), (3, 9), (3, 14), (5, 7), (2, 11)] {
            let v = check_schedule_pair(b, a);
            assert!(v.is_empty(), "{b}->{a}: {v:?}");
        }
    }

    #[test]
    fn reversal_check_catches_a_mismatched_pair() {
        // 3->9 is not the mirror of 14->3.
        let out_sched = MigrationSchedule::plan(3, 9);
        let in_sched = MigrationSchedule::plan(14, 3);
        assert!(!check_reversal(&out_sched, &in_sched).is_empty());
    }
}
