//! Checks for forecaster output (§5).
//!
//! * `FOR-01` — predictions are finite (never NaN or ±∞), and on the
//!   production path ([`OnlinePredictor::forecast`]) also non-negative:
//!   load is a rate, and the planner treats it as one.
//! * `FOR-02` — SPAR periodicity sanity: fitted on a strictly periodic
//!   signal, SPAR's periodic component must reproduce the next period to
//!   within a small fraction of the signal's amplitude.
//!
//! [`OnlinePredictor::forecast`]: pstore_forecast::OnlinePredictor::forecast

use pstore_core::{InvariantId, Violation};
use pstore_forecast::{LoadPredictor, SparConfig, SparModel};

/// `FOR-01` (finiteness half): every prediction must be a finite number.
/// Applies to raw model output — linear models may legitimately dip below
/// zero near troughs, which the production path clamps.
pub fn check_curve_finite(artifact: &str, values: &[f64]) -> Vec<Violation> {
    values
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_finite())
        .map(|(i, v)| {
            Violation::new(
                InvariantId::ForecastFinite,
                artifact.to_string(),
                format!("prediction {v} at offset {i} is not finite"),
            )
        })
        .collect()
}

/// `FOR-01` (full): finite *and* non-negative — what the production
/// forecast path must deliver to the planner.
pub fn check_curve(artifact: &str, values: &[f64]) -> Vec<Violation> {
    let mut out = check_curve_finite(artifact, values);
    out.extend(
        values
            .iter()
            .enumerate()
            .filter(|(_, v)| v.is_finite() && **v < 0.0)
            .map(|(i, v)| {
                Violation::new(
                    InvariantId::ForecastFinite,
                    artifact.to_string(),
                    format!("prediction {v} at offset {i} is negative"),
                )
            }),
    );
    out
}

/// A strictly periodic test signal with two harmonics (period `period`
/// slots, mean 100, amplitude ≈ 40).
pub fn periodic_signal(period: usize, len: usize) -> Vec<f64> {
    use std::f64::consts::PI;
    (0..len)
        .map(|t| {
            let phase = 2.0 * PI * (t % period) as f64 / period as f64;
            100.0 + 40.0 * phase.sin() + 15.0 * (2.0 * phase + 1.0).sin()
        })
        .collect()
}

/// `FOR-02`: fits SPAR on a strictly periodic signal and demands the next
/// full period is reproduced to within `tol` absolute error per slot (the
/// signal's amplitude is ≈ 40, so the default `tol = 1.0` is ≈ 2.5%).
pub fn check_spar_periodicity(tol: f64) -> Vec<Violation> {
    let period = 24;
    let cfg = SparConfig {
        period,
        n_periods: 3,
        m_recent: 4,
        taus: vec![1],
        ridge_lambda: 1e-8,
        max_rows: 20_000,
    };
    let train_len = period * 10;
    let truth = periodic_signal(period, train_len + period);
    let train = &truth[..train_len];
    let artifact = format!("SPAR fit on a strictly periodic signal (T={period})");

    let model = match SparModel::fit(train, &cfg) {
        Ok(m) => m,
        Err(e) => {
            return vec![Violation::new(
                InvariantId::ForecastPeriodicity,
                artifact,
                format!("fit failed on clean periodic data: {e}"),
            )]
        }
    };
    let preds = model.predict_horizon(train, period);
    let mut out = check_curve_finite(&artifact, &preds);
    for (i, (p, t)) in preds.iter().zip(&truth[train_len..]).enumerate() {
        let err = (p - t).abs();
        if err > tol {
            out.push(Violation::new(
                InvariantId::ForecastPeriodicity,
                artifact.clone(),
                format!(
                    "slot +{}: predicted {p:.2} vs periodic truth {t:.2} (err {err:.2} > {tol})",
                    i + 1
                ),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_curve_is_clean() {
        assert!(check_curve("c", &[0.0, 1.5, 2.0]).is_empty());
    }

    #[test]
    fn nan_and_negative_are_flagged() {
        // FOR-01: NaN/±∞ always violate; negatives only on the clamped
        // production path (`check_curve`), not raw model output.
        let v = check_curve("c", &[1.0, f64::NAN, -2.0, f64::INFINITY]);
        assert_eq!(v.len(), 3);
        let finite_only = check_curve_finite("c", &[1.0, f64::NAN, -2.0, f64::INFINITY]);
        assert_eq!(finite_only.len(), 2);
    }

    #[test]
    fn spar_reproduces_a_periodic_signal() {
        // FOR-02: fitted on a strictly periodic signal, SPAR's periodic
        // component must reproduce the next period.
        let v = check_spar_periodicity(1.0);
        assert!(v.is_empty(), "{v:?}");
    }
}
