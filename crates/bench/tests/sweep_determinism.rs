//! Serial-vs-parallel determinism of the sweep runner on *real*
//! simulator cells (the synthetic-cell contract lives in
//! `src/sweep.rs`): the same cell grid must produce bit-identical
//! results at any thread count, because every figure binary now fans
//! its runs through [`Sweep`].

#![allow(clippy::expect_used, clippy::unwrap_used)] // tests abort loudly
use pstore_b2w::generator::WorkloadConfig;
use pstore_bench::fig9::{run_all_sweep, Fig9Config};
use pstore_bench::sweep::{Cell, Sweep};
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig, DetailedSimResult};
use std::time::Duration;

/// A deliberately tiny detailed-sim cell (runs in debug-mode test time).
fn tiny_cfg(nodes_hint: u64, load_txn_s: f64, seed: u64) -> DetailedSimConfig {
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: vec![load_txn_s; 20],
        seed: seed ^ (nodes_hint << 8),
        workload: WorkloadConfig {
            num_skus: 1_000,
            initial_carts: 200,
            ..WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 1_000,
        txn_sample_every: 0,
    }
}

/// The grid every test below runs: varied cluster sizes, loads and seeds,
/// including a saturated single node (exercises the drop path).
fn grid_cells() -> Vec<Cell<DetailedSimResult>> {
    let grid: [(u32, f64, u64); 6] = [
        (4, 300.0, 1),
        (4, 300.0, 2),
        (2, 250.0, 3),
        (1, 600.0, 4),
        (6, 500.0, 5),
        (3, 350.0, 6),
    ];
    grid.iter()
        .map(|&(nodes, load, seed)| {
            let cfg = tiny_cfg(u64::from(nodes), load, seed);
            Cell::new(format!("static{nodes}/seed{seed}"), move || {
                run_detailed(&cfg, &mut StaticController::new(nodes))
            })
        })
        .collect()
}

/// Full-fidelity fingerprint of a result vector: the `Debug` rendering
/// covers every per-second metric, violation counter and procedure-mix
/// entry, so two fingerprints match iff the runs were bit-identical.
fn fingerprint(results: &[DetailedSimResult]) -> String {
    format!("{results:?}")
}

#[test]
fn detailed_sim_cells_are_identical_serial_vs_parallel() {
    let serial = fingerprint(&Sweep::new(1).run(grid_cells()));
    let parallel = fingerprint(&Sweep::new(8).run(grid_cells()));
    assert_eq!(
        serial, parallel,
        "sweep results diverged between --threads 1 and --threads 8"
    );
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // Thread scheduling differs run to run; the merged output must not.
    let a = fingerprint(&Sweep::new(4).run(grid_cells()));
    let b = fingerprint(&Sweep::new(4).run(grid_cells()));
    assert_eq!(a, b, "two --threads 4 sweeps of the same grid diverged");
}

/// The real thing, scaled to one day: `fig9 --quick --threads 1` vs
/// `--threads 8` must agree byte-for-byte. Minutes-long in debug builds,
/// so ignored by default; CI's bench-smoke job covers the binary-level
/// equivalent on every push, and `scripts/static_analysis.sh` runs this
/// via `cargo test --release -- --ignored`.
#[test]
#[ignore = "expensive: run with --release -- --ignored (covered by CI bench-smoke)"]
fn fig9_quick_is_identical_serial_vs_parallel() {
    let cfg = Fig9Config {
        days: 1,
        seed: 42,
        quick: true,
    };
    let (_, serial) = run_all_sweep(&cfg, &Sweep::new(1));
    let (_, parallel) = run_all_sweep(&cfg, &Sweep::new(8));
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}
