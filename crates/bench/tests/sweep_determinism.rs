//! Serial-vs-parallel determinism of the sweep runner on *real*
//! simulator cells (the synthetic-cell contract lives in
//! `src/sweep.rs`): the same cell grid must produce bit-identical
//! results at any thread count, because every figure binary now fans
//! its runs through [`Sweep`].

#![allow(clippy::expect_used, clippy::unwrap_used)] // tests abort loudly
use pstore_b2w::generator::WorkloadConfig;
use pstore_bench::fig9::{run_all_sweep, Fig9Config};
use pstore_bench::sweep::{Cell, Sweep};
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_dbms::catalog::{columns, ColumnType, TableSchema};
use pstore_dbms::{
    Catalog, Cluster, ClusterConfig, KeyValue, Procedure, TxnCtx, TxnError, TxnOutput,
};
use pstore_sim::detailed::{run_detailed, DetailedSimConfig, DetailedSimResult};
use std::time::Duration;

/// A deliberately tiny detailed-sim cell (runs in debug-mode test time).
fn tiny_cfg(nodes_hint: u64, load_txn_s: f64, seed: u64) -> DetailedSimConfig {
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: vec![load_txn_s; 20],
        seed: seed ^ (nodes_hint << 8),
        workload: WorkloadConfig {
            num_skus: 1_000,
            initial_carts: 200,
            ..WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 1_000,
        txn_sample_every: 0,
        shards: 1,
        shard_spans: false,
        prov_events: false,
    }
}

/// The grid every test below runs: varied cluster sizes, loads and seeds,
/// including a saturated single node (exercises the drop path). `tweak`
/// adjusts each cell's config after the grid defaults are applied.
fn grid_cells_with(tweak: impl Fn(&mut DetailedSimConfig)) -> Vec<Cell<DetailedSimResult>> {
    let grid: [(u32, f64, u64); 6] = [
        (4, 300.0, 1),
        (4, 300.0, 2),
        (2, 250.0, 3),
        (1, 600.0, 4),
        (6, 500.0, 5),
        (3, 350.0, 6),
    ];
    grid.iter()
        .map(|&(nodes, load, seed)| {
            let mut cfg = tiny_cfg(u64::from(nodes), load, seed);
            tweak(&mut cfg);
            Cell::new(format!("static{nodes}/seed{seed}"), move || {
                run_detailed(&cfg, &mut StaticController::new(nodes))
            })
        })
        .collect()
}

fn grid_cells() -> Vec<Cell<DetailedSimResult>> {
    grid_cells_with(|_| {})
}

/// Full-fidelity fingerprint of a result vector: the `Debug` rendering
/// covers every per-second metric, violation counter and procedure-mix
/// entry, so two fingerprints match iff the runs were bit-identical.
fn fingerprint(results: &[DetailedSimResult]) -> String {
    format!("{results:?}")
}

#[test]
fn detailed_sim_cells_are_identical_serial_vs_parallel() {
    let serial = fingerprint(&Sweep::new(1).run(grid_cells()));
    let parallel = fingerprint(&Sweep::new(8).run(grid_cells()));
    assert_eq!(
        serial, parallel,
        "sweep results diverged between --threads 1 and --threads 8"
    );
}

#[test]
fn repeated_parallel_runs_are_identical() {
    // Thread scheduling differs run to run; the merged output must not.
    let a = fingerprint(&Sweep::new(4).run(grid_cells()));
    let b = fingerprint(&Sweep::new(4).run(grid_cells()));
    assert_eq!(a, b, "two --threads 4 sweeps of the same grid diverged");
}

/// The real thing, scaled to one day: `fig9 --quick --threads 1` vs
/// `--threads 8` must agree byte-for-byte. Minutes-long in debug builds,
/// so ignored by default; CI's bench-smoke job covers the binary-level
/// equivalent on every push, and `scripts/static_analysis.sh` runs this
/// via `cargo test --release -- --ignored`.
#[test]
#[ignore = "expensive: run with --release -- --ignored (covered by CI bench-smoke)"]
fn fig9_quick_is_identical_serial_vs_parallel() {
    let cfg = Fig9Config {
        days: 1,
        seed: 42,
        quick: true,
        shards: 1,
    };
    let (_, serial) = run_all_sweep(&cfg, &Sweep::new(1));
    let (_, parallel) = run_all_sweep(&cfg, &Sweep::new(8));
    assert_eq!(fingerprint(&serial), fingerprint(&parallel));
}

/// The engine-level determinism claim at figure granularity: `fig9
/// --quick` must be byte-identical at shards {1, 2, 4} — every
/// per-second metric, SLA counter and reconfiguration span, i.e. the
/// CSV and summary JSON the binary derives from these results. As
/// expensive as the serial-vs-parallel test above, so ignored by
/// default and run by `scripts/static_analysis.sh` in release mode.
#[test]
#[ignore = "expensive: run with --release -- --ignored"]
fn fig9_quick_is_identical_across_shard_counts() {
    let run = |shards: u32| {
        let cfg = Fig9Config {
            days: 1,
            seed: 42,
            quick: true,
            shards,
        };
        let (_, results) = run_all_sweep(&cfg, &Sweep::new(0));
        fingerprint(&results)
    };
    let serial = run(1);
    assert_eq!(serial, run(2), "fig9 diverged between shards 1 and 2");
    assert_eq!(serial, run(4), "fig9 diverged between shards 1 and 4");
}

/// Quick (non-ignored) engine-level determinism: the tiny grid run
/// on 4-shard clusters matches the serial-engine run bit-for-bit.
#[test]
fn detailed_sim_cells_are_identical_at_one_and_four_shards() {
    let sharded_cells = || {
        grid_cells_with(|cfg| {
            cfg.shards = 4;
        })
    };
    let serial = fingerprint(&Sweep::new(2).run(grid_cells()));
    let sharded = fingerprint(&Sweep::new(2).run(sharded_cells()));
    assert_eq!(
        serial, sharded,
        "sweep results diverged between shards=1 and shards=4 engines"
    );
}

/// A panic on an executor shard propagates to the cell that drives the
/// cluster and is caught and attributed by `Sweep::run_fallible` like
/// any other cell failure — with the shard named in the message.
#[test]
fn panicking_shard_is_attributed_like_a_panicking_cell() {
    struct Kaboom;
    impl Procedure for Kaboom {
        fn name(&self) -> &'static str {
            "Kaboom"
        }
        fn routing_key(&self) -> KeyValue {
            KeyValue::Str("kaboom-key".into())
        }
        fn execute(&self, _ctx: &mut TxnCtx<'_>) -> Result<TxnOutput, TxnError> {
            panic!("kaboom: injected shard fault");
        }
    }
    let cells: Vec<Cell<u64>> = (0..2)
        .map(|i| {
            Cell::new(format!("engine-cell-{i}"), move || {
                let mut cat = Catalog::new();
                cat.add_table(TableSchema::new(
                    "KV",
                    columns(&[("k", ColumnType::Str)]),
                    1,
                ));
                let mut c = Cluster::with_shards(
                    cat,
                    ClusterConfig {
                        partitions_per_node: 4,
                        num_slots: 64,
                    },
                    2,
                    2,
                );
                if i == 1 {
                    let slot = c.slot_of_routing(&Kaboom.routing_key());
                    c.submit(Kaboom, slot);
                    let mut fates = Vec::new();
                    c.drain_fates_into(&mut fates);
                }
                i
            })
        })
        .collect();
    let results = Sweep::new(2).run_fallible(cells);
    assert_eq!(results[0], Ok(0));
    let failure = results[1].as_ref().expect_err("cell 1 must fail");
    assert_eq!(failure.index, 1);
    assert_eq!(failure.label, "engine-cell-1");
    assert!(
        failure
            .message
            .starts_with("executor shard 0 panicked: kaboom")
            || failure
                .message
                .starts_with("executor shard 1 panicked: kaboom"),
        "panic not attributed to a shard: {}",
        failure.message
    );
}
