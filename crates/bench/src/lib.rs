//! Output helpers shared by the experiment binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! and prints it as plain text: a data table (the numbers behind the
//! figure) plus, where it helps, an ASCII plot for a quick visual check of
//! the *shape* — which is what the reproduction is graded on.

#![warn(missing_docs)]

pub mod fig9;
pub mod sweep;

/// Renders a numeric series as a compact ASCII area plot.
///
/// `width` columns (the series is bucket-averaged to fit) and `height`
/// rows. Returns a multi-line string, highest values on the top row.
pub fn ascii_plot(values: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "plot dimensions must be positive");
    if values.is_empty() {
        return String::from("(empty series)\n");
    }
    // Bucket-average to `width` columns.
    let cols: Vec<f64> = (0..width)
        .map(|c| {
            let lo = c * values.len() / width;
            let hi = ((c + 1) * values.len() / width)
                .max(lo + 1)
                .min(values.len());
            values[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
        })
        .collect();
    let max = cols.iter().copied().fold(f64::MIN, f64::max);
    let min = cols.iter().copied().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-12);

    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold = min + span * (row as f64 + 0.5) / height as f64;
        let label = min + span * (row as f64 + 1.0) / height as f64;
        out.push_str(&format!("{label:>10.0} |"));
        for &v in &cols {
            out.push(if v >= threshold { '#' } else { ' ' });
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out
}

/// Renders two series in one ASCII plot (`#` where only the first is
/// present, `*` where only the second, `@` where both overlap). Series are
/// bucket-averaged to the same width and share the y-scale.
pub fn ascii_plot2(a: &[f64], b: &[f64], width: usize, height: usize) -> String {
    assert!(width > 0 && height > 0, "plot dimensions must be positive");
    let bucket = |values: &[f64]| -> Vec<f64> {
        (0..width)
            .map(|c| {
                let lo = c * values.len() / width;
                let hi = (((c + 1) * values.len()) / width)
                    .max(lo + 1)
                    .min(values.len());
                values[lo..hi].iter().sum::<f64>() / (hi - lo).max(1) as f64
            })
            .collect()
    };
    let ca = bucket(a);
    let cb = bucket(b);
    let max = ca.iter().chain(cb.iter()).copied().fold(f64::MIN, f64::max);
    let min = ca
        .iter()
        .chain(cb.iter())
        .copied()
        .fold(f64::MAX, f64::min)
        .min(0.0);
    let span = (max - min).max(1e-12);

    let mut out = String::new();
    for row in (0..height).rev() {
        let threshold = min + span * (row as f64 + 0.5) / height as f64;
        let label = min + span * (row as f64 + 1.0) / height as f64;
        out.push_str(&format!("{label:>10.0} |"));
        for c in 0..width {
            let ha = ca[c] >= threshold;
            let hb = cb[c] >= threshold;
            out.push(match (ha, hb) {
                (true, true) => '@',
                (true, false) => '#',
                (false, true) => '*',
                (false, false) => ' ',
            });
        }
        out.push('\n');
    }
    out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(width)));
    out.push_str("            # = series 1, * = series 2, @ = both\n");
    out
}

/// Prints a titled section separator.
pub fn section(title: &str) {
    println!();
    println!(
        "== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

/// Whether the binary was invoked with `--quick` (smaller, faster runs for
/// smoke-testing; EXPERIMENTS.md numbers come from full runs).
pub fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Shared run harness for the experiment binaries: uniform handling of
/// `--quick` (smaller runs), `--quiet` (suppress progress chatter),
/// `--threads N` (worker threads for the [`sweep`] runner; default:
/// `RAYON_NUM_THREADS`, else available parallelism), `--trace <path>`
/// (write a telemetry JSONL trace of the run and print a summary at
/// exit), `--summary <path>` (write a `pstore-run-summary/v1` JSON
/// digest at exit — the input format of `pstore-trace diff`), and
/// `--expose-metrics <port>` (serve live Prometheus-text metrics on
/// `127.0.0.1:<port>` for the duration of the run; port 0 picks an
/// ephemeral port, printed to stderr).
///
/// Tracing only produces events when the workspace is built with the
/// `telemetry` feature (`cargo run -p pstore-bench --features telemetry
/// --bin fig9_comparison -- --trace /tmp/fig9.jsonl`); without it the
/// instrumentation compiles away and `--trace` writes an empty file (a
/// warning is printed). The emitted file is readable by `pstore-trace`.
pub struct RunReporter {
    quick: bool,
    quiet: bool,
    threads: usize,
    trace_path: Option<std::path::PathBuf>,
    summary_path: Option<std::path::PathBuf>,
    // Set when `--summary` was given without `--trace`: the trace goes to
    // a temp file that is deleted after the summary is derived from it.
    trace_is_temp: bool,
    exposer: Option<pstore_telemetry::Exposer>,
    // Keeps the telemetry sink installed for the lifetime of the run.
    _sink_guard: Option<pstore_telemetry::SinkGuard>,
}

impl RunReporter {
    /// Parses the process arguments and, when `--trace`, `--summary` or
    /// `--expose-metrics` is present, installs a telemetry sink (JSONL
    /// writer, live-metrics tee, or both) for the rest of the run.
    ///
    /// # Panics
    /// Exits with a message if a flag is given without its argument or
    /// the trace file cannot be created.
    #[must_use]
    pub fn from_args() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let quick = args.iter().any(|a| a == "--quick");
        let quiet = args.iter().any(|a| a == "--quiet");
        let threads = args.iter().position(|a| a == "--threads").map_or(0, |i| {
            match args.get(i + 1).map(|v| v.parse::<usize>()) {
                Some(Ok(n)) if n > 0 => n,
                _ => {
                    eprintln!("error: --threads requires a positive integer argument");
                    std::process::exit(2);
                }
            }
        });
        let path_arg = |flag: &str| {
            args.iter().position(|a| a == flag).map(|i| {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("error: {flag} requires a file path argument");
                    std::process::exit(2);
                };
                std::path::PathBuf::from(path)
            })
        };
        let mut trace_path = path_arg("--trace");
        let summary_path = path_arg("--summary");
        let expose_port = args.iter().position(|a| a == "--expose-metrics").map(|i| {
            match args.get(i + 1).map(|v| v.parse::<u16>()) {
                Some(Ok(port)) => port,
                _ => {
                    eprintln!("error: --expose-metrics requires a port number (0 = ephemeral)");
                    std::process::exit(2);
                }
            }
        });

        // `--summary` derives its numbers from a trace read-back; when no
        // `--trace` destination was named, write to a temp file and clean
        // it up in `finish()`.
        let trace_is_temp = summary_path.is_some() && trace_path.is_none();
        if trace_is_temp {
            trace_path = Some(
                std::env::temp_dir()
                    .join(format!("pstore_summary_trace_{}.jsonl", std::process::id())),
            );
        }

        #[cfg(not(feature = "telemetry"))]
        if trace_path.is_some() || expose_port.is_some() {
            eprintln!(
                "warning: --trace/--summary/--expose-metrics given but this binary was \
                 built without the `telemetry` feature; traces and metrics will be empty"
            );
        }

        let jsonl: Option<std::rc::Rc<dyn pstore_telemetry::Sink>> =
            trace_path.as_ref().map(|path| {
                let sink = match pstore_telemetry::JsonlSink::create(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("error: cannot create trace file {}: {e}", path.display());
                        std::process::exit(2);
                    }
                };
                std::rc::Rc::new(sink) as std::rc::Rc<dyn pstore_telemetry::Sink>
            });
        let (sink_guard, exposer) = if let Some(port) = expose_port {
            // Tee every event into the live-metrics aggregate (and through
            // to the JSONL file when tracing too), then serve it.
            let (tee, shared) = pstore_telemetry::TimeSeriesSink::create(jsonl);
            let exposer = match pstore_telemetry::Exposer::bind(port, shared) {
                Ok(e) => e,
                Err(e) => {
                    eprintln!("error: cannot bind metrics port {port}: {e}");
                    std::process::exit(2);
                }
            };
            eprintln!(
                "metrics: serving Prometheus text on http://{}/metrics",
                exposer.addr()
            );
            (
                Some(pstore_telemetry::install(std::rc::Rc::new(tee))),
                Some(exposer),
            )
        } else {
            (jsonl.map(pstore_telemetry::install), None)
        };
        RunReporter {
            quick,
            quiet,
            threads,
            trace_path,
            summary_path,
            trace_is_temp,
            exposer,
            _sink_guard: sink_guard,
        }
    }

    /// Whether `--quick` was given.
    #[must_use]
    pub fn quick(&self) -> bool {
        self.quick
    }

    /// Whether `--quiet` was given.
    #[must_use]
    pub fn quiet(&self) -> bool {
        self.quiet
    }

    /// The `--threads N` argument (0 when absent: the sweep runner
    /// resolves via `RAYON_NUM_THREADS`, else available parallelism).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The address of the live metrics endpoint when `--expose-metrics`
    /// was given (useful with port 0, where the OS picks the port).
    #[must_use]
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.exposer.as_ref().map(pstore_telemetry::Exposer::addr)
    }

    /// Prints a progress line to stderr unless `--quiet` was given.
    pub fn progress(&self, msg: &str) {
        if !self.quiet {
            eprintln!("{msg}");
        }
    }

    /// Finalises the run: snapshots the metrics registry into the trace,
    /// flushes the sink, stops the metrics endpoint, prints a compact
    /// summary of the emitted trace and, with `--summary <path>`, writes
    /// a `pstore-run-summary/v1` JSON digest for `pstore-trace diff`.
    pub fn finish(mut self) {
        if let Some(exposer) = self.exposer.as_mut() {
            exposer.shutdown();
        }
        let Some(path) = self.trace_path.clone() else {
            return;
        };
        let summary_path = self.summary_path.clone();
        let trace_is_temp = self.trace_is_temp;
        pstore_telemetry::emit_metrics_snapshot();
        pstore_telemetry::flush();
        // Drop the guard (uninstalling the sink and closing the file)
        // before reading the trace back.
        drop(self);
        match pstore_telemetry::trace::read_jsonl(&path) {
            Ok((events, line_errors)) => {
                let report = pstore_telemetry::trace::RunReport::from_events(&events);
                if !trace_is_temp {
                    eprintln!(
                        "trace: {} events -> {} ({} reconfigurations, {} chunk moves, \
                         {} planner calls, {} parse errors); inspect with `pstore-trace {}`",
                        events.len(),
                        path.display(),
                        report.reconfigs.len(),
                        report.chunk_moves,
                        report.planner_calls,
                        line_errors.len(),
                        path.display(),
                    );
                }
                if let Some(spath) = &summary_path {
                    if let Some(parent) = spath.parent() {
                        let _ = std::fs::create_dir_all(parent);
                    }
                    let summary = pstore_telemetry::RunSummary::from_events(&events);
                    match std::fs::write(spath, summary.to_json()) {
                        Ok(()) => eprintln!("summary: wrote {}", spath.display()),
                        Err(e) => {
                            eprintln!("summary: failed to write {}: {e}", spath.display());
                        }
                    }
                }
            }
            Err(e) => eprintln!("trace: failed to read back {}: {e}", path.display()),
        }
        if trace_is_temp {
            let _ = std::fs::remove_file(&path);
        }
    }
}

/// Writes a CSV file (numeric rows with a header) — plot-friendly dumps of
/// experiment data.
///
/// # Errors
/// Propagates I/O errors from creating or writing the file.
pub fn write_csv(
    path: &std::path::Path,
    header: &[&str],
    rows: impl IntoIterator<Item = Vec<f64>>,
) -> std::io::Result<()> {
    use std::io::Write;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        debug_assert_eq!(row.len(), header.len(), "row width mismatch");
        let cells: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(file, "{}", cells.join(","))?;
    }
    Ok(())
}

/// Formats seconds as `h:mm:ss`.
#[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)] // clamped to >= 0 before truncating to whole seconds
pub fn hms(seconds: f64) -> String {
    let s = seconds.max(0.0) as u64;
    format!("{}:{:02}:{:02}", s / 3600, (s % 3600) / 60, s % 60)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plot_has_requested_dimensions() {
        let values: Vec<f64> = (0..100).map(|i| (i as f64 * 0.1).sin() + 1.0).collect();
        let plot = ascii_plot(&values, 40, 8);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 9); // 8 rows + axis
        assert!(lines[0].len() >= 40);
    }

    #[test]
    fn plot_peak_is_on_top_row() {
        let mut values = vec![0.0; 50];
        values[25] = 10.0;
        let plot = ascii_plot(&values, 50, 5);
        let top = plot.lines().next().unwrap();
        assert!(top.contains('#'));
    }

    #[test]
    fn plot2_marks_overlap() {
        let a = vec![5.0; 30];
        let b = vec![5.0; 30];
        let plot = ascii_plot2(&a, &b, 30, 4);
        assert!(plot.contains('@'));
    }

    #[test]
    fn empty_series_is_handled() {
        assert!(ascii_plot(&[], 10, 3).contains("empty"));
    }

    #[test]
    fn csv_round_trips_through_disk() {
        let dir = std::env::temp_dir().join("pstore-csv-test");
        let path = dir.join("out.csv");
        write_csv(&path, &["t", "x"], vec![vec![0.0, 1.5], vec![1.0, 2.5]]).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "t,x\n0,1.5\n1,2.5\n");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn hms_formats() {
        assert_eq!(hms(3725.0), "1:02:05");
        assert_eq!(hms(0.0), "0:00:00");
    }
}
