//! Shared runner for the §8.2 elasticity comparison (Fig 9, Fig 10,
//! Table 2): three days of B2W traffic replayed at 10x speed under four
//! provisioning approaches — static peak (10 machines), static trough
//! (4 machines), E-Store-style reactive, and P-Store with SPAR.

use crate::sweep::{Cell, Sweep};
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, shards_from_env, DetailedSimConfig, DetailedSimResult};
use pstore_sim::scenarios::{pstore_spar, reactive_default, static_alloc, ExperimentTrace};

/// Which §8.2 approach to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Approach {
    /// Fixed 10-machine cluster (peak provisioning, Fig 9a).
    StaticTen,
    /// Fixed 4-machine cluster (trough provisioning, Fig 9b).
    StaticFour,
    /// Reactive provisioning (Fig 9c).
    Reactive,
    /// P-Store with the SPAR predictive model (Fig 9d).
    PStore,
}

impl Approach {
    /// All four approaches, in the paper's presentation order.
    pub const ALL: [Approach; 4] = [
        Approach::StaticTen,
        Approach::StaticFour,
        Approach::Reactive,
        Approach::PStore,
    ];

    /// Display label matching Table 2.
    pub fn label(&self) -> &'static str {
        match self {
            Approach::StaticTen => "Static allocation with 10 servers",
            Approach::StaticFour => "Static allocation with 4 servers",
            Approach::Reactive => "Reactive provisioning",
            Approach::PStore => "P-Store",
        }
    }
}

/// Configuration of the comparison runs.
#[derive(Debug, Clone)]
pub struct Fig9Config {
    /// Evaluation days (the paper replays 3).
    pub days: usize,
    /// Trace seed.
    pub seed: u64,
    /// Scale down the workload for smoke runs.
    pub quick: bool,
    /// Executor shards per simulated cluster (`1` = serial inline
    /// engine). The engine is deterministic across shard counts, so
    /// this must not change any figure output — the determinism tests
    /// compare runs at different values.
    pub shards: u32,
}

impl Fig9Config {
    /// The paper's setting: a randomly chosen 3-day period. Shard count
    /// comes from `PSTORE_SHARDS` (default 1).
    pub fn paper(seed: u64) -> Self {
        Fig9Config {
            days: 3,
            seed,
            quick: false,
            shards: shards_from_env(),
        }
    }
}

/// Builds the detailed-sim configuration for the shared trace.
pub fn sim_config(cfg: &Fig9Config, trace: &ExperimentTrace) -> DetailedSimConfig {
    let mut sim = DetailedSimConfig::paper_defaults(trace.wall_seconds.clone(), cfg.seed);
    if cfg.quick {
        sim.workload.num_skus = 2_000;
        sim.workload.initial_carts = 600;
        sim.num_slots = 3_600;
        sim.warmup_txns = 40_000;
    }
    sim.shards = cfg.shards;
    sim
}

/// Runs one approach over the trace.
pub fn run_approach(
    cfg: &Fig9Config,
    trace: &ExperimentTrace,
    approach: Approach,
) -> DetailedSimResult {
    let params = SystemParams::b2w_paper();
    let sim = sim_config(cfg, trace);
    let mut result = match approach {
        Approach::StaticTen => run_detailed(&sim, &mut static_alloc(10)),
        Approach::StaticFour => run_detailed(&sim, &mut static_alloc(4)),
        Approach::Reactive => run_detailed(&sim, &mut reactive_default(trace, &params)),
        Approach::PStore => run_detailed(&sim, &mut pstore_spar(trace, &params)),
    };
    result.strategy = approach.label().to_string();
    result
}

/// Runs all four approaches over one shared trace on the default
/// ([`Sweep::new`] with 0) thread pool. Returns the trace and results in
/// [`Approach::ALL`] order.
pub fn run_all(cfg: &Fig9Config) -> (ExperimentTrace, Vec<DetailedSimResult>) {
    run_all_sweep(cfg, &Sweep::new(0))
}

/// Runs all four approaches over one shared trace as cells of `sweep`
/// (each run is deterministic and independent; results and any captured
/// telemetry are reassembled in [`Approach::ALL`] order regardless of
/// thread count).
pub fn run_all_sweep(cfg: &Fig9Config, sweep: &Sweep) -> (ExperimentTrace, Vec<DetailedSimResult>) {
    let trace = ExperimentTrace::b2w(cfg.days, cfg.seed);
    let cells: Vec<Cell<DetailedSimResult>> = Approach::ALL
        .iter()
        .map(|&a| {
            let cfg = cfg.clone();
            let trace = trace.clone();
            Cell::new(a.label(), move || run_approach(&cfg, &trace, a))
        })
        .collect();
    let results = sweep.run(cells);
    (trace, results)
}
