//! Parallel scenario-sweep runner for the experiment binaries.
//!
//! Every figure in §8 of the paper is assembled from *independent*
//! simulator runs — a `(scenario, strategy, seed)` grid where each cell
//! is deterministic given its inputs and shares nothing with its
//! neighbours. [`Sweep`] fans those cells across a thread pool and
//! reassembles the outputs so the result is **byte-identical to a
//! serial run**, at any thread count.
//!
//! # Determinism contract
//!
//! For a fixed cell list and fixed per-cell seeds, everything observable
//! after [`Sweep::run`] returns is independent of the thread count:
//!
//! * **Results** come back in cell order (the pool tags each result
//!   with its cell index and sorts; nothing is emitted on completion
//!   order).
//! * **Telemetry events** emitted by a cell are captured into a
//!   per-cell in-memory sink on the worker thread, then forwarded to
//!   the main thread's sink in cell order after all cells finish. Span
//!   ids are renumbered to `(cell + 1) << 32 | ordinal` during the
//!   replay — the raw ids from the global allocator depend on thread
//!   interleaving, the renumbered ones only on the cell's own event
//!   stream. Sequence numbers are re-stamped in forwarding order.
//! * **Metrics** (counters, gauges, histograms) recorded by a cell land
//!   in the worker thread's registry, are snapshotted per cell, and are
//!   merged into the calling thread's registry in cell order. Counter
//!   and histogram-bucket merges are commutative on integers, so they
//!   would be order-independent anyway; gauge last-write-wins and
//!   `f64` sum accumulation are not, which is why the merge is ordered.
//!
//! Worker threads never touch shared state while cells run — capture is
//! per-thread (`pstore-telemetry`'s sink and registry are thread-local)
//! and the merge happens single-threaded afterwards. Keeping the shared
//! state this small is deliberate: it is the surface a future `loom`
//! model has to cover (see ROADMAP).
//!
//! # Thread-count resolution
//!
//! [`Sweep::from_reporter`] (or [`Sweep::new`] with 0) resolves the
//! thread count as: explicit `--threads N` argument → the
//! `RAYON_NUM_THREADS` environment variable → available parallelism.

use rayon::prelude::*;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::rc::Rc;

use pstore_telemetry as tel;

/// One independent unit of work in a sweep: a label (for progress
/// reporting) plus a closure that runs the cell and returns its result.
///
/// The closure must be self-contained (`Send`, no references into the
/// caller): it runs on a worker thread. Determinism is the cell's
/// responsibility — seed any RNG from the cell's own inputs, never from
/// global state.
pub struct Cell<R> {
    label: String,
    run: Box<dyn FnOnce() -> R + Send>,
}

impl<R> Cell<R> {
    /// Creates a cell.
    pub fn new(label: impl Into<String>, run: impl FnOnce() -> R + Send + 'static) -> Self {
        Cell {
            label: label.into(),
            run: Box::new(run),
        }
    }

    /// The cell's display label.
    pub fn label(&self) -> &str {
        &self.label
    }
}

/// Why a cell failed under [`Sweep::run_fallible`]: which cell (by
/// index and label) and the panic message it died with.
///
/// Failure attribution is deterministic: for a fixed cell list the same
/// cells fail with the same messages at any thread count, because each
/// failure is captured on the worker inside the cell's own closure and
/// travels through the ordered result path like any other result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Position of the failed cell in the input grid.
    pub index: usize,
    /// The failed cell's display label.
    pub label: String,
    /// The panic payload, when it was a string (the common
    /// `panic!`/`assert!` case); a placeholder otherwise.
    pub message: String,
}

impl std::fmt::Display for CellFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cell {} ({}): {}", self.index, self.label, self.message)
    }
}

/// Extracts a printable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// What one cell produced on its worker thread: the result plus the
/// telemetry captured while it ran (empty when capture was off).
struct CellOutcome<R> {
    result: R,
    events: Vec<tel::Event>,
    metrics: tel::MetricsRegistry,
}

/// The sweep runner: a thread count plus the capture/merge machinery.
#[derive(Debug, Clone, Copy)]
pub struct Sweep {
    threads: usize,
}

impl Sweep {
    /// Creates a runner with an explicit thread count; 0 means "auto"
    /// (`RAYON_NUM_THREADS`, else available parallelism).
    #[must_use]
    pub fn new(threads: usize) -> Self {
        Sweep { threads }
    }

    /// Creates a runner from a [`crate::RunReporter`]'s `--threads`
    /// argument (auto when the flag was absent).
    #[must_use]
    pub fn from_reporter(reporter: &crate::RunReporter) -> Self {
        Sweep::new(reporter.threads())
    }

    /// The thread count the pool will use (resolved, never 0).
    #[must_use]
    pub fn threads(&self) -> usize {
        if self.threads == 0 {
            // Mirrors the pool's own resolution.
            match rayon::ThreadPoolBuilder::new().num_threads(0).build() {
                Ok(pool) => pool.current_num_threads(),
                Err(_) => 1,
            }
        } else {
            self.threads
        }
    }

    /// Runs every cell on the pool and returns their results in cell
    /// order. See the module docs for the determinism contract.
    ///
    /// Telemetry capture turns on exactly when the calling thread has a
    /// sink installed (e.g. `--trace` in a figure binary); otherwise
    /// the cells run uninstrumented, same as the serial path.
    pub fn run<R: Send + 'static>(&self, cells: Vec<Cell<R>>) -> Vec<R> {
        let capture = tel::enabled();
        let pool = match rayon::ThreadPoolBuilder::new()
            .num_threads(self.threads)
            .build()
        {
            Ok(p) => p,
            Err(_) => {
                // Unreachable with the vendored pool; degrade to serial
                // in-place execution rather than crash the experiment.
                return cells.into_iter().map(|c| (c.run)()).collect();
            }
        };
        let outcomes: Vec<CellOutcome<R>> = pool.install(|| {
            cells
                .into_par_iter()
                .map(move |cell| run_cell(cell, capture))
                .collect()
        });

        // Single-threaded deterministic merge, in cell order.
        let mut results = Vec::with_capacity(outcomes.len());
        for (cell_idx, outcome) in outcomes.into_iter().enumerate() {
            if capture {
                forward_cell_events(cell_idx, outcome.events);
                tel::with_registry(|r| r.merge(&outcome.metrics));
            }
            results.push(outcome.result);
        }
        results
    }

    /// Fault-injected variant of [`Sweep::run`]: a panicking cell does
    /// not poison the pool or abort the sweep — it comes back as
    /// `Err(`[`CellFailure`]`)` in its own slot while every other cell
    /// completes normally.
    ///
    /// The determinism contract extends to failures: the `Vec` always
    /// has one entry per input cell, in cell order, and which cells
    /// failed (and with what message) is independent of the thread
    /// count. A cell's telemetry captured *before* its panic is still
    /// forwarded — it is part of the cell's deterministic event stream.
    pub fn run_fallible<R: Send + 'static>(
        &self,
        cells: Vec<Cell<R>>,
    ) -> Vec<Result<R, CellFailure>> {
        let wrapped: Vec<Cell<Result<R, CellFailure>>> = cells
            .into_iter()
            .enumerate()
            .map(|(index, cell)| {
                let label = cell.label;
                let run = cell.run;
                let wrapped_label = label.clone();
                Cell::new(wrapped_label, move || {
                    // The catch sits *inside* the cell closure, so the
                    // worker's telemetry guard and registry resets in
                    // `run_cell` unwind-safely around it.
                    catch_unwind(AssertUnwindSafe(run)).map_err(|payload| CellFailure {
                        index,
                        label,
                        message: panic_message(payload.as_ref()),
                    })
                })
            })
            .collect();
        self.run(wrapped)
    }
}

/// Runs one cell on the current (worker) thread, capturing its
/// telemetry into a private sink and a freshly cleared registry when
/// `capture` is set.
fn run_cell<R>(cell: Cell<R>, capture: bool) -> CellOutcome<R> {
    if !capture {
        return CellOutcome {
            result: (cell.run)(),
            events: Vec::new(),
            metrics: tel::MetricsRegistry::new(),
        };
    }
    let (sink, handle) = tel::MemorySink::new();
    // Worker threads are reused across cells; start each cell from a
    // clean registry so metrics cannot leak between cells.
    tel::reset_registry();
    let guard = tel::install(Rc::new(sink));
    let result = (cell.run)();
    drop(guard);
    let events = handle.events();
    let metrics = tel::with_registry(|r| r.clone());
    tel::reset_registry();
    CellOutcome {
        result,
        events,
        metrics,
    }
}

/// Forwards one cell's captured events to the calling thread's sink,
/// renumbering span ids into the cell-local deterministic scheme.
fn forward_cell_events(cell_idx: usize, events: Vec<tel::Event>) {
    let cell = u64::try_from(cell_idx).unwrap_or(u64::MAX);
    let mut id_map: HashMap<u64, u64> = HashMap::new();
    let mut next_local: u64 = 0;
    for mut ev in events {
        if ev.kind == tel::kinds::SPAN_BEGIN || ev.kind == tel::kinds::SPAN_END {
            for (key, value) in &mut ev.fields {
                if key == "id" {
                    if let tel::Value::U64(old) = value {
                        let new = *id_map.entry(*old).or_insert_with(|| {
                            next_local += 1;
                            ((cell + 1) << 32) | next_local
                        });
                        *value = tel::Value::U64(new);
                    }
                }
            }
        }
        tel::forward(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic instrumented cell: emits events, opens a span, and
    /// records metrics derived from its seed.
    fn synthetic_cell(seed: u64) -> Cell<u64> {
        Cell::new(format!("cell-{seed}"), move || {
            let span = tel::begin_span("work", &[("seed", tel::Value::U64(seed))]);
            #[allow(clippy::cast_precision_loss)] // tiny test values
            for i in 0..5u64 {
                tel::emit(tel::Event::new("tick").with("i", i).with("seed", seed));
                tel::with_registry(|r| {
                    r.inc_counter("ticks", 1);
                    r.record_histogram("lat", 1e-3 * (seed + 1) as f64 * (i + 1) as f64);
                });
            }
            #[allow(clippy::cast_precision_loss)] // tiny test values
            tel::with_registry(|r| r.set_gauge("last_seed", seed as f64));
            tel::end_span("work", span, &[]);
            seed * 10
        })
    }

    /// Runs a sweep of synthetic cells under a fresh memory sink and
    /// returns (results, forwarded events, merged registry).
    fn run_capture(threads: usize, n: u64) -> (Vec<u64>, Vec<tel::Event>, tel::MetricsRegistry) {
        let (sink, handle) = tel::MemorySink::new();
        tel::reset_registry();
        let guard = tel::install(Rc::new(sink));
        let cells: Vec<Cell<u64>> = (0..n).map(synthetic_cell).collect();
        let results = Sweep::new(threads).run(cells);
        drop(guard);
        let registry = tel::with_registry(|r| r.clone());
        tel::reset_registry();
        (results, handle.events(), registry)
    }

    /// Strips the fields that legitimately differ across in-process
    /// runs (the global `seq` counter keeps advancing), keeping order,
    /// kinds, timestamps and payloads — including renumbered span ids.
    #[allow(clippy::type_complexity)] // one-off test projection
    fn normalised(events: &[tel::Event]) -> Vec<(String, Option<f64>, Vec<(String, tel::Value)>)> {
        events
            .iter()
            .map(|e| (e.kind.clone(), e.t, e.fields.clone()))
            .collect()
    }

    #[test]
    fn results_come_back_in_cell_order_at_any_thread_count() {
        for threads in [1, 2, 8] {
            let cells: Vec<Cell<u64>> = (0..20).map(|i| Cell::new("c", move || i)).collect();
            let results = Sweep::new(threads).run(cells);
            assert_eq!(results, (0..20).collect::<Vec<u64>>(), "threads={threads}");
        }
    }

    #[test]
    fn serial_and_parallel_capture_identical_telemetry() {
        let (r1, e1, m1) = run_capture(1, 6);
        let (r8, e8, m8) = run_capture(8, 6);
        assert_eq!(r1, r8);
        assert_eq!(normalised(&e1), normalised(&e8));
        assert_eq!(m1.counter("ticks"), m8.counter("ticks"));
        assert_eq!(m1.counter("ticks"), 30);
        // Gauges: last cell wins in both runs.
        assert_eq!(
            m1.gauge("last_seed").map(f64::to_bits),
            Some(5f64.to_bits())
        );
        assert_eq!(
            m1.gauge("last_seed").map(f64::to_bits),
            m8.gauge("last_seed").map(f64::to_bits)
        );
        // Histogram merge associativity in anger: same buckets/count,
        // sum within tolerance.
        let (h1, h8) = (m1.histogram("lat"), m8.histogram("lat"));
        match (h1, h8) {
            (Some(h1), Some(h8)) => assert!(h1.content_eq(h8)),
            _ => panic!("lat histogram missing"),
        }
    }

    #[test]
    fn span_ids_are_renumbered_deterministically() {
        let (_, events, _) = run_capture(4, 3);
        let begins: Vec<u64> = events
            .iter()
            .filter(|e| e.kind == tel::kinds::SPAN_BEGIN)
            .filter_map(|e| e.field_u64("id"))
            .collect();
        // Cell c's only span gets id (c+1)<<32 | 1, in cell order.
        assert_eq!(begins, vec![(1 << 32) | 1, (2 << 32) | 1, (3 << 32) | 1]);
        // Every end id pairs with a begin id.
        for e in events.iter().filter(|e| e.kind == tel::kinds::SPAN_END) {
            let id = e.field_u64("id");
            assert!(id.is_some_and(|id| begins.contains(&id)));
        }
    }

    #[test]
    fn without_a_sink_cells_run_uninstrumented() {
        assert!(!tel::enabled());
        tel::reset_registry();
        let results = Sweep::new(2).run((0..4).map(synthetic_cell).collect());
        assert_eq!(results, vec![0, 10, 20, 30]);
        // Nothing leaked into the calling thread's registry.
        assert_eq!(tel::with_registry(|r| r.counter("ticks")), 0);
    }

    /// A fault-injection grid: panicking (str and String payloads) and
    /// stalling cells mixed with healthy ones.
    fn faulty_grid() -> Vec<Cell<u64>> {
        (0..6u64)
            .map(|i| {
                Cell::new(format!("cell-{i}"), move || match i {
                    2 => panic!("injected fault in cell 2"),
                    4 => {
                        let msg = format!("injected String fault in cell {i}");
                        std::panic::panic_any(msg)
                    }
                    5 => {
                        // A stalling cell: finishes long after its
                        // neighbours; must not perturb ordering.
                        std::thread::sleep(std::time::Duration::from_millis(20));
                        i * 100
                    }
                    _ => i * 100,
                })
            })
            .collect()
    }

    #[test]
    fn fault_injected_sweep_is_deterministic_across_thread_counts() {
        let expected: Vec<Result<u64, CellFailure>> = (0..6u64)
            .map(|i| match i {
                2 => Err(CellFailure {
                    index: 2,
                    label: "cell-2".to_string(),
                    message: "injected fault in cell 2".to_string(),
                }),
                4 => Err(CellFailure {
                    index: 4,
                    label: "cell-4".to_string(),
                    message: "injected String fault in cell 4".to_string(),
                }),
                _ => Ok(i * 100),
            })
            .collect();
        let r1 = Sweep::new(1).run_fallible(faulty_grid());
        let r4 = Sweep::new(4).run_fallible(faulty_grid());
        assert_eq!(r1, expected, "threads=1: wrong results or attribution");
        assert_eq!(r4, expected, "threads=4: wrong results or attribution");
    }

    /// Regression (ISSUE 4 satellite): one panicking cell must not
    /// poison the pool — the other cells of the same sweep complete, and
    /// the pool machinery stays healthy for subsequent sweeps.
    #[test]
    fn panicking_cell_does_not_poison_the_pool() {
        let mut cells: Vec<Cell<u64>> = (0..8u64)
            .map(|i| Cell::new(format!("ok-{i}"), move || i))
            .collect();
        cells[3] = Cell::new("bad", || panic!("boom"));
        let expected: Vec<Result<u64, CellFailure>> = (0..8u64)
            .map(|i| {
                if i == 3 {
                    Err(CellFailure {
                        index: 3,
                        label: "bad".to_string(),
                        message: "boom".to_string(),
                    })
                } else {
                    Ok(i)
                }
            })
            .collect();
        assert_eq!(Sweep::new(4).run_fallible(cells), expected);
        // The pool machinery still works afterwards on the same thread.
        let again = Sweep::new(4).run((0..4u64).map(|i| Cell::new("c", move || i)).collect());
        assert_eq!(again, vec![0, 1, 2, 3]);
    }

    #[test]
    fn cells_see_a_clean_registry_each() {
        // A cell must not observe metrics from a previously run cell on
        // the same worker thread: force single-thread reuse.
        let (sink, _handle) = tel::MemorySink::new();
        let guard = tel::install(Rc::new(sink));
        let cells: Vec<Cell<u64>> = (0..3)
            .map(|_| {
                Cell::new("probe", || {
                    let before = tel::with_registry(|r| r.counter("probe"));
                    tel::with_registry(|r| r.inc_counter("probe", 1));
                    before
                })
            })
            .collect();
        let observed = Sweep::new(1).run(cells);
        drop(guard);
        tel::reset_registry();
        assert_eq!(observed, vec![0, 0, 0]);
    }
}
