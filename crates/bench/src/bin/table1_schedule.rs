//! Table 1: the schedule of parallel migrations when scaling from 3 to 14
//! machines — 11 rounds in three phases, keeping all three senders busy
//! throughout.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::schedule::MigrationSchedule;

fn main() {
    let reporter = RunReporter::from_args();
    let schedule = MigrationSchedule::plan(3, 14);
    schedule.check_valid().expect("schedule invariants");

    section("Table 1: parallel migration schedule, 3 -> 14 machines (P = 1)");
    // Phase boundaries for s = 3, delta = 11: phase 1 = rounds 0..6,
    // phase 2 = rounds 6..8, phase 3 = rounds 8..11.
    let phase_of = |round: usize| -> &'static str {
        match round {
            0..=2 => "Phase 1, Step 1",
            3..=5 => "Phase 1, Step 2",
            6..=7 => "Phase 2",
            _ => "Phase 3",
        }
    };
    for (i, round) in schedule.rounds().iter().enumerate() {
        let pairs: Vec<String> = round
            .transfers
            .iter()
            .map(|t| format!("{} -> {}", t.from + 1, t.to + 1)) // 1-based like the paper
            .collect();
        println!(
            "{:<16} round {:>2}: {}   [{} machines allocated]",
            phase_of(i),
            i + 1,
            pairs.join(", "),
            schedule.machines_in_round(i)
        );
    }

    println!();
    println!(
        "total rounds      : {} (paper: 11)",
        schedule.total_rounds()
    );
    println!(
        "total transfers   : {} (= 3 senders x 11 receivers)",
        schedule.total_transfers()
    );
    println!(
        "avg machines      : {:.4} (Algorithm 4: 111/11 = {:.4})",
        schedule.avg_machines(),
        111.0 / 11.0
    );
    println!();
    println!("Each sender appears in every round (senders stay fully");
    println!("utilised); without the three-phase split the move would need");
    println!("at least 12 rounds (paper, §4.4.1).");

    reporter.finish();
}
