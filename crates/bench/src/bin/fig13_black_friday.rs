//! Fig 13: actual load versus the effective capacity of three allocation
//! strategies over two 4-day windows of the 4.5-month simulation — an
//! ordinary week (left) and the Black Friday week (right). The Simple
//! time-of-day schedule looks adequate until the load deviates from the
//! pattern; P-Store rides the surge by combining prediction with its
//! reactive fallback.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot2, section, RunReporter};
use pstore_core::params::SystemParams;
use pstore_forecast::generators::B2wLoadModel;
use pstore_sim::fast::{run_fast, FastSimConfig, FastSimResult};
use pstore_sim::scenarios::{
    pstore_spar_fast, simple_schedule, static_alloc, PEAK_TXN_RATE, TRAINING_DAYS,
};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    // Black Friday is day 115 of the 135-day window (day 87 of evaluation).
    let (model, total_days) = B2wLoadModel::four_and_a_half_months(0x0812);
    let eval_days = if quick {
        92
    } else {
        total_days - TRAINING_DAYS
    };
    let raw = model.generate(TRAINING_DAYS + eval_days);
    let eval_start = TRAINING_DAYS * 1440;
    let normal_peak = raw.values()[eval_start..eval_start + 14 * 1440]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / normal_peak);
    let train = &scaled.values()[..eval_start];
    let eval = &scaled.values()[eval_start..];

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: true,
        prov_events: false,
    };

    let runs: Vec<(&str, FastSimResult)> = vec![
        (
            "P-Store SPAR",
            run_fast(
                &cfg,
                eval,
                &mut pstore_spar_fast(train, eval[0], &params, params.q),
            ),
        ),
        (
            "Simple 9/2",
            run_fast(&cfg, eval, &mut simple_schedule(9, 2)),
        ),
        ("Static 10", run_fast(&cfg, eval, &mut static_alloc(10))),
    ];

    // Windows: an ordinary 4-day stretch and the 4 days around Black
    // Friday (eval day 87).
    let bf_day = 115 - TRAINING_DAYS;
    let windows = [
        ("ordinary days 40-44", 40usize.min(eval_days - 4)),
        (
            "Black Friday window",
            bf_day.saturating_sub(2).min(eval_days.saturating_sub(4)),
        ),
    ];

    for (label, start_day) in windows {
        let lo = start_day * 1440;
        let hi = ((start_day + 4) * 1440).min(eval.len());
        section(&format!(
            "Fig 13 ({label}): load (#) vs effective capacity (*)"
        ));
        let load_window = &eval[lo..hi];
        for (name, r) in &runs {
            let capacity: Vec<f64> = r.capacity_timeline[lo..hi]
                .iter()
                .map(|&c| c as f64)
                .collect();
            println!("--- {name}");
            println!("{}", ascii_plot2(load_window, &capacity, 96, 9));
            let short = load_window
                .iter()
                .zip(&capacity)
                .filter(|(l, c)| l > c)
                .count();
            println!(
                "minutes with insufficient capacity in window: {short} / {}",
                hi - lo
            );
        }
    }

    section("Whole-run summary");
    println!(
        "{:<16} {:>12} {:>14} {:>9}",
        "strategy", "avg machines", "% time short", "moves"
    );
    for (name, r) in &runs {
        println!(
            "{:<16} {:>12.2} {:>14.3} {:>9}",
            name,
            r.avg_machines(),
            r.pct_insufficient(),
            r.reconfigurations
        );
    }
    println!();
    println!("expected (paper): Simple matches the ordinary week but breaks");
    println!("on Black Friday; Static-10 wastes machines all quarter and");
    println!("still gets caught by the surge; P-Store tracks both.");

    reporter.finish();
}
