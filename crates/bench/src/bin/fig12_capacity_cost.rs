//! Fig 12: the capacity–cost trade-off of five allocation strategies
//! simulated over 4.5 months of B2W-style load (August–December including
//! Black Friday). Each point is one full simulation; sweeping the buffer
//! knob (Q for P-Store, headroom for reactive, cluster sizes for the
//! schedule/static baselines) traces each strategy's capacity-cost curve.
//! Cost is normalised to the default P-Store SPAR run, as in the paper.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::sweep::{Cell, Sweep};
use pstore_bench::{section, RunReporter};
use pstore_core::params::SystemParams;
use pstore_forecast::generators::B2wLoadModel;
use pstore_sim::fast::{run_fast, FastSimConfig, FastSimResult};
use pstore_sim::scenarios::{
    pstore_oracle_fast, pstore_spar_fast, reactive_fast, simple_schedule, static_alloc,
    PEAK_TXN_RATE, TRAINING_DAYS,
};
use std::sync::Arc;

struct Point {
    strategy: &'static str,
    knob: String,
    cost: f64,
    pct_short: f64,
    avg_machines: f64,
    reconfigs: u64,
}

fn point(strategy: &'static str, knob: String, r: &FastSimResult) -> Point {
    Point {
        strategy,
        knob,
        cost: r.cost_machine_slots,
        pct_short: r.pct_insufficient(),
        avg_machines: r.avg_machines(),
        reconfigs: r.reconfigurations,
    }
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let eval_days = if quick { 21 } else { 107 }; // 4.5 months = 28 + 107
    let (model, _) = B2wLoadModel::four_and_a_half_months(0x0812);
    let raw = model.generate(TRAINING_DAYS + eval_days);
    let eval_start = TRAINING_DAYS * 1440;
    // Scale so a *normal* peak sits at PEAK_TXN_RATE; Black Friday goes
    // beyond it, which is the point of the experiment.
    let normal_peak = raw.values()[eval_start..eval_start + 14 * 1440]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / normal_peak);
    let train: Arc<Vec<f64>> = Arc::new(scaled.values()[..eval_start].to_vec());
    let eval: Arc<Vec<f64>> = Arc::new(scaled.values()[eval_start..].to_vec());

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: false,
        prov_events: false,
    };

    // One sweep cell per strategy/knob combination; every cell re-derives
    // its controller from the shared (read-only) train/eval curves, so the
    // cells are independent and the grid order fixes the output order.
    let mut cells: Vec<Cell<Point>> = Vec::new();
    let q_sweep = [200.0, 230.0, 260.0, 285.0, 310.0, 335.0];
    for &q in &q_sweep {
        let (cfg, params, eval) = (cfg.clone(), params.clone(), Arc::clone(&eval));
        cells.push(Cell::new(format!("oracle Q={q:.0}"), move || {
            let mut s = pstore_oracle_fast(&eval, &params, q);
            let r = run_fast(&cfg, &eval, &mut s);
            point("P-Store Oracle", format!("Q={q:.0}"), &r)
        }));
    }
    for &q in &q_sweep {
        let (cfg, params) = (cfg.clone(), params.clone());
        let (train, eval) = (Arc::clone(&train), Arc::clone(&eval));
        cells.push(Cell::new(format!("spar Q={q:.0}"), move || {
            let mut s = pstore_spar_fast(&train, eval[0], &params, q);
            let r = run_fast(&cfg, &eval, &mut s);
            point("P-Store SPAR", format!("Q={q:.0}"), &r)
        }));
    }
    for headroom in [0.05, 0.15, 0.3, 0.5, 0.8] {
        let (cfg, params, eval) = (cfg.clone(), params.clone(), Arc::clone(&eval));
        cells.push(Cell::new(
            format!("reactive buf={headroom:.2}"),
            move || {
                let mut s = reactive_fast(eval[0], &params, headroom);
                let r = run_fast(&cfg, &eval, &mut s);
                point("Reactive", format!("buf={headroom:.2}"), &r)
            },
        ));
    }
    for (day, night) in [(6u32, 2u32), (8, 3), (10, 4), (10, 6)] {
        let (cfg, eval) = (cfg.clone(), Arc::clone(&eval));
        cells.push(Cell::new(format!("simple {day}/{night}"), move || {
            let mut s = simple_schedule(day, night);
            let r = run_fast(&cfg, &eval, &mut s);
            point("Simple", format!("{day}/{night}"), &r)
        }));
    }
    for n in [2u32, 4, 6, 8, 10] {
        let (cfg, eval) = (cfg.clone(), Arc::clone(&eval));
        cells.push(Cell::new(format!("static n={n}"), move || {
            let mut s = static_alloc(n);
            let r = run_fast(&cfg, &eval, &mut s);
            point("Static", format!("n={n}"), &r)
        }));
    }

    let sweep = Sweep::from_reporter(&reporter);
    reporter.progress(&format!(
        "simulating {} strategy/knob combinations over {eval_days} days on {} thread(s)...",
        cells.len(),
        sweep.threads().min(cells.len())
    ));
    let points = sweep.run(cells);

    // Normalise cost to the default P-Store SPAR point (Q = 285).
    let base = points
        .iter()
        .find(|p| p.strategy == "P-Store SPAR" && p.knob == "Q=285")
        .map(|p| p.cost)
        .expect("default point present");

    section("Fig 12: % of time with insufficient capacity vs normalised cost");
    println!(
        "{:<16} {:>8} {:>12} {:>14} {:>10} {:>9}",
        "strategy", "knob", "cost (norm)", "% time short", "avg mach", "moves"
    );
    for p in &points {
        println!(
            "{:<16} {:>8} {:>12.3} {:>14.3} {:>10.2} {:>9}",
            p.strategy,
            p.knob,
            p.cost / base,
            p.pct_short,
            p.avg_machines,
            p.reconfigs
        );
    }

    section("Shape checks against the paper");
    let best = |name: &str| -> (f64, f64) {
        points
            .iter()
            .filter(|p| p.strategy == name)
            .map(|p| (p.cost / base, p.pct_short))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.total_cmp(&b.0)))
            .unwrap_or((f64::MAX, f64::MAX))
    };
    let spar_default = points
        .iter()
        .find(|p| p.strategy == "P-Store SPAR" && p.knob == "Q=285")
        .unwrap();
    let oracle_default = points
        .iter()
        .find(|p| p.strategy == "P-Store Oracle" && p.knob == "Q=285")
        .unwrap();
    println!(
        "P-Store SPAR default: cost 1.000, {:.3}% short (oracle: {:.3}, {:.3}%)",
        spar_default.pct_short,
        oracle_default.cost / base,
        oracle_default.pct_short
    );
    println!(
        "best reactive point   : cost {:.3}, {:.3}% short",
        best("Reactive").0,
        best("Reactive").1
    );
    println!(
        "best static point     : cost {:.3}, {:.3}% short",
        best("Static").0,
        best("Static").1
    );
    println!();
    println!("expected (paper): the P-Store curves dominate — for any level");
    println!("of capacity shortfall they cost less than reactive, Simple or");
    println!("Static; the oracle is a slightly better frontier than SPAR;");
    println!("reactive can match P-Store's shortfall only at much higher");
    println!("cost; Static is the worst frontier.");

    reporter.finish();
}
