//! Fig 8: p50/p99 latency while reconfiguring with different migration
//! chunk sizes, against a static no-reconfiguration baseline. The paper
//! moves half of a 1 106 MB database at chunk sizes 1000–8000 kB with the
//! per-machine rate pinned at `Q̂`; 1000 kB chunks stay within acceptable
//! latency while larger chunks trade speed for latency spikes. The chunk
//! size maps to the pacing interval of a stream (1000 kB ≈ 4.1 s at
//! `R = 244 kB/s`), which is what we sweep.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::controller::{Action, Observation, ReconfigReason, ReconfigRequest, Strategy};
use pstore_sim::detailed::{run_detailed, DetailedSimConfig};
use pstore_sim::latency::SLA_THRESHOLD_S;

/// Issues a single 1 -> 2 move at t = 30 s (the Fig 8 set-up: move half the
/// database off one machine while it serves Q̂).
struct HalveData {
    issued: bool,
}

impl Strategy for HalveData {
    fn tick(&mut self, obs: &Observation) -> Action {
        if !self.issued && obs.interval >= 1 && !obs.reconfiguring {
            self.issued = true;
            return Action::Reconfigure(ReconfigRequest {
                target: 2,
                rate_multiplier: 1.0,
                reason: ReconfigReason::Planned,
                decision_id: 0,
            });
        }
        Action::None
    }
    fn name(&self) -> &str {
        "halve"
    }
    fn initial_machines(&self) -> u32 {
        1
    }
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    // The 1 -> 2 move takes T = D/(2P) ≈ 387 s at the paper's D; quick mode
    // scales D down so the move still completes inside a short run.
    let seconds = if quick { 200 } else { 520 };
    // Per-machine rate pinned at Q̂ = 350 txn/s on the (single) source.
    let load = vec![350.0; seconds];

    section("Fig 8: latency during reconfiguration vs migration chunk size");
    println!(
        "{:>12} {:>12} {:>10} {:>10} {:>12} {:>12}",
        "chunk", "pacing (s)", "p50 (ms)", "p99 (ms)", "viol (s)", "move (s)"
    );

    // Static baseline: no reconfiguration at all.
    let mut base_cfg = DetailedSimConfig::paper_defaults(load.clone(), 88);
    if quick {
        base_cfg.workload.num_skus = 1_500;
        base_cfg.workload.initial_carts = 400;
    }
    let baseline = run_detailed(
        &base_cfg,
        &mut pstore_core::controller::baselines::StaticController::new(1),
    );
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let base_p50: Vec<f64> = baseline.seconds.iter().map(|s| s.p50).collect();
    let base_p99: Vec<f64> = baseline.seconds.iter().map(|s| s.p99).collect();
    println!(
        "{:>12} {:>12} {:>10.1} {:>10.1} {:>12} {:>12}",
        "static",
        "-",
        1000.0 * avg(&base_p50),
        1000.0 * avg(&base_p99),
        baseline.violations.p99,
        "-"
    );

    // Chunk sizes as pacing multiples of the paper's 1000 kB (~4.1 s).
    for (label, pacing) in [
        ("1000 kB", 4.1),
        ("2000 kB", 8.2),
        ("4000 kB", 16.4),
        ("6000 kB", 24.6),
        ("8000 kB", 32.8),
    ] {
        let mut cfg = DetailedSimConfig::paper_defaults(load.clone(), 88);
        if quick {
            cfg.workload.num_skus = 1_500;
            cfg.workload.initial_carts = 400;
            cfg.params.d = std::time::Duration::from_secs(1200);
        }
        cfg.chunk_pacing_s = pacing;
        let r = run_detailed(&cfg, &mut HalveData { issued: false });
        let (start, end) = r
            .reconfig_spans
            .first()
            .copied()
            .unwrap_or((30.0, seconds as f64));
        // Latency during the move window (plus short tail while draining).
        let window: Vec<_> = r
            .seconds
            .iter()
            .filter(|s| (s.second as f64) >= start && (s.second as f64) <= end + 10.0)
            .collect();
        let p50: Vec<f64> = window.iter().map(|s| s.p50).collect();
        let p99: Vec<f64> = window.iter().map(|s| s.p99).collect();
        let viol = window.iter().filter(|s| s.p99 > SLA_THRESHOLD_S).count();
        println!(
            "{label:>12} {pacing:>12.1} {:>10.1} {:>10.1} {viol:>12} {:>12.0}",
            1000.0 * avg(&p50),
            1000.0 * avg(&p99),
            end - start,
        );
    }
    println!();
    println!("Expected shape (paper Fig 8): 1000 kB chunks cost little over");
    println!("static; larger chunks finish no faster at the same rate but");
    println!("concentrate partition occupancy into longer bursts, pushing");
    println!("p99 past the 500 ms SLA.");

    reporter.finish();
}
