//! Fig 7: parameter discovery — ramp the transaction rate on a single
//! machine until the latency constraint breaks; set `Q̂` to 80% and `Q` to
//! 65% of the saturation point (§4.1, §8.1: saturation at 438 txn/s with 6
//! partitions, hence `Q̂ = 350`, `Q = 285`).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
// Simulation seconds are tiny; indexing a load curve by them cannot truncate.
#![allow(clippy::cast_possible_truncation)]
use pstore_bench::{ascii_plot, section, RunReporter};
use pstore_core::controller::baselines::StaticController;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    // Ramp 50 -> 650 txn/s over the run.
    let seconds = if quick { 300 } else { 1200 };
    let load: Vec<f64> = (0..seconds)
        .map(|s| 50.0 + 600.0 * s as f64 / seconds as f64)
        .collect();
    let mut cfg = DetailedSimConfig::paper_defaults(load.clone(), 7);
    if quick {
        cfg.workload.num_skus = 1_000;
        cfg.workload.initial_carts = 300;
    }
    let result = run_detailed(&cfg, &mut StaticController::new(1));

    section("Fig 7: increasing throughput on a single machine (6 partitions)");
    let p99: Vec<f64> = result.seconds.iter().map(|s| s.p99 * 1000.0).collect();
    println!("p99 latency (ms) while offered load ramps 50 -> 650 txn/s:");
    println!("{}", ascii_plot(&p99, 96, 12));

    println!(
        "{:>12} {:>12} {:>10} {:>10}",
        "load (txn/s)", "thr (txn/s)", "p50 (ms)", "p99 (ms)"
    );
    let step = seconds / 12;
    for w in result.seconds.chunks(step) {
        let mid = w[w.len() / 2].second as usize;
        let thr = w.iter().map(|s| s.throughput).sum::<u64>() as f64 / w.len() as f64;
        let p50 = w.iter().map(|s| s.p50).sum::<f64>() / w.len() as f64;
        let p99 = w.iter().map(|s| s.p99).sum::<f64>() / w.len() as f64;
        println!(
            "{:>12.0} {:>12.0} {:>10.1} {:>10.1}",
            load[mid.min(load.len() - 1)],
            thr,
            p50 * 1000.0,
            p99 * 1000.0
        );
    }

    // Saturation: first load at which p99 stays above 500 ms.
    let mut saturation = None;
    for w in result.seconds.windows(5) {
        if w.iter().all(|s| s.p99 > 0.5) {
            saturation = Some(load[w[0].second as usize]);
            break;
        }
    }
    println!();
    match saturation {
        Some(s) => {
            println!("saturation point       : {s:>7.0} txn/s (paper: 438)");
            println!(
                "=> Q̂ = 80% saturation  : {:>7.0} txn/s (paper: 350)",
                0.8 * s
            );
            println!(
                "=> Q  = 65% saturation : {:>7.0} txn/s (paper: 285)",
                0.65 * s
            );
        }
        None => println!("the ramp never saturated — extend the load range"),
    }

    reporter.finish();
}
