//! Fig 5: SPAR prediction quality on the B2W load.
//!
//! (a) 60-minute-ahead predictions against the actual load over a 24-hour
//!     window outside the training set;
//! (b) mean relative error as a function of the forecasting period tau;
//! plus the §5 text comparison SPAR vs ARMA vs AR at tau = 60 min
//! (paper: 10.4% / 12.2% / 12.5%).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot2, section, RunReporter};
use pstore_forecast::ar::{ArConfig, ArModel};
use pstore_forecast::arma::{ArmaConfig, ArmaModel};
use pstore_forecast::eval::{rolling_accuracy, EvalConfig};
use pstore_forecast::generators::B2wLoadModel;
use pstore_forecast::metrics::mre;
use pstore_forecast::model::LoadPredictor;
use pstore_forecast::spar::{SparConfig, SparModel};

const MIN_PER_DAY: usize = 1440;

fn rolling_mre(
    model: &dyn LoadPredictor,
    data: &[f64],
    eval_start: usize,
    tau: usize,
    stride: usize,
) -> f64 {
    rolling_accuracy(
        model,
        data,
        &[tau],
        &EvalConfig {
            eval_start,
            origin_stride: stride,
        },
    )[0]
    .mre
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let eval_days = if quick { 2 } else { 7 };
    let train_days = 28;
    let load = B2wLoadModel::default().generate(train_days + eval_days);
    let data = load.values();
    let train_len = train_days * MIN_PER_DAY;

    let spar = SparModel::fit(&data[..train_len], &SparConfig::b2w_default())
        .expect("SPAR fit on four weeks of training data");

    section("Fig 5a: actual vs 60-min-ahead SPAR predictions, 24-hour window");
    let day_start = train_len + MIN_PER_DAY / 2;
    let mut actual_day = Vec::new();
    let mut pred_day = Vec::new();
    for t in (day_start..day_start + MIN_PER_DAY).step_by(5) {
        pred_day.push(spar.predict(&data[..t - 59], 60)); // origin 60 min earlier
        actual_day.push(data[t]);
    }
    println!("{}", ascii_plot2(&actual_day, &pred_day, 96, 12));
    println!(
        "window MRE at tau=60: {:.1}%",
        100.0 * mre(&pred_day, &actual_day).unwrap()
    );

    section("Fig 5b: SPAR prediction accuracy vs forecasting period tau");
    let stride = if quick { 53 } else { 17 };
    println!("{:>10} {:>12}", "tau (min)", "MRE %");
    let mut errors = Vec::new();
    for tau in [10usize, 20, 30, 40, 50, 60] {
        let e = 100.0 * rolling_mre(&spar, data, train_len, tau, stride);
        println!("{tau:>10} {e:>12.1}");
        errors.push(e);
    }
    println!();
    println!("(paper Fig 5b: error grows gracefully from ~6% to ~10% over the",);
    println!(" same range; the shape — monotone, staying near 10% — holds)");
    assert!(
        errors.windows(2).all(|w| w[1] >= w[0] - 1.5),
        "error should not decrease sharply with tau: {errors:?}"
    );

    section("§5 text: SPAR vs ARMA vs AR at tau = 60 min");
    let fit_stride = if quick { 8 } else { 3 };
    let arma = ArmaModel::fit(
        &data[..train_len],
        &ArmaConfig {
            p: 30,
            q: 10,
            long_ar_order: Some(60),
            ridge_lambda: 1e-4,
            stride: fit_stride,
        },
    )
    .expect("ARMA fit");
    let ar = ArModel::fit(
        &data[..train_len],
        &ArConfig {
            order: 30,
            ridge_lambda: 1e-4,
            stride: fit_stride,
        },
    )
    .expect("AR fit");

    let eval_stride = if quick { 97 } else { 31 };
    let spar60 = 100.0 * rolling_mre(&spar, data, train_len, 60, eval_stride);
    let arma60 = 100.0 * rolling_mre(&arma, data, train_len, 60, eval_stride);
    let ar60 = 100.0 * rolling_mre(&ar, data, train_len, 60, eval_stride);
    println!("{:>8} {:>12} {:>12}", "model", "MRE % (ours)", "paper %");
    println!("{:>8} {:>12.1} {:>12}", "SPAR", spar60, "10.4");
    println!("{:>8} {:>12.1} {:>12}", "ARMA", arma60, "12.2");
    println!("{:>8} {:>12.1} {:>12}", "AR", ar60, "12.5");
    println!();
    if spar60 < arma60.min(ar60) {
        println!("ordering reproduced: SPAR < min(ARMA, AR)");
    } else {
        println!("WARNING: SPAR did not win on this seed — ordering not reproduced");
    }

    reporter.finish();
}
