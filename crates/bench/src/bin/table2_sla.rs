//! Table 2: SLA violations (seconds with 50th/95th/99th percentile latency
//! above 500 ms) and average machines allocated, for the four elasticity
//! approaches (same runs as Fig 9).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::fig9::{run_all_sweep, Fig9Config};
use pstore_bench::sweep::Sweep;
use pstore_bench::{section, RunReporter};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let cfg = Fig9Config {
        days: if quick { 1 } else { 3 },
        seed: 0x0709,
        quick,
        shards: pstore_sim::detailed::shards_from_env(),
    };
    reporter.progress("running the Fig 9 comparison to derive Table 2...");
    let (_, results) = run_all_sweep(&cfg, &Sweep::from_reporter(&reporter));

    section("Table 2: SLA violations and average machines allocated");
    println!(
        "{:<36} {:>8} {:>8} {:>8} {:>10}",
        "Elasticity Approach", "50th", "95th", "99th", "Avg Mach"
    );
    for r in &results {
        println!(
            "{:<36} {:>8} {:>8} {:>8} {:>10.2}",
            r.strategy, r.violations.p50, r.violations.p95, r.violations.p99, r.avg_machines
        );
    }
    println!();
    println!("paper (3 days, 10x speed):");
    println!("  Static 10 servers : 0 / 13 / 25   @ 10.00 machines");
    println!("  Static 4 servers  : 0 / 157 / 249 @ 4.00 machines");
    println!("  Reactive          : 35 / 220 / 327 @ 4.02 machines");
    println!("  P-Store           : 0 / 37 / 92   @ 5.05 machines");
    println!();

    let (static10, reactive, pstore) = (&results[0], &results[2], &results[3]);
    println!("headline checks:");
    println!(
        "  P-Store vs reactive p99 violations : {} vs {} ({}% fewer; paper: ~72% fewer)",
        pstore.violations.p99,
        reactive.violations.p99,
        (100.0 * (reactive.violations.p99 as f64 - pstore.violations.p99 as f64)
            / reactive.violations.p99.max(1) as f64)
            .round()
    );
    println!(
        "  P-Store machines vs peak static    : {:.2} vs {:.2} ({:.0}%; paper: ~50%)",
        pstore.avg_machines,
        static10.avg_machines,
        100.0 * pstore.avg_machines / static10.avg_machines
    );
    println!(
        "  dropped arrivals (client timeouts) : static-4 {}, reactive {}, P-Store {}",
        results[1].dropped, reactive.dropped, pstore.dropped
    );

    reporter.finish();
}
