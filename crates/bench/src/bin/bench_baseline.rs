//! Tracked performance baseline: times a fixed grid of detailed-sim
//! cells through the [`pstore_bench::sweep`] runner and writes
//! `BENCH_sim.json` — cells/s, simulated-txns/s and peak RSS — so
//! regressions in the simulator hot path show up as a diff against the
//! committed file.
//!
//! Usage: `bench_baseline [--quick] [--threads N] [--out PATH]
//! [--shards LIST] [--check-against PATH]`
//!
//! `--quick` runs a smaller grid for CI smoke (numbers are not
//! comparable to the committed full-run baseline). Default output path
//! is `BENCH_sim.json` in the current directory.
//!
//! `--shards 1,2,4` runs the whole grid once per executor shard count
//! and emits a JSON array with one row per count (default: the
//! `PSTORE_SHARDS` environment variable, else `1`). The simulation
//! counters (`committed_txns`, `dropped_txns`) must be identical across
//! rows — the engine is deterministic in the shard count — so only the
//! timing fields vary.
//!
//! `--check-against PATH` reads a previously committed baseline and
//! fails (exit 1) if this run's shards=1 `sim_txns_per_wall_s` fell
//! below 95% of the committed value: the serial engine must not pay for
//! the sharded machinery it isn't using. The gate is best-of-3 — the
//! serial grid is re-timed up to twice before failing, so transient
//! host-scheduler noise doesn't masquerade as a regression.

#![allow(clippy::expect_used, clippy::unwrap_used)] // experiment bin aborts loudly

use pstore_bench::sweep::{Cell, Sweep};
use pstore_bench::RunReporter;
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig, DetailedSimResult};
use std::io::Write;
use std::time::Duration;
use std::time::Instant;

/// One baseline cell: a static-allocation detailed run, fully determined
/// by `(nodes, seconds, load, seed)`.
fn cell_cfg(seconds: usize, load_txn_s: f64, seed: u64) -> DetailedSimConfig {
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: vec![load_txn_s; seconds],
        seed,
        workload: pstore_b2w::generator::WorkloadConfig {
            num_skus: 4_000,
            initial_carts: 800,
            ..pstore_b2w::generator::WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 5_000,
        txn_sample_every: 0,
        shards: 1,
        shard_spans: false,
        prov_events: false,
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
#[cfg(target_os = "linux")]
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kb() -> Option<u64> {
    None
}

/// Parses a comma-separated shard list (`"1,2,4"`). Exits on nonsense.
fn parse_shard_list(list: &str) -> Vec<u32> {
    let shards: Vec<u32> = list
        .split(',')
        .map(|s| match s.trim().parse::<u32>() {
            Ok(n) if n > 0 => n,
            _ => {
                eprintln!("error: --shards takes a comma-separated list of positive integers");
                std::process::exit(2);
            }
        })
        .collect();
    if shards.is_empty() {
        eprintln!("error: --shards list is empty");
        std::process::exit(2);
    }
    shards
}

/// Pulls the shards=1 `sim_txns_per_wall_s` out of a committed baseline
/// file. Accepts both the current array-of-rows format (a `"shards"`
/// field precedes the throughput in each row) and the legacy
/// single-object format (no `"shards"` field — implicitly serial).
fn baseline_serial_txns_per_s(text: &str) -> Option<f64> {
    let mut current_shards: Option<u32> = None;
    for line in text.lines() {
        if let Some(rest) = line.split("\"shards\":").nth(1) {
            current_shards = rest.trim().trim_end_matches(',').parse().ok();
        }
        if let Some(rest) = line.split("\"sim_txns_per_wall_s\":").nth(1) {
            if current_shards.unwrap_or(1) == 1 {
                return rest.trim().trim_end_matches(',').parse().ok();
            }
        }
    }
    None
}

fn main() {
    let reporter = RunReporter::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.iter().position(|a| a == "--out").map_or_else(
        || std::path::PathBuf::from("BENCH_sim.json"),
        |i| match args.get(i + 1) {
            Some(p) => std::path::PathBuf::from(p),
            None => {
                eprintln!("error: --out requires a file path argument");
                std::process::exit(2);
            }
        },
    );
    let shard_counts: Vec<u32> = args.iter().position(|a| a == "--shards").map_or_else(
        || {
            // Mirror the simulator's own PSTORE_SHARDS default so an
            // env-driven run benches the engine it would actually use.
            std::env::var("PSTORE_SHARDS").map_or_else(|_| vec![1], |v| parse_shard_list(&v))
        },
        |i| match args.get(i + 1) {
            Some(list) => parse_shard_list(list),
            None => {
                eprintln!("error: --shards requires a comma-separated list (e.g. 1,2,4)");
                std::process::exit(2);
            }
        },
    );
    let check_against =
        args.iter()
            .position(|a| a == "--check-against")
            .map(|i| match args.get(i + 1) {
                Some(p) => std::path::PathBuf::from(p),
                None => {
                    eprintln!("error: --check-against requires a baseline file path");
                    std::process::exit(2);
                }
            });

    // The grid: static clusters at varied sizes/loads/seeds, covering the
    // uncontended dispatch path, a migrating-free steady state, and a
    // saturated node (drop path). Each cell is independent — the same
    // shape the figure binaries fan out.
    let (seconds, grid): (usize, Vec<(u32, f64, u64)>) = if reporter.quick() {
        (45, vec![(4, 400.0, 1), (1, 600.0, 2)])
    } else {
        (
            180,
            vec![
                (4, 400.0, 1),
                (4, 400.0, 2),
                (6, 900.0, 3),
                (6, 900.0, 4),
                (2, 500.0, 5),
                (1, 600.0, 6),
                (8, 1_500.0, 7),
                (3, 700.0, 8),
            ],
        )
    };

    let mode = if reporter.quick() { "quick" } else { "full" };
    let sweep = Sweep::from_reporter(&reporter);
    let threads = sweep.threads();
    reporter.progress(&format!(
        "bench_baseline: {} cells x {seconds}s ({mode}), {threads} thread(s), shards {shard_counts:?}",
        grid.len()
    ));

    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    let mut rows: Vec<String> = Vec::with_capacity(shard_counts.len());
    let mut serial_txns_per_s: Option<f64> = None;
    for &shards in &shard_counts {
        let cells: Vec<Cell<DetailedSimResult>> = grid
            .iter()
            .map(|&(nodes, load, seed)| {
                let mut cfg = cell_cfg(seconds, load, seed);
                cfg.shards = shards;
                Cell::new(
                    format!("static{nodes}@{load}tps/seed{seed}/shards{shards}"),
                    move || run_detailed(&cfg, &mut StaticController::new(nodes)),
                )
            })
            .collect();
        let n_cells = cells.len();

        let start = Instant::now();
        let results = sweep.run(cells);
        let wall_s = start.elapsed().as_secs_f64();

        let committed: u64 = results.iter().map(|r| r.committed).sum();
        let dropped: u64 = results.iter().map(|r| r.dropped).sum();
        #[allow(clippy::cast_precision_loss)] // counters far below 2^52
        let (cells_per_s, txns_per_s) = (n_cells as f64 / wall_s, committed as f64 / wall_s);
        if shards == 1 {
            serial_txns_per_s.get_or_insert(txns_per_s);
        }
        // Peak RSS is process-wide and monotone, so later rows inherit
        // the high-water mark of earlier ones; still worth recording.
        let rss_json = peak_rss_kb().map_or_else(|| "null".to_string(), |kb| kb.to_string());
        rows.push(format!(
            "  {{\n    \"benchmark\": \"bench_baseline\",\n    \"mode\": \"{mode}\",\n    \
             \"shards\": {shards},\n    \"threads\": {threads},\n    \
             \"host_cpus\": {host_cpus},\n    \
             \"cells\": {n_cells},\n    \"sim_seconds_per_cell\": {seconds},\n    \
             \"committed_txns\": {committed},\n    \"dropped_txns\": {dropped},\n    \
             \"wall_s\": {wall_s:.3},\n    \"cells_per_s\": {cells_per_s:.4},\n    \
             \"sim_txns_per_wall_s\": {txns_per_s:.0},\n    \"peak_rss_kb\": {rss_json}\n  }}"
        ));
        reporter.progress(&format!(
            "bench_baseline: shards={shards} done ({wall_s:.1}s wall, {txns_per_s:.0} sim txns/s)"
        ));
    }

    let json = format!("[\n{}\n]\n", rows.join(",\n"));
    let mut file = std::fs::File::create(&out_path).expect("create BENCH_sim.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_sim.json");
    print!("{json}");
    reporter.progress(&format!("bench_baseline: wrote {}", out_path.display()));

    if let Some(baseline_path) = check_against {
        let Some(measured) = serial_txns_per_s else {
            eprintln!("error: --check-against needs a shards=1 row (add 1 to --shards)");
            std::process::exit(2);
        };
        let text = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("error: cannot read {}: {e}", baseline_path.display());
            std::process::exit(2);
        });
        let Some(committed_baseline) = baseline_serial_txns_per_s(&text) else {
            eprintln!(
                "error: no shards=1 sim_txns_per_wall_s in {}",
                baseline_path.display()
            );
            std::process::exit(2);
        };
        let floor = 0.95 * committed_baseline;
        // Best-of-3: wall-clock throughput on a shared host can dip well
        // below 95% from scheduler noise alone, and a genuine regression
        // slows every attempt, so retry the serial grid before failing.
        let mut best = measured;
        for attempt in 2..=3 {
            if best >= floor {
                break;
            }
            reporter.progress(&format!(
                "bench_baseline: shards=1 throughput {best:.0} below floor {floor:.0}, \
                 retrying (attempt {attempt}/3, host noise vs real regression)"
            ));
            let cells: Vec<Cell<DetailedSimResult>> = grid
                .iter()
                .map(|&(nodes, load, seed)| {
                    let cfg = cell_cfg(seconds, load, seed);
                    Cell::new(format!("recheck{nodes}@{load}tps/seed{seed}"), move || {
                        run_detailed(&cfg, &mut StaticController::new(nodes))
                    })
                })
                .collect();
            let start = Instant::now();
            let results = sweep.run(cells);
            let wall_s = start.elapsed().as_secs_f64();
            let committed: u64 = results.iter().map(|r| r.committed).sum();
            #[allow(clippy::cast_precision_loss)] // counters far below 2^52
            let txns_per_s = committed as f64 / wall_s;
            best = best.max(txns_per_s);
        }
        if best < floor {
            eprintln!(
                "FAIL: shards=1 throughput {best:.0} sim txns/s (best of 3) is below 95% of \
                 the committed baseline {committed_baseline:.0} (floor {floor:.0}) — the \
                 serial engine regressed"
            );
            std::process::exit(1);
        }
        reporter.progress(&format!(
            "bench_baseline: shards=1 throughput {best:.0} >= 95% of committed \
             {committed_baseline:.0} — ok"
        ));
    }
    reporter.finish();
}
