//! Tracked performance baseline: times a fixed grid of detailed-sim
//! cells through the [`pstore_bench::sweep`] runner and writes
//! `BENCH_sim.json` — cells/s, simulated-txns/s and peak RSS — so
//! regressions in the simulator hot path show up as a diff against the
//! committed file.
//!
//! Usage: `bench_baseline [--quick] [--threads N] [--out PATH]`
//!
//! `--quick` runs a smaller grid for CI smoke (numbers are not
//! comparable to the committed full-run baseline). Default output path
//! is `BENCH_sim.json` in the current directory.

#![allow(clippy::expect_used, clippy::unwrap_used)] // experiment bin aborts loudly

use pstore_bench::sweep::{Cell, Sweep};
use pstore_bench::RunReporter;
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig, DetailedSimResult};
use std::io::Write;
use std::time::Duration;
use std::time::Instant;

/// One baseline cell: a static-allocation detailed run, fully determined
/// by `(nodes, seconds, load, seed)`.
fn cell_cfg(seconds: usize, load_txn_s: f64, seed: u64) -> DetailedSimConfig {
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: vec![load_txn_s; seconds],
        seed,
        workload: pstore_b2w::generator::WorkloadConfig {
            num_skus: 4_000,
            initial_carts: 800,
            ..pstore_b2w::generator::WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 5_000,
        txn_sample_every: 0,
    }
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
#[cfg(target_os = "linux")]
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn peak_rss_kb() -> Option<u64> {
    None
}

fn main() {
    let reporter = RunReporter::from_args();
    let args: Vec<String> = std::env::args().collect();
    let out_path = args.iter().position(|a| a == "--out").map_or_else(
        || std::path::PathBuf::from("BENCH_sim.json"),
        |i| match args.get(i + 1) {
            Some(p) => std::path::PathBuf::from(p),
            None => {
                eprintln!("error: --out requires a file path argument");
                std::process::exit(2);
            }
        },
    );

    // The grid: static clusters at varied sizes/loads/seeds, covering the
    // uncontended dispatch path, a migrating-free steady state, and a
    // saturated node (drop path). Each cell is independent — the same
    // shape the figure binaries fan out.
    let (seconds, grid): (usize, Vec<(u32, f64, u64)>) = if reporter.quick() {
        (45, vec![(4, 400.0, 1), (1, 600.0, 2)])
    } else {
        (
            180,
            vec![
                (4, 400.0, 1),
                (4, 400.0, 2),
                (6, 900.0, 3),
                (6, 900.0, 4),
                (2, 500.0, 5),
                (1, 600.0, 6),
                (8, 1_500.0, 7),
                (3, 700.0, 8),
            ],
        )
    };

    let mode = if reporter.quick() { "quick" } else { "full" };
    let sweep = Sweep::from_reporter(&reporter);
    let threads = sweep.threads();
    reporter.progress(&format!(
        "bench_baseline: {} cells x {seconds}s ({mode}), {threads} thread(s)",
        grid.len()
    ));

    let cells: Vec<Cell<DetailedSimResult>> = grid
        .iter()
        .map(|&(nodes, load, seed)| {
            let cfg = cell_cfg(seconds, load, seed);
            Cell::new(format!("static{nodes}@{load}tps/seed{seed}"), move || {
                run_detailed(&cfg, &mut StaticController::new(nodes))
            })
        })
        .collect();
    let n_cells = cells.len();

    let start = Instant::now();
    let results = sweep.run(cells);
    let wall_s = start.elapsed().as_secs_f64();

    let committed: u64 = results.iter().map(|r| r.committed).sum();
    let dropped: u64 = results.iter().map(|r| r.dropped).sum();
    #[allow(clippy::cast_precision_loss)] // counters far below 2^52
    let (cells_per_s, txns_per_s) = (n_cells as f64 / wall_s, committed as f64 / wall_s);
    let rss = peak_rss_kb();
    let host_cpus = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);

    let rss_json = rss.map_or_else(|| "null".to_string(), |kb| kb.to_string());
    let json = format!(
        "{{\n  \"benchmark\": \"bench_baseline\",\n  \"mode\": \"{mode}\",\n  \
         \"threads\": {threads},\n  \"host_cpus\": {host_cpus},\n  \
         \"cells\": {n_cells},\n  \"sim_seconds_per_cell\": {seconds},\n  \
         \"committed_txns\": {committed},\n  \"dropped_txns\": {dropped},\n  \
         \"wall_s\": {wall_s:.3},\n  \"cells_per_s\": {cells_per_s:.4},\n  \
         \"sim_txns_per_wall_s\": {txns_per_s:.0},\n  \"peak_rss_kb\": {rss_json}\n}}\n"
    );
    let mut file = std::fs::File::create(&out_path).expect("create BENCH_sim.json");
    file.write_all(json.as_bytes())
        .expect("write BENCH_sim.json");
    print!("{json}");
    reporter.progress(&format!(
        "bench_baseline: wrote {} ({wall_s:.1}s wall, {txns_per_s:.0} sim txns/s)",
        out_path.display()
    ));
    reporter.finish();
}
