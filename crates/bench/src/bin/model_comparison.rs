//! Extended predictor shoot-out (beyond the paper's §5 three-model
//! comparison): SPAR vs ARMA vs AR vs Holt–Winters vs seasonal-naive, on
//! both the B2W-style and the Wikipedia-style loads, across forecasting
//! periods — all evaluated with the same rolling-origin protocol.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_forecast::ar::{ArConfig, ArModel};
use pstore_forecast::arma::{ArmaConfig, ArmaModel};
use pstore_forecast::eval::{rolling_accuracy, suggest_inflation, EvalConfig};
use pstore_forecast::generators::{B2wLoadModel, WikipediaEdition, WikipediaLoadModel};
use pstore_forecast::holt_winters::{HoltWintersConfig, HoltWintersModel};
use pstore_forecast::model::{LoadPredictor, SeasonalNaive};
use pstore_forecast::spar::{SparConfig, SparModel};

fn report(models: &[Box<dyn LoadPredictor>], data: &[f64], taus: &[usize], cfg: &EvalConfig) {
    print!("{:<16}", "model");
    for tau in taus {
        print!(" {:>9}", format!("tau={tau}"));
    }
    println!();
    for m in models {
        let acc = rolling_accuracy(m.as_ref(), data, taus, cfg);
        print!("{:<16}", m.name());
        for a in &acc {
            print!(" {:>8.1}%", 100.0 * a.mre);
        }
        println!();
    }
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let stride = if quick { 101 } else { 31 };
    let fit_stride = if quick { 8 } else { 3 };

    section("B2W-style load (per-minute, daily period): MRE by tau");
    let load = B2wLoadModel::default().generate(if quick { 30 } else { 35 });
    let data = load.values();
    let train = 28 * 1440;
    let cfg = EvalConfig {
        eval_start: train,
        origin_stride: stride,
    };
    let models: Vec<Box<dyn LoadPredictor>> = vec![
        Box::new(SparModel::fit(&data[..train], &SparConfig::b2w_default()).expect("SPAR")),
        Box::new(
            ArmaModel::fit(
                &data[..train],
                &ArmaConfig {
                    p: 30,
                    q: 10,
                    long_ar_order: Some(60),
                    ridge_lambda: 1e-4,
                    stride: fit_stride,
                },
            )
            .expect("ARMA"),
        ),
        Box::new(
            ArModel::fit(
                &data[..train],
                &ArConfig {
                    order: 30,
                    ridge_lambda: 1e-4,
                    stride: fit_stride,
                },
            )
            .expect("AR"),
        ),
        Box::new(HoltWintersModel::fit(&data[..train], &HoltWintersConfig::default()).expect("HW")),
        Box::new(SeasonalNaive::new(1440)),
    ];
    report(&models, data, &[10, 30, 60], &cfg);

    section("Calibrated prediction inflation (95th percentile coverage)");
    // What §8.2's fixed 15% buys: the factor each model would actually need
    // for 95% of actuals to fall under inflated predictions at tau = 60.
    for m in &models {
        let f = suggest_inflation(m.as_ref(), data, 60, 0.95, &cfg);
        println!(
            "{:<16} needs x{:.3} (paper's fixed inflation: x1.150)",
            m.name(),
            f
        );
    }

    section("Wikipedia-style hourly load (German edition): MRE by tau (hours)");
    let wiki = WikipediaLoadModel::new(WikipediaEdition::German, 2016).generate(if quick {
        42
    } else {
        56
    });
    let wdata = wiki.values();
    let wtrain = 28 * 24;
    let wcfg = EvalConfig {
        eval_start: wtrain,
        origin_stride: 1,
    };
    let spar_cfg = SparConfig {
        period: 24,
        n_periods: 7,
        m_recent: 12,
        taus: vec![1, 2, 3, 4, 5, 6],
        ridge_lambda: 1e-4,
        max_rows: 20_000,
    };
    let wiki_models: Vec<Box<dyn LoadPredictor>> = vec![
        Box::new(SparModel::fit(&wdata[..wtrain], &spar_cfg).expect("SPAR")),
        Box::new(
            HoltWintersModel::fit(
                &wdata[..wtrain],
                &HoltWintersConfig {
                    period: 24,
                    ..HoltWintersConfig::default()
                },
            )
            .expect("HW"),
        ),
        Box::new(SeasonalNaive::new(24)),
    ];
    report(&wiki_models, wdata, &[1, 3, 6], &wcfg);

    println!();
    println!("Expected: SPAR leads on both workloads (multiple previous");
    println!("periods + transient offsets); Holt-Winters is the strongest");
    println!("classical baseline; plain AR/ARMA trail at long horizons; the");
    println!("seasonal-naive floor shows how much of the signal is pure");
    println!("periodicity.");

    reporter.finish();
}
