//! Extended predictor shoot-out (beyond the paper's §5 three-model
//! comparison): SPAR vs ARMA vs AR vs Holt–Winters vs seasonal-naive, on
//! both the B2W-style and the Wikipedia-style loads, across forecasting
//! periods — all evaluated with the same rolling-origin protocol.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::sweep::{Cell, Sweep};
use pstore_bench::{section, RunReporter};
use pstore_forecast::ar::{ArConfig, ArModel};
use pstore_forecast::arma::{ArmaConfig, ArmaModel};
use pstore_forecast::eval::{rolling_accuracy, suggest_inflation, EvalConfig, HorizonAccuracy};
use pstore_forecast::generators::{B2wLoadModel, WikipediaEdition, WikipediaLoadModel};
use pstore_forecast::holt_winters::{HoltWintersConfig, HoltWintersModel};
use pstore_forecast::model::{LoadPredictor, SeasonalNaive};
use pstore_forecast::spar::{SparConfig, SparModel};
use std::sync::Arc;

/// What one model cell produces: its display name, per-tau accuracy, and
/// (for the B2W set) the calibrated inflation factor.
struct ModelEval {
    name: String,
    acc: Vec<HorizonAccuracy>,
    inflation: Option<f64>,
}

fn print_table(evals: &[ModelEval], taus: &[usize]) {
    print!("{:<16}", "model");
    for tau in taus {
        print!(" {:>9}", format!("tau={tau}"));
    }
    println!();
    for e in evals {
        print!("{:<16}", e.name);
        for a in &e.acc {
            print!(" {:>8.1}%", 100.0 * a.mre);
        }
        println!();
    }
}

/// Builds one cell that fits `make_model` and evaluates it with the
/// rolling-origin protocol (plus, optionally, the inflation calibration
/// at `inflation_tau`).
fn model_cell(
    data: Arc<Vec<f64>>,
    taus: Vec<usize>,
    cfg: EvalConfig,
    inflation_tau: Option<usize>,
    make_model: impl FnOnce(&[f64]) -> Box<dyn LoadPredictor> + Send + 'static,
) -> Cell<ModelEval> {
    Cell::new("model", move || {
        let m = make_model(&data);
        let acc = rolling_accuracy(m.as_ref(), &data, &taus, &cfg);
        let inflation =
            inflation_tau.map(|tau| suggest_inflation(m.as_ref(), &data, tau, 0.95, &cfg));
        ModelEval {
            name: m.name().to_string(),
            acc,
            inflation,
        }
    })
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let stride = if quick { 101 } else { 31 };
    let fit_stride = if quick { 8 } else { 3 };

    let load = B2wLoadModel::default().generate(if quick { 30 } else { 35 });
    let data: Arc<Vec<f64>> = Arc::new(load.values().to_vec());
    let train = 28 * 1440;
    let cfg = EvalConfig {
        eval_start: train,
        origin_stride: stride,
    };
    let b2w_taus = vec![10usize, 30, 60];

    // One cell per (workload, model): each fits on the training prefix and
    // rolls through the evaluation window independently.
    let mut cells: Vec<Cell<ModelEval>> = Vec::new();
    type MakeModel = Box<dyn FnOnce(&[f64]) -> Box<dyn LoadPredictor> + Send>;
    let b2w_models: Vec<MakeModel> = vec![
        Box::new(move |data: &[f64]| {
            Box::new(SparModel::fit(&data[..train], &SparConfig::b2w_default()).expect("SPAR"))
                as Box<dyn LoadPredictor>
        }),
        Box::new(move |data: &[f64]| {
            Box::new(
                ArmaModel::fit(
                    &data[..train],
                    &ArmaConfig {
                        p: 30,
                        q: 10,
                        long_ar_order: Some(60),
                        ridge_lambda: 1e-4,
                        stride: fit_stride,
                    },
                )
                .expect("ARMA"),
            )
        }),
        Box::new(move |data: &[f64]| {
            Box::new(
                ArModel::fit(
                    &data[..train],
                    &ArConfig {
                        order: 30,
                        ridge_lambda: 1e-4,
                        stride: fit_stride,
                    },
                )
                .expect("AR"),
            )
        }),
        Box::new(move |data: &[f64]| {
            Box::new(
                HoltWintersModel::fit(&data[..train], &HoltWintersConfig::default()).expect("HW"),
            )
        }),
        Box::new(|_: &[f64]| Box::new(SeasonalNaive::new(1440)) as Box<dyn LoadPredictor>),
    ];
    let n_b2w = b2w_models.len();
    for make in b2w_models {
        cells.push(model_cell(
            Arc::clone(&data),
            b2w_taus.clone(),
            cfg.clone(),
            Some(60),
            make,
        ));
    }

    let wiki = WikipediaLoadModel::new(WikipediaEdition::German, 2016).generate(if quick {
        42
    } else {
        56
    });
    let wdata: Arc<Vec<f64>> = Arc::new(wiki.values().to_vec());
    let wtrain = 28 * 24;
    let wcfg = EvalConfig {
        eval_start: wtrain,
        origin_stride: 1,
    };
    let wiki_taus = vec![1usize, 3, 6];
    let wiki_models: Vec<MakeModel> = vec![
        Box::new(move |data: &[f64]| {
            let spar_cfg = SparConfig {
                period: 24,
                n_periods: 7,
                m_recent: 12,
                taus: vec![1, 2, 3, 4, 5, 6],
                ridge_lambda: 1e-4,
                max_rows: 20_000,
            };
            Box::new(SparModel::fit(&data[..wtrain], &spar_cfg).expect("SPAR"))
                as Box<dyn LoadPredictor>
        }),
        Box::new(move |data: &[f64]| {
            Box::new(
                HoltWintersModel::fit(
                    &data[..wtrain],
                    &HoltWintersConfig {
                        period: 24,
                        ..HoltWintersConfig::default()
                    },
                )
                .expect("HW"),
            )
        }),
        Box::new(|_: &[f64]| Box::new(SeasonalNaive::new(24)) as Box<dyn LoadPredictor>),
    ];
    for make in wiki_models {
        cells.push(model_cell(
            Arc::clone(&wdata),
            wiki_taus.clone(),
            wcfg.clone(),
            None,
            make,
        ));
    }

    let sweep = Sweep::from_reporter(&reporter);
    reporter.progress(&format!(
        "fitting and evaluating {} model/workload cells on {} thread(s)...",
        cells.len(),
        sweep.threads().min(cells.len())
    ));
    let evals = sweep.run(cells);
    let (b2w_evals, wiki_evals) = evals.split_at(n_b2w);

    section("B2W-style load (per-minute, daily period): MRE by tau");
    print_table(b2w_evals, &b2w_taus);

    section("Calibrated prediction inflation (95th percentile coverage)");
    // What §8.2's fixed 15% buys: the factor each model would actually need
    // for 95% of actuals to fall under inflated predictions at tau = 60.
    for e in b2w_evals {
        println!(
            "{:<16} needs x{:.3} (paper's fixed inflation: x1.150)",
            e.name,
            e.inflation.unwrap_or(f64::NAN)
        );
    }

    section("Wikipedia-style hourly load (German edition): MRE by tau (hours)");
    print_table(wiki_evals, &wiki_taus);

    println!();
    println!("Expected: SPAR leads on both workloads (multiple previous");
    println!("periods + transient offsets); Holt-Winters is the strongest");
    println!("classical baseline; plain AR/ARMA trail at long horizons; the");
    println!("seasonal-naive floor shows how much of the signal is pure");
    println!("periodicity.");

    reporter.finish();
}
