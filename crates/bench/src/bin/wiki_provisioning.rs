//! Extension experiment: P-Store on a *different* workload. The paper
//! uses Wikipedia only to validate SPAR's predictions (§5) and argues the
//! provisioning techniques "are general and can be applied to any
//! partitioned DBMS" (§6) — this binary closes the loop by actually
//! provisioning for a Wikipedia-like load: hourly page views upsampled to
//! minutes, served by the same cluster model, P-Store vs reactive vs
//! static.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::params::SystemParams;
use pstore_forecast::generators::{WikipediaEdition, WikipediaLoadModel};
use pstore_sim::fast::{run_fast, FastSimConfig, FastSimResult};
use pstore_sim::scenarios::{pstore_spar_fast, reactive_fast, static_alloc};

/// Upsamples an hourly series to per-minute by linear interpolation.
fn upsample_hourly(hourly: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(hourly.len() * 60);
    for w in hourly.windows(2) {
        for m in 0..60 {
            let f = m as f64 / 60.0;
            out.push(w[0] * (1.0 - f) + w[1] * f);
        }
    }
    if let Some(&last) = hourly.last() {
        out.extend(std::iter::repeat_n(last, 60));
    }
    out
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let train_days = 28;
    let eval_days = if quick { 7 } else { 28 };

    for (edition, name) in [
        (WikipediaEdition::English, "English-like"),
        (WikipediaEdition::German, "German-like"),
    ] {
        let hourly = WikipediaLoadModel::new(edition, 77).generate(train_days + eval_days);
        // Scale so the evaluation peak needs ~9 machines at Q-hat: page
        // views per hour become transactions per second.
        let eval_start_h = train_days * 24;
        let peak = hourly.values()[eval_start_h..]
            .iter()
            .copied()
            .fold(0.0, f64::max);
        let scale = 3_100.0 / peak;
        let minutes: Vec<f64> = upsample_hourly(hourly.values())
            .into_iter()
            .map(|v| v * scale)
            .collect();
        let train = &minutes[..train_days * 1440];
        let eval = &minutes[train_days * 1440..];

        let params = SystemParams::b2w_paper();
        let cfg = FastSimConfig {
            params: params.clone(),
            slot_duration_s: 60.0,
            tick_every_slots: 5,
            record_timeline: false,
            prov_events: false,
        };

        section(&format!(
            "Wikipedia provisioning ({name}): {eval_days} days, peak 3100 txn/s"
        ));
        println!(
            "{:<22} {:>12} {:>14} {:>8}",
            "strategy", "avg machines", "% time short", "moves"
        );
        let row = |label: &str, r: FastSimResult| {
            println!(
                "{label:<22} {:>12.2} {:>14.3} {:>8}",
                r.avg_machines(),
                r.pct_insufficient(),
                r.reconfigurations
            );
        };
        row(
            "P-Store (SPAR)",
            run_fast(
                &cfg,
                eval,
                &mut pstore_spar_fast(train, eval[0], &params, params.q),
            ),
        );
        row(
            "Reactive (10% buf)",
            run_fast(&cfg, eval, &mut reactive_fast(eval[0], &params, 0.10)),
        );
        row("Static 10", run_fast(&cfg, eval, &mut static_alloc(10)));
        row("Static 6", run_fast(&cfg, eval, &mut static_alloc(6)));
    }

    println!();
    println!("Reading: P-Store generalises — zero shortfall at ~70% of the");
    println!("peak-static machines on both editions. Note how much smaller");
    println!("the win is than on B2W: Wikipedia's diurnal swing is ~1.9x");
    println!("(not 10x), so there is simply less capacity to harvest, and");
    println!("the shallow ramps mean even the reactive baseline rarely gets");
    println!("caught out — prediction pays in proportion to load dynamism,");
    println!("which is why the paper targets online retail.");

    reporter.finish();
}
