//! Fig 3: the goal of the predictive elasticity algorithm — a series of
//! moves from 2 machines at t = 0 to 4 machines at t = 9 such that
//! capacity always exceeds predicted demand and cost is minimised.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::cost_model::cap;
use pstore_core::planner::{Planner, PlannerConfig};

fn main() {
    let reporter = RunReporter::from_args();
    let q = 100.0;
    let planner = Planner::new(PlannerConfig {
        q,
        d_intervals: 6.0,
        partitions_per_node: 1,
        max_machines: 8,
    });

    // A rising demand over T = 9 intervals, as in the schematic: starts
    // comfortable for 2 machines, ends needing 4.
    let load = vec![
        150.0, 150.0, 160.0, 180.0, 210.0, 250.0, 300.0, 340.0, 370.0, 390.0,
    ];

    section("Fig 3: predicted load over T = 9 intervals (Q = 100/machine)");
    println!("{:>4} {:>10} {:>10}", "t", "load", "needs");
    for (t, l) in load.iter().enumerate() {
        println!("{t:>4} {l:>10.0} {:>10.0}", (l / q).ceil());
    }

    let plan = planner
        .best_moves(&load, 2)
        .expect("the schematic scenario is feasible");
    section("Optimal series of moves (Algorithm 1)");
    for m in plan.moves() {
        println!("  {m}");
    }
    println!();
    println!("final machines : {}", plan.final_machines().unwrap());
    planner
        .verify_feasible(&plan, &load)
        .expect("plan feasible");

    // Effective capacity trace under the plan (Eq 7 during moves).
    section("Effective capacity vs demand under the plan");
    println!("{:>4} {:>10} {:>12}", "t", "load", "eff-capacity");
    println!("{:>4} {:>10.0} {:>12.0}", 0, load[0], cap(2, q));
    for m in plan.moves() {
        let dur = m.duration();
        for i in 1..=dur {
            let t = m.start + i;
            let capacity = pstore_core::cost_model::eff_cap(m.from, m.to, i as f64 / dur as f64, q);
            println!("{t:>4} {:>10.0} {capacity:>12.0}", load[t]);
        }
    }
    println!("\n(the planner delays the scale-out as long as the migration");
    println!(" time allows, which minimises total machine-intervals)");

    reporter.finish();
}
