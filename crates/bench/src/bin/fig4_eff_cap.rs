//! Fig 4: machines allocated and effective capacity during the three
//! migration strategies — 3 -> 5 (all at once), 3 -> 9 (just-in-time
//! blocks), 3 -> 14 (three phases). One partition per server, time in
//! units of `D`.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::cost_model::{avg_machines_allocated, move_time};
use pstore_core::schedule::MigrationSchedule;

fn main() {
    let reporter = RunReporter::from_args();
    let q = 1.0; // capacity in machine-equivalents, as plotted in the paper
    for (b, a, label) in [
        (
            3u32,
            5u32,
            "Case 1: 3 -> 5 machines (all new machines at once)",
        ),
        (3, 9, "Case 2: 3 -> 9 machines (just-in-time blocks of 3)"),
        (3, 14, "Case 3: 3 -> 14 machines (three phases)"),
    ] {
        section(label);
        let schedule = MigrationSchedule::plan(b, a);
        let traj = schedule.trajectory(1, 1.0, q);
        println!(
            "{:>10} {:>10} {:>18} {:>10}",
            "time (D)", "machines", "eff-capacity (mach)", "round"
        );
        for (i, pt) in traj.iter().enumerate() {
            println!(
                "{:>10.4} {:>10} {:>18.2} {:>10}",
                pt.time,
                pt.machines,
                pt.effective_capacity,
                if i < schedule.total_rounds() {
                    i.to_string()
                } else {
                    "end".into()
                }
            );
        }
        println!();
        println!(
            "move time T({b},{a})        : {:.4} D  (Eq 3)",
            move_time(b, a, 1, 1.0)
        );
        println!(
            "avg machines allocated  : {:.3}    (Algorithm 4)",
            avg_machines_allocated(b, a)
        );
        println!(
            "schedule-derived average: {:.3}    (must match)",
            schedule.avg_machines()
        );
        println!("rounds                  : {}", schedule.total_rounds());
    }
    println!();
    println!("Note how in case 3 the machines-allocated staircase runs well");
    println!("ahead of effective capacity: planning against raw allocation");
    println!("instead of Eq 7 would underprovision (the point of Fig 4c).");

    reporter.finish();
}
