//! Fig 11: reaction to an unexpected load spike — when no feasible plan
//! exists, P-Store scales out reactively either at the regular migration
//! rate `R` (longer under-capacity, milder interference) or at `R x 8`
//! (capacity sooner, higher transient latency). The paper finds `R x 8`
//! has a higher average latency at the start of the spike but fewer total
//! violation seconds (50th/95th/99th: 16/101/143 at `R`, 22/44/51 at
//! `R x 8`).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot, section, RunReporter};
use pstore_core::controller::forecaster::SparForecaster;
use pstore_core::controller::pstore::PStoreConfig;
use pstore_core::controller::pstore::PStoreController;
use pstore_core::cost_model::machines_for_load;
use pstore_core::params::SystemParams;
use pstore_forecast::generators::{day_with_unexpected_spike, B2wLoadModel};
use pstore_sim::detailed::{run_detailed, DetailedSimConfig};
use pstore_sim::scenarios::{
    compress_minutes, compressed_planner, per_tick, tick_spar_config, PEAK_TXN_RATE, TICKS_PER_DAY,
    TRAINING_DAYS,
};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let seed = 0x5B1C;

    // Training data: ordinary days. Evaluation: a day with a large spike
    // the predictor has never seen (a September 2016-style flash crowd).
    let train = B2wLoadModel {
        seed,
        ..B2wLoadModel::default()
    }
    .generate(TRAINING_DAYS);
    // The spike hits at 08:00, when the predictively-provisioned cluster
    // is still small (3-4 machines): the emergency scale-out is then a
    // *large* move whose duration depends strongly on the migration rate —
    // the regime of the paper's September 2016 flash crowd. The surge peak
    // (~3000 txn/s at its worst) is servable by the full 10-machine cluster.
    let spike_day = day_with_unexpected_spike(seed, 7 * 60, 15, 180, 2.6);
    let peak_normal = train.values()[train.len() - 1440..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scale = PEAK_TXN_RATE / peak_normal;

    let train_scaled: Vec<f64> = train.values().iter().map(|v| v * scale).collect();
    let eval_minutes: Vec<f64> = spike_day.values().iter().map(|v| v * scale).collect();
    let eval_minutes = if quick {
        eval_minutes[6 * 60..13 * 60].to_vec() // window around the spike
    } else {
        eval_minutes
    };
    let wall = compress_minutes(&eval_minutes);

    section("Fig 11: offered load with the unexpected spike (txn/s)");
    println!("{}", ascii_plot(&wall, 96, 10));

    let params = SystemParams::b2w_paper();
    let mut table = Vec::new();
    for (label, rate) in [("Rate R", 1.0), ("Rate R x 8", 8.0)] {
        let mut forecaster =
            SparForecaster::new(tick_spar_config(), 7 * TICKS_PER_DAY, 40 * TICKS_PER_DAY);
        forecaster.seed(&per_tick(&train_scaled));
        let initial = machines_for_load(eval_minutes[0] * 1.15, params.q).clamp(1, 10);
        let mut strat = PStoreController::new(
            compressed_planner(&params, params.q),
            forecaster,
            PStoreConfig {
                horizon: 48,
                prediction_inflation: 1.15,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: rate,
                initial_machines: initial,
            },
        );
        let mut cfg = DetailedSimConfig::paper_defaults(wall.clone(), seed);
        if quick {
            cfg.workload.num_skus = 2_000;
            cfg.workload.initial_carts = 600;
            cfg.num_slots = 3_600;
        }
        let r = run_detailed(&cfg, &mut strat);

        section(&format!("Fig 11 ({label}): p99 latency (ms)"));
        let p99: Vec<f64> = r.seconds.iter().map(|s| s.p99 * 1000.0).collect();
        println!("{}", ascii_plot(&p99, 96, 8));
        println!(
            "violations 50th/95th/99th: {}/{}/{}   emergencies: {}   moves: {}",
            r.violations.p50,
            r.violations.p95,
            r.violations.p99,
            strat.stats().emergency_moves,
            r.reconfig_spans.len()
        );
        table.push((label, r.violations, strat.stats().emergency_moves));
    }

    section("Fig 11 summary: violation seconds by migration rate");
    println!("{:<12} {:>8} {:>8} {:>8}", "rate", "50th", "95th", "99th");
    for (label, v, _) in &table {
        println!("{label:<12} {:>8} {:>8} {:>8}", v.p50, v.p95, v.p99);
    }
    println!();
    println!("paper: R -> 16/101/143, R x 8 -> 22/44/51 (faster migration");
    println!("hurts more at the start of the spike but violates for fewer");
    println!("total seconds).");
    let (_, slow, _) = &table[0];
    let (_, fast, _) = &table[1];
    if fast.p99 < slow.p99 {
        println!("shape reproduced: R x 8 ends with fewer 99th-pct violations.");
    } else {
        println!("WARNING: R x 8 did not win on p99 violations on this seed.");
    }

    reporter.finish();
}
