//! Fig 1: load on one of B2W's databases over three days — the diurnal
//! wave with a ~10x peak-to-trough ratio that motivates elastic
//! provisioning.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot, section, RunReporter};
use pstore_forecast::generators::B2wLoadModel;

fn main() {
    let reporter = RunReporter::from_args();
    section("Fig 1: three days of B2W-style load (requests/min)");
    let load = B2wLoadModel::default().generate(3);
    println!("{}", ascii_plot(load.values(), 96, 14));

    let smoothed = load.smoothed(31);
    println!("samples      : {}", load.len());
    println!("peak         : {:>10.0} req/min", load.max());
    println!("trough       : {:>10.0} req/min", load.min());
    println!(
        "peak/trough  : {:>10.1}x (smoothed {:.1}x; paper: ~10x)",
        load.max() / load.min().max(1.0),
        smoothed.max() / smoothed.min().max(1.0)
    );
    // Workload characterisation: how much of the variance the daily
    // pattern explains (this is what makes SPAR viable, §5).
    let hourly = load.downsample_mean(60);
    let decomp = pstore_forecast::decompose::decompose(hourly.values(), 24);
    println!(
        "seasonal strength (daily, hourly samples): {:.3}  trend: {:.3}",
        decomp.seasonal_strength(),
        decomp.trend_strength()
    );
    for day in 0..3 {
        let d = load.slice(day * 1440, (day + 1) * 1440);
        let peak_min = d
            .values()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        println!(
            "day {day}: mean {:>8.0}  peak {:>8.0} at {:02}:{:02}",
            d.mean(),
            d.max(),
            peak_min / 60,
            peak_min % 60
        );
    }

    reporter.finish();
}
