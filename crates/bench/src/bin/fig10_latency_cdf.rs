//! Fig 10: CDFs of the top 1% of per-second 50th/95th/99th percentile
//! latencies for the four elasticity approaches (same runs as Fig 9).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::fig9::{run_all_sweep, Fig9Config};
use pstore_bench::sweep::Sweep;
use pstore_bench::{section, RunReporter};
use pstore_sim::latency::{cdf_points, top_fraction};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let cfg = Fig9Config {
        days: if quick { 1 } else { 3 },
        seed: 0x0709,
        quick,
        shards: pstore_sim::detailed::shards_from_env(),
    };
    reporter.progress("running the Fig 9 comparison to derive the CDFs...");
    let (_, results) = run_all_sweep(&cfg, &Sweep::from_reporter(&reporter));

    for (name, pick) in [("50th", 0usize), ("95th", 1), ("99th", 2)] {
        section(&format!(
            "Fig 10: CDF of the top 1% of per-second {name}-percentile latency"
        ));
        println!(
            "{:<36} latency (ms) at cumulative prob 0.1 .. 1.0",
            "approach"
        );
        for r in &results {
            let series: Vec<f64> = r
                .seconds
                .iter()
                .map(|s| match pick {
                    0 => s.p50,
                    1 => s.p95,
                    _ => s.p99,
                })
                .collect();
            let top = top_fraction(series, 0.01);
            let cdf = cdf_points(&top, 200);
            let at = |q: f64| -> f64 {
                cdf.iter()
                    .find(|(_, p)| *p >= q)
                    .map(|(v, _)| *v * 1000.0)
                    .unwrap_or(f64::NAN)
            };
            print!("{:<36}", r.strategy);
            for dec in 1..=10 {
                print!(" {:>7.0}", at(dec as f64 / 10.0));
            }
            println!();
        }
    }
    println!();
    println!("Reading: curves higher/left are better. Expected ordering");
    println!("(paper): static-10 best; P-Store close behind; static-4 beats");
    println!("P-Store only at the 50th percentile; reactive worst at every");
    println!("percentile because it reconfigures at peak capacity.");

    reporter.finish();
}
