//! Telemetry smoke run: a small detailed simulation under the predictive
//! controller, exercising every instrumented code path — reconfiguration
//! spans, chunk moves, planner invocations, scale decisions, per-second
//! snapshots, skew samples and forecaster events — so that CI can verify
//! the emitted JSONL trace with `pstore-trace`.
//!
//! Run with `cargo run -p pstore-bench --features telemetry --bin
//! telemetry_smoke -- --trace /tmp/smoke.jsonl`, then `pstore-trace
//! /tmp/smoke.jsonl` (exits non-zero on parse errors or unmatched spans).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{section, RunReporter};
use pstore_core::controller::forecaster::SparForecaster;
use pstore_core::controller::pstore::{PStoreConfig, PStoreController};
use pstore_core::controller::{forecaster::OracleForecaster, LoadForecaster};
use pstore_core::params::SystemParams;
use pstore_core::planner::{Planner, PlannerConfig};
use pstore_forecast::spar::SparConfig;
use pstore_sim::detailed::{per_interval_load, run_detailed, DetailedSimConfig};
use std::time::Duration;

fn main() {
    let reporter = RunReporter::from_args();

    // A load step that forces one scale-out and, after the drop, one
    // scale-in — two full reconfiguration spans in the trace.
    let mut load = vec![250.0; 120];
    load.extend(vec![750.0; 150]);
    load.extend(vec![250.0; 180]);
    let cfg = DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: load.clone(),
        seed: 0x5710,
        workload: pstore_b2w::generator::WorkloadConfig {
            num_skus: 4_000,
            initial_carts: 800,
            ..pstore_b2w::generator::WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 20_000,
        txn_sample_every: 0,
        shards: 1,
        shard_spans: false,
        prov_events: false,
    };

    reporter.progress("running a small detailed simulation under P-Store...");
    let per_interval = per_interval_load(&cfg.load, cfg.monitor_interval_s);
    let planner = Planner::new(PlannerConfig {
        q: 285.0,
        d_intervals: 10.0,
        partitions_per_node: 6,
        max_machines: 10,
    });
    let mut strat = PStoreController::new(
        planner,
        OracleForecaster::new(per_interval),
        PStoreConfig {
            horizon: 10,
            prediction_inflation: 1.0,
            scale_in_confirmations: 2,
            emergency_rate_multiplier: 1.0,
            initial_machines: 1,
        },
    );
    let r = run_detailed(&cfg, &mut strat);

    // The oracle forecaster above never trains a model, so exercise the
    // online SPAR life-cycle separately to put `forecast_retrain` /
    // `forecast_predict` events into the same trace.
    reporter.progress("exercising the online SPAR forecaster...");
    let spar_cfg = SparConfig {
        period: 24,
        n_periods: 2,
        m_recent: 4,
        taus: vec![1, 2],
        ridge_lambda: 1e-6,
        max_rows: 2_000,
    };
    let mut spar = SparForecaster::new(spar_cfg, 24, 10_000);
    let signal: Vec<f64> = (0..24 * 10)
        .map(|i| 400.0 + 150.0 * (2.0 * std::f64::consts::PI * (i % 24) as f64 / 24.0).sin())
        .collect();
    spar.seed(&signal);
    let forecast = spar.forecast(12).expect("seeded SPAR must forecast");

    section("telemetry smoke run");
    println!(
        "simulated {} s: {} reconfigurations, {} committed, {} p99 SLA-violation s",
        r.seconds.len(),
        r.reconfig_spans.len(),
        r.committed,
        r.violations.p99,
    );
    println!(
        "SPAR forecast over 12 intervals peaks at {:.0} txn/s",
        forecast.iter().copied().fold(0.0, f64::max)
    );
    assert!(
        !r.reconfig_spans.is_empty(),
        "smoke run must reconfigure at least once"
    );

    // With `--expose-metrics <port>` (0 = ephemeral), scrape the live
    // endpoint once and check it serves well-formed Prometheus text with
    // the counters the run above must have bumped.
    if let Some(addr) = reporter.metrics_addr() {
        let body = pstore_telemetry::expose::scrape(addr).expect("scrape live metrics");
        for line in body.lines() {
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (name, value) = line.rsplit_once(' ').expect("metric line has a value");
            assert!(
                name.starts_with("pstore_"),
                "unexpected metric family: {line}"
            );
            assert!(value.parse::<f64>().is_ok(), "non-numeric sample: {line}");
        }
        if cfg!(feature = "telemetry") {
            assert!(
                body.contains("pstore_reconfigurations_total"),
                "exposition is missing the reconfiguration counter:\n{body}"
            );
        }
        println!(
            "scraped {} bytes of Prometheus text from {addr}",
            body.len()
        );
    }

    reporter.finish();
}
