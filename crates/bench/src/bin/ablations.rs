//! Ablation studies of P-Store's design choices (DESIGN.md §6): each run
//! disables one mechanism and measures what it was buying, over a month of
//! synthetic B2W load on the slot-based simulator.
//!
//! 1. **Dynamic program vs greedy lookahead** — the DP delays scale-outs
//!    to the latest feasible start and schedules staged moves; greedy
//!    provisions for the horizon peak immediately.
//! 2. **Effective-capacity awareness (Eq 7)** — the naive planner believes
//!    a move grants `cap(A)` instantly and therefore starts big moves too
//!    late (Fig 4c's warning).
//! 3. **Scale-in confirmation** — requiring three consecutive proposals
//!    before shrinking suppresses churn from noisy predictions.
//! 4. **Planning-horizon length** — too short cannot cover a full move;
//!    longer horizons buy little beyond ~2 moves of lookahead (§5).

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::sweep::{Cell, Sweep};
use pstore_bench::{section, RunReporter};
use pstore_core::controller::pstore::PStoreConfig;
use pstore_core::controller::pstore::PStoreController;
use pstore_core::cost_model::machines_for_load;
use pstore_core::params::SystemParams;
use pstore_core::planner::{Planner, PlannerConfig, PlannerOptions};
use pstore_forecast::generators::B2wLoadModel;
use pstore_sim::fast::{run_fast, FastSimConfig, FastSimResult};
use pstore_sim::scenarios::{
    greedy_fast, per_tick, pstore_spar_fast, tick_spar_config, PEAK_TXN_RATE, TICKS_PER_DAY,
    TRAINING_DAYS,
};
use std::sync::Arc;

fn row(label: &str, r: &FastSimResult) {
    println!(
        "{label:<44} {:>10.2} {:>12.3} {:>8}",
        r.avg_machines(),
        r.pct_insufficient(),
        r.reconfigurations
    );
}

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let eval_days = if quick { 10 } else { 28 };
    let raw = B2wLoadModel {
        seed: 0xAB1A,
        ..B2wLoadModel::default()
    }
    .generate(TRAINING_DAYS + eval_days);
    let eval_start = TRAINING_DAYS * 1440;
    let peak = raw.values()[eval_start..]
        .iter()
        .copied()
        .fold(0.0, f64::max);
    let scaled = raw.scaled(PEAK_TXN_RATE / peak);
    let train: Arc<Vec<f64>> = Arc::new(scaled.values()[..eval_start].to_vec());
    let eval: Arc<Vec<f64>> = Arc::new(scaled.values()[eval_start..].to_vec());

    let params = SystemParams::b2w_paper();
    let cfg = FastSimConfig {
        params: params.clone(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: false,
        prov_events: false,
    };
    let planner_cfg = PlannerConfig {
        q: params.q,
        d_intervals: params.d.as_secs_f64() / 300.0,
        partitions_per_node: params.partitions_per_node,
        max_machines: params.max_machines,
    };

    // Every ablation run is an independent fast-sim cell; fan them all
    // out together and print the sections from the collected results.
    let mut cells: Vec<Cell<FastSimResult>> = Vec::new();

    // Ablation 1: dynamic program vs greedy lookahead.
    {
        let (cfg, params) = (cfg.clone(), params.clone());
        let (train, eval) = (Arc::clone(&train), Arc::clone(&eval));
        cells.push(Cell::new("dp", move || {
            run_fast(
                &cfg,
                &eval,
                &mut pstore_spar_fast(&train, eval[0], &params, params.q),
            )
        }));
    }
    {
        let (cfg, params) = (cfg.clone(), params.clone());
        let (train, eval) = (Arc::clone(&train), Arc::clone(&eval));
        cells.push(Cell::new("greedy", move || {
            run_fast(
                &cfg,
                &eval,
                &mut greedy_fast(&train, eval[0], &params, params.q),
            )
        }));
    }
    // Ablation 2: effective-capacity awareness (Eq 7).
    // With the paper's P = 6, moves take only minutes and Eq 7 changes
    // little; run this ablation with a single migration stream per machine
    // (P = 1), where moves span 30-60 minutes and mid-flight capacity
    // matters — the regime Fig 4c illustrates.
    let params_p1 = SystemParams {
        partitions_per_node: 1,
        ..params.clone()
    };
    let cfg_p1 = FastSimConfig {
        params: params_p1.clone(),
        ..cfg.clone()
    };
    let planner_cfg_p1 = PlannerConfig {
        partitions_per_node: 1,
        ..planner_cfg.clone()
    };
    // Plan close to the maximum throughput (Q near Q̂) so the buffer does
    // not mask the mid-flight capacity error, use perfect predictions so
    // the only variable is the capacity model, and drive a flash-sale load
    // whose rise (10 minutes) is much faster than a P = 1 move (~50 min):
    // the naive planner lets the move overlap the rise, and mid-flight the
    // real effective capacity falls short.
    let planner_cfg_tight = PlannerConfig {
        q: 335.0,
        ..planner_cfg_p1.clone()
    };
    let flash: Arc<Vec<f64>> = Arc::new(
        pstore_forecast::generators::flash_sale_load(
            eval.len() / 1440,
            800.0,
            2_800.0,
            600,
            10,
            180,
        )
        .values()
        .to_vec(),
    );
    fn oracle_controller(
        flash: &[f64],
        planner: Planner,
    ) -> PStoreController<pstore_core::controller::forecaster::OracleForecaster> {
        let q = planner.config().q;
        PStoreController::new(
            planner,
            pstore_core::controller::forecaster::OracleForecaster::new(
                pstore_sim::scenarios::per_tick(flash),
            ),
            PStoreConfig {
                horizon: 48,
                prediction_inflation: 1.0,
                scale_in_confirmations: 3,
                emergency_rate_multiplier: 1.0,
                initial_machines: machines_for_load(flash[0], q).clamp(1, 10),
            },
        )
    }
    {
        let (cfg_p1, planner_cfg_tight, flash) = (
            cfg_p1.clone(),
            planner_cfg_tight.clone(),
            Arc::clone(&flash),
        );
        cells.push(Cell::new("eff-cap aware", move || {
            run_fast(
                &cfg_p1,
                &flash,
                &mut oracle_controller(&flash, Planner::new(planner_cfg_tight)),
            )
        }));
    }
    {
        let (cfg_p1, planner_cfg_tight, flash) = (
            cfg_p1.clone(),
            planner_cfg_tight.clone(),
            Arc::clone(&flash),
        );
        cells.push(Cell::new("eff-cap naive", move || {
            run_fast(
                &cfg_p1,
                &flash,
                &mut oracle_controller(
                    &flash,
                    Planner::with_options(
                        planner_cfg_tight,
                        PlannerOptions {
                            effective_capacity_aware: false,
                            jit_allocation_cost: true,
                        },
                    ),
                ),
            )
        }));
    }

    // Ablation 3: scale-in confirmation cycles.
    for confirmations in [1u32, 3] {
        let (cfg, params, planner_cfg) = (cfg.clone(), params.clone(), planner_cfg.clone());
        let (train, eval) = (Arc::clone(&train), Arc::clone(&eval));
        cells.push(Cell::new(format!("confirm {confirmations}"), move || {
            let mut forecaster = pstore_core::controller::forecaster::SparForecaster::new(
                tick_spar_config(),
                7 * TICKS_PER_DAY,
                40 * TICKS_PER_DAY,
            );
            forecaster.seed(&per_tick(&train));
            let mut c = PStoreController::new(
                Planner::new(planner_cfg),
                forecaster,
                PStoreConfig {
                    horizon: 48,
                    prediction_inflation: 1.15,
                    scale_in_confirmations: confirmations,
                    emergency_rate_multiplier: 1.0,
                    initial_machines: machines_for_load(eval[0] * 1.15, params.q).clamp(1, 10),
                },
            );
            run_fast(&cfg, &eval, &mut c)
        }));
    }

    // Ablation 4: planning horizon. §5: the forecast window must cover two
    // maximal reconfigurations (2D/P). With P = 1 the biggest move takes
    // ~12 ticks; horizons below that force emergency fallbacks.
    let horizons = [4usize, 8, 16, 32, 64];
    for horizon in horizons {
        let (cfg_p1, params, planner_cfg_p1) =
            (cfg_p1.clone(), params.clone(), planner_cfg_p1.clone());
        let (train, eval) = (Arc::clone(&train), Arc::clone(&eval));
        cells.push(Cell::new(format!("horizon {horizon}"), move || {
            let mut forecaster = pstore_core::controller::forecaster::SparForecaster::new(
                tick_spar_config(),
                7 * TICKS_PER_DAY,
                40 * TICKS_PER_DAY,
            );
            forecaster.seed(&per_tick(&train));
            let mut c = PStoreController::new(
                Planner::new(planner_cfg_p1),
                forecaster,
                PStoreConfig {
                    horizon,
                    prediction_inflation: 1.15,
                    scale_in_confirmations: 3,
                    emergency_rate_multiplier: 1.0,
                    initial_machines: machines_for_load(eval[0] * 1.15, params.q).clamp(1, 10),
                },
            );
            run_fast(&cfg_p1, &eval, &mut c)
        }));
    }

    let sweep = Sweep::from_reporter(&reporter);
    reporter.progress(&format!(
        "running {} ablation cells on {} thread(s)...",
        cells.len(),
        sweep.threads().min(cells.len())
    ));
    let results = sweep.run(cells);
    let (dp, greedy) = (&results[0], &results[1]);
    let (aware_p1, naive_p1) = (&results[2], &results[3]);

    println!(
        "{:<44} {:>10} {:>12} {:>8}",
        "configuration", "avg mach", "% short", "moves"
    );

    section("Ablation 1: dynamic program vs greedy lookahead");
    row("P-Store DP (paper)", dp);
    row("greedy horizon-peak provisioning", greedy);
    println!(
        "-> the DP saves {:.1}% of machine cost at comparable shortfall",
        100.0 * (1.0 - dp.cost_machine_slots / greedy.cost_machine_slots)
    );

    section("Ablation 2: effective-capacity awareness (Eq 7)");
    row("eff-cap aware, P=1 (paper algorithm)", aware_p1);
    row("naive: moves grant cap(A) instantly, P=1", naive_p1);
    println!(
        "-> ignoring Eq 7 leaves the system short {:.3}% of the time vs {:.3}%",
        naive_p1.pct_insufficient(),
        aware_p1.pct_insufficient()
    );

    section("Ablation 3: scale-in confirmation cycles");
    for (i, confirmations) in [1u32, 3].into_iter().enumerate() {
        row(
            &format!(
                "{confirmations} confirmation(s){}",
                if confirmations == 3 { " (paper)" } else { "" }
            ),
            &results[4 + i],
        );
    }
    println!("-> fewer confirmations = more churn (extra moves) for the same capacity");

    section("Ablation 4: planning horizon (ticks of 5 min, P = 1)");
    for (i, horizon) in horizons.into_iter().enumerate() {
        row(&format!("horizon {horizon}"), &results[6 + i]);
    }
    println!("-> the horizon must cover ~two maximal moves (2D/P, §5);");
    println!("   beyond that, receding-horizon replanning makes extra");
    println!("   lookahead redundant.");

    reporter.finish();
}
