//! Fig 9: the elasticity comparison — throughput, latency and machines
//! allocated over three days of B2W traffic (10x speed) under static-10,
//! static-4, reactive and P-Store provisioning. Also prints the Fig 10
//! CDF summary and Table 2, which are derived from the same runs.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::fig9::{run_all_sweep, Fig9Config};
use pstore_bench::sweep::Sweep;
use pstore_bench::{ascii_plot, ascii_plot2, hms, section, RunReporter};
use pstore_sim::latency::{cdf_points, top_fraction, SLA_THRESHOLD_S};

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    let cfg = Fig9Config {
        days: if quick { 1 } else { 3 },
        seed: 0x0709,
        quick,
        shards: pstore_sim::detailed::shards_from_env(),
    };
    let sweep = Sweep::from_reporter(&reporter);
    reporter.progress(&format!(
        "running {} day(s) x 4 approaches on {} thread(s) (this is the paper's 7.2-hour experiment)...",
        cfg.days,
        sweep.threads().min(4)
    ));
    let (trace, results) = run_all_sweep(&cfg, &sweep);

    // Plot-friendly dumps: one per-second CSV per approach.
    for r in &results {
        let slug: String = r
            .strategy
            .to_lowercase()
            .chars()
            .map(|c| if c.is_alphanumeric() { c } else { '_' })
            .collect();
        let path = std::path::PathBuf::from(format!("results/fig9_{slug}.csv"));
        let rows = r.seconds.iter().map(|s| {
            vec![
                s.second as f64,
                s.throughput as f64,
                s.p50,
                s.p95,
                s.p99,
                s.machines,
                f64::from(u8::from(s.reconfiguring)),
            ]
        });
        if let Err(e) = pstore_bench::write_csv(
            &path,
            &[
                "second",
                "throughput",
                "p50",
                "p95",
                "p99",
                "machines",
                "reconfiguring",
            ],
            rows,
        ) {
            eprintln!("could not write {}: {e}", path.display());
        } else {
            reporter.progress(&format!("wrote {}", path.display()));
        }
    }

    section("Offered load (txn/s, trace compressed 10x)");
    println!("{}", ascii_plot(&trace.wall_seconds, 96, 10));

    for r in &results {
        section(&format!("Fig 9: {}", r.strategy));
        let thr: Vec<f64> = r.seconds.iter().map(|s| s.throughput as f64).collect();
        let machines_cap: Vec<f64> = r.seconds.iter().map(|s| s.machines * 350.0).collect();
        println!("throughput (#) vs allocated capacity Q̂*machines (*):");
        println!("{}", ascii_plot2(&thr, &machines_cap, 96, 10));
        let p99ms: Vec<f64> = r.seconds.iter().map(|s| s.p99 * 1000.0).collect();
        println!("p99 latency (ms):");
        println!("{}", ascii_plot(&p99ms, 96, 8));
        println!(
            "reconfigurations: {}   avg machines: {:.2}   committed txns: {}",
            r.reconfig_spans.len(),
            r.avg_machines,
            r.committed
        );
        if !r.reconfig_spans.is_empty() {
            let spans: Vec<String> = r
                .reconfig_spans
                .iter()
                .map(|(s, e)| format!("{}..{}", hms(*s), hms(*e)))
                .collect();
            println!("moves: {}", spans.join(", "));
        }
    }

    section("Fig 10: CDFs of the top 1% of per-second percentile latencies");
    for (pct, pick) in [("50th", 0usize), ("95th", 1), ("99th", 2)] {
        println!("\n{pct} percentile — latency (ms) at CDF 0.25/0.50/0.75/0.95:");
        println!(
            "{:<36} {:>8} {:>8} {:>8} {:>8}",
            "approach", "25%", "50%", "75%", "95%"
        );
        for r in &results {
            let series: Vec<f64> = r
                .seconds
                .iter()
                .map(|s| match pick {
                    0 => s.p50,
                    1 => s.p95,
                    _ => s.p99,
                })
                .collect();
            let top = top_fraction(series, 0.01);
            let cdf = cdf_points(&top, 100);
            let at = |q: f64| -> f64 {
                cdf.iter()
                    .find(|(_, p)| *p >= q)
                    .map(|(v, _)| *v * 1000.0)
                    .unwrap_or(0.0)
            };
            println!(
                "{:<36} {:>8.0} {:>8.0} {:>8.0} {:>8.0}",
                r.strategy,
                at(0.25),
                at(0.50),
                at(0.75),
                at(0.95)
            );
        }
    }
    println!("\n(lower is better; the reactive approach dominates the tail)");

    section("Table 2: SLA violations (>500 ms) and average machines");
    println!(
        "{:<36} {:>8} {:>8} {:>8} {:>10}",
        "Elasticity Approach", "50th", "95th", "99th", "Avg Mach"
    );
    for r in &results {
        println!(
            "{:<36} {:>8} {:>8} {:>8} {:>10.2}",
            r.strategy, r.violations.p50, r.violations.p95, r.violations.p99, r.avg_machines
        );
    }
    println!();
    println!("paper Table 2:            static-10: 0/13/25 @ 10.00");
    println!("                          static-4 : 0/157/249 @ 4.00");
    println!("                          reactive : 35/220/327 @ 4.02");
    println!("                          P-Store  : 0/37/92 @ 5.05");
    println!();
    let pstore = &results[3];
    let reactive = &results[2];
    let static10 = &results[0];
    if pstore.violations.p99 < reactive.violations.p99
        && pstore.avg_machines < 0.7 * static10.avg_machines
    {
        println!(
            "shape reproduced: P-Store causes {}% fewer p99 violations than \
             reactive at {:.0}% of peak provisioning's machines",
            (100.0 * (reactive.violations.p99 as f64 - pstore.violations.p99 as f64)
                / reactive.violations.p99.max(1) as f64)
                .round(),
            100.0 * pstore.avg_machines / static10.avg_machines
        );
    } else {
        println!("WARNING: headline shape not reproduced on this seed");
    }
    let _ = SLA_THRESHOLD_S;

    reporter.finish();
}
