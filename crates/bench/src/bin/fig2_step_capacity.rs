//! Fig 2: the ideal capacity curve mirrors a sinusoidal demand with a small
//! buffer; the realisable allocation is an integral step function above it.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot2, section, RunReporter};
use pstore_core::cost_model::{cap, machines_for_load};
use pstore_forecast::generators::sine_demand;

fn main() {
    let reporter = RunReporter::from_args();
    let q = 285.0;
    let buffer = 1.10;
    let demand = sine_demand(1440, 1_400.0, 0.8, 1440);

    // Ideal capacity: demand plus buffer. Actual: step function of whole
    // machines sized per interval.
    let ideal: Vec<f64> = demand.values().iter().map(|d| d * buffer).collect();
    let steps: Vec<f64> = ideal
        .iter()
        .map(|d| cap(machines_for_load(*d, q), q))
        .collect();

    section("Fig 2a: ideal capacity (buffered demand) vs demand");
    println!("{}", ascii_plot2(demand.values(), &ideal, 96, 12));

    section("Fig 2b: actual servers allocated (step function) vs demand");
    println!("{}", ascii_plot2(demand.values(), &steps, 96, 12));

    let avg_ideal = ideal.iter().sum::<f64>() / ideal.len() as f64 / q;
    let avg_steps = steps.iter().sum::<f64>() / steps.len() as f64 / q;
    println!("average machine-equivalents, ideal curve : {avg_ideal:.2}");
    println!("average machines, step allocation        : {avg_steps:.2}");
    println!(
        "peak machines                            : {:.0}",
        steps.iter().copied().fold(0.0, f64::max) / q
    );
    println!("(the step function always sits on or above the ideal curve)");
    assert!(steps.iter().zip(&ideal).all(|(s, i)| *s >= *i - 1e-9));

    reporter.finish();
}
