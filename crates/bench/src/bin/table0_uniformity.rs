//! §8.1 parameter discovery: the uniformity check. The paper measures,
//! over 30 partitions and a 24-hour trace, that the most-accessed partition
//! receives only 10.15% more accesses than average (stddev 2.62%) and the
//! largest partition holds 0.185% more data than average (stddev 0.099%),
//! validating the uniform-workload assumption of §4.2.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore_b2w::schema::b2w_catalog;
use pstore_bench::{section, RunReporter};
use pstore_dbms::cluster::{Cluster, ClusterConfig};
use pstore_dbms::stats::SkewSummary;

fn main() {
    let reporter = RunReporter::from_args();
    let quick = reporter.quick();
    // 30 partitions = 5 nodes x 6 partitions, as in the paper's check.
    let mut cluster = Cluster::new(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: 6,
            num_slots: 7_200,
        },
        5,
    );
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        num_skus: if quick { 5_000 } else { 20_000 },
        initial_carts: if quick { 1_500 } else { 6_000 },
        ..WorkloadConfig::default()
    });
    for p in gen.seed_stock_procedures() {
        cluster.execute(&p).expect("stock seeding");
    }
    for t in gen.initial_load() {
        cluster.execute(&t).expect("initial carts");
    }

    // A 24-hour-equivalent sample of transactions.
    let txns = if quick { 300_000 } else { 3_000_000 };
    reporter.progress(&format!(
        "executing {txns} transactions over 30 partitions..."
    ));
    for _ in 0..txns {
        let t = gen.next_txn();
        let _ = cluster.execute(&t);
    }

    // Record the summaries into the telemetry metrics registry under the
    // same `skew.access.*` / `skew.data.*` gauge names the detailed
    // simulator writes every monitor tick, then print by reading the
    // gauges back — the table consumes the recorded telemetry rather than
    // a private recomputation, so this binary doubles as a check of that
    // pathway.
    let report = cluster.partition_report();
    let accesses: Vec<f64> = report.iter().map(|r| r.2 as f64).collect();
    let bytes: Vec<f64> = report.iter().map(|r| r.3 as f64).collect();
    pstore_telemetry::reset_registry();
    pstore_telemetry::with_registry(|reg| {
        let acc = SkewSummary::from_values(&accesses).expect("non-empty report");
        let dat = SkewSummary::from_values(&bytes).expect("non-empty report");
        for (name, value) in acc
            .gauge_entries("skew.access")
            .into_iter()
            .chain(dat.gauge_entries("skew.data"))
        {
            reg.set_gauge(&name, value);
        }
    });
    let gauge = |name: &str| {
        pstore_telemetry::with_registry(|reg| reg.gauge(name))
            .expect("skew gauge was recorded above")
    };

    section("§8.1 uniformity of the B2W workload across 30 partitions");
    println!("{:<28} {:>14} {:>14}", "", "ours", "paper");
    println!(
        "{:<28} {:>13.2}% {:>14}",
        "max accesses over mean",
        100.0 * gauge("skew.access.max_over_mean"),
        "10.15%"
    );
    println!(
        "{:<28} {:>13.2}% {:>14}",
        "stddev of accesses / mean",
        100.0 * gauge("skew.access.stddev_over_mean"),
        "2.62%"
    );
    println!(
        "{:<28} {:>13.2}% {:>14}",
        "max data over mean",
        100.0 * gauge("skew.data.max_over_mean"),
        "0.185%"
    );
    println!(
        "{:<28} {:>13.2}% {:>14}",
        "stddev of data / mean",
        100.0 * gauge("skew.data.stddev_over_mean"),
        "0.099%"
    );
    println!();
    println!("The absolute numbers depend on key population size (the paper");
    println!("had millions of live keys; we synthesise fewer), but both");
    println!("access and data skew stay an order of magnitude below the 40%+");
    println!("hot-partition skew that E-Store/Clay address — validating the");
    println!("uniform-workload assumption for this workload.");

    reporter.finish();
}
