//! Fig 6: SPAR on a workload with different periodicity and predictability
//! — hourly Wikipedia page views, English-like (strongly periodic) and
//! German-like (noisier).
//!
//! (a) 60-min-ahead (1-hour) predictions over a 24-hour window;
//! (b) MRE versus forecasting period tau = 1..6 hours. The paper finds the
//! German series under 10% up to 2 hours and within 13% at 6 hours, always
//! less predictable than English.

// Experiment binary: aborting with a clear message on setup failure is the
// desired behaviour, so `expect`/`unwrap` are permitted here (the workspace
// lint policy only bans them in library code).
#![allow(clippy::expect_used, clippy::unwrap_used)]
use pstore_bench::{ascii_plot2, section, RunReporter};
use pstore_forecast::eval::{rolling_accuracy, EvalConfig};
use pstore_forecast::generators::{WikipediaEdition, WikipediaLoadModel};
use pstore_forecast::model::LoadPredictor;
use pstore_forecast::spar::{SparConfig, SparModel};

fn spar_cfg() -> SparConfig {
    // Hourly data: daily period of 24 slots, n = 7 previous days, offsets
    // over the last 12 hours.
    SparConfig {
        period: 24,
        n_periods: 7,
        m_recent: 12,
        taus: vec![1, 2, 3, 4, 5, 6],
        ridge_lambda: 1e-4,
        max_rows: 20_000,
    }
}

fn main() {
    let reporter = RunReporter::from_args();
    let train_days = 28;
    let eval_days = 28;
    let mut curves = Vec::new();

    for (edition, name) in [
        (WikipediaEdition::English, "English"),
        (WikipediaEdition::German, "German"),
    ] {
        let load = WikipediaLoadModel::new(edition, 2016).generate(train_days + eval_days);
        let data = load.values().to_vec();
        let train_len = train_days * 24;
        let model = SparModel::fit(&data[..train_len], &spar_cfg())
            .unwrap_or_else(|e| panic!("SPAR fit for {name}: {e}"));

        section(&format!(
            "Fig 6a ({name}): actual vs 1-hour-ahead predictions, 24 hours"
        ));
        let start = train_len + 24;
        let mut actual = Vec::new();
        let mut pred = Vec::new();
        for t in start..start + 24 {
            pred.push(model.predict(&data[..t], 1));
            actual.push(data[t]);
        }
        println!("{}", ascii_plot2(&actual, &pred, 72, 10));
        println!(
            "peak load: {:.1}M req/hour (paper: EN ~9-10M, DE ~2-2.5M)",
            actual.iter().copied().fold(0.0, f64::max) / 1e6
        );

        let acc = rolling_accuracy(
            &model,
            &data,
            &[1, 2, 3, 4, 5, 6],
            &EvalConfig::dense(train_len),
        );
        let errs: Vec<f64> = acc.iter().map(|a| 100.0 * a.mre).collect();
        curves.push((name, errs));
    }

    section("Fig 6b: MRE % vs forecasting period tau (hours)");
    println!(
        "{:>12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "edition", "1h", "2h", "3h", "4h", "5h", "6h"
    );
    for (name, errs) in &curves {
        print!("{name:>12}");
        for e in errs {
            print!(" {e:>8.1}");
        }
        println!();
    }
    println!();

    let en = &curves[0].1;
    let de = &curves[1].1;
    let en_worse: usize = (0..6).filter(|&i| en[i] > de[i]).count();
    println!(
        "German less predictable than English at {}/6 horizons (paper: all)",
        6 - en_worse
    );
    println!(
        "German error at 2h: {:.1}% (paper: under 10%); at 6h: {:.1}% (paper: ~13%)",
        de[1], de[5]
    );

    reporter.finish();
}
