//! Microbenchmarks for the partitioned engine: transaction execution
//! throughput on the B2W workload and live-migration chunk throughput.

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pstore_b2w::generator::{WorkloadConfig, WorkloadGenerator};
use pstore_b2w::schema::b2w_catalog;
use pstore_dbms::cluster::{Cluster, ClusterConfig};
use std::hint::black_box;

fn loaded_cluster(nodes: u32) -> (Cluster, WorkloadGenerator) {
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        num_skus: 5_000,
        initial_carts: 1_000,
        ..WorkloadConfig::default()
    });
    let mut cluster = Cluster::new(
        b2w_catalog(),
        ClusterConfig {
            partitions_per_node: 6,
            num_slots: 7_200,
        },
        nodes,
    );
    for p in gen.seed_stock_procedures() {
        cluster.execute(&p).unwrap();
    }
    for t in gen.initial_load() {
        cluster.execute(&t).unwrap();
    }
    (cluster, gen)
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/txn_execution");
    group.throughput(Throughput::Elements(1_000));
    group.sample_size(20);
    group.bench_function("b2w_mix_1k_txns", |b| {
        let (mut cluster, mut gen) = loaded_cluster(3);
        b.iter(|| {
            for _ in 0..1_000 {
                let txn = gen.next_txn();
                let _ = black_box(cluster.execute(&txn));
            }
        })
    });
    group.finish();

    let mut group = c.benchmark_group("engine/migration");
    group.sample_size(10);
    group.bench_function("scale_2_to_4_full", |b| {
        b.iter_with_setup(
            || {
                let (cluster, _) = loaded_cluster(2);
                cluster
            },
            |mut cluster| {
                cluster.begin_reconfiguration(4).unwrap();
                let chunks = cluster
                    .run_reconfiguration_to_completion(64 * 1024)
                    .unwrap();
                black_box(chunks)
            },
        )
    });
    group.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
