//! Microbenchmarks for migration planning: round-schedule construction
//! (§4.4.1, including the phase-3 edge colouring) and slot-plan
//! rebalancing (the §6 Scheduler).

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstore_core::partition_plan::SlotPlan;
use pstore_core::schedule::MigrationSchedule;
use std::hint::black_box;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("schedule/plan");
    for (b_, a) in [(3u32, 14u32), (10, 3), (8, 64), (64, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{b_}->{a}")),
            &(b_, a),
            |bench, &(b_, a)| bench.iter(|| black_box(MigrationSchedule::plan(b_, a))),
        );
    }
    group.finish();

    let mut group = c.benchmark_group("slot_plan/rebalance");
    for slots in [720usize, 7_200, 72_000] {
        let plan = SlotPlan::balanced(4, slots);
        group.bench_with_input(BenchmarkId::from_parameter(slots), &plan, |bench, plan| {
            bench.iter(|| black_box(plan.rebalance_to(9)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedule);
criterion_main!(benches);
