//! Microbenchmark for the B2W workload generator: `next_txn` runs once
//! per simulated transaction, so its cost (and allocation behaviour — see
//! `crates/dbms/tests/warm_path_alloc.rs`) bounds every detailed-sim cell.

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pstore_b2w::generator::{WorkloadConfig, WorkloadGenerator};
use std::hint::black_box;

fn warm_generator() -> WorkloadGenerator {
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        num_skus: 5_000,
        initial_carts: 1_500,
        ..WorkloadConfig::default()
    });
    // Realise the initial carts so the steady-state mix (including
    // checkouts against existing carts) is what gets measured.
    let _ = gen.initial_load();
    gen
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload/generator");
    group.throughput(Throughput::Elements(1_000));
    group.sample_size(30);
    group.bench_function("next_txn_1k", |b| {
        let mut gen = warm_generator();
        b.iter(|| {
            for _ in 0..1_000 {
                black_box(gen.next_txn());
            }
        })
    });
    group.bench_function("initial_load", |b| {
        b.iter(|| {
            let mut gen = WorkloadGenerator::new(WorkloadConfig {
                num_skus: 2_000,
                initial_carts: 500,
                ..WorkloadConfig::default()
            });
            black_box(gen.initial_load())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_workload);
criterion_main!(benches);
