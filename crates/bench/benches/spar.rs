//! Microbenchmarks for the SPAR predictor: fitting over four weeks of
//! per-minute data (the weekly refit cost, §7) and forecasting a full
//! planning horizon (the per-tick prediction cost).

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstore_forecast::generators::B2wLoadModel;
use pstore_forecast::model::LoadPredictor;
use pstore_forecast::spar::{SparConfig, SparModel};
use std::hint::black_box;

fn bench_spar(c: &mut Criterion) {
    let load = B2wLoadModel::default().generate(31);
    let data = load.values();
    let train = &data[..28 * 1440];

    let mut group = c.benchmark_group("spar/fit");
    group.sample_size(10);
    for max_rows in [5_000usize, 20_000] {
        let cfg = SparConfig {
            max_rows,
            ..SparConfig::b2w_default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(max_rows), &cfg, |b, cfg| {
            b.iter(|| black_box(SparModel::fit(black_box(train), cfg).unwrap()))
        });
    }
    group.finish();

    let model = SparModel::fit(train, &SparConfig::b2w_default()).unwrap();
    let mut group = c.benchmark_group("spar/predict_horizon");
    for horizon in [60usize, 180, 360] {
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, &h| {
            b.iter(|| black_box(model.predict_horizon(black_box(data), h)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spar);
criterion_main!(benches);
