//! Microbenchmark for the slot-based long-horizon simulator: one simulated
//! week per strategy (the unit of work behind each Fig 12 point).

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, Criterion};
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_sim::fast::{run_fast, FastSimConfig};
use pstore_sim::scenarios::pstore_oracle_fast;
use std::hint::black_box;

fn weekly_wave() -> Vec<f64> {
    (0..7 * 1440)
        .map(|m| {
            let phase = 2.0 * std::f64::consts::PI * (m % 1440) as f64 / 1440.0;
            1400.0 - 1100.0 * phase.cos()
        })
        .collect()
}

fn bench_fastsim(c: &mut Criterion) {
    let cfg = FastSimConfig {
        params: SystemParams::b2w_paper(),
        slot_duration_s: 60.0,
        tick_every_slots: 5,
        record_timeline: false,
        prov_events: false,
    };
    let load = weekly_wave();

    let mut group = c.benchmark_group("fastsim/one_week");
    group.sample_size(10);
    group.bench_function("static", |b| {
        b.iter(|| {
            let mut s = StaticController::new(6);
            black_box(run_fast(&cfg, black_box(&load), &mut s))
        })
    });
    group.bench_function("pstore_oracle", |b| {
        b.iter(|| {
            let mut s = pstore_oracle_fast(&load, &cfg.params, 285.0);
            black_box(run_fast(&cfg, black_box(&load), &mut s))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_fastsim);
criterion_main!(benches);
