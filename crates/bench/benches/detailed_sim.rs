//! Microbenchmark for the detailed simulator's event loop — the hot path
//! behind every Fig 9 / Table 2 cell: per-second arrival batching,
//! routing-key hashing, engine dispatch, and queue/latency bookkeeping.

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pstore_b2w::generator::WorkloadConfig;
use pstore_core::controller::baselines::StaticController;
use pstore_core::params::SystemParams;
use pstore_sim::detailed::{run_detailed, DetailedSimConfig};
use std::hint::black_box;
use std::time::Duration;

/// A small but representative run: same calibration as the test config in
/// `pstore-sim`, one simulated minute at moderate load.
fn bench_cfg(sim_seconds: usize, load_txn_s: f64, seed: u64) -> DetailedSimConfig {
    DetailedSimConfig {
        params: SystemParams {
            q: 285.0,
            q_hat: 350.0,
            d: Duration::from_secs(300),
            partitions_per_node: 6,
            interval: Duration::from_secs(30),
            max_machines: 10,
        },
        load: vec![load_txn_s; sim_seconds],
        seed,
        workload: WorkloadConfig {
            num_skus: 4_000,
            initial_carts: 800,
            ..WorkloadConfig::default()
        },
        num_slots: 360,
        monitor_interval_s: 30.0,
        service_mean_s: 6.0 / 490.0,
        service_jitter: 0.3,
        chunk_pacing_s: 2.0,
        migration_cpu_fraction: 0.05,
        max_queue_delay_s: 2.0,
        warmup_txns: 5_000,
        txn_sample_every: 0,
        shards: 1,
        shard_spans: false,
        prov_events: false,
    }
}

fn bench_detailed_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("detailed_sim/event_loop");
    group.sample_size(10);

    // ~24k arrivals per iteration: throughput here is simulated txns per
    // wall-clock second, the figure `bench_baseline` tracks over time.
    let cfg = bench_cfg(60, 400.0, 7);
    group.throughput(Throughput::Elements(60 * 400));
    group.bench_function("static4_60s_at_400tps", |b| {
        b.iter(|| {
            let mut strat = StaticController::new(4);
            black_box(run_detailed(black_box(&cfg), &mut strat))
        })
    });

    // Saturated single node: deeper queues, more heap churn per arrival —
    // stresses the drop path and the per-partition busy accounting.
    let hot = bench_cfg(30, 600.0, 11);
    group.throughput(Throughput::Elements(30 * 600));
    group.bench_function("static1_30s_at_600tps", |b| {
        b.iter(|| {
            let mut strat = StaticController::new(1);
            black_box(run_detailed(black_box(&hot), &mut strat))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_detailed_sim);
criterion_main!(benches);
