//! Microbenchmarks for the dynamic-programming planner (Algorithms 1–3):
//! planning cost over horizon length and cluster scale — the per-tick cost
//! of the Predictive Controller's planning step.

#![allow(clippy::expect_used, clippy::unwrap_used)] // benchmark setup aborts loudly
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pstore_core::planner::{Planner, PlannerConfig};
use std::hint::black_box;

fn rising_load(len: usize) -> Vec<f64> {
    (0..len)
        .map(|t| {
            let phase = 2.0 * std::f64::consts::PI * t as f64 / len as f64;
            1500.0 - 1200.0 * phase.cos()
        })
        .collect()
}

fn bench_planner(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner/best_moves");
    for horizon in [12usize, 24, 48, 96] {
        let planner = Planner::new(PlannerConfig {
            q: 285.0,
            d_intervals: 15.5,
            partitions_per_node: 6,
            max_machines: 10,
        });
        let load = rising_load(horizon);
        group.bench_with_input(BenchmarkId::from_parameter(horizon), &horizon, |b, _| {
            b.iter(|| {
                let plan = planner.best_moves(black_box(&load), 2);
                black_box(plan)
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("planner/max_machines");
    for max in [10u32, 20, 40] {
        let planner = Planner::new(PlannerConfig {
            q: 285.0,
            d_intervals: 15.5,
            partitions_per_node: 6,
            max_machines: max,
        });
        let load: Vec<f64> = rising_load(48)
            .into_iter()
            .map(|l| l * max as f64 / 10.0)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(max), &max, |b, _| {
            b.iter(|| black_box(planner.best_moves(black_box(&load), 2)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_planner);
criterion_main!(benches);
